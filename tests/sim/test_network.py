"""Network cost model."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.network import ETHERNET_10MBIT, EthernetParams, NetworkModel


@pytest.fixture
def net():
    return NetworkModel(clock=SimClock())


def test_send_charges_overhead_wire_and_propagation(net):
    p = net.params
    cost = net.send(0)
    # Even an empty payload pays one header packet + stack costs.
    assert cost > 2 * p.per_message_overhead_s
    assert net.stats.messages == 1


def test_wire_time_scales_with_payload(net):
    small = net.cost_send(100)
    large = net.cost_send(100_000)
    assert large > small
    assert large - small == pytest.approx(
        (100_000 - 100 + 66 * net.params.header_bytes)
        / net.params.bandwidth_bps, rel=0.2)


def test_round_trip_is_two_sends(net):
    cost = net.round_trip(64, 64)
    assert cost == pytest.approx(2 * net.cost_send(64))
    assert net.stats.round_trips == 1


def test_cost_send_is_pure(net):
    before = net.clock.now()
    net.cost_send(10_000)
    assert net.clock.now() == before
    assert net.stats.messages == 0


def test_charge_seconds_advances_clock(net):
    net.charge_seconds(0.5, messages=2, payload=100)
    assert net.clock.now() == pytest.approx(0.5)
    assert net.stats.messages == 2


def test_charge_seconds_ignores_negative(net):
    net.charge_seconds(-1.0)
    assert net.clock.now() == 0.0


def test_one_megabyte_in_pages_pays_per_message_overhead():
    """The paper: remote access adds 3-5 s per 1 MB test when moved in
    page-sized units."""
    net = NetworkModel(clock=SimClock(), params=ETHERNET_10MBIT)
    for _ in range(128):
        net.round_trip(64, 8192 + 32)
    bulk = NetworkModel(clock=SimClock(), params=ETHERNET_10MBIT)
    bulk.round_trip(64, 1_000_000)
    assert net.clock.now() > bulk.clock.now()
    overhead = net.clock.now() - bulk.clock.now()
    assert 1.0 < overhead < 6.0


def test_custom_params():
    fast = EthernetParams(name="fddi", bandwidth_bps=10_000_000,
                          per_message_overhead_s=0.001, propagation_s=0.0001)
    slow = NetworkModel(clock=SimClock(), params=ETHERNET_10MBIT)
    quick = NetworkModel(clock=SimClock(), params=fast)
    assert quick.cost_send(8192) < slow.cost_send(8192)
