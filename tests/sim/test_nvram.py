"""PRESTOserve NVRAM cache model."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.disk import BLOCK_SIZE, DiskModel
from repro.sim.nvram import NvramCache


@pytest.fixture
def nvram():
    clock = SimClock()
    return NvramCache(clock=clock, disk=DiskModel(clock=clock))


def test_absorbed_write_is_cheap(nvram):
    cost = nvram.write(0)
    # DMA only: far below one rotational latency.
    assert cost < 0.001
    assert nvram.stats.absorbed_writes == 1
    assert nvram.stats.destages == 0


def test_rewrite_same_block_reuses_space(nvram):
    for _ in range(1000):
        nvram.write(7)
    assert nvram.used_bytes() == BLOCK_SIZE
    assert nvram.stats.hits == 999


def test_overflow_destages_to_disk(nvram):
    capacity_blocks = nvram.capacity_blocks
    for block in range(capacity_blocks + 10):
        nvram.write(block)
    assert nvram.stats.overflow_destages >= 10
    assert nvram.disk.stats.writes >= 10


def test_whole_megabyte_fits_without_destage(nvram):
    """The Figure 6 effect: "the whole 1 MByte write fits in the
    PRESTOserve cache, and is not flushed to disk"."""
    for block in range(1_000_000 // BLOCK_SIZE):
        nvram.write(block)
    assert nvram.stats.destages == 0
    assert nvram.disk.stats.writes == 0


def test_read_hit_tracks_board_contents(nvram):
    nvram.write(3)
    assert nvram.read_hit(3)
    assert not nvram.read_hit(4)


def test_flush_drains_everything(nvram):
    for block in range(20):
        nvram.write(block)
    nvram.flush()
    assert nvram.used_bytes() == 0
    assert nvram.disk.stats.writes == 20
    assert not nvram.read_hit(0)


def test_partial_block_write_counts_bytes(nvram):
    nvram.write(0, 512)
    assert nvram.used_bytes() == 512
