"""CPU cost model."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel, CpuParams, NullCpuModel


def test_charges_advance_clock():
    clock = SimClock()
    cpu = CpuModel(clock)
    cpu.tuple_pack()
    cpu.buffer_copy(3)
    assert clock.now() == pytest.approx(
        cpu.params.tuple_pack_s + 3 * cpu.params.buffer_copy_s)
    assert cpu.busy_seconds == pytest.approx(clock.now())


def test_counted_charges():
    clock = SimClock()
    cpu = CpuModel(clock)
    cpu.btree_compare(100)
    assert clock.now() == pytest.approx(100 * cpu.params.btree_compare_s)


def test_custom_params():
    clock = SimClock()
    cpu = CpuModel(clock, CpuParams(rpc_dispatch_s=1.0))
    cpu.rpc_dispatch()
    assert clock.now() == pytest.approx(1.0)


def test_null_model_charges_nothing():
    clock = SimClock()
    cpu = NullCpuModel(clock)
    cpu.tuple_pack(1000)
    cpu.udf_call(50)
    assert clock.now() == 0.0
    assert cpu.busy_seconds == 0.0


def test_all_charge_kinds_exist():
    clock = SimClock()
    cpu = CpuModel(clock)
    for method in ("tuple_pack", "tuple_unpack", "buffer_copy",
                   "btree_compare", "rpc_dispatch", "query_row", "udf_call"):
        assert getattr(cpu, method)() > 0
