"""Virtual clock behaviour."""

import pytest

from repro.sim.clock import SimClock, Stopwatch


def test_clock_starts_at_origin():
    assert SimClock().now() == 0.0
    assert SimClock(5.0).now() == 5.0


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(0.25)
    assert clock.now() == pytest.approx(1.75)


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        SimClock().advance(-0.1)


def test_zero_advance_is_legal():
    clock = SimClock()
    clock.advance(0.0)
    assert clock.now() == 0.0


def test_ticks_are_unique_and_increasing():
    clock = SimClock()
    ticks = [clock.tick() for _ in range(10)]
    assert ticks == sorted(ticks)
    assert len(set(ticks)) == 10


def test_reset():
    clock = SimClock()
    clock.advance(10)
    clock.reset()
    assert clock.now() == 0.0


def test_stopwatch_measures_elapsed():
    clock = SimClock()
    with Stopwatch(clock) as sw:
        clock.advance(2.0)
        clock.advance(1.0)
    assert sw.elapsed == pytest.approx(3.0)


def test_stopwatch_nested():
    clock = SimClock()
    with Stopwatch(clock) as outer:
        clock.advance(1.0)
        with Stopwatch(clock) as inner:
            clock.advance(0.5)
    assert inner.elapsed == pytest.approx(0.5)
    assert outer.elapsed == pytest.approx(1.5)
