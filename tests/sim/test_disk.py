"""Disk cost model: sequential vs seek behaviour."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.disk import BLOCK_SIZE, RZ58, DiskGeometry, DiskModel


@pytest.fixture
def disk():
    return DiskModel(clock=SimClock())


def test_sequential_access_costs_transfer_only(disk):
    disk.read_block(100)  # positioning access
    cost = disk.read_block(101)
    assert cost == pytest.approx(BLOCK_SIZE / RZ58.transfer_rate_bps)
    assert disk.stats.sequential_ops == 1


def test_random_access_costs_seek_and_rotation(disk):
    disk.read_block(100)
    far = disk.read_block(100 + RZ58.blocks_per_cylinder * 500)
    assert far > RZ58.avg_rotational_delay_s
    assert disk.stats.seeks >= 1


def test_same_cylinder_access_skips_seek(disk):
    disk.read_block(100)
    cost = disk.read_block(110)  # same cylinder (64 blocks/cyl), not adjacent
    expected = RZ58.avg_rotational_delay_s + BLOCK_SIZE / RZ58.transfer_rate_bps
    assert cost == pytest.approx(expected)


def test_seek_grows_with_distance(disk):
    disk.read_block(0)
    near = disk.read_block(RZ58.blocks_per_cylinder * 10)
    disk.reset_head()
    disk.read_block(0)
    far = disk.read_block(RZ58.blocks_per_cylinder * 5000)
    assert far > near


def test_seek_time_bounded_by_geometry(disk):
    g = disk.geometry
    full = disk._seek_time(0, g.total_cylinders - 1)
    assert g.min_seek_s * 0.5 <= full <= g.max_seek_s * 1.1


def test_clock_advances_with_io():
    clock = SimClock()
    disk = DiskModel(clock=clock)
    disk.write_block(0)
    assert clock.now() > 0


def test_stats_track_bytes(disk):
    disk.write_block(0, 4096)
    disk.read_block(1, 8192)
    assert disk.stats.bytes_written == 4096
    assert disk.stats.bytes_read == 8192
    assert disk.stats.reads == 1 and disk.stats.writes == 1


def test_flush_charges_settle_time(disk):
    before = disk.clock.now()
    disk.flush()
    assert disk.clock.now() > before


def test_write_sequence_after_reset_head_pays_seek(disk):
    disk.write_block(500)
    disk.reset_head()
    cost = disk.write_block(501)
    assert cost > BLOCK_SIZE / RZ58.transfer_rate_bps


def test_multiblock_transfer_advances_head():
    disk = DiskModel(clock=SimClock())
    disk.write_block(100, 4 * BLOCK_SIZE)  # occupies blocks 100-103
    cost = disk.write_block(104)
    assert cost == pytest.approx(BLOCK_SIZE / RZ58.transfer_rate_bps)


def test_custom_geometry():
    slow = DiskGeometry(name="floppy", capacity_bytes=2_000_000, rpm=300,
                        min_seek_s=0.05, avg_seek_s=0.1, max_seek_s=0.2,
                        transfer_rate_bps=50_000)
    disk = DiskModel(clock=SimClock(), geometry=slow)
    cost = disk.read_block(0)
    assert cost > 0.05  # dominated by rotation at 300 rpm
