"""System catalogs: self-description, types, functions, transactionality."""

import pytest

from repro.db.snapshot import BootstrapSnapshot
from repro.db.tuples import Column, Schema
from repro.errors import CatalogError

SCHEMA = Schema([Column("x", "int4")])


def test_catalogs_describe_themselves(db):
    snap = BootstrapSnapshot(db.tm)
    for name in ("pg_class", "pg_index", "pg_type", "pg_proc"):
        info = db.catalog.lookup_table(name, snap)
        assert info is not None
        assert info.relkind == "h"
        assert info.devname == "magnetic0"


def test_lookup_missing_table(db):
    assert db.catalog.lookup_table("nope", BootstrapSnapshot(db.tm)) is None


def test_oids_unique_and_persistent(db, tmp_path):
    oids = {db.catalog.allocate_oid() for _ in range(300)}
    assert len(oids) == 300
    from repro.db.database import Database
    db.close()
    reopened = Database.open(db.path)
    fresh = reopened.catalog.allocate_oid()
    assert fresh > max(oids)
    reopened.close()


def test_type_definition_and_lookup(db):
    tx = db.begin()
    info = db.catalog.define_type(tx, "satellite", "5-band image")
    db.commit(tx)
    tx2 = db.begin()
    found = db.catalog.lookup_type("satellite", db.snapshot(tx2))
    assert found.oid == info.oid
    assert found.description == "5-band image"
    db.commit(tx2)


def test_duplicate_type_rejected(db):
    tx = db.begin()
    db.catalog.define_type(tx, "t1")
    with pytest.raises(CatalogError):
        db.catalog.define_type(tx, "t1")
    db.abort(tx)


def test_aborted_type_definition_vanishes(db):
    tx = db.begin()
    db.catalog.define_type(tx, "ghost")
    db.abort(tx)
    tx2 = db.begin()
    assert db.catalog.lookup_type("ghost", db.snapshot(tx2)) is None
    db.commit(tx2)


def test_function_definition_and_redefinition(db, clock):
    tx = db.begin()
    db.catalog.define_function(tx, "f", "postquel", ["int4"], "int4", "$1+1")
    db.commit(tx)
    t_old = clock.now()
    tx2 = db.begin()
    db.catalog.define_function(tx2, "f", "postquel", ["int4"], "int4", "$1+2")
    db.commit(tx2)
    tx3 = db.begin()
    now = db.catalog.lookup_function("f", db.snapshot(tx3))
    assert now.src == "$1+2"
    then = db.catalog.lookup_function("f", db.asof(t_old))
    assert then.src == "$1+1"
    db.commit(tx3)


def test_list_functions_and_types(db):
    tx = db.begin()
    db.catalog.define_type(tx, "x1")
    db.catalog.define_function(tx, "g", "python", [], "int4", "lib:g")
    db.commit(tx)
    tx2 = db.begin()
    snap = db.snapshot(tx2)
    assert "x1" in [t.name for t in db.catalog.list_types(snap)]
    assert "g" in [p.name for p in db.catalog.list_functions(snap)]
    db.commit(tx2)


def test_typrestrict_recorded(db):
    tx = db.begin()
    db.catalog.define_function(tx, "snow", "python", ["oid"], "int8",
                               "typed:snow", typrestrict="tm_image")
    db.commit(tx)
    tx2 = db.begin()
    proc = db.catalog.lookup_function("snow", db.snapshot(tx2))
    assert proc.typrestrict == "tm_image"
    db.commit(tx2)


def test_list_tables_excludes_indexes(db):
    tx = db.begin()
    db.create_table(tx, "withidx", SCHEMA, indexes=[["x"]])
    db.commit(tx)
    names = [t.name for t in db.catalog.list_tables(BootstrapSnapshot(db.tm))]
    assert "withidx" in names
    assert "withidx_x_idx" not in names
