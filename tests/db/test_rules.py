"""The predicate rules system."""

import pytest

from repro.db.rules import RuleViolation, register_action
from repro.db.tuples import Column, Schema
from repro.errors import QueryError

EMP = Schema([Column("name", "text"), Column("salary", "int4")])


@pytest.fixture
def loaded(db):
    tx = db.begin()
    db.create_table(tx, "emp", EMP)
    db.execute(tx, 'append emp (name = "mao", salary = 10)')
    db.commit(tx)
    return db


def q(db, text):
    tx = db.begin()
    try:
        return db.execute(tx, text)
    finally:
        db.commit(tx)


def test_reject_rule_blocks_append(loaded):
    q(loaded, "define rule no_negative on append to emp "
              "where new.salary < 0 do reject")
    with pytest.raises(RuleViolation):
        q(loaded, 'append emp (name = "evil", salary = -5)')
    # Conforming rows still pass.
    q(loaded, 'append emp (name = "fine", salary = 5)')
    assert q(loaded, "retrieve (count(e.name)) from e in emp") == [(2,)]


def test_reject_rule_blocks_replace(loaded):
    q(loaded, "define rule cap on replace to emp "
              "where new.salary > 100 do reject")
    with pytest.raises(RuleViolation):
        q(loaded, "replace e (salary = 500) from e in emp "
                  'where e.name = "mao"')
    q(loaded, "replace e (salary = 50) from e in emp where e.name = \"mao\"")


def test_delete_rule_protects_rows(loaded):
    q(loaded, 'define rule keep_mao on delete to emp '
              'where new.name = "mao" do reject')
    with pytest.raises(RuleViolation):
        q(loaded, 'delete e from e in emp where e.name = "mao"')
    assert q(loaded, "retrieve (count(e.name)) from e in emp") == [(1,)]


def test_rejected_write_rolls_back_with_transaction(loaded):
    q(loaded, "define rule no_negative on append to emp "
              "where new.salary < 0 do reject")
    tx = loaded.begin()
    loaded.execute(tx, 'append emp (name = "ok", salary = 1)')
    with pytest.raises(RuleViolation):
        loaded.execute(tx, 'append emp (name = "bad", salary = -1)')
    loaded.abort(tx)
    assert q(loaded, "retrieve (count(e.name)) from e in emp") == [(1,)]


def test_callback_action_fires(loaded):
    fired = []
    register_action("audit", lambda db, tx, table, event, row:
                    fired.append((table, event, row)))
    q(loaded, 'define rule audit_all on append to emp '
              'where new.salary >= 0 do "audit"')
    q(loaded, 'append emp (name = "watched", salary = 7)')
    assert fired == [("emp", "append", ("watched", 7))]


def test_unregistered_callback_errors(loaded):
    q(loaded, 'define rule ghost on append to emp '
              'where new.salary > 0 do "never_registered"')
    with pytest.raises(QueryError):
        q(loaded, 'append emp (name = "x", salary = 1)')


def test_remove_rule(loaded):
    q(loaded, "define rule no_negative on append to emp "
              "where new.salary < 0 do reject")
    q(loaded, "remove rule no_negative")
    q(loaded, 'append emp (name = "fine-now", salary = -1)')


def test_rule_definition_is_transactional(loaded):
    tx = loaded.begin()
    loaded.execute(tx, "define rule temp on append to emp "
                       "where new.salary < 0 do reject")
    loaded.abort(tx)
    q(loaded, 'append emp (name = "ok", salary = -9)')  # rule never existed


def test_bad_rule_qualification_rejected_at_definition(loaded):
    with pytest.raises(Exception):
        q(loaded, 'define rule broken on append to emp '
                  'where new.salary +++ do reject')


def test_rules_listed(loaded):
    q(loaded, "define rule r1 on append to emp where new.salary < 0 do reject")
    tx = loaded.begin()
    rules = loaded.rules.list_rules(loaded.snapshot(tx))
    loaded.commit(tx)
    assert [r.name for r in rules] == ["r1"]
    assert rules[0].qualification == "new.salary < 0"


def test_no_rules_means_no_overhead(db):
    """The write path must not even construct the rule system when
    nobody defined rules."""
    tx = db.begin()
    table = db.create_table(tx, "t", EMP)
    table.insert(tx, ("x", 1))
    db.commit(tx)
    assert db._rules is None


def test_derived_data_maintenance_via_callback(loaded):
    """The migration-policy shape: a callback keeps a summary table in
    sync when qualifying rows appear."""
    tx = loaded.begin()
    loaded.create_table(tx, "big_earners",
                        Schema([Column("name", "text")]))
    loaded.commit(tx)

    def track(db, tx, table, event, row):
        db.table("big_earners", tx).insert(tx, (row[0],))
    register_action("track_big", track)
    q(loaded, 'define rule bigwatch on append to emp '
              'where new.salary > 100 do "track_big"')
    q(loaded, 'append emp (name = "ceo", salary = 500)')
    q(loaded, 'append emp (name = "intern", salary = 1)')
    assert q(loaded, "retrieve (b.name) from b in big_earners") == [("ceo",)]
