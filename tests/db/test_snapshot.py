"""Visibility rules: current view and time travel."""

import pytest

from repro.db.snapshot import AsOfSnapshot, BootstrapSnapshot, CurrentSnapshot
from repro.db.transactions import TransactionManager
from repro.db.tuples import INVALID_XID
from repro.devices.memdisk import MemDisk
from repro.sim.clock import SimClock


@pytest.fixture
def env():
    clock = SimClock()
    tm = TransactionManager(MemDisk("mem0", clock), clock)
    return clock, tm


def _commit(tm, clock, at: float):
    tx = tm.begin()
    tx.wrote = True
    while clock.now() < at:
        clock.advance(at - clock.now())
    tm.commit(tx)
    return tx.xid


def test_current_sees_committed(env):
    clock, tm = env
    xid = _commit(tm, clock, 1.0)
    me = tm.begin()
    snap = CurrentSnapshot(tm, me.xid)
    assert snap.is_visible(xid, INVALID_XID)


def test_current_sees_own_uncommitted_writes(env):
    _clock, tm = env
    me = tm.begin()
    snap = CurrentSnapshot(tm, me.xid)
    assert snap.is_visible(me.xid, INVALID_XID)
    assert not snap.is_visible(me.xid, me.xid)  # deleted by self


def test_current_ignores_other_in_progress(env):
    _clock, tm = env
    other = tm.begin()
    me = tm.begin()
    snap = CurrentSnapshot(tm, me.xid)
    assert not snap.is_visible(other.xid, INVALID_XID)


def test_current_ignores_aborted_inserter(env):
    _clock, tm = env
    loser = tm.begin()
    loser.wrote = True
    tm.abort(loser)
    me = tm.begin()
    assert not CurrentSnapshot(tm, me.xid).is_visible(loser.xid, INVALID_XID)


def test_current_keeps_record_deleted_by_aborted_tx(env):
    _clock, tm = env
    inserter = tm.begin(); inserter.wrote = True; tm.commit(inserter)
    deleter = tm.begin(); deleter.wrote = True; tm.abort(deleter)
    me = tm.begin()
    assert CurrentSnapshot(tm, me.xid).is_visible(inserter.xid, deleter.xid)


def test_asof_window(env):
    """A record inserted at t=1 and deleted at t=3 is visible exactly
    for 1 ≤ T < 3."""
    clock, tm = env
    x_in = _commit(tm, clock, 1.0)
    x_out = _commit(tm, clock, 3.0)
    def visible(at):
        return AsOfSnapshot(tm, at).is_visible(x_in, x_out)
    assert not visible(0.5)
    assert visible(1.0)
    assert visible(2.0)
    assert not visible(3.0)
    assert not visible(99.0)


def test_asof_ignores_uncommitted(env):
    clock, tm = env
    tx = tm.begin()
    clock.advance(5.0)
    assert not AsOfSnapshot(tm, clock.now()).is_visible(tx.xid, INVALID_XID)


def test_asof_never_deleted(env):
    clock, tm = env
    xid = _commit(tm, clock, 1.0)
    assert AsOfSnapshot(tm, 100.0).is_visible(xid, INVALID_XID)


def test_asof_deleter_not_committed(env):
    clock, tm = env
    xid = _commit(tm, clock, 1.0)
    deleter = tm.begin()  # never commits
    assert AsOfSnapshot(tm, 2.0).is_visible(xid, deleter.xid)


def test_bootstrap_sees_all_committed(env):
    clock, tm = env
    xid = _commit(tm, clock, 1.0)
    snap = BootstrapSnapshot(tm)
    assert snap.is_visible(xid, INVALID_XID)
    assert not snap.is_visible(xid, xid)
    in_flight = tm.begin()
    assert not snap.is_visible(in_flight.xid, INVALID_XID)
