"""``retrieve into``: materialized result tables."""

import pytest

from repro.db.tuples import Column, Schema

EMP = Schema([Column("name", "text"), Column("salary", "int4")])


@pytest.fixture
def loaded(db):
    tx = db.begin()
    db.create_table(tx, "emp", EMP)
    for name, sal in (("mao", 10), ("jim", 20), ("sue", 30)):
        db.execute(tx, f'append emp (name = "{name}", salary = {sal})')
    db.commit(tx)
    return db


def q(db, text):
    tx = db.begin()
    try:
        return db.execute(tx, text)
    finally:
        db.commit(tx)


def test_into_creates_table_with_rows(loaded):
    q(loaded, 'retrieve into rich (e.name, e.salary) from e in emp '
              'where e.salary > 15')
    rows = q(loaded, "retrieve (r.name, r.salary) from r in rich sort by name")
    assert rows == [("jim", 20), ("sue", 30)]


def test_into_infers_column_names_and_types(loaded):
    q(loaded, 'retrieve into derived (e.name, doubled = e.salary * 2, '
              'ratio = e.salary / 10) from e in emp')
    tx = loaded.begin()
    info = loaded.catalog.lookup_table("derived", loaded.snapshot(tx))
    loaded.commit(tx)
    cols = {c.name: c.typ for c in info.schema.columns}
    assert cols["name"] == "text"
    assert cols["doubled"] in ("int4", "int8")
    assert cols["ratio"] == "float8"


def test_into_result_is_indexable(loaded):
    """The point of materialization: expensive results become
    indexable tables."""
    q(loaded, "retrieve into snap (e.name, e.salary) from e in emp")
    q(loaded, "define index on snap (name)")
    tx = loaded.begin()
    rows = [r for _t, r in loaded.table("snap", tx).index_eq(
        ("name",), ("sue",), loaded.snapshot(tx), tx)]
    loaded.commit(tx)
    assert rows == [("sue", 30)]


def test_into_function_results(loaded):
    q(loaded, 'define function grade (int4) returns text language '
              '"postquel" as "$1 * 0"')
    q(loaded, "retrieve into graded (e.name, grade(e.salary)) from e in emp")
    tx = loaded.begin()
    info = loaded.catalog.lookup_table("graded", loaded.snapshot(tx))
    loaded.commit(tx)
    assert info.schema.column_names() == ("name", "grade")


def test_into_returns_no_rows_to_caller(loaded):
    assert q(loaded, "retrieve into t2 (e.name) from e in emp") == []


def test_into_is_transactional(loaded):
    tx = loaded.begin()
    loaded.execute(tx, "retrieve into doomed (e.name) from e in emp")
    loaded.abort(tx)
    assert not loaded.table_exists("doomed")


def test_into_duplicate_table_rejected(loaded):
    from repro.errors import TableError
    q(loaded, "retrieve into once (e.name) from e in emp")
    with pytest.raises(TableError):
        q(loaded, "retrieve into once (e.name) from e in emp")
