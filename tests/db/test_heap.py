"""No-overwrite heap tables."""

import pytest

from repro.db.buffer import BufferCache
from repro.db.heap import TID, HeapFile
from repro.db.snapshot import Snapshot
from repro.db.transactions import Transaction
from repro.db.tuples import Column, INVALID_XID, Schema
from repro.devices.memdisk import MemDisk
from repro.devices.switch import DeviceSwitch
from repro.sim.clock import SimClock

SCHEMA = Schema([Column("k", "int4"), Column("v", "text")])


class AllVisible(Snapshot):
    def is_visible(self, xmin: int, xmax: int) -> bool:
        return True


class CommittedByXidThreshold(Snapshot):
    """Visible if inserted by xid < threshold and not deleted by one."""

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold

    def is_visible(self, xmin: int, xmax: int) -> bool:
        if xmin >= self.threshold:
            return False
        return xmax == INVALID_XID or xmax >= self.threshold


def make_heap() -> HeapFile:
    clock = SimClock()
    switch = DeviceSwitch()
    switch.register(MemDisk("mem0", clock))
    switch.get("mem0").create_relation("t")
    return HeapFile(BufferCache(switch, capacity=32), "mem0", "t", SCHEMA)


def tx(xid: int = 5) -> Transaction:
    return Transaction(xid=xid, start_time=0.0)


def test_insert_returns_tid_and_fetch():
    heap = make_heap()
    t = tx()
    tid = heap.insert(t, (1, "one"))
    assert heap.fetch(tid, AllVisible()) == (1, "one")
    assert t.wrote


def test_insert_stamps_xmin():
    heap = make_heap()
    tid = heap.insert(tx(9), (1, "x"))
    xmin, xmax, values = heap.fetch_raw(tid)
    assert (xmin, xmax) == (9, INVALID_XID)
    assert values == (1, "x")


def test_delete_marks_not_removes():
    """Paper: "the original record is marked invalid, but remains in
    place"."""
    heap = make_heap()
    tid = heap.insert(tx(5), (1, "x"))
    heap.delete(tx(6), tid)
    xmin, xmax, values = heap.fetch_raw(tid)
    assert (xmin, xmax) == (5, 6)
    assert values == (1, "x")
    assert heap.record_count_physical() == 1


def test_update_is_delete_plus_insert():
    heap = make_heap()
    old = heap.insert(tx(5), (1, "old"))
    new = heap.update(tx(6), old, (1, "new"))
    assert new != old
    assert heap.record_count_physical() == 2
    assert heap.fetch_raw(old)[1] == 6  # xmax stamped
    assert heap.fetch_raw(new)[:2] == (6, INVALID_XID)


def test_scan_filters_by_snapshot():
    heap = make_heap()
    heap.insert(tx(1), (1, "a"))
    heap.insert(tx(10), (2, "b"))
    rows = [v for _t, v in heap.scan(CommittedByXidThreshold(5))]
    assert rows == [(1, "a")]


def test_fetch_invisible_returns_none():
    heap = make_heap()
    tid = heap.insert(tx(10), (1, "a"))
    assert heap.fetch(tid, CommittedByXidThreshold(5)) is None


def test_multipage_growth():
    heap = make_heap()
    payload = "x" * 2000
    tids = [heap.insert(tx(), (i, payload)) for i in range(50)]
    assert heap.npages() > 1
    assert len({t.pageno for t in tids}) == heap.npages()
    for i, tid in enumerate(tids):
        assert heap.fetch(tid, AllVisible()) == (i, payload)


def test_scan_all_versions_includes_deleted():
    heap = make_heap()
    tid = heap.insert(tx(5), (1, "a"))
    heap.update(tx(6), tid, (1, "b"))
    versions = list(heap.scan_all_versions())
    assert len(versions) == 2


def test_insert_raw_preserves_stamps():
    heap = make_heap()
    tid = heap.insert_raw(3, 4, (9, "archived"))
    assert heap.fetch_raw(tid) == (3, 4, (9, "archived"))


def test_write_requires_active_transaction():
    heap = make_heap()
    dead = tx()
    dead.state = "aborted"
    with pytest.raises(Exception):
        heap.insert(dead, (1, "x"))


def test_fetch_out_of_range_slot():
    heap = make_heap()
    heap.insert(tx(), (1, "a"))
    assert heap.fetch(TID(0, 99), AllVisible()) is None
