"""Shared LRU buffer cache."""

import pytest

from repro.db.buffer import BufferCache
from repro.devices.memdisk import MemDisk
from repro.devices.switch import DeviceSwitch
from repro.sim.clock import SimClock


@pytest.fixture
def setup():
    clock = SimClock()
    switch = DeviceSwitch()
    dev = MemDisk("mem0", clock)
    switch.register(dev)
    dev.create_relation("r")
    return switch, dev, BufferCache(switch, capacity=4)


def test_new_page_is_dirty_until_flushed(setup):
    _switch, dev, cache = setup
    pageno, page = cache.new_page("mem0", "r")
    page.add_record(b"data")
    cache.mark_dirty("mem0", "r", pageno)
    assert cache.dirty_count() == 1
    assert cache.flush_all() == 1
    assert cache.dirty_count() == 0


def test_hit_does_not_touch_device(setup):
    _switch, dev, cache = setup
    pageno, _page = cache.new_page("mem0", "r")
    cache.flush_all()
    reads_before = dev.stats.reads
    cache.get_page("mem0", "r", pageno)
    assert dev.stats.reads == reads_before
    assert cache.stats.hits == 1


def test_miss_reads_from_device(setup):
    _switch, dev, cache = setup
    pageno, _ = cache.new_page("mem0", "r")
    cache.flush_all()
    cache.invalidate_all()
    cache.get_page("mem0", "r", pageno)
    assert dev.stats.reads == 1
    assert cache.stats.misses == 1


def test_lru_eviction_writes_dirty_pages(setup):
    _switch, dev, cache = setup
    pages = []
    for i in range(6):  # capacity 4 → 2 evictions
        pageno, page = cache.new_page("mem0", "r")
        page.add_record(bytes([i]) * 8)
        cache.mark_dirty("mem0", "r", pageno)
        pages.append(pageno)
    assert cache.stats.evictions == 2
    assert cache.stats.dirty_writebacks == 2
    # Evicted pages are readable with their data intact.
    assert cache.get_page("mem0", "r", pages[0]).get_record(0) == b"\x00" * 8


def test_eviction_order_is_lru(setup):
    _switch, _dev, cache = setup
    p0, _ = cache.new_page("mem0", "r")
    for _ in range(3):
        cache.new_page("mem0", "r")
    cache.get_page("mem0", "r", p0)  # touch p0 → p1 becomes LRU
    cache.new_page("mem0", "r")
    assert cache.resident("mem0", "r", p0)
    assert not cache.resident("mem0", "r", 1)


def test_invalidate_without_writeback_loses_dirty_data(setup):
    """The crash model: volatile buffers vanish."""
    _switch, dev, cache = setup
    pageno, page = cache.new_page("mem0", "r")
    cache.flush_all()
    page = cache.get_page("mem0", "r", pageno)
    page.add_record(b"uncommitted")
    cache.mark_dirty("mem0", "r", pageno)
    cache.invalidate_all(write_dirty=False)
    fresh = cache.get_page("mem0", "r", pageno)
    assert fresh.nslots == 0


def test_flush_relation_only_touches_named_relation(setup):
    switch, dev, cache = setup
    dev.create_relation("other")
    p1, pg1 = cache.new_page("mem0", "r")
    p2, pg2 = cache.new_page("mem0", "other")
    assert cache.flush_relation("mem0", "r") == 1
    assert cache.dirty_count() == 1


def test_flush_relation_counts_forced_writes(setup):
    """flush_relation is a commit-path force, so it must account its
    writes exactly like flush_all does."""
    _switch, dev, cache = setup
    dev.create_relation("other")
    for _ in range(3):
        cache.new_page("mem0", "r")
    cache.new_page("mem0", "other")
    before = cache.stats.forced_writes
    assert cache.flush_relation("mem0", "r") == 3
    assert cache.stats.forced_writes == before + 3
    cache.flush_all()
    assert cache.stats.forced_writes == before + 4


def test_flush_relation_elevator_order(setup):
    _switch, dev, cache = setup
    order = []
    original = dev.write_page

    def spy(relname, pageno, data):
        order.append(pageno)
        original(relname, pageno, data)
    dev.write_page = spy
    big = BufferCache(cache.switch, capacity=16)
    for _ in range(5):
        big.new_page("mem0", "r")
    big.flush_relation("mem0", "r")
    assert order == sorted(order)


def test_invalidate_without_writeback_performs_no_device_io(setup):
    """simulate_crash semantics: dropping volatile buffers must not
    leak a single dirty page to the media."""
    _switch, dev, cache = setup
    pageno, page = cache.new_page("mem0", "r")
    page.add_record(b"uncommitted")
    cache.mark_dirty("mem0", "r", pageno)
    writes_before = dev.stats.writes
    cache.invalidate_all(write_dirty=False)
    assert dev.stats.writes == writes_before
    assert cache.dirty_count() == 0
    assert len(cache) == 0


def test_invalidate_with_writeback_flushes_then_empties(setup):
    _switch, dev, cache = setup
    pageno, page = cache.new_page("mem0", "r")
    page.add_record(b"data")
    cache.mark_dirty("mem0", "r", pageno)
    cache.invalidate_all()  # write_dirty=True is the default
    assert len(cache) == 0
    assert cache.get_page("mem0", "r", pageno).nslots == 1


def test_drop_relation_discards_frames(setup):
    _switch, _dev, cache = setup
    cache.new_page("mem0", "r")
    cache.drop_relation("mem0", "r")
    assert len(cache) == 0


def test_drop_relation_discards_dirty_frames_without_writeback(setup):
    """Dropping a relation invalidates its frames outright — writing a
    dirty page back to a relation being destroyed (e.g. vacuum swapping
    in the compacted copy) would resurrect stale data."""
    _switch, dev, cache = setup
    pageno, page = cache.new_page("mem0", "r")
    cache.flush_all()
    page = cache.get_page("mem0", "r", pageno)
    page.add_record(b"stale")
    cache.mark_dirty("mem0", "r", pageno)
    writes_before = dev.stats.writes
    cache.drop_relation("mem0", "r")
    assert dev.stats.writes == writes_before
    assert cache.dirty_count() == 0
    # The on-media page is untouched by the dropped dirty frame.
    assert cache.get_page("mem0", "r", pageno).nslots == 0


def test_mark_dirty_requires_residency(setup):
    _switch, _dev, cache = setup
    with pytest.raises(KeyError):
        cache.mark_dirty("mem0", "r", 0)


def test_flush_all_elevator_order(setup):
    """Dirty pages are written in sorted page order (one ascending
    sweep), not insertion order."""
    _switch, dev, cache = setup
    order = []
    original = dev.write_page

    def spy(relname, pageno, data):
        order.append(pageno)
        original(relname, pageno, data)
    dev.write_page = spy
    big = BufferCache(cache.switch, capacity=16)
    nums = []
    for _ in range(6):
        pageno, _pg = big.new_page("mem0", "r")
        nums.append(pageno)
    big.flush_all()
    assert order == sorted(order)
