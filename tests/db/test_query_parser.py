"""POSTQUEL parser → AST."""

import pytest

from repro.db.query import ast
from repro.db.query.parser import parse, parse_expression
from repro.errors import QuerySyntaxError


def test_simple_retrieve():
    stmt = parse("retrieve (filename) where owner(file) = \"mao\"")
    assert isinstance(stmt, ast.Retrieve)
    assert stmt.targets == (ast.Target(ast.Var(None, "filename"), None),)
    assert isinstance(stmt.where, ast.BinOp)
    assert stmt.where.op == "="


def test_retrieve_with_from_and_sort():
    stmt = parse("retrieve (e.name, e.salary) from e in emp "
                 "where e.salary > 10 sort by salary desc")
    assert stmt.froms == (ast.RangeVar("e", "emp", None),)
    assert stmt.sort_by == "salary"
    assert stmt.sort_desc


def test_retrieve_unique():
    assert parse("retrieve unique (dept) from e in emp").unique


def test_time_travel_range_var():
    stmt = parse("retrieve (f.filename) from f in naming[123.5]")
    assert stmt.froms[0].asof == ast.Literal(123.5)


def test_labelled_target():
    stmt = parse("retrieve (total = e.a + e.b) from e in t")
    assert stmt.targets[0].label == "total"
    assert isinstance(stmt.targets[0].expr, ast.BinOp)


def test_append():
    stmt = parse('append emp (name = "mao", salary = 10)')
    assert isinstance(stmt, ast.Append)
    assert stmt.relation == "emp"
    assert stmt.assigns[0] == ("name", ast.Literal("mao"))


def test_delete_implicit_range():
    stmt = parse('delete e from e in emp where e.name = "jim"')
    assert isinstance(stmt, ast.Delete)
    assert stmt.var == "e"


def test_replace():
    stmt = parse("replace e (salary = e.salary + 5) from e in emp "
                 "where e.salary < 100")
    assert isinstance(stmt, ast.Replace)
    assert stmt.assigns[0][0] == "salary"


def test_define_type():
    assert parse("define type avhrr_image") == ast.DefineType("avhrr_image")


def test_define_function():
    stmt = parse('define function snow (oid) returns int8 for tm_image '
                 'language "python" as "typed:snow"')
    assert stmt == ast.DefineFunction(
        "snow", ("oid",), "int8", "python", "typed:snow", "tm_image")


def test_define_function_no_args():
    stmt = parse('define function now () returns time '
                 'language "python" as "lib:now"')
    assert stmt.argtypes == ()


def test_define_index():
    stmt = parse("define index on naming (parentid, filename)")
    assert stmt == ast.DefineIndex("naming", ("parentid", "filename"))


def test_remove_table():
    assert parse("remove table junk") == ast.RemoveTable("junk")


def test_operator_precedence():
    expr = parse_expression("1 + 2 * 3 = 7 and not 0 > 1")
    assert expr.op == "and"
    left = expr.left
    assert left.op == "="
    assert left.left.op == "+"
    assert left.left.right.op == "*"


def test_unary_minus_and_parens():
    expr = parse_expression("-(2 + 3) * 4")
    assert expr.op == "*"
    assert isinstance(expr.left, ast.UnaryOp)


def test_in_operator():
    expr = parse_expression('"RISC" in keywords(file)')
    assert expr.op == "in"
    assert isinstance(expr.right, ast.FuncCall)


def test_params_in_expression():
    expr = parse_expression("$1 * 2 + $2")
    assert isinstance(expr.left.left, ast.Param)


def test_trailing_tokens_rejected():
    with pytest.raises(QuerySyntaxError):
        parse("retrieve (x) from t in tbl garbage")


def test_missing_parens_rejected():
    with pytest.raises(QuerySyntaxError):
        parse("retrieve filename")


def test_unknown_statement_rejected():
    with pytest.raises(QuerySyntaxError):
        parse("frobnicate (x)")


def test_paper_query_parses():
    stmt = parse('retrieve (snow(file), filename) '
                 'where filetype(file) = "tm" '
                 'and snow(file)/size(file) > 0.5 '
                 'and month_of(file) = "April"')
    assert len(stmt.targets) == 2
    assert stmt.where.op == "and"
