"""Order-preserving key encoding, including property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.db import keycodec


@given(st.integers(min_value=-2**63, max_value=2**63 - 1),
       st.integers(min_value=-2**63, max_value=2**63 - 1))
def test_int_encoding_preserves_order(a, b):
    ea, eb = keycodec.encode_int(a), keycodec.encode_int(b)
    assert (a < b) == (ea < eb)
    assert (a == b) == (ea == eb)


@given(st.integers(min_value=-2**63, max_value=2**63 - 1))
def test_int_roundtrip(a):
    assert keycodec.decode_int(keycodec.encode_int(a)) == a


def test_int_out_of_range():
    with pytest.raises(ValueError):
        keycodec.encode_int(2 ** 63)


@given(st.floats(allow_nan=False), st.floats(allow_nan=False))
def test_float_encoding_preserves_order(a, b):
    ea, eb = keycodec.encode_float(a), keycodec.encode_float(b)
    if a < b:
        assert ea < eb
    elif a > b:
        assert ea > eb


@given(st.floats(allow_nan=False))
def test_float_roundtrip(a):
    out = keycodec.decode_float(keycodec.encode_float(a))
    assert out == a or (a == 0.0 and out == 0.0)


@given(st.text(), st.text())
def test_text_encoding_preserves_order(a, b):
    ea, eb = keycodec.encode_text(a), keycodec.encode_text(b)
    assert (a.encode() < b.encode()) == (ea < eb)


@given(st.binary(), st.binary())
def test_bytes_encoding_preserves_order(a, b):
    ea, eb = keycodec.encode_bytes(a), keycodec.encode_bytes(b)
    assert (a < b) == (ea < eb)


@given(st.binary())
def test_bytes_roundtrip(a):
    encoded = keycodec.encode_bytes(a)
    decoded, end = keycodec.decode_bytes(encoded)
    assert decoded == a
    assert end == len(encoded)


@given(st.binary(), st.binary())
def test_bytes_encoding_self_delimiting(a, b):
    """Concatenated encodings decode back to their parts."""
    blob = keycodec.encode_bytes(a) + keycodec.encode_bytes(b)
    first, offset = keycodec.decode_bytes(blob)
    second, end = keycodec.decode_bytes(blob, offset)
    assert (first, second) == (a, b)
    assert end == len(blob)


@given(st.tuples(st.integers(min_value=0, max_value=2**31), st.text()),
       st.tuples(st.integers(min_value=0, max_value=2**31), st.text()))
def test_composite_key_order(a, b):
    """(parentid, filename) composite keys sort like their tuples —
    what the naming index depends on."""
    ea, eb = keycodec.encode_key(a), keycodec.encode_key(b)
    ta = (a[0], a[1].encode())
    tb = (b[0], b[1].encode())
    assert (ta < tb) == (ea < eb)


def test_none_sorts_before_any_nonempty_text():
    assert keycodec.encode_value(None) < keycodec.encode_text("a")
    assert keycodec.encode_value(None) < keycodec.encode_bytes(b"\x00")
    # The empty string is the one value that precedes None.
    assert keycodec.encode_text("") < keycodec.encode_value(None)


def test_bool_encodes_as_int():
    assert keycodec.encode_value(True) == keycodec.encode_int(1)
    assert keycodec.encode_value(False) == keycodec.encode_int(0)


def test_unknown_type_rejected():
    with pytest.raises(TypeError):
        keycodec.encode_value(object())


def test_prefix_encoding_is_prefix_of_full_key():
    prefix = keycodec.encode_prefix((810,))
    full = keycodec.encode_key((810, "etc"))
    assert full.startswith(prefix)
