"""Table abstraction: indexes maintained on writes, MVCC reads."""

import pytest

from repro.db.tuples import Column, Schema
from repro.errors import TableError

SCHEMA = Schema([Column("k", "int4"), Column("name", "text")])


@pytest.fixture
def table_env(db):
    tx = db.begin()
    table = db.create_table(tx, "t", SCHEMA, indexes=[["k"], ["k", "name"]])
    db.commit(tx)
    return db, table


def test_insert_maintains_all_indexes(table_env):
    db, _ = table_env
    tx = db.begin()
    table = db.table("t", tx)
    table.insert(tx, (5, "five"))
    db.commit(tx)
    tx2 = db.begin()
    t2 = db.table("t", tx2)
    snap = db.snapshot(tx2)
    assert [r for _t, r in t2.index_eq(("k",), (5,), snap, tx2)] == [(5, "five")]
    assert [r for _t, r in t2.index_eq(("k", "name"), (5, "five"), snap, tx2)] \
        == [(5, "five")]
    db.commit(tx2)


def test_update_leaves_old_version_indexed_for_history(table_env, clock):
    db, _ = table_env
    tx = db.begin()
    table = db.table("t", tx)
    tid = table.insert(tx, (1, "old"))
    db.commit(tx)
    t0 = clock.now()
    tx2 = db.begin()
    db.table("t", tx2).update(tx2, tid, (1, "new"))
    db.commit(tx2)
    now = [r for _t, r in db.table("t").index_eq(("k",), (1,),
                                                 db.asof(clock.now()))]
    then = [r for _t, r in db.table("t").index_eq(("k",), (1,), db.asof(t0))]
    assert now == [(1, "new")]
    assert then == [(1, "old")]


def test_index_eq_requires_matching_index(table_env):
    db, _ = table_env
    tx = db.begin()
    with pytest.raises(TableError):
        list(db.table("t", tx).index_eq(("name",), ("x",),
                                        db.snapshot(tx), tx))
    db.abort(tx)


def test_index_range_scan(table_env):
    db, _ = table_env
    tx = db.begin()
    table = db.table("t", tx)
    for i in range(20):
        table.insert(tx, (i, f"n{i}"))
    db.commit(tx)
    tx2 = db.begin()
    rows = [r for _t, r in db.table("t", tx2).index_range(
        ("k",), (5,), (8,), db.snapshot(tx2), tx2)]
    assert [r[0] for r in rows] == [5, 6, 7, 8]
    db.commit(tx2)


def test_prefix_range_on_composite_index(table_env):
    db, _ = table_env
    tx = db.begin()
    table = db.table("t", tx)
    for k, name in ((1, "a"), (1, "b"), (2, "a")):
        table.insert(tx, (k, name))
    db.commit(tx)
    tx2 = db.begin()
    rows = [r for _t, r in db.table("t", tx2).index_range(
        ("k", "name"), (1,), (1,), db.snapshot(tx2), tx2)]
    assert rows == [(1, "a"), (1, "b")]
    db.commit(tx2)


def test_writers_take_exclusive_lock(table_env):
    db, _ = table_env
    tx = db.begin()
    table = db.table("t", tx)
    table.insert(tx, (1, "x"))
    resource = ("rel", table.info.oid)
    assert db.locks.holders(resource)[tx.xid] == "X"
    db.commit(tx)
    assert db.locks.holders(resource) == {}


def test_readers_take_no_locks(table_env):
    """Readers are MVCC: snapshot visibility replaces shared locks, so
    scans never block behind writers."""
    db, _ = table_env
    tx = db.begin()
    table = db.table("t", tx)
    list(table.scan(db.snapshot(tx), tx))
    assert tx.xid not in db.locks.holders(("rel", table.info.oid))
    db.commit(tx)


def test_row_count(table_env):
    db, _ = table_env
    tx = db.begin()
    table = db.table("t", tx)
    for i in range(7):
        table.insert(tx, (i, "x"))
    db.commit(tx)
    tx2 = db.begin()
    assert db.table("t", tx2).row_count(db.snapshot(tx2)) == 7
    db.commit(tx2)


def test_newest_version_found_first(table_env):
    """index_eq must not pay heap fetches for superseded versions to
    find the live one (fetch order is newest-first)."""
    db, _ = table_env
    tx = db.begin()
    table = db.table("t", tx)
    tid = table.insert(tx, (1, "v0"))
    for i in range(1, 6):
        tid = table.update(tx, tid, (1, f"v{i}"))
    db.commit(tx)
    tx2 = db.begin()
    rows = list(db.table("t", tx2).index_eq(("k",), (1,),
                                            db.snapshot(tx2), tx2))
    assert [r for _t, r in rows] == [(1, "v5")]
    db.commit(tx2)
