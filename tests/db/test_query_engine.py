"""POSTQUEL execution: scans, joins, DML, DDL, time travel, functions."""

import pytest

from repro.db.tuples import Column, Schema
from repro.errors import QueryError

EMP = Schema([Column("name", "text"), Column("dept", "text"),
              Column("salary", "int4")])
DEPT = Schema([Column("dept", "text"), Column("floor", "int4")])


@pytest.fixture
def loaded(db):
    tx = db.begin()
    db.create_table(tx, "emp", EMP, indexes=[["name"]])
    db.create_table(tx, "dept", DEPT)
    for row in (("mao", "db", 10), ("jim", "fs", 20), ("sue", "db", 30)):
        db.execute(tx, f'append emp (name = "{row[0]}", dept = "{row[1]}", '
                       f'salary = {row[2]})')
    for row in (("db", 4), ("fs", 5)):
        db.execute(tx, f'append dept (dept = "{row[0]}", floor = {row[1]})')
    db.commit(tx)
    return db


def q(db, text):
    tx = db.begin()
    try:
        return db.execute(tx, text)
    finally:
        db.commit(tx)


def test_full_scan(loaded):
    rows = q(loaded, "retrieve (e.name) from e in emp sort by name")
    assert rows == [("jim",), ("mao",), ("sue",)]


def test_where_filter(loaded):
    rows = q(loaded, 'retrieve (e.name) from e in emp '
                     'where e.dept = "db" and e.salary > 15')
    assert rows == [("sue",)]


def test_unqualified_column_resolution(loaded):
    rows = q(loaded, 'retrieve (name) from e in emp where salary = 20')
    assert rows == [("jim",)]


def test_ambiguous_column_rejected(loaded):
    with pytest.raises(QueryError):
        q(loaded, "retrieve (dept) from e in emp, d in dept")


def test_join(loaded):
    rows = q(loaded, "retrieve (e.name, d.floor) from e in emp, d in dept "
                     "where e.dept = d.dept sort by name")
    assert rows == [("jim", 5), ("mao", 4), ("sue", 4)]


def test_unique(loaded):
    rows = q(loaded, "retrieve unique (e.dept) from e in emp")
    assert sorted(rows) == [("db",), ("fs",)]


def test_index_equality_plan_used(loaded):
    """The planner must route name-equality through the B-tree."""
    from repro.db.query.engine import QueryEngine
    tx = loaded.begin()
    engine = QueryEngine(loaded)
    rows = engine.execute(tx, 'retrieve (e.salary) from e in emp '
                              'where e.name = "sue"')
    assert rows == [(30,)]
    loaded.commit(tx)


def test_arithmetic_and_labels(loaded):
    rows = q(loaded, 'retrieve (bonus = e.salary * 2) from e in emp '
                     'where e.name = "mao"')
    assert rows == [(20,)]


def test_constant_query(loaded):
    assert q(loaded, "retrieve (1 + 2 * 3)") == [(7,)]


def test_replace(loaded):
    q(loaded, 'replace e (salary = e.salary + 1) from e in emp '
              'where e.dept = "db"')
    rows = q(loaded, 'retrieve (e.salary) from e in emp sort by salary')
    assert rows == [(11,), (20,), (31,)]


def test_delete(loaded):
    q(loaded, 'delete e from e in emp where e.salary < 25')
    rows = q(loaded, "retrieve (e.name) from e in emp")
    assert rows == [("sue",)]


def test_append_missing_column_rejected(loaded):
    with pytest.raises(QueryError):
        q(loaded, 'append emp (name = "half")')


def test_append_unknown_column_rejected(loaded):
    with pytest.raises(QueryError):
        q(loaded, 'append emp (name = "x", dept = "y", salary = 1, age = 9)')


def test_time_travel_in_query(loaded, clock):
    t0 = clock.now()
    q(loaded, 'delete e from e in emp where e.name = "jim"')
    now_rows = q(loaded, "retrieve (e.name) from e in emp where e.name = \"jim\"")
    then_rows = q(loaded, f'retrieve (e.name) from e in emp[{t0}] '
                          f'where e.name = "jim"')
    assert now_rows == []
    assert then_rows == [("jim",)]


def test_postquel_function_definition_and_call(loaded):
    q(loaded, 'define function double (int4) returns int4 '
              'language "postquel" as "$1 * 2"')
    rows = q(loaded, 'retrieve (e.name, double(e.salary)) from e in emp '
                     'where double(e.salary) = 60')
    assert rows == [("sue", 60)]


def test_python_function_via_registry(loaded):
    from repro.db.funcmgr import register_callable
    register_callable("lib:shout", lambda s: s.upper())
    q(loaded, 'define function shout (text) returns text '
              'language "python" as "lib:shout"')
    rows = q(loaded, 'retrieve (shout(e.name)) from e in emp '
                     'where e.name = "mao"')
    assert rows == [("MAO",)]


def test_function_time_travel(loaded, clock):
    """Redefining a function keeps the old definition reachable by
    time travel — 'users can even run old versions of these
    functions'."""
    q(loaded, 'define function rate (int4) returns int4 '
              'language "postquel" as "$1 * 2"')
    t_old = clock.now()
    q(loaded, 'define function rate (int4) returns int4 '
              'language "postquel" as "$1 * 10"')
    snap_now = loaded.asof(clock.now())
    snap_then = loaded.asof(t_old)
    assert loaded.funcs.call("rate", [3], snap_now) == 30
    assert loaded.funcs.call("rate", [3], snap_then) == 6


def test_define_type_statement(loaded):
    q(loaded, "define type hdf_file")
    tx = loaded.begin()
    assert loaded.catalog.lookup_type("hdf_file", loaded.snapshot(tx))
    loaded.commit(tx)


def test_define_index_statement(loaded):
    q(loaded, "define index on emp (dept)")
    tx = loaded.begin()
    info = loaded.catalog.lookup_table("emp", loaded.snapshot(tx),
                                       use_cache=False)
    assert any(ix.keycols == ("dept",) for ix in info.indexes)
    loaded.commit(tx)


def test_remove_table_statement(loaded):
    q(loaded, "remove table dept")
    assert not loaded.table_exists("dept")


def test_in_operator_string_membership(loaded):
    rows = q(loaded, 'retrieve (e.name) from e in emp where "a" in e.name')
    assert rows == [("mao",)]


def test_division_by_zero_surfaces_as_error(loaded):
    with pytest.raises(ZeroDivisionError):
        q(loaded, "retrieve (1 / 0)")


def test_unknown_table_rejected(loaded):
    from repro.errors import TableError
    with pytest.raises(TableError):
        q(loaded, "retrieve (x.a) from x in nowhere")
