"""POSTQUEL tokenizer."""

import pytest

from repro.db.query.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PARAM,
    PUNCT,
    STRING,
    tokenize,
)
from repro.errors import QuerySyntaxError


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


def test_keywords_case_insensitive():
    toks = tokenize("RETRIEVE Retrieve retrieve")
    assert all(t.kind == KEYWORD and t.value == "retrieve"
               for t in toks[:-1])


def test_identifiers_preserve_case():
    assert values("FileName file_2") == ["FileName", "file_2"]


def test_numbers():
    assert values("42 3.5 0.25") == [42, 3.5, 0.25]
    assert isinstance(tokenize("42")[0].value, int)
    assert isinstance(tokenize("3.5")[0].value, float)


def test_strings_both_quotes_and_escapes():
    assert values('"RISC" \'mao\' "a\\"b"') == ["RISC", "mao", 'a"b']


def test_unterminated_string():
    with pytest.raises(QuerySyntaxError):
        tokenize('"oops')


def test_operators():
    assert values("= != < <= > >= + - * /") == \
        ["=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/"]


def test_punctuation_and_attribute_dot():
    toks = tokenize("e.name")
    assert [(t.kind, t.value) for t in toks[:-1]] == \
        [(IDENT, "e"), (PUNCT, "."), (IDENT, "name")]


def test_number_dot_ident_disambiguation():
    """``inv23114.chunkno`` must not eat the dot into the number."""
    toks = tokenize("t3.chunkno")
    assert toks[0].kind == IDENT  # t3 starts with a letter
    toks = tokenize("3.chunkno") if False else tokenize("f(3).x")
    assert any(t.value == "." for t in toks if t.kind == PUNCT)


def test_params():
    toks = tokenize("$1 + $23")
    assert toks[0].kind == PARAM and toks[0].value == 1
    assert toks[2].kind == PARAM and toks[2].value == 23


def test_eof_token_always_present():
    assert tokenize("")[-1].kind == EOF
    assert tokenize("x")[-1].kind == EOF


def test_unexpected_character():
    with pytest.raises(QuerySyntaxError):
        tokenize("x ; y")


def test_paper_query_tokenizes():
    query = ('retrieve (snow(file), filename) where filetype(file) = "tm" '
             'and snow(file)/size(file) > 0.5 and month_of(file) = "April"')
    toks = tokenize(query)
    assert toks[-1].kind == EOF
    assert sum(1 for t in toks if t.kind == KEYWORD and t.value == "and") == 2
