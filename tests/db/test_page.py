"""Slotted page layout."""

import pytest
from hypothesis import given, strategies as st

from repro.db.page import (
    MAX_RECORD_SIZE,
    PAGE_HEAP,
    PAGE_SIZE,
    Page,
)
from repro.errors import PageError, PageOverflowError


def test_new_page_is_empty():
    page = Page()
    assert page.nslots == 0
    assert page.free_space == PAGE_SIZE - 12


def test_add_and_get_record():
    page = Page()
    idx = page.add_record(b"hello")
    assert idx == 0
    assert page.get_record(0) == b"hello"


def test_records_in_slot_order():
    page = Page()
    for i in range(5):
        page.add_record(bytes([i]) * 10)
    assert page.records() == [bytes([i]) * 10 for i in range(5)]


def test_insert_record_at_position_shifts_slots():
    page = Page()
    page.add_record(b"a")
    page.add_record(b"c")
    page.insert_record(1, b"b")
    assert page.records() == [b"a", b"b", b"c"]


def test_overflow_rejected():
    page = Page()
    with pytest.raises(PageOverflowError):
        page.add_record(bytes(MAX_RECORD_SIZE + 1))


def test_fills_up_and_reports_full():
    page = Page()
    rec = bytes(1000)
    while page.fits(len(rec)):
        page.add_record(rec)
    with pytest.raises(PageOverflowError):
        page.add_record(rec)


def test_max_record_exactly_fits():
    page = Page()
    page.add_record(bytes(MAX_RECORD_SIZE))
    assert page.free_space == 0


def test_overwrite_record_same_length():
    page = Page()
    page.add_record(b"aaaa")
    page.overwrite_record(0, b"bbbb")
    assert page.get_record(0) == b"bbbb"


def test_overwrite_record_length_change_rejected():
    page = Page()
    page.add_record(b"aaaa")
    with pytest.raises(PageError):
        page.overwrite_record(0, b"bb")


def test_patch_record():
    page = Page()
    page.add_record(b"aaaa")
    page.patch_record(0, 1, b"XY")
    assert page.get_record(0) == b"aXYa"


def test_patch_past_end_rejected():
    page = Page()
    page.add_record(b"aaaa")
    with pytest.raises(PageError):
        page.patch_record(0, 3, b"XY")


def test_delete_slot_and_compact():
    page = Page()
    for token in (b"a", b"b", b"c"):
        page.add_record(token * 100)
    free_before = page.free_space
    page.delete_slot(1)
    assert page.records() == [b"a" * 100, b"c" * 100]
    page.compact()
    assert page.free_space > free_before
    assert page.records() == [b"a" * 100, b"c" * 100]


def test_rewrite_preserves_flags_and_special():
    page = Page(flags=PAGE_HEAP)
    page.special = 42
    page.add_record(b"x")
    page.rewrite([b"y", b"z"])
    assert page.records() == [b"y", b"z"]
    assert page.flags == PAGE_HEAP
    assert page.special == 42


def test_roundtrip_through_bytes():
    page = Page(flags=PAGE_HEAP)
    page.add_record(b"persist me")
    page.special = 7
    restored = Page(page.to_bytes())
    assert restored.get_record(0) == b"persist me"
    assert restored.special == 7
    assert restored.flags == PAGE_HEAP


def test_zero_page_initializes():
    page = Page(bytes(PAGE_SIZE), flags=PAGE_HEAP)
    assert page.nslots == 0
    assert page.flags == PAGE_HEAP


def test_wrong_buffer_size_rejected():
    with pytest.raises(PageError):
        Page(b"short")


def test_bad_slot_index():
    page = Page()
    with pytest.raises(PageError):
        page.get_record(0)
    with pytest.raises(PageError):
        page.delete_slot(0)


@given(st.lists(st.binary(min_size=1, max_size=200), min_size=1, max_size=30))
def test_property_records_roundtrip(records):
    """Any sequence of records that fits comes back unchanged, in order."""
    page = Page()
    stored = []
    for rec in records:
        if page.fits(len(rec)):
            page.add_record(rec)
            stored.append(rec)
    assert page.records() == stored
    assert Page(page.to_bytes()).records() == stored


@given(st.lists(st.binary(min_size=1, max_size=100), min_size=2, max_size=20),
       st.data())
def test_property_delete_any_slot(records, data):
    page = Page()
    for rec in records:
        page.add_record(rec)
    idx = data.draw(st.integers(min_value=0, max_value=len(records) - 1))
    page.delete_slot(idx)
    expected = records[:idx] + records[idx + 1:]
    assert page.records() == expected
