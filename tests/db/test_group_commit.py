"""Group commit: deferred status forces, multi-record appends, and the
recovery parser that reads them back.

With ``group_commit_window=0`` (the default) every writing commit pays
its own forced status append — the paper's behaviour, asserted exactly.
With a positive window, commit records queue and one forced append
carries the whole batch as a multi-record line; a crash before the
force loses the queue, which is safe because data pages were forced
first (data-then-status), so the lost transactions are presumed
aborted.
"""

import pytest

from repro.db.transactions import (
    ABORTED,
    COMMITTED,
    STATUS_TAG,
    TransactionManager,
)
from repro.devices.memdisk import MemDisk
from repro.sim.clock import SimClock


@pytest.fixture
def device():
    return MemDisk("mem0", SimClock())


def commit_writer(tm):
    tx = tm.begin()
    tx.wrote = True
    tm.commit(tx)
    return tx


def test_window_zero_forces_once_per_writing_commit(device):
    tm = TransactionManager(device, SimClock())
    for _ in range(5):
        commit_writer(tm)
    assert tm.stats.status_forces == 5
    assert tm.stats.commits_recorded == 5
    assert tm.stats.commits_per_force() == 1.0
    assert tm.stats.group_batches == 0
    assert tm.pending_commit_xids() == []


def test_readonly_commits_force_nothing(device):
    tm = TransactionManager(device, SimClock())
    for _ in range(3):
        tm.commit(tm.begin())
    assert tm.stats.status_forces == 0


def test_window_queues_and_flush_forces_one_append(device):
    clock = SimClock()
    tm = TransactionManager(device, clock, group_commit_window=1.0)
    txs = [commit_writer(tm) for _ in range(4)]
    assert tm.stats.status_forces == 0
    assert tm.pending_commit_xids() == [tx.xid for tx in txs]
    # Queued commits are already visible in memory.
    assert all(tm.is_committed(tx.xid) for tx in txs)
    assert tm.flush_commits() == 4
    assert tm.stats.status_forces == 1
    assert tm.stats.commits_recorded == 4
    assert tm.stats.commits_per_force() == 4.0
    assert tm.stats.group_batches == 1
    assert tm.stats.max_group == 4
    assert tm.pending_commit_xids() == []
    # One line, four records.
    raw = device.read_meta(STATUS_TAG)
    lines = [l for l in raw.decode().splitlines() if l]
    assert len(lines) == 1
    assert lines[0].count("C ") == 4


def test_multi_record_line_survives_reload(device):
    clock = SimClock()
    tm = TransactionManager(device, clock, group_commit_window=1.0)
    txs = []
    for _ in range(3):
        clock.advance(0.25)
        txs.append(commit_writer(tm))
    tm.flush_commits()
    tm2 = TransactionManager(device, clock)
    for tx in txs:
        assert tm2.is_committed(tx.xid)
        assert tm2.commit_time(tx.xid) == pytest.approx(
            tm.commit_time(tx.xid))


def test_window_deadline_flushes_on_next_begin(device):
    clock = SimClock()
    tm = TransactionManager(device, clock, group_commit_window=0.5)
    tx = commit_writer(tm)
    assert tm.pending_commit_xids() == [tx.xid]
    clock.advance(1.0)
    tm.begin()  # past the deadline: the batch is forced here
    assert tm.pending_commit_xids() == []
    assert tm.stats.status_forces == 1


def test_crash_loses_pending_but_stays_consistent(device):
    """A crash before the batch force loses the queued commits — they
    recover as presumed-aborted, never as torn state."""
    clock = SimClock()
    tm = TransactionManager(device, clock, group_commit_window=5.0)
    durable = commit_writer(tm)
    tm.flush_commits()
    floating = [commit_writer(tm) for _ in range(3)]
    # Crash: the pending queue simply never reaches the device.
    tm2 = TransactionManager(device, clock)
    assert tm2.is_committed(durable.xid)
    for tx in floating:
        assert tm2.state(tx.xid) == ABORTED
        assert not tm2.is_committed(tx.xid)


def test_abort_is_recorded_immediately_while_batch_pends(device):
    clock = SimClock()
    tm = TransactionManager(device, clock, group_commit_window=5.0)
    pending = commit_writer(tm)
    aborted = tm.begin()
    aborted.wrote = True
    tm.abort(aborted)
    assert tm.stats.aborts_recorded == 1
    # The A record is durable even though the C record still pends.
    tm2 = TransactionManager(device, clock)
    assert tm2.state(aborted.xid) == ABORTED
    assert tm2.state(pending.xid) == ABORTED  # lost with the queue
    tm.flush_commits()
    tm3 = TransactionManager(device, clock)
    assert tm3.is_committed(pending.xid)


# -- torn multi-record appends ------------------------------------------------


def build_status(device, records):
    device.sync_write_meta(STATUS_TAG, records)


def test_torn_multi_record_append_keeps_the_durable_prefix(device):
    build_status(device,
                 b"C 2 0.0 1.0\n"
                 b"C 3 1.0 2.0 C 4 1.5 2.0 C 5 1.7 2")  # torn mid-batch
    tm = TransactionManager(device, SimClock())
    assert tm.is_committed(2)
    assert tm.is_committed(3)
    # Records 4 and 5: 4 parses complete, but as the last parseable
    # record of a torn line its final token cannot be trusted — both
    # are presumed aborted, which is safe (their data pages were forced
    # before the append; losing the record only loses the commit).
    assert tm.state(5) == ABORTED
    assert tm.recovery_report()["torn_tail"] == 1


def test_torn_tail_discards_final_record_even_if_it_parses(device):
    """A tear can truncate the final float of the last record and still
    leave it token-complete (``0.25`` → ``0.2``); the parser therefore
    never trusts the last record of a newline-less line."""
    build_status(device, b"C 2 0.0 1.0\nC 3 1.0 2.0")  # no trailing \n
    tm = TransactionManager(device, SimClock())
    assert tm.is_committed(2)
    assert tm.state(3) == ABORTED
    assert tm.recovery_report()["torn_tail"] == 1
    # The xid is still not reusable.
    assert tm.begin().xid > 3


def test_mixed_records_on_one_line_parse(device):
    build_status(device, b"C 2 0.0 1.0 A 3 0.5 C 4 0.7 1.2\n")
    tm = TransactionManager(device, SimClock())
    assert tm.is_committed(2)
    assert tm.state(3) == ABORTED
    assert tm.is_committed(4)


def test_garbage_status_still_rejected(device):
    build_status(device, b"garbage nonsense\n")
    from repro.errors import RecoveryError
    with pytest.raises(RecoveryError):
        TransactionManager(device, SimClock())


# -- hwm off the hot path -----------------------------------------------------


def test_begin_does_not_force_hwm_in_steady_state(device):
    tm = TransactionManager(device, SimClock())
    loaded_forces = tm.stats.hwm_forces  # the ahead-of-need force at load
    assert loaded_forces == 1
    for _ in range(40):
        commit_writer(tm)
    # Headroom top-ups piggybacked on status forces; begin never paid.
    assert tm.stats.status_forces == 40


def test_hwm_hard_floor_still_guards_xid_reuse(device):
    """Read-only transactions burn headroom without status forces to
    piggyback on; the hard floor in begin() must still advance the hwm
    before handing out an xid at the durable mark."""
    clock = SimClock()
    tm = TransactionManager(device, clock)
    last = None
    for _ in range(200):  # far past one stride of headroom
        last = tm.begin()
        tm.commit(last)  # read-only: no status line
    assert tm.stats.hwm_forces >= 2
    tm2 = TransactionManager(device, clock)
    assert tm2.begin().xid > last.xid


def test_commit_state_values_unchanged(device):
    tm = TransactionManager(device, SimClock())
    tx = commit_writer(tm)
    assert tm.state(tx.xid) == COMMITTED
