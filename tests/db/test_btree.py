"""B-tree index: ordering, duplicates, splits, range scans."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.btree import BTree
from repro.db.buffer import BufferCache
from repro.db.heap import TID
from repro.db.transactions import Transaction
from repro.devices.memdisk import MemDisk
from repro.devices.switch import DeviceSwitch
from repro.sim.clock import SimClock


def make_btree(capacity: int = 64) -> BTree:
    clock = SimClock()
    switch = DeviceSwitch()
    switch.register(MemDisk("mem0", clock))
    switch.get("mem0").create_relation("idx")
    buffers = BufferCache(switch, capacity=capacity)
    return BTree.create(buffers, "mem0", "idx")


def tx() -> Transaction:
    return Transaction(xid=5, start_time=0.0)


def test_empty_search():
    bt = make_btree()
    assert bt.search((42,)) == []


def test_insert_and_search():
    bt = make_btree()
    bt.insert(tx(), (42,), TID(1, 2))
    assert bt.search((42,)) == [TID(1, 2)]
    assert bt.search((41,)) == []


def test_duplicate_keys_all_returned():
    """Historical chunk versions share a chunk number: "an index on all
    of the file's available data, including both old and current
    blocks"."""
    bt = make_btree()
    tids = [TID(p, 0) for p in range(10)]
    for t in tids:
        bt.insert(tx(), (7,), t)
    assert sorted(bt.search((7,))) == sorted(tids)


def test_many_inserts_force_splits():
    bt = make_btree()
    for i in range(3000):
        bt.insert(tx(), (i,), TID(i, 0))
    assert bt.depth() >= 2
    assert bt.entry_count() == 3000
    bt.check_invariants()
    assert bt.search((1234,)) == [TID(1234, 0)]
    assert bt.search((0,)) == [TID(0, 0)]
    assert bt.search((2999,)) == [TID(2999, 0)]


def test_reverse_order_inserts():
    bt = make_btree()
    for i in reversed(range(1500)):
        bt.insert(tx(), (i,), TID(i, 0))
    bt.check_invariants()
    assert [t.pageno for _k, t in bt.scan_all()] == list(range(1500))


def test_range_scan():
    bt = make_btree()
    for i in range(100):
        bt.insert(tx(), (i,), TID(i, 0))
    got = [t.pageno for _k, t in bt.scan_values_range((10,), (20,))]
    assert got == list(range(10, 21))


def test_range_scan_unbounded():
    bt = make_btree()
    for i in range(50):
        bt.insert(tx(), (i,), TID(i, 0))
    assert len(list(bt.scan_values_range(None, None))) == 50
    assert [t.pageno for _k, t in bt.scan_values_range((45,), None)] \
        == [45, 46, 47, 48, 49]


def test_composite_keys_and_prefix_range():
    bt = make_btree()
    for parent in (1, 2, 3):
        for name in ("a", "b", "c"):
            bt.insert(tx(), (parent, name), TID(parent, ord(name)))
    got = [t for _k, t in bt.scan_values_range((2,), (2,))]
    assert got == [TID(2, 97), TID(2, 98), TID(2, 99)]


def test_text_keys():
    bt = make_btree()
    words = ["zebra", "apple", "mango", "apple2", "", "ápple"]
    for i, w in enumerate(words):
        bt.insert(tx(), (w,), TID(i, 0))
    assert bt.search(("apple",)) == [TID(1, 0)]
    keys = [k for k, _t in bt.scan_all()]
    assert keys == sorted(keys)


def test_remove_entry():
    bt = make_btree()
    for i in range(20):
        bt.insert(tx(), (i,), TID(i, 0))
    assert bt.remove((7,), TID(7, 0))
    assert bt.search((7,)) == []
    assert not bt.remove((7,), TID(7, 0))
    assert bt.entry_count() == 19


def test_remove_only_named_duplicate():
    bt = make_btree()
    bt.insert(tx(), (1,), TID(1, 0))
    bt.insert(tx(), (1,), TID(2, 0))
    assert bt.remove((1,), TID(1, 0))
    assert bt.search((1,)) == [TID(2, 0)]


def test_insert_marks_transaction_wrote():
    bt = make_btree()
    transaction = tx()
    bt.insert(transaction, (1,), TID(0, 0))
    assert transaction.wrote


def test_insert_with_none_transaction():
    bt = make_btree()
    bt.insert(None, (1,), TID(0, 0))
    assert bt.search((1,)) == [TID(0, 0)]


def test_survives_small_buffer_cache():
    """Splits under heavy eviction pressure must not lose updates."""
    bt = make_btree(capacity=8)
    for i in range(2000):
        bt.insert(tx(), (i % 97, i), TID(i, 0))
    bt.check_invariants()
    assert bt.entry_count() == 2000


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=-10**6, max_value=10**6),
                min_size=1, max_size=400))
def test_property_sorted_iteration(keys):
    bt = make_btree()
    for i, key in enumerate(keys):
        bt.insert(tx(), (key,), TID(i, 0))
    scanned = [k for k, _t in bt.scan_all()]
    assert scanned == sorted(scanned)
    assert len(scanned) == len(keys)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                max_size=300), st.integers(min_value=0, max_value=500))
def test_property_search_matches_reference(keys, probe):
    bt = make_btree()
    reference: dict[int, list[TID]] = {}
    for i, key in enumerate(keys):
        t = TID(i, 0)
        bt.insert(tx(), (key,), t)
        reference.setdefault(key, []).append(t)
    assert sorted(bt.search((probe,))) == sorted(reference.get(probe, []))
