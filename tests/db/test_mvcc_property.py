"""Property-based MVCC: random transaction interleavings vs a reference.

A random schedule of inserts/updates/deletes grouped into transactions
that randomly commit or abort is replayed against a reference model
that applies only committed transactions.  The table must agree with
the reference *now* and at every past commit point (time travel), and
again after a vacuum pass.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.db.database import Database
from repro.db.tuples import Column, Schema

SCHEMA = Schema([Column("k", "int4"), Column("v", "int4")])

KEYS = st.integers(min_value=0, max_value=5)
action = st.one_of(
    st.tuples(st.just("set"), KEYS, st.integers(min_value=0, max_value=99)),
    st.tuples(st.just("del"), KEYS),
)
transaction = st.tuples(st.lists(action, min_size=1, max_size=5),
                        st.booleans())  # (actions, commits?)


def _apply_reference(state: dict, actions) -> dict:
    new = dict(state)
    for act in actions:
        if act[0] == "set":
            new[act[1]] = act[2]
        else:
            new.pop(act[1], None)
    return new


def _table_state(db, snapshot) -> dict:
    return {row[0]: row[1]
            for _tid, row in db.table("t").scan(snapshot)}


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(schedule=st.lists(transaction, min_size=1, max_size=10))
def test_mvcc_matches_reference(tmp_path_factory, schedule):
    workdir = tmp_path_factory.mktemp("mvcc")
    db = Database.create(str(workdir / "db"))
    try:
        tx0 = db.begin()
        db.create_table(tx0, "t", SCHEMA, indexes=[["k"]])
        db.commit(tx0)

        committed: dict = {}
        checkpoints: list[tuple[float, dict]] = []
        for actions, commits in schedule:
            tx = db.begin()
            table = db.table("t", tx)
            snapshot = db.snapshot(tx)
            for act in actions:
                existing = next(iter(table.index_eq(("k",), (act[1],),
                                                    snapshot, tx)), None)
                if act[0] == "set":
                    if existing is not None:
                        table.update(tx, existing[0], (act[1], act[2]))
                    else:
                        table.insert(tx, (act[1], act[2]))
                elif existing is not None:
                    table.delete(tx, existing[0])
            if commits:
                db.commit(tx)
                committed = _apply_reference(committed, actions)
                checkpoints.append((db.clock.now(), dict(committed)))
            else:
                db.abort(tx)

        # Present state agrees with the committed reference.
        read_tx = db.begin()
        assert _table_state(db, db.snapshot(read_tx)) == committed
        db.commit(read_tx)

        # Every committed instant agrees with its snapshot of the model.
        for when, expected in checkpoints:
            assert _table_state(db, db.asof(when)) == expected

        # Vacuum changes nothing observable, past or present.
        db.vacuum("t")
        read_tx = db.begin()
        assert _table_state(db, db.snapshot(read_tx)) == committed
        db.commit(read_tx)
        for when, expected in checkpoints:
            assert _table_state(db, db.asof(when)) == expected
    finally:
        db.close()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(schedule=st.lists(transaction, min_size=1, max_size=6))
def test_mvcc_survives_crash(tmp_path_factory, schedule):
    """Same property, but with a crash+reopen after the schedule."""
    workdir = tmp_path_factory.mktemp("mvcc-crash")
    db = Database.create(str(workdir / "db"))
    tx0 = db.begin()
    db.create_table(tx0, "t", SCHEMA)
    db.commit(tx0)
    committed: dict = {}
    for actions, commits in schedule:
        tx = db.begin()
        table = db.table("t", tx)
        snapshot = db.snapshot(tx)
        for act in actions:
            existing = next((item for item in table.scan(snapshot, tx)
                             if item[1][0] == act[1]), None)
            if act[0] == "set":
                if existing is not None:
                    table.update(tx, existing[0], (act[1], act[2]))
                else:
                    table.insert(tx, (act[1], act[2]))
            elif existing is not None:
                table.delete(tx, existing[0])
        if commits:
            db.commit(tx)
            committed = _apply_reference(committed, actions)
        else:
            db.abort(tx)
    db.simulate_crash()
    db2 = Database.open(str(workdir / "db"))
    try:
        tx = db2.begin()
        assert {row[0]: row[1] for _t, row in
                db2.table("t", tx).scan(db2.snapshot(tx), tx)} == committed
        db2.commit(tx)
    finally:
        db2.close()
