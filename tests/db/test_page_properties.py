"""Property tests for the Page hot-path caches.

The slotted page mirrors its packed header in plain attributes, keeps
a lazily decoded slot directory, and exposes a scratch ``cache`` slot
for higher layers.  These caches are only sound if every public
mutator writes the mirror through to the buffer and patches or drops
the decoded views — so a random operation sequence must keep three
ground truths in agreement at every step:

* the mirrored header attributes equal a raw ``struct`` decode of the
  buffer's first 12 bytes (the pre-cache code path);
* the decoded slot directory equals a raw ``struct`` decode of the
  slot bytes;
* the records equal a plain-Python model of the same operations, and
  survive a round-trip through ``to_bytes`` into a fresh ``Page``.

Every mutation must also bump ``version`` (the B-tree descent fast
path revalidates on it) and clear ``cache`` (stale decoded keys are a
correctness bug, not a slow path).
"""

from __future__ import annotations

import struct

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.db.page import (  # noqa: E402
    HEADER_FMT,
    HEADER_SIZE,
    SLOT_FMT,
    SLOT_SIZE,
    Page,
)

_RAW_HEADER = struct.Struct(HEADER_FMT)
_RAW_SLOT = struct.Struct(SLOT_FMT)


def _raw_header(page: Page) -> tuple[int, int, int, int, int]:
    """Decode the header the way the pre-cache code did: a fresh
    struct call against the raw buffer, no mirrored attributes."""
    return _RAW_HEADER.unpack_from(bytes(page.buf), 0)


def _raw_slots(page: Page) -> list[tuple[int, int]]:
    nslots = _raw_header(page)[0]
    raw = bytes(page.buf[HEADER_SIZE:HEADER_SIZE + nslots * SLOT_SIZE])
    return list(_RAW_SLOT.iter_unpack(raw))


def _check_coherent(page: Page, model: list[bytes]) -> None:
    header = _raw_header(page)
    mirrored = (page._nslots, page._lower, page._upper, page._flags,
                page._special)
    assert mirrored == header, "header mirror diverged from buffer"
    assert page.nslots == header[0]
    assert page.flags == header[3]
    assert page.special == header[4]
    assert page._slots_all() == _raw_slots(page)
    assert page.records() == model
    # Round-trip: a fresh Page over the serialized bytes (cold caches,
    # everything decoded from scratch) sees the same state.
    reloaded = Page(page.to_bytes())
    assert _raw_header(reloaded) == header
    assert reloaded.records() == model


records = st.binary(min_size=0, max_size=120)

ops = st.one_of(
    st.tuples(st.just("add"), records),
    st.tuples(st.just("insert"), st.integers(0, 8), records),
    st.tuples(st.just("overwrite"), st.integers(0, 8), records),
    st.tuples(st.just("patch"), st.integers(0, 8), st.integers(0, 8),
              st.binary(min_size=0, max_size=16)),
    st.tuples(st.just("delete"), st.integers(0, 8)),
    st.tuples(st.just("flags"), st.integers(0, 0xFFFF)),
    st.tuples(st.just("special"), st.integers(0, 2**32 - 1)),
    st.tuples(st.just("compact")),
    st.tuples(st.just("rewrite"), st.lists(records, max_size=4)),
    st.tuples(st.just("read")),
)

SETTINGS = settings(max_examples=150, deadline=None, derandomize=True)


@given(script=st.lists(ops, max_size=30))
@SETTINGS
def test_random_ops_keep_caches_coherent(script):
    page = Page()
    model: list[bytes] = []
    _check_coherent(page, model)
    for op in script:
        before = page.version
        kind = op[0]
        mutated = True
        if kind == "add":
            if not page.fits(len(op[1])):
                continue
            page.add_record(op[1])
            model.append(op[1])
        elif kind == "insert":
            idx = min(op[1], len(model))
            if not page.fits(len(op[2])):
                continue
            page.insert_record(idx, op[2])
            model.insert(idx, op[2])
        elif kind == "overwrite":
            if not model:
                continue
            idx = op[1] % len(model)
            data = (op[2] * (len(model[idx]) // max(1, len(op[2])) + 1)
                    )[:len(model[idx])] if op[2] else bytes(len(model[idx]))
            page.overwrite_record(idx, data)
            model[idx] = data
        elif kind == "patch":
            if not model:
                continue
            idx = op[1] % len(model)
            rec = model[idx]
            if not rec:
                continue
            off = op[2] % len(rec)
            patch = op[3][:len(rec) - off]
            page.patch_record(idx, off, patch)
            model[idx] = rec[:off] + patch + rec[off + len(patch):]
        elif kind == "delete":
            if not model:
                continue
            idx = op[1] % len(model)
            page.delete_slot(idx)
            del model[idx]
        elif kind == "flags":
            page.flags = op[1]
        elif kind == "special":
            page.special = op[1]
        elif kind == "compact":
            page.compact()
        elif kind == "rewrite":
            total = sum(len(r) + SLOT_SIZE for r in op[1])
            if total > 8192 - HEADER_SIZE:
                continue
            page.rewrite(list(op[1]))
            model = list(op[1])
        elif kind == "read":
            # Pure reads must not perturb anything.
            for i in range(page.nslots):
                assert page.get_record(i) == bytes(page.record_view(i))
            _ = page.free_space
            mutated = False
        if mutated:
            assert page.version > before, f"{kind} did not bump version"
        else:
            assert page.version == before
        _check_coherent(page, model)


@given(script=st.lists(ops, max_size=20))
@SETTINGS
def test_every_mutation_clears_higher_layer_cache(script):
    """Whatever a mutator does to its own decoded views, the
    higher-layer ``cache`` payload (the B-tree's decoded keys) must
    never survive a mutation — a stale key array would corrupt
    descents silently."""
    page = Page()
    page.add_record(b"seed-record")
    for op in script:
        page.cache = sentinel = object()
        before = page.version
        kind = op[0]
        try:
            if kind == "add":
                page.add_record(op[1])
            elif kind == "insert":
                page.insert_record(min(op[1], page.nslots), op[2])
            elif kind == "overwrite":
                idx = op[1] % page.nslots
                length = len(page.get_record(idx))
                page.overwrite_record(idx, b"\xaa" * length)
            elif kind == "patch":
                idx = op[1] % page.nslots
                rec = page.get_record(idx)
                if not rec:
                    continue
                page.patch_record(idx, op[2] % len(rec), b"\xbb")
            elif kind == "delete":
                page.delete_slot(op[1] % page.nslots)
            elif kind == "flags":
                page.flags = op[1]
            elif kind == "special":
                page.special = op[1]
            elif kind == "compact":
                page.compact()
            elif kind == "rewrite":
                page.rewrite(list(op[1]))
            else:
                page.cache = None
                continue
        except Exception:
            page.cache = None
            raise
        assert page.version > before
        if kind in ("flags", "special"):
            # Header-only mutations leave records untouched; the key
            # cache may legitimately survive them.
            assert page.cache is sentinel or page.cache is None
        else:
            assert page.cache is not sentinel, (
                f"{kind} left a stale higher-layer cache in place")
        page.cache = None
        if page.nslots == 0:
            page.add_record(b"seed-record")


def test_invalidation_counter_counts_dropped_views():
    baseline = Page.header_cache_invalidations
    page = Page()
    page.add_record(b"a")
    page.add_record(b"b")
    _ = page._slots_all()          # materialize the decoded directory
    page.compact()                 # drops it
    assert Page.header_cache_invalidations == baseline + 1
    page.cache = [b"decoded-keys"]
    page.delete_slot(0)            # drops the higher-layer cache
    assert Page.header_cache_invalidations == baseline + 2
    # Nothing materialized: a rewrite has no view to drop.
    page2 = Page()
    page2.rewrite([b"x"])
    assert Page.header_cache_invalidations == baseline + 2
