"""Transaction manager and the status file."""

import pytest

from repro.db.transactions import (
    ABORTED,
    COMMITTED,
    IN_PROGRESS,
    Transaction,
    TransactionManager,
)
from repro.devices.memdisk import MemDisk
from repro.sim.clock import SimClock
from repro.errors import TransactionError


@pytest.fixture
def device():
    return MemDisk("mem0", SimClock())


@pytest.fixture
def tm(device):
    return TransactionManager(device, SimClock())


def test_begin_allocates_increasing_xids(tm):
    a, b = tm.begin(), tm.begin()
    assert b.xid > a.xid
    assert tm.state(a.xid) == IN_PROGRESS


def test_commit_records_state_and_time(tm):
    tx = tm.begin()
    tx.wrote = True
    tm.commit(tx)
    assert tm.is_committed(tx.xid)
    assert tm.commit_time(tx.xid) is not None
    assert tm.commit_time(tx.xid) >= tx.start_time


def test_abort(tm):
    tx = tm.begin()
    tx.wrote = True
    tm.abort(tx)
    assert tm.state(tx.xid) == ABORTED
    assert tm.commit_time(tx.xid) is None


def test_double_commit_rejected(tm):
    tx = tm.begin()
    tm.commit(tx)
    with pytest.raises(TransactionError):
        tm.commit(tx)


def test_commit_after_abort_rejected(tm):
    tx = tm.begin()
    tm.abort(tx)
    with pytest.raises(TransactionError):
        tm.commit(tx)


def test_unknown_xid_treated_as_aborted(tm):
    """An xid with no status record was in flight at a crash: its
    records are invisible — 'automatically detected and ignored'."""
    assert tm.state(999999) == ABORTED
    assert not tm.is_committed(999999)


def test_abort_hooks_run(tm):
    tx = tm.begin()
    ran = []
    tx.abort_hooks.append(lambda: ran.append(True))
    tm.abort(tx)
    assert ran == [True]


def test_readonly_commit_writes_no_status(device):
    tm = TransactionManager(device, SimClock())
    tx = tm.begin()  # wrote stays False
    before = device.read_meta("pg_status")
    tm.commit(tx)
    assert device.read_meta("pg_status") == before


def test_status_survives_reload(device):
    clock = SimClock()
    tm = TransactionManager(device, clock)
    committed = tm.begin()
    committed.wrote = True
    clock.advance(1.0)
    tm.commit(committed)
    aborted = tm.begin()
    aborted.wrote = True
    tm.abort(aborted)
    in_flight = tm.begin()
    in_flight.wrote = True  # never committed — crash

    tm2 = TransactionManager(device, clock)
    assert tm2.is_committed(committed.xid)
    assert tm2.commit_time(committed.xid) == pytest.approx(1.0)
    assert tm2.state(aborted.xid) == ABORTED
    assert tm2.state(in_flight.xid) == ABORTED


def test_xids_never_reused_after_reload(device):
    clock = SimClock()
    tm = TransactionManager(device, clock)
    xids = []
    for _ in range(5):
        tx = tm.begin()
        tx.wrote = True
        tm.commit(tx)
        xids.append(tx.xid)
    tm2 = TransactionManager(device, clock)
    assert tm2.begin().xid > max(xids)


def test_xid_hwm_guards_unlogged_xids(device):
    """Read-only transactions write no status record, yet their xids
    must not be reissued after reload."""
    clock = SimClock()
    tm = TransactionManager(device, clock)
    last = None
    for _ in range(3):
        last = tm.begin()
        tm.commit(last)  # read-only: no status line
    tm2 = TransactionManager(device, clock)
    assert tm2.begin().xid > last.xid


def test_recovery_report(tm):
    a = tm.begin(); a.wrote = True; tm.commit(a)
    b = tm.begin(); b.wrote = True; tm.abort(b)
    report = tm.recovery_report()
    assert report["committed"] >= 2  # bootstrap xid + a
    assert report["aborted"] == 1


def test_corrupt_status_rejected(device):
    device.sync_write_meta("pg_status", b"garbage nonsense\n")
    from repro.errors import RecoveryError
    with pytest.raises(RecoveryError):
        TransactionManager(device, SimClock())
