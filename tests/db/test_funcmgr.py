"""Function manager: registry, languages, snapshot-awareness."""

import pytest

from repro.db.funcmgr import (
    FunctionManager,
    load_function,
    register_callable,
    registry_keys,
    snapshot_aware,
)
from repro.errors import FunctionError


def test_registry_roundtrip():
    register_callable("lib:unit_test_fn", lambda x: x + 1)
    assert load_function("lib:unit_test_fn")(2) == 3
    assert "lib:unit_test_fn" in registry_keys()


def test_unknown_registry_key():
    with pytest.raises(FunctionError):
        load_function("lib:never-registered-anywhere")


def test_define_python_and_call(db, clock):
    mgr = FunctionManager(db)
    tx = db.begin()
    mgr.define_python(tx, "triple", lambda n: n * 3, ["int4"], "int4")
    db.commit(tx)
    assert mgr.call("triple", [4], db.asof(clock.now())) == 12


def test_define_postquel_and_call(db, clock):
    mgr = FunctionManager(db)
    tx = db.begin()
    mgr.define_postquel(tx, "plus", "$1 + $2", ["int4", "int4"], "int4")
    db.commit(tx)
    assert mgr.call("plus", [4, 5], db.asof(clock.now())) == 9


def test_postquel_function_calling_python_function(db, clock):
    mgr = FunctionManager(db)
    tx = db.begin()
    mgr.define_python(tx, "double_py", lambda n: n * 2, ["int4"], "int4")
    mgr.define_postquel(tx, "quad", "double_py(double_py($1))",
                        ["int4"], "int4")
    db.commit(tx)
    assert mgr.call("quad", [3], db.asof(clock.now())) == 12


def test_snapshot_aware_functions_receive_snapshot(db, clock):
    mgr = FunctionManager(db)
    seen = []

    @snapshot_aware
    def probe(x, snapshot):
        seen.append(snapshot)
        return x
    tx = db.begin()
    mgr.define_python(tx, "probe", probe, ["int4"], "int4")
    db.commit(tx)
    snap = db.asof(clock.now())
    assert mgr.call("probe", [7], snap) == 7
    assert seen == [snap]


def test_exceptions_wrapped_with_function_name(db, clock):
    mgr = FunctionManager(db)
    tx = db.begin()
    mgr.define_python(tx, "boom", lambda: 1 / 0, [], "int4")
    db.commit(tx)
    with pytest.raises(FunctionError, match="boom"):
        mgr.call("boom", [], db.asof(clock.now()))


def test_unknown_function_name(db, clock):
    mgr = FunctionManager(db)
    with pytest.raises(FunctionError):
        mgr.call("no_such_function", [], db.asof(clock.now()))


def test_udf_invocation_charges_cpu(db, clock):
    mgr = FunctionManager(db)
    tx = db.begin()
    mgr.define_python(tx, "noop", lambda: 0, [], "int4")
    db.commit(tx)
    busy_before = db.cpu.busy_seconds
    mgr.call("noop", [], db.asof(clock.now()))
    assert db.cpu.busy_seconds > busy_before
