"""The assembled database: DDL, transactions, crash recovery."""

import pytest

from repro.db.database import Database
from repro.db.tuples import Column, Schema
from repro.errors import CatalogError, TableError
from repro.sim.clock import SimClock

SCHEMA = Schema([Column("k", "int4"), Column("v", "text")])


def test_create_then_open(tmp_path):
    path = str(tmp_path / "d")
    db = Database.create(path)
    db.close()
    db2 = Database.open(path)
    assert "pg_class" in db2.list_tables()
    db2.close()


def test_create_twice_rejected(tmp_path):
    path = str(tmp_path / "d")
    Database.create(path).close()
    with pytest.raises(CatalogError):
        Database.create(path)


def test_open_missing_rejected(tmp_path):
    with pytest.raises(CatalogError):
        Database.open(str(tmp_path / "nope"))


def test_table_lifecycle(db):
    tx = db.begin()
    table = db.create_table(tx, "t", SCHEMA, indexes=[["k"]])
    table.insert(tx, (1, "one"))
    db.commit(tx)
    assert db.table_exists("t")
    tx2 = db.begin()
    assert [r for _t, r in db.table("t", tx2).scan(db.snapshot(tx2), tx2)] \
        == [(1, "one")]
    db.commit(tx2)


def test_duplicate_table_rejected(db):
    tx = db.begin()
    db.create_table(tx, "t", SCHEMA)
    with pytest.raises(TableError):
        db.create_table(tx, "t", SCHEMA)
    db.abort(tx)


def test_aborted_ddl_vanishes(db):
    tx = db.begin()
    db.create_table(tx, "ghost", SCHEMA)
    assert db.table_exists("ghost", tx)
    db.abort(tx)
    tx2 = db.begin()
    assert not db.table_exists("ghost", tx2)
    db.commit(tx2)


def test_drop_table(db):
    tx = db.begin()
    db.create_table(tx, "t", SCHEMA, indexes=[["k"]])
    db.commit(tx)
    tx2 = db.begin()
    db.drop_table(tx2, "t")
    db.commit(tx2)
    assert not db.table_exists("t")
    assert not db.switch.get("magnetic0").relation_exists("t")


def test_drop_aborted_keeps_table(db):
    tx = db.begin()
    db.create_table(tx, "t", SCHEMA)
    db.commit(tx)
    tx2 = db.begin()
    db.drop_table(tx2, "t")
    db.abort(tx2)
    assert db.table_exists("t")
    assert db.switch.get("magnetic0").relation_exists("t")


def test_create_index_populates_existing_rows(db):
    tx = db.begin()
    table = db.create_table(tx, "t", SCHEMA)
    for i in range(20):
        table.insert(tx, (i, f"v{i}"))
    db.commit(tx)
    tx2 = db.begin()
    db.create_index(tx2, "t", ["k"])
    db.commit(tx2)
    tx3 = db.begin()
    rows = list(db.table("t", tx3).index_eq(("k",), (7,),
                                            db.snapshot(tx3), tx3))
    assert [r for _t, r in rows] == [(7, "v7")]
    db.commit(tx3)


def test_crash_rolls_back_in_flight_transaction(tmp_path):
    path = str(tmp_path / "d")
    db = Database.create(path)
    tx = db.begin()
    table = db.create_table(tx, "t", SCHEMA)
    table.insert(tx, (1, "committed"))
    db.commit(tx)
    tx2 = db.begin()
    db.table("t", tx2).insert(tx2, (2, "lost"))
    db.buffers.flush_all()  # even durable pages stay invisible
    db.simulate_crash()

    db2 = Database.open(path)
    tx3 = db2.begin()
    rows = [r for _t, r in db2.table("t", tx3).scan(db2.snapshot(tx3), tx3)]
    assert rows == [(1, "committed")]
    db2.commit(tx3)
    db2.close()


def test_recovery_is_a_status_file_read(tmp_path):
    """'File system recovery is essentially instantaneous': opening the
    database after a crash does no table scans, only the status load."""
    path = str(tmp_path / "d")
    db = Database.create(path)
    tx = db.begin()
    t = db.create_table(tx, "t", SCHEMA)
    for i in range(200):
        t.insert(tx, (i, "x" * 100))
    db.commit(tx)
    db.simulate_crash()

    clock = SimClock()
    db2 = Database.open(path, clock=clock)
    # Opening resumes the clock past recorded history; the recovery
    # I/O itself is what it moved beyond that point.
    recovery_time = clock.now() - db2.tm.max_recorded_time()
    # Far below even ten page reads.
    assert recovery_time < 0.1
    report = db2.tm.recovery_report()
    assert report["committed"] >= 2
    db2.close()


def test_time_travel_across_reopen(tmp_path):
    path = str(tmp_path / "d")
    clock = SimClock()
    db = Database.create(path, clock=clock)
    tx = db.begin()
    t = db.create_table(tx, "t", SCHEMA)
    t.insert(tx, (1, "v1"))
    db.commit(tx)
    t_old = clock.now()
    tx2 = db.begin()
    t2 = db.table("t", tx2)
    tid = next(iter(t2.index_eq if False else t2.scan(db.snapshot(tx2), tx2)))[0]
    t2.update(tx2, tid, (1, "v2"))
    db.commit(tx2)
    db.close()

    db2 = Database.open(path, clock=clock)
    rows_now = [r for _t, r in db2.table("t").scan(
        db2.asof(clock.now()))]
    rows_then = [r for _t, r in db2.table("t").scan(db2.asof(t_old))]
    assert rows_now == [(1, "v2")]
    assert rows_then == [(1, "v1")]
    db2.close()


def test_add_device_persists(tmp_path):
    path = str(tmp_path / "d")
    db = Database.create(path)
    db.add_device("nvram0", "memdisk")
    assert "nvram0" in db.switch
    db.close()
    db2 = Database.open(path)
    assert "nvram0" in db2.switch
    db2.close()


def test_table_on_secondary_device(db):
    db.add_device("nvram0", "memdisk")
    tx = db.begin()
    table = db.create_table(tx, "fast", SCHEMA, device="nvram0")
    table.insert(tx, (1, "quick"))
    db.commit(tx)
    assert db.switch.get("nvram0").relation_exists("fast")
    tx2 = db.begin()
    assert [r for _t, r in db.table("fast", tx2).scan(db.snapshot(tx2), tx2)] \
        == [(1, "quick")]
    db.commit(tx2)
