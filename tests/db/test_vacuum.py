"""The vacuum cleaner: archiving preserves time travel."""

import pytest

from repro.db.tuples import Column, Schema

SCHEMA = Schema([Column("k", "int4"), Column("v", "text")])


def _setup(db, rows=10):
    tx = db.begin()
    table = db.create_table(tx, "t", SCHEMA, indexes=[["k"]])
    for i in range(rows):
        table.insert(tx, (i, f"v{i}"))
    db.commit(tx)
    return table


def test_vacuum_moves_obsolete_records(db, clock):
    _setup(db)
    t0 = clock.now()
    tx = db.begin()
    table = db.table("t", tx)
    for tid, row in list(table.scan(db.snapshot(tx), tx)):
        if row[0] % 2 == 0:
            table.update(tx, tid, (row[0], row[1] + "-new"))
    db.commit(tx)

    stats = db.vacuum("t")
    assert stats.archived == 5
    assert stats.kept == 10
    assert stats.expunged == 0

    # Current view unchanged.
    tx2 = db.begin()
    rows = sorted(r for _t, r in db.table("t", tx2).scan(db.snapshot(tx2), tx2))
    assert rows[0] == (0, "v0-new")
    assert rows[1] == (1, "v1")
    db.commit(tx2)

    # Historical view still intact through the archive.
    then = sorted(r for _t, r in db.table("t").scan(db.asof(t0)))
    assert then == [(i, f"v{i}") for i in range(10)]


def test_vacuum_expunges_aborted_garbage(db):
    _setup(db, rows=3)
    tx = db.begin()
    db.table("t", tx).insert(tx, (99, "never"))
    db.abort(tx)
    stats = db.vacuum("t")
    assert stats.expunged == 1
    assert stats.kept == 3


def test_vacuum_compacts_pages(db):
    tx = db.begin()
    table = db.create_table(tx, "t", SCHEMA)
    big = "x" * 3000
    tids = [table.insert(tx, (i, big)) for i in range(30)]
    for tid in tids[:25]:
        table.delete(tx, tid)
    db.commit(tx)
    stats = db.vacuum("t")
    assert stats.pages_after < stats.pages_before


def test_vacuum_rebuilds_index(db):
    _setup(db, rows=50)
    tx = db.begin()
    table = db.table("t", tx)
    for tid, row in list(table.scan(db.snapshot(tx), tx)):
        table.update(tx, tid, (row[0], row[1] + "!"))
    db.commit(tx)
    db.vacuum("t")
    tx2 = db.begin()
    hits = [r for _t, r in db.table("t", tx2).index_eq(
        ("k",), (17,), db.snapshot(tx2), tx2)]
    assert hits == [(17, "v17!")]
    db.commit(tx2)


def test_vacuum_archive_on_secondary_device(db, clock):
    """Archiving to slower/cheaper storage — the jukebox use case."""
    db.add_device("juke0", "jukebox")
    _setup(db)
    t0 = clock.now()
    tx = db.begin()
    table = db.table("t", tx)
    tid, row = next(iter(table.scan(db.snapshot(tx), tx)))
    table.update(tx, tid, (row[0], "changed"))
    db.commit(tx)
    stats = db.vacuum("t", archive_device="juke0")
    assert stats.archived == 1
    assert db.switch.get("juke0").relation_exists("a_t")
    then = sorted(r for _t, r in db.table("t").scan(db.asof(t0)))
    assert (row[0], row[1]) in then


def test_vacuum_historical_index_lookup(db, clock):
    """Time-travel *index* lookups reach archived versions."""
    _setup(db, rows=20)
    t0 = clock.now()
    tx = db.begin()
    table = db.table("t", tx)
    for tid, row in list(table.index_eq(("k",), (7,), db.snapshot(tx), tx)):
        table.update(tx, tid, (7, "rewritten"))
    db.commit(tx)
    db.vacuum("t")
    hits = [r for _t, r in db.table("t").index_eq(("k",), (7,), db.asof(t0))]
    assert hits == [(7, "v7")]


def test_vacuum_idempotent_when_nothing_obsolete(db):
    _setup(db, rows=4)
    first = db.vacuum("t")
    second = db.vacuum("t")
    assert second.archived == 0
    assert second.kept == first.kept


def test_vacuum_unknown_table(db):
    from repro.errors import TableError
    with pytest.raises(TableError):
        db.vacuum("missing")


# -- the relation-swap redo journal ------------------------------------------

def _journal_fixture():
    import json

    from repro.db.vacuum import RENAME_JOURNAL_TAG
    from repro.devices.memdisk import MemDisk
    from repro.devices.switch import DeviceSwitch
    from repro.sim.clock import SimClock

    switch = DeviceSwitch()
    dev = MemDisk("m", SimClock())
    switch.register(dev)
    for rel, byte in (("v_heap", 1), ("heap", 2)):
        dev.create_relation(rel)
        dev.extend(rel)
        dev.write_page(rel, 0, bytes([byte]) * 8192)
    entries = [{"dev": "m", "src": "v_heap", "dst": "heap"}]
    dev.sync_write_meta(RENAME_JOURNAL_TAG,
                        json.dumps(entries).encode("ascii"))
    return switch, dev


def test_replay_rename_journal_completes_interrupted_swap():
    from repro.db.vacuum import RENAME_JOURNAL_TAG, replay_rename_journal
    switch, dev = _journal_fixture()
    assert replay_rename_journal(switch, dev) == 1
    assert not dev.relation_exists("v_heap")
    assert dev.read_page("heap", 0) == bytes([1]) * 8192  # the side copy won
    assert not dev.read_meta(RENAME_JOURNAL_TAG)  # journal cleared


def test_replay_rename_journal_is_idempotent():
    from repro.db.vacuum import replay_rename_journal
    switch, dev = _journal_fixture()
    replay_rename_journal(switch, dev)
    assert replay_rename_journal(switch, dev) == 0
    assert dev.read_page("heap", 0) == bytes([1]) * 8192


def test_replay_rename_journal_skips_completed_entries():
    from repro.db.vacuum import replay_rename_journal
    switch, dev = _journal_fixture()
    # The crash hit after this entry's rename already ran.
    dev.rename_relation("v_heap", "heap")
    assert replay_rename_journal(switch, dev) == 1
    assert dev.read_page("heap", 0) == bytes([1]) * 8192


def test_replay_corrupt_rename_journal_rejected():
    from repro.db.vacuum import RENAME_JOURNAL_TAG, replay_rename_journal
    from repro.errors import RecoveryError
    switch, dev = _journal_fixture()
    dev.sync_write_meta(RENAME_JOURNAL_TAG, b"{not json")
    with pytest.raises(RecoveryError):
        replay_rename_journal(switch, dev)


def test_vacuum_clears_rename_journal(db):
    from repro.db.vacuum import RENAME_JOURNAL_TAG
    _setup(db)
    db.vacuum("t")
    root = db.switch.get(db.catalog.root_device)
    assert not root.read_meta(RENAME_JOURNAL_TAG)
