"""Two-phase locking and deadlock detection."""

import threading

import pytest

from repro.db.locks import EXCLUSIVE, SHARED, LockManager
from repro.db.transactions import Transaction
from repro.errors import DeadlockError, LockTimeoutError


def tx(xid: int) -> Transaction:
    return Transaction(xid=xid, start_time=0.0)


def test_shared_locks_are_compatible():
    lm = LockManager()
    a, b = tx(1), tx(2)
    lm.acquire(a, "r", SHARED)
    lm.acquire(b, "r", SHARED)
    assert set(lm.holders("r")) == {1, 2}


def test_exclusive_blocks_shared():
    lm = LockManager(timeout_s=0.05)
    a, b = tx(1), tx(2)
    lm.acquire(a, "r", EXCLUSIVE)
    with pytest.raises(LockTimeoutError):
        lm.acquire(b, "r", SHARED)


def test_reacquire_is_noop():
    lm = LockManager()
    a = tx(1)
    lm.acquire(a, "r", SHARED)
    lm.acquire(a, "r", SHARED)
    lm.acquire(a, "r", EXCLUSIVE)  # upgrade with no contention
    assert lm.holders("r")[1] == EXCLUSIVE


def test_release_all_unblocks_waiter():
    lm = LockManager(timeout_s=5.0)
    a, b = tx(1), tx(2)
    lm.acquire(a, "r", EXCLUSIVE)
    got = []

    def worker():
        lm.acquire(b, "r", EXCLUSIVE)
        got.append(True)
    thread = threading.Thread(target=worker)
    thread.start()
    lm.release_all(a)
    thread.join(timeout=5)
    assert got == [True]
    assert a.held_locks == []


def test_different_resources_do_not_conflict():
    lm = LockManager()
    a, b = tx(1), tx(2)
    lm.acquire(a, "r1", EXCLUSIVE)
    lm.acquire(b, "r2", EXCLUSIVE)


def test_deadlock_detected():
    """A waits for B while B waits for A: the second waiter loses."""
    lm = LockManager(timeout_s=10.0)
    a, b = tx(1), tx(2)
    lm.acquire(a, "r1", EXCLUSIVE)
    lm.acquire(b, "r2", EXCLUSIVE)
    outcome = {}

    def a_then_blocks():
        try:
            lm.acquire(a, "r2", EXCLUSIVE)  # blocks on b
            outcome["a"] = "got it"
        except DeadlockError:
            outcome["a"] = "deadlock"
        finally:
            lm.release_all(a)

    thread = threading.Thread(target=a_then_blocks)
    thread.start()
    import time
    time.sleep(0.1)  # let A start waiting
    with pytest.raises(DeadlockError):
        lm.acquire(b, "r1", EXCLUSIVE)  # closes the cycle → victim
    lm.release_all(b)
    thread.join(timeout=5)
    assert outcome["a"] == "got it"


def test_bad_mode_rejected():
    lm = LockManager()
    with pytest.raises(ValueError):
        lm.acquire(tx(1), "r", "Z")


def test_two_phase_semantics_via_transaction_record():
    lm = LockManager()
    a = tx(1)
    lm.acquire(a, "r1", SHARED)
    lm.acquire(a, "r2", EXCLUSIVE)
    assert len(a.held_locks) == 2
    lm.release_all(a)
    assert lm.holders("r1") == {} and lm.holders("r2") == {}


def test_upgrade_deadlock_exactly_one_victim():
    """Two shared holders both upgrading to exclusive: each waits on
    the other's shared hold — a cycle.  Exactly one is chosen as the
    victim; the survivor's upgrade succeeds once the victim's locks
    are gone."""
    lm = LockManager(timeout_s=10.0)
    a, b = tx(1), tx(2)
    lm.acquire(a, "r", SHARED)
    lm.acquire(b, "r", SHARED)
    outcome = {}
    started = threading.Event()

    def upgrade(t, key):
        started.wait()
        try:
            lm.acquire(t, "r", EXCLUSIVE)
            outcome[key] = "upgraded"
        except DeadlockError:
            outcome[key] = "victim"
            lm.release_all(t)

    threads = [threading.Thread(target=upgrade, args=(a, "a")),
               threading.Thread(target=upgrade, args=(b, "b"))]
    for thread in threads:
        thread.start()
    started.set()
    for thread in threads:
        thread.join(timeout=10)
    assert sorted(outcome.values()) == ["upgraded", "victim"]
    survivor = a if outcome["a"] == "upgraded" else b
    assert lm.holders("r") == {survivor.xid: EXCLUSIVE}
    lm.release_all(survivor)


def test_fifo_no_barge_past_exclusive_waiter():
    """A shared request arriving behind a queued exclusive waiter must
    not barge in front of it, even though it is compatible with the
    current shared holder — FIFO admission prevents writer
    starvation."""
    import time
    lm = LockManager(timeout_s=10.0)
    holder, writer, reader = tx(1), tx(2), tx(3)
    lm.acquire(holder, "r", SHARED)
    order = []

    def want_x():
        lm.acquire(writer, "r", EXCLUSIVE)
        order.append("writer")

    def want_s():
        lm.acquire(reader, "r", SHARED)
        order.append("reader")

    t_writer = threading.Thread(target=want_x)
    t_writer.start()
    deadline = time.time() + 5
    while lm.waiter_xids("r") != [writer.xid] and time.time() < deadline:
        time.sleep(0.01)
    assert lm.waiter_xids("r") == [writer.xid]

    t_reader = threading.Thread(target=want_s)
    t_reader.start()
    deadline = time.time() + 5
    while len(lm.waiter_xids("r")) != 2 and time.time() < deadline:
        time.sleep(0.01)
    # the reader queues behind the writer instead of barging past it.
    assert lm.waiter_xids("r") == [writer.xid, reader.xid]
    assert lm.holders("r") == {holder.xid: SHARED}

    lm.release_all(holder)
    t_writer.join(timeout=10)
    assert order == ["writer"]          # the writer went first
    lm.release_all(writer)
    t_reader.join(timeout=10)
    assert order == ["writer", "reader"]
    lm.release_all(reader)


def test_error_messages_name_resource_and_holders():
    """Deadlock and timeout errors carry the contended resource and
    the holders' xids and modes — the contention-debugging breadcrumb."""
    lm = LockManager(timeout_s=0.05)
    a, b = tx(1), tx(2)
    lm.acquire(a, ("rel", 42), EXCLUSIVE)
    with pytest.raises(LockTimeoutError) as excinfo:
        lm.acquire(b, ("rel", 42), SHARED)
    message = str(excinfo.value)
    assert "('rel', 42)" in message
    assert "{1:X}" in message

    lm2 = LockManager(timeout_s=10.0)
    c, d = tx(7), tx(8)
    lm2.acquire(c, "r1", EXCLUSIVE)
    lm2.acquire(d, "r2", EXCLUSIVE)
    cycle = {}

    def close_cycle():
        try:
            lm2.acquire(c, "r2", EXCLUSIVE)
            cycle["c"] = "ok"
        except DeadlockError as exc:
            cycle["c"] = str(exc)
        finally:
            lm2.release_all(c)

    thread = threading.Thread(target=close_cycle)
    thread.start()
    import time
    time.sleep(0.1)
    with pytest.raises(DeadlockError) as excinfo2:
        lm2.acquire(d, "r1", EXCLUSIVE)
    lm2.release_all(d)
    thread.join(timeout=5)
    message = str(excinfo2.value)
    assert "r1" in message and "{7:X}" in message
