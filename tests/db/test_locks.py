"""Two-phase locking and deadlock detection."""

import threading

import pytest

from repro.db.locks import EXCLUSIVE, SHARED, LockManager
from repro.db.transactions import Transaction
from repro.errors import DeadlockError, LockTimeoutError


def tx(xid: int) -> Transaction:
    return Transaction(xid=xid, start_time=0.0)


def test_shared_locks_are_compatible():
    lm = LockManager()
    a, b = tx(1), tx(2)
    lm.acquire(a, "r", SHARED)
    lm.acquire(b, "r", SHARED)
    assert set(lm.holders("r")) == {1, 2}


def test_exclusive_blocks_shared():
    lm = LockManager(timeout_s=0.05)
    a, b = tx(1), tx(2)
    lm.acquire(a, "r", EXCLUSIVE)
    with pytest.raises(LockTimeoutError):
        lm.acquire(b, "r", SHARED)


def test_reacquire_is_noop():
    lm = LockManager()
    a = tx(1)
    lm.acquire(a, "r", SHARED)
    lm.acquire(a, "r", SHARED)
    lm.acquire(a, "r", EXCLUSIVE)  # upgrade with no contention
    assert lm.holders("r")[1] == EXCLUSIVE


def test_release_all_unblocks_waiter():
    lm = LockManager(timeout_s=5.0)
    a, b = tx(1), tx(2)
    lm.acquire(a, "r", EXCLUSIVE)
    got = []

    def worker():
        lm.acquire(b, "r", EXCLUSIVE)
        got.append(True)
    thread = threading.Thread(target=worker)
    thread.start()
    lm.release_all(a)
    thread.join(timeout=5)
    assert got == [True]
    assert a.held_locks == []


def test_different_resources_do_not_conflict():
    lm = LockManager()
    a, b = tx(1), tx(2)
    lm.acquire(a, "r1", EXCLUSIVE)
    lm.acquire(b, "r2", EXCLUSIVE)


def test_deadlock_detected():
    """A waits for B while B waits for A: the second waiter loses."""
    lm = LockManager(timeout_s=10.0)
    a, b = tx(1), tx(2)
    lm.acquire(a, "r1", EXCLUSIVE)
    lm.acquire(b, "r2", EXCLUSIVE)
    outcome = {}

    def a_then_blocks():
        try:
            lm.acquire(a, "r2", EXCLUSIVE)  # blocks on b
            outcome["a"] = "got it"
        except DeadlockError:
            outcome["a"] = "deadlock"
        finally:
            lm.release_all(a)

    thread = threading.Thread(target=a_then_blocks)
    thread.start()
    import time
    time.sleep(0.1)  # let A start waiting
    with pytest.raises(DeadlockError):
        lm.acquire(b, "r1", EXCLUSIVE)  # closes the cycle → victim
    lm.release_all(b)
    thread.join(timeout=5)
    assert outcome["a"] == "got it"


def test_bad_mode_rejected():
    lm = LockManager()
    with pytest.raises(ValueError):
        lm.acquire(tx(1), "r", "Z")


def test_two_phase_semantics_via_transaction_record():
    lm = LockManager()
    a = tx(1)
    lm.acquire(a, "r1", SHARED)
    lm.acquire(a, "r2", EXCLUSIVE)
    assert len(a.held_locks) == 2
    lm.release_all(a)
    assert lm.holders("r1") == {} and lm.holders("r2") == {}
