"""Record schemas and the (xmin, xmax) header."""

import pytest
from hypothesis import given, strategies as st

from repro.db.tuples import (
    Column,
    INVALID_XID,
    Schema,
    pack_record,
    pack_xmax_patch,
    record_payload,
    unpack_header,
)
from repro.errors import TupleError

MIXED = Schema([
    Column("a", "int4"), Column("b", "int8"), Column("o", "oid"),
    Column("f", "float8"), Column("flag", "bool"), Column("t", "time"),
    Column("s", "text"), Column("raw", "bytea"),
])


def test_pack_unpack_roundtrip():
    row = (-5, 2**40, 12345, 3.25, True, 99.5, "héllo", b"\x00\xff")
    assert MIXED.unpack(MIXED.pack(row)) == row


def test_wrong_arity_rejected():
    with pytest.raises(TupleError):
        MIXED.pack((1, 2))


def test_bad_type_rejected():
    schema = Schema([Column("n", "int4")])
    with pytest.raises(TupleError):
        schema.pack(("not an int",))


def test_unknown_column_type_rejected():
    with pytest.raises(TupleError):
        Column("x", "varchar")


def test_duplicate_column_names_rejected():
    with pytest.raises(TupleError):
        Schema([Column("x", "int4"), Column("x", "int8")])


def test_column_index():
    assert MIXED.column_index("f") == 3
    with pytest.raises(TupleError):
        MIXED.column_index("missing")


def test_schema_dict_roundtrip():
    assert Schema.from_dict(MIXED.to_dict()) == MIXED


def test_record_header_roundtrip():
    record = pack_record(7, 9, b"payload")
    assert unpack_header(record) == (7, 9)
    assert record_payload(record) == b"payload"


def test_xmax_patch_location():
    record = bytearray(pack_record(7, INVALID_XID, b"payload"))
    offset, patch = pack_xmax_patch(33)
    record[offset:offset + len(patch)] = patch
    assert unpack_header(bytes(record)) == (7, 33)


def test_empty_text_and_bytes():
    schema = Schema([Column("s", "text"), Column("b", "bytea")])
    assert schema.unpack(schema.pack(("", b""))) == ("", b"")


@given(st.integers(min_value=-2**31, max_value=2**31 - 1),
       st.text(max_size=300), st.binary(max_size=300))
def test_property_roundtrip(n, s, b):
    schema = Schema([Column("n", "int4"), Column("s", "text"),
                     Column("b", "bytea")])
    assert schema.unpack(schema.pack((n, s, b))) == (n, s, b)


@given(st.floats(allow_nan=False, allow_infinity=False))
def test_property_float_roundtrip(f):
    schema = Schema([Column("f", "float8")])
    assert schema.unpack(schema.pack((f,)))[0] == f
