"""Query language extensions: aggregates and interval time travel."""

import pytest

from repro.db.snapshot import IntervalSnapshot
from repro.db.tuples import Column, Schema
from repro.errors import QueryError

EMP = Schema([Column("name", "text"), Column("dept", "text"),
              Column("salary", "int4")])


@pytest.fixture
def loaded(db):
    tx = db.begin()
    db.create_table(tx, "emp", EMP)
    for name, dept, sal in (("mao", "db", 10), ("jim", "fs", 20),
                            ("sue", "db", 30), ("ann", "fs", 40)):
        db.execute(tx, f'append emp (name = "{name}", dept = "{dept}", '
                       f'salary = {sal})')
    db.commit(tx)
    return db


def q(db, text):
    tx = db.begin()
    try:
        return db.execute(tx, text)
    finally:
        db.commit(tx)


# -- aggregates ------------------------------------------------------------


def test_count(loaded):
    assert q(loaded, "retrieve (count(e.name)) from e in emp") == [(4,)]


def test_count_with_qualification(loaded):
    assert q(loaded, 'retrieve (count(e.name)) from e in emp '
                     'where e.dept = "db"') == [(2,)]


def test_sum_avg_min_max(loaded):
    rows = q(loaded, "retrieve (sum(e.salary), avg(e.salary), "
                     "min(e.salary), max(e.salary)) from e in emp")
    assert rows == [(100, 25.0, 10, 40)]


def test_aggregate_over_expression(loaded):
    assert q(loaded, "retrieve (sum(e.salary * 2)) from e in emp") == [(200,)]


def test_aggregate_empty_result(loaded):
    rows = q(loaded, 'retrieve (count(e.name), sum(e.salary), avg(e.salary)) '
                     'from e in emp where e.salary > 999')
    assert rows == [(0, 0, None)]


def test_mixed_aggregate_and_scalar_rejected(loaded):
    with pytest.raises(QueryError):
        q(loaded, "retrieve (e.name, count(e.name)) from e in emp")


def test_aggregate_wrong_arity_rejected(loaded):
    with pytest.raises(QueryError):
        q(loaded, "retrieve (count(e.name, e.dept)) from e in emp")


# -- interval time travel ----------------------------------------------------


def test_interval_returns_all_versions(loaded, clock):
    t0 = clock.now()
    q(loaded, 'replace e (salary = 11) from e in emp where e.name = "mao"')
    t1 = clock.now()
    q(loaded, 'replace e (salary = 12) from e in emp where e.name = "mao"')
    t2 = clock.now()
    rows = q(loaded, f'retrieve (e.salary) from e in emp[{t0}, {t2}] '
                     f'where e.name = "mao" sort by salary')
    assert rows == [(10,), (11,), (12,)]
    narrow = q(loaded, f'retrieve (e.salary) from e in emp[{t1}, {t1}] '
                       f'where e.name = "mao"')
    assert narrow == [(11,)]


def test_interval_includes_deleted_rows(loaded, clock):
    t0 = clock.now()
    q(loaded, 'delete e from e in emp where e.name = "jim"')
    t1 = clock.now()
    now_rows = q(loaded, 'retrieve (e.name) from e in emp '
                         'where e.name = "jim"')
    span_rows = q(loaded, f'retrieve (e.name) from e in emp[{t0}, {t1}] '
                          f'where e.name = "jim"')
    assert now_rows == []
    assert span_rows == [("jim",)]


def test_interval_snapshot_direct(loaded, clock):
    tm = loaded.tm
    snap = IntervalSnapshot(tm, 0.0, clock.now())
    assert snap.t1 == 0.0
    # Reversed bounds normalize.
    swapped = IntervalSnapshot(tm, 5.0, 1.0)
    assert (swapped.t1, swapped.t2) == (1.0, 5.0)


def test_count_versions_over_interval(loaded, clock):
    """Aggregates compose with interval travel: how many versions did a
    record have over a period?"""
    t0 = clock.now()
    for sal in (100, 200, 300):
        q(loaded, f'replace e (salary = {sal}) from e in emp '
                  f'where e.name = "sue"')
    t1 = clock.now()
    rows = q(loaded, f'retrieve (count(e.salary)) from e in emp[{t0}, {t1}] '
                     f'where e.name = "sue"')
    assert rows == [(4,)]  # original + three replacements


def test_interval_reaches_vacuum_archive(loaded, clock):
    """Interval queries must see versions the vacuum cleaner moved to
    the archive."""
    t0 = clock.now()
    for sal in (111, 222):
        q(loaded, f'replace e (salary = {sal}) from e in emp '
                  f'where e.name = "ann"')
    t1 = clock.now()
    loaded.vacuum("emp")
    rows = q(loaded, f'retrieve (e.salary) from e in emp[{t0}, {t1}] '
                     f'where e.name = "ann" sort by salary')
    assert rows == [(40,), (111,), (222,)]
