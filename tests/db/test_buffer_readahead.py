"""Buffer-cache read-ahead: sequential detection, window sizing, and
the per-relation frame indexes behind relation-scoped flush/drop."""

import pytest

from repro.db.buffer import BufferCache
from repro.db.page import PAGE_HEAP, Page
from repro.devices.memdisk import MemDisk
from repro.devices.switch import DeviceSwitch
from repro.sim.clock import SimClock

NPAGES = 32


def payload(i: int) -> bytes:
    return bytes([i]) * 8


@pytest.fixture
def setup():
    clock = SimClock()
    switch = DeviceSwitch()
    dev = MemDisk("mem0", clock)
    switch.register(dev)
    dev.create_relation("r")
    for i in range(NPAGES):
        p = dev.extend("r")
        page = Page(flags=PAGE_HEAP)
        page.add_record(payload(i))
        dev.write_page("r", p, page.to_bytes())
    return switch, dev, BufferCache(switch, capacity=16, readahead_window=8)


class ReadCalls:
    """Counts device read *operations* (MemDisk's own ``stats.reads``
    counts pages, so batching is invisible there)."""

    def __init__(self, dev):
        self.calls: list[tuple[int, int]] = []
        orig_one, orig_many = dev.read_page, dev.read_pages

        def read_page(relname, pageno):
            self.calls.append((pageno, 1))
            return orig_one(relname, pageno)

        def read_pages(relname, start, count):
            self.calls.append((start, count))
            return orig_many(relname, start, count)

        dev.read_page = read_page
        dev.read_pages = read_pages


def read_all_sequential(cache, n=NPAGES):
    for i in range(n):
        cache.get_page("mem0", "r", i)


# -- sequential detection -------------------------------------------------


def test_first_misses_are_single_pages(setup):
    """The window only opens on the third consecutive sequential access
    — isolated reads and adjacent pairs never over-fetch."""
    _switch, dev, cache = setup
    calls = ReadCalls(dev)
    cache.get_page("mem0", "r", 0)
    cache.get_page("mem0", "r", 1)
    assert calls.calls == [(0, 1), (1, 1)]
    assert cache.stats.prefetches == 0


def test_third_sequential_access_opens_window(setup):
    _switch, dev, cache = setup
    calls = ReadCalls(dev)
    for i in range(3):
        cache.get_page("mem0", "r", i)
    # Pages 2..9 arrived in one batch; 3..9 were prefetched.
    assert calls.calls == [(0, 1), (1, 1), (2, 8)]
    assert cache.stats.prefetches == 7
    for p in range(2, 10):
        assert cache.resident("mem0", "r", p)
    assert not cache.resident("mem0", "r", 10)


def test_random_access_never_prefetches(setup):
    _switch, dev, cache = setup
    for p in (5, 17, 2, 29, 11, 23):
        cache.get_page("mem0", "r", p)
    assert cache.stats.prefetches == 0
    assert dev.stats.reads == 6


def test_rereading_same_page_keeps_streak(setup):
    """Fetching several records off one page must not look like a
    broken run — the next page still continues the sequence."""
    _switch, _dev, cache = setup
    for p in (0, 0, 1, 1, 1, 2):
        cache.get_page("mem0", "r", p)
    assert cache.stats.prefetches == 7  # window opened at page 2


def test_backward_access_breaks_streak(setup):
    _switch, _dev, cache = setup
    for p in (5, 6, 4, 5):
        cache.get_page("mem0", "r", p)
    assert cache.stats.prefetches == 0


def test_full_scan_batches_device_reads(setup):
    _switch, dev, cache = setup
    calls = ReadCalls(dev)
    read_all_sequential(cache)
    # 2 single misses, then 8-page windows.
    assert len(calls.calls) == 2 + (NPAGES - 2 + 7) // 8
    assert sum(c for _s, c in calls.calls) == NPAGES  # nothing read twice


def test_prefetch_contents_match_device(setup):
    _switch, _dev, cache = setup
    read_all_sequential(cache)
    for i in range(NPAGES):
        assert cache.get_page("mem0", "r", i).get_record(0) == payload(i)


def test_prefetch_hit_accounting(setup):
    _switch, _dev, cache = setup
    read_all_sequential(cache)
    # A full scan uses every prefetched page: zero wasted transfer.
    assert cache.stats.prefetches > 0
    assert cache.stats.prefetch_hits == cache.stats.prefetches


# -- window sizing ---------------------------------------------------------


def test_window_capped_by_relation_size(setup):
    """A run near EOF never reads past the last page."""
    _switch, dev, cache = setup
    calls = ReadCalls(dev)
    for p in range(NPAGES - 4, NPAGES):
        cache.get_page("mem0", "r", p)
    assert calls.calls == [(NPAGES - 4, 1), (NPAGES - 3, 1), (NPAGES - 2, 2)]


def test_window_stops_at_resident_frame(setup):
    """A resident frame may be dirty; prefetch must never replace it."""
    _switch, _dev, cache = setup
    victim = cache.get_page("mem0", "r", 5)
    victim.add_record(b"precious")
    cache.mark_dirty("mem0", "r", 5)
    for i in range(3):
        cache.get_page("mem0", "r", i)  # window would cover 2..9
    assert cache.get_page("mem0", "r", 5).get_record(1) == b"precious"
    assert cache.resident("mem0", "r", 3)
    assert not cache.resident("mem0", "r", 6)  # fetch stopped at 5


def test_window_disabled(setup):
    switch, dev, _ = setup
    cache = BufferCache(switch, capacity=16, readahead_window=1)
    read_all_sequential(cache)
    assert cache.stats.prefetches == 0
    assert dev.stats.reads == NPAGES


# -- get_page_range --------------------------------------------------------


def test_range_fetches_missing_run_in_one_call(setup):
    _switch, dev, cache = setup
    calls = ReadCalls(dev)
    pages = cache.get_page_range("mem0", "r", 4, 10)
    assert [p.get_record(0) for p in pages] == [payload(i) for i in range(4, 14)]
    assert calls.calls == [(4, 10)]


def test_range_is_exact(setup):
    """Explicit ranges transfer exactly the requested pages — callers
    that resolved an index know the span, so there is no overshoot."""
    _switch, dev, cache = setup
    calls = ReadCalls(dev)
    cache.get_page_range("mem0", "r", 0, 10)
    assert sum(c for _s, c in calls.calls) == 10


def test_range_serves_dirty_resident_frames(setup):
    _switch, _dev, cache = setup
    page = cache.get_page("mem0", "r", 6)
    page.add_record(b"dirty")
    cache.mark_dirty("mem0", "r", 6)
    pages = cache.get_page_range("mem0", "r", 4, 5)
    assert pages[2].get_record(1) == b"dirty"


def test_range_continues_streak_for_later_accesses(setup):
    """A range read primes the detector: the next page-at-a-time miss
    immediately opens a window."""
    _switch, _dev, cache = setup
    cache.get_page_range("mem0", "r", 0, 4)
    cache.get_page("mem0", "r", 4)
    assert cache.stats.prefetches == 7  # 4..11 in one batch


def test_range_rejects_negative_count(setup):
    _switch, _dev, cache = setup
    with pytest.raises(ValueError):
        cache.get_page_range("mem0", "r", 0, -1)


# -- per-relation frame indexes -------------------------------------------


def test_flush_relation_only_touches_that_relation(setup):
    switch, dev, cache = setup
    dev.create_relation("s")
    dev.extend("s")
    cache.get_page("mem0", "r", 0).add_record(b"r0")
    cache.mark_dirty("mem0", "r", 0)
    _pageno, spage = cache.new_page("mem0", "s")
    spage.add_record(b"s0")
    assert cache.flush_relation("mem0", "r") == 1
    assert cache.dirty_count() == 1  # s's page still dirty


def test_drop_relation_forgets_frames_and_detector(setup):
    _switch, dev, cache = setup
    for i in range(3):
        cache.get_page("mem0", "r", i)
    cache.drop_relation("mem0", "r")
    assert len(cache) == 0
    # Detector state was reset: next access is not "sequential".
    cache.get_page("mem0", "r", 10)
    cache.get_page("mem0", "r", 11)
    assert not cache.resident("mem0", "r", 12)


def test_eviction_maintains_rel_index(setup):
    """Evicted frames leave the per-relation index; flush_relation after
    heavy eviction still writes exactly the dirty residents."""
    switch, dev, cache = setup
    cache.get_page("mem0", "r", 0).add_record(b"x")
    cache.mark_dirty("mem0", "r", 0)
    for p in range(1, 20):  # capacity 16 → page 0 evicted (written back)
        cache.get_page("mem0", "r", p)
    assert not cache.resident("mem0", "r", 0)
    assert cache.flush_relation("mem0", "r") == 0
    cache.invalidate_all()
    assert cache.get_page("mem0", "r", 0).get_record(1) == b"x"


def test_flush_all_skips_clean_frames_via_dirty_index(setup):
    _switch, _dev, cache = setup
    for i in range(8):
        cache.get_page("mem0", "r", i)
    cache.get_page("mem0", "r", 12).add_record(b"d")
    cache.mark_dirty("mem0", "r", 12)
    assert cache.flush_all() == 1
    assert cache.flush_all() == 0
