"""Batched page reads across the device managers.

``read_pages`` is the device half of the sequential fast path: one call
per contiguous run, one positioning charge per physically contiguous
block run, identical bytes to page-at-a-time reads.
"""

import pytest

from repro.db.page import PAGE_SIZE
from repro.devices.jukebox import SonyJukebox
from repro.devices.magnetic import EXTENT_PAGES, MagneticDisk
from repro.devices.memdisk import MemDisk
from repro.errors import DeviceError
from repro.sim.clock import SimClock


def page_of(byte: int) -> bytes:
    return bytes([byte & 0xFF]) * PAGE_SIZE


def fill(dev, relname: str, npages: int) -> None:
    for _ in range(npages):
        p = dev.extend(relname)
        dev.write_page(relname, p, page_of(p))


@pytest.fixture
def magnetic(tmp_path):
    dev = MagneticDisk("m0", SimClock(), str(tmp_path / "m0"))
    dev.create_relation("r")
    return dev


# -- semantics (all managers) ----------------------------------------------


def test_batched_bytes_match_single_reads(magnetic):
    fill(magnetic, "r", 12)
    batched = magnetic.read_pages("r", 3, 7)
    singles = [magnetic.read_page("r", 3 + i) for i in range(7)]
    assert batched == singles


def test_empty_and_negative_counts(magnetic):
    fill(magnetic, "r", 2)
    assert magnetic.read_pages("r", 0, 0) == []
    with pytest.raises(ValueError):
        magnetic.read_pages("r", 0, -1)


def test_out_of_range_rejected(magnetic):
    fill(magnetic, "r", 4)
    with pytest.raises(DeviceError):
        magnetic.read_pages("r", 2, 3)  # runs past page 3
    with pytest.raises(DeviceError):
        magnetic.read_pages("r", -1, 2)


def test_unwritten_tail_pages_read_zero(magnetic):
    """Pages allocated with extend() but never written come back as
    zeroes, exactly as read_page returns them."""
    fill(magnetic, "r", 2)
    magnetic.extend("r")
    magnetic.extend("r")
    pages = magnetic.read_pages("r", 0, 4)
    assert pages[:2] == [page_of(0), page_of(1)]
    assert pages[2:] == [bytes(PAGE_SIZE), bytes(PAGE_SIZE)]


# -- cost model (magnetic) -------------------------------------------------


def test_contiguous_run_is_one_read_operation(magnetic):
    fill(magnetic, "r", 8)
    stats = magnetic.disk.stats
    r0 = stats.reads
    magnetic.read_pages("r", 0, 8)
    assert stats.reads == r0 + 1  # one positioning + one transfer


def test_batched_read_is_cheaper_than_singles(tmp_path):
    clock_a = SimClock()
    a = MagneticDisk("a", clock_a, str(tmp_path / "a"))
    a.create_relation("r")
    fill(a, "r", 16)
    t0 = clock_a.now()
    a.read_pages("r", 0, 16)
    batched = clock_a.now() - t0

    clock_b = SimClock()
    b = MagneticDisk("b", clock_b, str(tmp_path / "b"))
    b.create_relation("r")
    fill(b, "r", 16)
    # Defeat the head's sequential-position optimisation by touching a
    # far-away block between reads, as interleaved workloads would.
    t0 = clock_b.now()
    for i in range(16):
        b.read_page("r", i)
        b.disk.read_block(b.disk.geometry.total_blocks - 1)
    singles = clock_b.now() - t0
    assert batched < singles


def test_run_breaks_at_non_adjacent_extents(tmp_path):
    """Two relations growing together interleave their extents; a range
    spanning the extent boundary needs two read operations."""
    dev = MagneticDisk("m0", SimClock(), str(tmp_path / "m0"))
    dev.create_relation("r")
    dev.create_relation("s")
    fill(dev, "r", EXTENT_PAGES)  # r extent 0
    fill(dev, "s", 1)             # s extent interleaves
    fill(dev, "r", 2)             # r extent 1, not adjacent to extent 0
    stats = dev.disk.stats
    r0 = stats.reads
    pages = dev.read_pages("r", EXTENT_PAGES - 2, 4)
    assert stats.reads == r0 + 2
    assert pages == [page_of(EXTENT_PAGES - 2), page_of(EXTENT_PAGES - 1),
                     page_of(EXTENT_PAGES), page_of(EXTENT_PAGES + 1)]


def test_adjacent_extents_stay_one_run(tmp_path):
    """A relation growing alone gets adjacent extents — the run (and the
    single read operation) continues straight across the boundary."""
    dev = MagneticDisk("m0", SimClock(), str(tmp_path / "m0"))
    dev.create_relation("r")
    fill(dev, "r", EXTENT_PAGES + 4)
    stats = dev.disk.stats
    r0 = stats.reads
    dev.read_pages("r", EXTENT_PAGES - 2, 4)
    assert stats.reads == r0 + 1


# -- default implementation (ABC) ------------------------------------------


def test_jukebox_inherits_page_at_a_time_default(tmp_path):
    """Managers without a batched fast path fall back to the ABC's
    read_page loop — same bytes, page-at-a-time cost."""
    dev = SonyJukebox("j0", SimClock())
    dev.create_relation("r")
    fill(dev, "r", 5)
    assert dev.read_pages("r", 1, 3) == [page_of(1), page_of(2), page_of(3)]
    with pytest.raises(ValueError):
        dev.read_pages("r", 0, -2)


# -- memdisk ---------------------------------------------------------------


def test_memdisk_batched_read(tmp_path):
    clock = SimClock()
    dev = MemDisk("mem0", clock)
    dev.create_relation("r")
    fill(dev, "r", 6)
    t0 = clock.now()
    pages = dev.read_pages("r", 2, 4)
    elapsed_batch = clock.now() - t0
    assert pages == [page_of(i) for i in range(2, 6)]
    t0 = clock.now()
    for i in range(2, 6):
        dev.read_page("r", i)
    elapsed_single = clock.now() - t0
    assert elapsed_batch == pytest.approx(elapsed_single)  # DMA: no seek cost
