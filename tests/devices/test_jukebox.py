"""Sony WORM optical jukebox: staging cache, platter loads, WORM rule."""

import pytest

from repro.db.page import PAGE_SIZE
from repro.devices.jukebox import JukeboxParams, SonyJukebox, _Platter
from repro.errors import DeviceError, WormViolationError
from repro.sim.clock import SimClock


def page_of(byte: int) -> bytes:
    return bytes([byte]) * PAGE_SIZE


@pytest.fixture
def juke():
    return SonyJukebox("j0", SimClock())


def test_write_lands_in_staging_cheaply(juke):
    juke.create_relation("r")
    p = juke.extend("r")
    before = juke.clock.now()
    juke.write_page("r", p, page_of(1))
    # Staging write: magnetic cost, far below a platter load.
    assert juke.clock.now() - before < 1.0
    assert juke.stats.burns == 0


def test_read_hits_staging(juke):
    juke.create_relation("r")
    p = juke.extend("r")
    juke.write_page("r", p, page_of(9))
    assert juke.read_page("r", p) == page_of(9)
    assert juke.stats.staging_hits >= 1
    assert juke.stats.platter_loads == 0


def test_flush_burns_to_platter(juke):
    juke.create_relation("r")
    p = juke.extend("r")
    juke.write_page("r", p, page_of(3))
    juke.flush()
    assert juke.stats.burns == 1
    assert juke.revision_count("r", p) == 1


def test_platter_load_cost_on_cold_read():
    params = JukeboxParams(staging_cache_bytes=2 * PAGE_SIZE)
    juke = SonyJukebox("j0", SimClock(), params)
    juke.create_relation("r")
    pages = [juke.extend("r") for _ in range(4)]
    for i, p in enumerate(pages):
        juke.write_page("r", p, page_of(i))
    juke.flush()
    # Evict everything from staging by filling it with other pages.
    juke.create_relation("other")
    for i in range(4):
        q = juke.extend("other")
        juke.write_page("other", q, page_of(100 + i))
    before = juke.clock.now()
    juke._loaded.clear()  # force an unloaded platter
    data = juke.read_page("r", pages[0])
    assert data == page_of(0)
    assert juke.clock.now() - before >= params.platter_load_s


def test_rewrite_burns_fresh_block(juke):
    """WORM revision chains: rewriting a logical page burns a new
    physical block, never overwrites ([QUIN91]-style)."""
    juke.create_relation("r")
    p = juke.extend("r")
    juke.write_page("r", p, page_of(1))
    juke.flush()
    juke.write_page("r", p, page_of(2))
    juke.flush()
    assert juke.revision_count("r", p) == 2
    assert juke.read_page("r", p) == page_of(2)


def test_raw_platter_overwrite_refused():
    platter = _Platter(0, 100)
    platter.burn(5, b"x")
    with pytest.raises(WormViolationError):
        platter.burn(5, b"y")
    assert platter.read(5) == b"x"


def test_unburned_block_read_rejected():
    platter = _Platter(0, 100)
    with pytest.raises(DeviceError):
        platter.read(3)


def test_staging_eviction_burns_dirty_pages():
    params = JukeboxParams(staging_cache_bytes=3 * PAGE_SIZE)
    juke = SonyJukebox("j0", SimClock(), params)
    juke.create_relation("r")
    for i in range(10):
        p = juke.extend("r")
        juke.write_page("r", p, page_of(i))
    assert juke.stats.burns >= 7
    # Every page still readable (from staging or platter).
    for i in range(10):
        assert juke.read_page("r", i) == page_of(i)


def test_extent_allocation_contiguity(juke):
    juke.create_relation("r")
    for i in range(juke.params.extent_pages + 2):
        p = juke.extend("r")
        juke.write_page("r", p, page_of(i % 250))
    juke.flush()
    st = juke._rels["r"]
    first_extent_blocks = {st.burned[p][1] for p in range(juke.params.extent_pages)}
    assert len(first_extent_blocks) == juke.params.extent_pages
    assert max(first_extent_blocks) - min(first_extent_blocks) \
        == juke.params.extent_pages - 1


def test_drop_relation_orphans_worm_blocks(juke):
    juke.create_relation("r")
    p = juke.extend("r")
    juke.write_page("r", p, page_of(1))
    juke.flush()
    juke.drop_relation("r")
    assert not juke.relation_exists("r")


def test_meta_storage(juke):
    juke.sync_write_meta("t", b"abc")
    assert juke.read_meta("t") == b"abc"
