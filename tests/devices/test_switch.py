"""Device manager switch."""

import pytest

from repro.devices.memdisk import MemDisk
from repro.devices.switch import DeviceSwitch
from repro.errors import UnknownDeviceError
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock()


def test_first_registered_is_default(clock):
    switch = DeviceSwitch()
    switch.register(MemDisk("a", clock))
    switch.register(MemDisk("b", clock))
    assert switch.get().name == "a"
    assert switch.default_name == "a"


def test_explicit_default(clock):
    switch = DeviceSwitch()
    switch.register(MemDisk("a", clock))
    switch.register(MemDisk("b", clock), default=True)
    assert switch.get().name == "b"


def test_lookup_by_name(clock):
    switch = DeviceSwitch()
    switch.register(MemDisk("a", clock))
    assert switch.get("a").name == "a"
    assert "a" in switch
    assert "z" not in switch


def test_unknown_device_rejected(clock):
    switch = DeviceSwitch()
    with pytest.raises(UnknownDeviceError):
        switch.get("nope")
    with pytest.raises(UnknownDeviceError):
        switch.get()  # no default yet


def test_duplicate_name_rejected(clock):
    switch = DeviceSwitch()
    switch.register(MemDisk("a", clock))
    with pytest.raises(UnknownDeviceError):
        switch.register(MemDisk("a", clock))


def test_describe_lists_all(clock):
    switch = DeviceSwitch()
    switch.register(MemDisk("a", clock))
    switch.register(MemDisk("b", clock))
    rows = switch.describe()
    assert [r["name"] for r in rows] == ["a", "b"]
    assert rows[0]["default"] and not rows[1]["default"]


def test_iteration(clock):
    switch = DeviceSwitch()
    switch.register(MemDisk("a", clock))
    switch.register(MemDisk("b", clock))
    assert [d.name for d in switch] == ["a", "b"]
    assert switch.names() == ["a", "b"]
