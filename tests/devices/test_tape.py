"""Metrum tape jukebox: sequential media costs."""

import pytest

from repro.db.page import PAGE_SIZE
from repro.devices.tape import TapeJukebox, TapeParams
from repro.errors import DeviceError
from repro.sim.clock import SimClock


def page_of(byte: int) -> bytes:
    return bytes([byte]) * PAGE_SIZE


@pytest.fixture
def tape():
    return TapeJukebox("t0", SimClock())


def test_roundtrip(tape):
    tape.create_relation("r")
    p = tape.extend("r")
    tape.write_page("r", p, page_of(5))
    assert tape.read_page("r", p) == page_of(5)


def test_first_access_pays_cartridge_load(tape):
    tape.create_relation("r")
    p = tape.extend("r")
    before = tape.clock.now()
    tape.write_page("r", p, page_of(1))
    assert tape.clock.now() - before >= tape.params.cartridge_load_s


def test_sequential_access_cheaper_than_wind(tape):
    tape.create_relation("r")
    pages = [tape.extend("r") for _ in range(100)]
    for i, p in enumerate(pages):
        tape.write_page("r", p, page_of(i % 250))
    # Sequential forward read:
    tape.read_page("r", 0)
    before = tape.clock.now()
    tape.read_page("r", 1)
    seq_cost = tape.clock.now() - before
    # Long backward wind:
    tape.read_page("r", 99)
    before = tape.clock.now()
    tape.read_page("r", 0)
    wind_cost = tape.clock.now() - before
    assert wind_cost > seq_cost


def test_unwritten_page_reads_zero(tape):
    tape.create_relation("r")
    p = tape.extend("r")
    assert tape.read_page("r", p) == bytes(PAGE_SIZE)


def test_tape_is_rewriteable(tape):
    tape.create_relation("r")
    p = tape.extend("r")
    tape.write_page("r", p, page_of(1))
    tape.write_page("r", p, page_of(2))
    assert tape.read_page("r", p) == page_of(2)


def test_out_of_range_rejected(tape):
    tape.create_relation("r")
    with pytest.raises(DeviceError):
        tape.read_page("r", 0)


def test_drop_relation(tape):
    tape.create_relation("r")
    p = tape.extend("r")
    tape.write_page("r", p, page_of(1))
    tape.drop_relation("r")
    assert not tape.relation_exists("r")


def test_stats_accumulate(tape):
    tape.create_relation("r")
    p = tape.extend("r")
    tape.write_page("r", p, page_of(1))
    tape.read_page("r", p)
    assert tape.stats.loads >= 1
    assert tape.stats.writes == 1
    assert tape.stats.reads == 1
