"""Magnetic disk device manager: persistence, extents, metadata."""

import os

import pytest

from repro.db.page import PAGE_SIZE
from repro.devices.magnetic import EXTENT_PAGES, MagneticDisk
from repro.errors import DeviceError
from repro.sim.clock import SimClock


@pytest.fixture
def dev(tmp_path):
    return MagneticDisk("m0", SimClock(), str(tmp_path / "m0"))


def page_of(byte: int) -> bytes:
    return bytes([byte]) * PAGE_SIZE


def test_relation_lifecycle(dev):
    dev.create_relation("r")
    assert dev.relation_exists("r")
    assert dev.nblocks("r") == 0
    dev.drop_relation("r")
    assert not dev.relation_exists("r")


def test_duplicate_create_rejected(dev):
    dev.create_relation("r")
    with pytest.raises(DeviceError):
        dev.create_relation("r")


def test_unknown_relation_rejected(dev):
    with pytest.raises(DeviceError):
        dev.nblocks("nope")
    with pytest.raises(DeviceError):
        dev.drop_relation("nope")


def test_write_read_roundtrip(dev):
    dev.create_relation("r")
    p = dev.extend("r")
    dev.write_page("r", p, page_of(7))
    assert dev.read_page("r", p) == page_of(7)


def test_extended_unwritten_page_reads_zero(dev):
    dev.create_relation("r")
    p = dev.extend("r")
    assert dev.read_page("r", p) == bytes(PAGE_SIZE)


def test_out_of_range_page_rejected(dev):
    dev.create_relation("r")
    with pytest.raises(DeviceError):
        dev.read_page("r", 0)
    with pytest.raises(DeviceError):
        dev.write_page("r", 5, page_of(1))


def test_persistence_across_reopen(tmp_path):
    clock = SimClock()
    path = str(tmp_path / "m0")
    dev = MagneticDisk("m0", clock, path)
    dev.create_relation("r")
    for i in range(3):
        dev.extend("r")
        dev.write_page("r", i, page_of(i))
    dev.close()
    dev2 = MagneticDisk("m0", SimClock(), path)
    assert dev2.nblocks("r") == 3
    assert dev2.read_page("r", 1) == page_of(1)


def test_npages_reconciled_from_file_after_crash(tmp_path):
    """The allocation map is written lazily; after a crash the backing
    file length is authoritative."""
    path = str(tmp_path / "m0")
    dev = MagneticDisk("m0", SimClock(), path)
    dev.create_relation("r")
    for i in range(5):
        dev.extend("r")
        dev.write_page("r", i, page_of(i))
    dev.simulate_crash()  # no allocmap save
    dev2 = MagneticDisk("m0", SimClock(), path)
    assert dev2.nblocks("r") >= 5
    assert dev2.read_page("r", 4) == page_of(4)


def test_extents_are_contiguous_within_relation(dev):
    dev.create_relation("a")
    dev.create_relation("b")
    # Interleave extends: each relation's pages must still be
    # physically contiguous inside an extent.
    for _ in range(EXTENT_PAGES // 2):
        dev.extend("a")
        dev.extend("b")
    st_a = dev._rels["a"]
    blocks = [dev._block_of(st_a, p) for p in range(st_a.npages)]
    assert blocks == list(range(blocks[0], blocks[0] + len(blocks)))


def test_two_growing_relations_use_disjoint_extents(dev):
    dev.create_relation("a")
    dev.create_relation("b")
    for _ in range(EXTENT_PAGES + 1):
        dev.extend("a")
        dev.extend("b")
    st_a, st_b = dev._rels["a"], dev._rels["b"]
    assert not set(st_a.extents) & set(st_b.extents)


def test_meta_roundtrip_and_append(dev):
    dev.sync_write_meta("tag", b"hello")
    assert dev.read_meta("tag") == b"hello"
    dev.sync_append_meta("tag", b" world")
    assert dev.read_meta("tag") == b"hello world"
    assert dev.read_meta("missing") is None


def test_meta_write_charges_seek_to_front(dev):
    dev.create_relation("r")
    p = dev.extend("r")
    dev.write_page("r", p, page_of(1))
    seeks_before = dev.disk.stats.seeks
    dev.sync_write_meta("pg_status", b"C 2 0.0 1.0\n")
    assert dev.disk.stats.seeks > seeks_before


def test_rename_relation_atomic_replace(tmp_path):
    path = str(tmp_path / "m0")
    dev = MagneticDisk("m0", SimClock(), path)
    for rel, byte in (("src", 1), ("dst", 2)):
        dev.create_relation(rel)
        p = dev.extend(rel)
        dev.write_page(rel, p, page_of(byte))
    dev.rename_relation("src", "dst")
    assert not dev.relation_exists("src")
    assert dev.read_page("dst", 0) == page_of(1)
    assert not os.path.exists(os.path.join(path, "src.rel"))
    dev.close()
    # The swap is durable: a reopen sees the renamed relation.
    dev2 = MagneticDisk("m0", SimClock(), path)
    assert dev2.read_page("dst", 0) == page_of(1)
    assert not dev2.relation_exists("src")


def test_rename_relation_completed_is_idempotent(dev):
    dev.create_relation("dst")
    dev.extend("dst")
    dev.write_page("dst", 0, page_of(3))
    # Source already gone, destination present: the rename completed
    # before a crash; replaying it must change nothing.
    dev.rename_relation("src", "dst")
    assert dev.read_page("dst", 0) == page_of(3)


def test_rename_relation_missing_source_rejected(dev):
    with pytest.raises(DeviceError):
        dev.rename_relation("nope", "also-nope")


def test_allocmap_entry_without_backing_file_dropped(tmp_path):
    """A crash between a drop/rename and the lazy allocmap save leaves
    a map entry whose backing file is gone; the reopen must shrug it
    off instead of resurrecting a phantom relation."""
    path = str(tmp_path / "m0")
    dev = MagneticDisk("m0", SimClock(), path)
    dev.create_relation("keep")
    dev.create_relation("ghost")
    dev.extend("keep")
    dev.close()  # saves the allocation map with both entries
    os.remove(os.path.join(path, "ghost.rel"))
    dev2 = MagneticDisk("m0", SimClock(), path)
    assert not dev2.relation_exists("ghost")
    assert dev2.nblocks("keep") == 1


def test_drop_relation_removes_backing_file(tmp_path):
    path = str(tmp_path / "m0")
    dev = MagneticDisk("m0", SimClock(), path)
    dev.create_relation("r")
    assert os.path.exists(os.path.join(path, "r.rel"))
    dev.drop_relation("r")
    assert not os.path.exists(os.path.join(path, "r.rel"))
