"""Device manager base-class helpers."""

from repro.devices.base import DeviceManager, total_pages
from repro.devices.memdisk import MemDisk
from repro.sim.clock import SimClock


def test_total_pages_helper():
    dev = MemDisk("m", SimClock())
    for rel, pages in (("a", 3), ("b", 2)):
        dev.create_relation(rel)
        for _ in range(pages):
            dev.extend(rel)
    assert total_pages(dev, ["a", "b"]) == 5
    assert total_pages(dev, []) == 0


def test_describe_reports_identity():
    dev = MemDisk("nv", SimClock())
    desc = dev.describe()
    assert desc == {"name": "nv", "type": "MemDisk", "nonvolatile": True}


def test_default_append_meta_via_read_modify_write():
    dev = MemDisk("nv", SimClock())
    DeviceManager.sync_append_meta(dev, "t", b"one")
    DeviceManager.sync_append_meta(dev, "t", b"+two")
    assert dev.read_meta("t") == b"one+two"


def test_default_rename_relation_moves_pages():
    dev = MemDisk("nv", SimClock())
    dev.create_relation("src")
    p = dev.extend("src")
    dev.write_page("src", p, b"\x07" * 8192)
    DeviceManager.rename_relation(dev, "src", "dst")
    assert not dev.relation_exists("src")
    assert dev.read_page("dst", p) == b"\x07" * 8192


def test_default_rename_relation_replaces_existing_destination():
    dev = MemDisk("nv", SimClock())
    for rel, byte in (("src", 1), ("dst", 2)):
        dev.create_relation(rel)
        dev.extend(rel)
        dev.write_page(rel, 0, bytes([byte]) * 8192)
    DeviceManager.rename_relation(dev, "src", "dst")
    assert dev.read_page("dst", 0) == b"\x01" * 8192


def test_default_rename_relation_completed_is_noop():
    """Missing source with an existing destination is a rename that
    already completed — journal replay must be able to re-run it."""
    dev = MemDisk("nv", SimClock())
    dev.create_relation("dst")
    dev.extend("dst")
    dev.write_page("dst", 0, b"\x09" * 8192)
    DeviceManager.rename_relation(dev, "src", "dst")
    assert dev.read_page("dst", 0) == b"\x09" * 8192


def test_rebind_clock_switches_charging():
    old_clock = SimClock()
    dev = MemDisk("nv", old_clock)
    dev.create_relation("r")
    dev.extend("r")
    new_clock = SimClock()
    dev.rebind_clock(new_clock)
    dev.write_page("r", 0, bytes(8192))
    assert new_clock.now() > 0
    assert old_clock.now() < new_clock.now() + 1  # old clock untouched by write


def test_rebind_clock_rebinds_embedded_disk_models(tmp_path):
    from repro.devices.jukebox import SonyJukebox
    juke = SonyJukebox("j", SimClock())
    fresh = SimClock()
    juke.rebind_clock(fresh)
    assert juke.clock is fresh
    assert juke.staging_disk.clock is fresh
