"""Device manager base-class helpers."""

from repro.devices.base import DeviceManager, total_pages
from repro.devices.memdisk import MemDisk
from repro.sim.clock import SimClock


def test_total_pages_helper():
    dev = MemDisk("m", SimClock())
    for rel, pages in (("a", 3), ("b", 2)):
        dev.create_relation(rel)
        for _ in range(pages):
            dev.extend(rel)
    assert total_pages(dev, ["a", "b"]) == 5
    assert total_pages(dev, []) == 0


def test_describe_reports_identity():
    dev = MemDisk("nv", SimClock())
    desc = dev.describe()
    assert desc == {"name": "nv", "type": "MemDisk", "nonvolatile": True}


def test_default_append_meta_via_read_modify_write():
    dev = MemDisk("nv", SimClock())
    DeviceManager.sync_append_meta(dev, "t", b"one")
    DeviceManager.sync_append_meta(dev, "t", b"+two")
    assert dev.read_meta("t") == b"one+two"


def test_rebind_clock_switches_charging():
    old_clock = SimClock()
    dev = MemDisk("nv", old_clock)
    dev.create_relation("r")
    dev.extend("r")
    new_clock = SimClock()
    dev.rebind_clock(new_clock)
    dev.write_page("r", 0, bytes(8192))
    assert new_clock.now() > 0
    assert old_clock.now() < new_clock.now() + 1  # old clock untouched by write


def test_rebind_clock_rebinds_embedded_disk_models(tmp_path):
    from repro.devices.jukebox import SonyJukebox
    juke = SonyJukebox("j", SimClock())
    fresh = SimClock()
    juke.rebind_clock(fresh)
    assert juke.clock is fresh
    assert juke.staging_disk.clock is fresh
