"""NVRAM device manager."""

import pytest

from repro.db.page import PAGE_SIZE
from repro.devices.memdisk import MemDisk
from repro.errors import DeviceError, DeviceFullError
from repro.sim.clock import SimClock


@pytest.fixture
def dev():
    return MemDisk("n0", SimClock())


def test_roundtrip(dev):
    dev.create_relation("r")
    p = dev.extend("r")
    dev.write_page("r", p, bytes([9]) * PAGE_SIZE)
    assert dev.read_page("r", p) == bytes([9]) * PAGE_SIZE


def test_io_is_cheap(dev):
    dev.create_relation("r")
    p = dev.extend("r")
    before = dev.clock.now()
    dev.write_page("r", p, bytes(PAGE_SIZE))
    dev.read_page("r", p)
    assert dev.clock.now() - before < 0.002


def test_capacity_enforced():
    dev = MemDisk("n0", SimClock(), capacity_bytes=3 * PAGE_SIZE)
    dev.create_relation("r")
    for _ in range(3):
        dev.extend("r")
    with pytest.raises(DeviceFullError):
        dev.extend("r")


def test_drop_frees_capacity():
    dev = MemDisk("n0", SimClock(), capacity_bytes=2 * PAGE_SIZE)
    dev.create_relation("a")
    dev.extend("a")
    dev.extend("a")
    dev.drop_relation("a")
    dev.create_relation("b")
    dev.extend("b")
    dev.extend("b")


def test_nonvolatile_survives_crash(dev):
    dev.create_relation("r")
    p = dev.extend("r")
    dev.write_page("r", p, bytes([1]) * PAGE_SIZE)
    dev.simulate_crash()
    assert dev.read_page("r", p) == bytes([1]) * PAGE_SIZE


def test_bad_page_size_rejected(dev):
    dev.create_relation("r")
    dev.extend("r")
    with pytest.raises(ValueError):
        dev.write_page("r", 0, b"short")


def test_unknown_relation(dev):
    with pytest.raises(DeviceError):
        dev.read_page("nope", 0)


def test_meta(dev):
    dev.sync_write_meta("k", b"v")
    dev.sync_append_meta("k", b"2")
    assert dev.read_meta("k") == b"v2"


def test_rename_relation_moves_pages(dev):
    dev.create_relation("src")
    p = dev.extend("src")
    dev.write_page("src", p, bytes([5]) * PAGE_SIZE)
    dev.rename_relation("src", "dst")
    assert not dev.relation_exists("src")
    assert dev.read_page("dst", p) == bytes([5]) * PAGE_SIZE


def test_rename_over_existing_keeps_capacity_accounting():
    dev = MemDisk("n0", SimClock(), capacity_bytes=3 * PAGE_SIZE)
    dev.create_relation("src")
    dev.extend("src")
    dev.create_relation("dst")
    dev.extend("dst")
    dev.extend("dst")
    dev.rename_relation("src", "dst")  # dst's two pages are freed
    dev.create_relation("more")
    dev.extend("more")
    dev.extend("more")  # fits only if the replaced pages were released


def test_rename_completed_is_noop(dev):
    dev.create_relation("dst")
    dev.rename_relation("src", "dst")  # src gone + dst present: done
    assert dev.relation_exists("dst")


def test_bad_relation_names(dev):
    with pytest.raises(ValueError):
        dev.create_relation("")
    with pytest.raises(ValueError):
        dev.create_relation("a/b")
