"""The sharded cluster is differentially equivalent to one model FS.

An application speaking the sharded client must not be able to tell
(by visible state) that the namespace is partitioned: the same op
sequence applied to a cluster and to the single-namespace
:class:`~repro.testkit.oracle.ModelFS` must converge to the same
state — including cross-shard renames, which the client implements as
a copied move under 2PC."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.shard import ShardedCluster
from repro.testkit.explorer import harvest_cluster
from repro.testkit.oracle import ModelFS, apply_client_op
from repro.testkit.workload import payload

TOPS = ["a", "b", "c", "d"]
NAMES = st.sampled_from(["x", "y", "z", "sub"])
TOP = st.sampled_from(TOPS)
SIZES = st.integers(min_value=0, max_value=3000)


@st.composite
def paths(draw, max_depth=2):
    parts = [draw(TOP)] + draw(st.lists(NAMES, min_size=0,
                                        max_size=max_depth))
    return "/" + "/".join(parts)


@st.composite
def ops(draw):
    kind = draw(st.sampled_from(
        ["mkdir", "write", "unlink", "rmdir", "rename"]))
    if kind == "write":
        path = draw(paths())
        return ("write", path,
                payload(draw(st.integers(0, 7)), path, draw(SIZES)))
    if kind == "rename":
        return ("rename", draw(paths()), draw(paths()))
    return (kind, draw(paths()))


def _mkcluster(workdir, nshards):
    # hash policy: the four top-level names spread by SHA-256, so the
    # model sees one namespace while ops land on different shards.
    return ShardedCluster.create(str(workdir / "cluster"), nshards)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(op_list=st.lists(ops(), min_size=1, max_size=20),
       nshards=st.sampled_from([1, 2, 3]))
def test_cluster_matches_model(tmp_path_factory, op_list, nshards):
    workdir = tmp_path_factory.mktemp("sharddiff")
    cluster = _mkcluster(workdir, nshards)
    try:
        client = cluster.client()
        model = ModelFS()
        for op in op_list:
            if model.why_invalid(op) is not None:
                continue
            apply_client_op(client, op)       # auto-commit per op
            model.apply(op)
        client.close()
        assert harvest_cluster(cluster) == model.state()
    finally:
        cluster.close()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(op_list=st.lists(ops(), min_size=2, max_size=14),
       seed=st.integers(0, 3))
def test_cluster_transactional_batches_match_model(tmp_path_factory,
                                                  op_list, seed):
    """Ops grouped into multi-op cluster transactions (committing or
    aborting whole batches) still converge to the model: committed
    batches apply atomically, aborted batches leave no trace on any
    shard — even when a batch spans shards and commits through 2PC."""
    import random
    rng = random.Random(seed)
    workdir = tmp_path_factory.mktemp("shardtxdiff")
    cluster = _mkcluster(workdir, 2)
    try:
        client = cluster.client()
        model = ModelFS()
        idx = 0
        while idx < len(op_list):
            batch_len = rng.randint(1, 3)
            abort = rng.random() < 0.3
            client.p_begin()
            scratch = model.copy()
            applied = []
            for op in op_list[idx:idx + batch_len]:
                if scratch.why_invalid(op) is not None:
                    continue
                apply_client_op(client, op)
                scratch.apply(op)
                applied.append(op)
            idx += batch_len
            if abort:
                client.p_abort()
            else:
                client.p_commit()
                model = scratch
        client.close()
        assert harvest_cluster(cluster) == model.state()
    finally:
        cluster.close()


@pytest.mark.parametrize("nshards", [1, 2, 4])
def test_mixed_workload_any_shard_count(tmp_path, nshards):
    """One fixed mixed workload — subtrees, cross-top renames, deletes
    — lands in the identical visible state at every shard count."""
    cluster = ShardedCluster.create(str(tmp_path / "c"), nshards)
    client = cluster.client()
    model = ModelFS()
    script = [
        ("mkdir", "/a"), ("mkdir", "/b"), ("mkdir", "/c"),
        ("write", "/a/f", payload(1, "f", 2500)),
        ("write", "/b/g", payload(1, "g", 100)),
        ("mkdir", "/a/sub"),
        ("write", "/a/sub/h", payload(1, "h", 900)),
        ("rename", "/a/f", "/b/f"),          # cross-top file move
        ("rename", "/a/sub", "/c/sub"),      # cross-top dir move
        ("write", "/b/f", payload(1, "f2", 400)),  # shorter: tail kept
        ("unlink", "/b/g"),
        ("rmdir", "/a"),
    ]
    for op in script:
        assert model.why_invalid(op) is None
        apply_client_op(client, op)
        model.apply(op)
    client.close()
    assert harvest_cluster(cluster) == model.state()
    cluster.close()
