"""Routing is a pure function — asserted by hand and by Hypothesis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.shard import (
    HashPartitionPolicy,
    ShardRouteError,
    ShardRouter,
    SubtreePartitionPolicy,
    top_component,
)
from repro.shard.router import policy_from_config

NAMES = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126,
                           exclude_characters="/"),
    min_size=1, max_size=12)
NSHARDS = st.integers(min_value=1, max_value=16)


def test_top_component():
    assert top_component("/") is None
    assert top_component("///") is None
    assert top_component("/a") == "a"
    assert top_component("/a/b/c") == "a"
    assert top_component("/dir/") == "dir"
    with pytest.raises(ShardRouteError):
        top_component("relative/path")


def test_root_pinned_to_shard_zero():
    router = ShardRouter(HashPartitionPolicy(), 8)
    assert router.route("/") == 0


def test_subtree_assignment_honored():
    router = ShardRouter(SubtreePartitionPolicy({"a": 3, "b": 1}), 4)
    assert router.route("/a") == 3
    assert router.route("/a/deep/path") == 3
    assert router.route("/b/x") == 1


def test_subtree_assignment_out_of_range():
    router = ShardRouter(SubtreePartitionPolicy({"a": 7}), 2)
    with pytest.raises(ShardRouteError):
        router.route("/a/file")


def test_router_rejects_empty_cluster():
    with pytest.raises(ShardRouteError):
        ShardRouter(HashPartitionPolicy(), 0)


@settings(max_examples=100, deadline=None)
@given(name=NAMES, nshards=NSHARDS)
def test_route_is_deterministic_and_in_range(name, nshards):
    router = ShardRouter(HashPartitionPolicy(), nshards)
    shard = router.route(f"/{name}")
    assert 0 <= shard < nshards
    assert router.route(f"/{name}") == shard
    # a second router with the same config is the same function
    assert ShardRouter(HashPartitionPolicy(), nshards).route(f"/{name}") \
        == shard


@settings(max_examples=100, deadline=None)
@given(name=NAMES, tail=st.lists(NAMES, min_size=0, max_size=3),
       nshards=NSHARDS)
def test_whole_subtree_routes_to_one_shard(name, tail, nshards):
    """Every path below a top-level directory lands on its shard — the
    invariant that keeps deep resolution single-shard."""
    router = ShardRouter(HashPartitionPolicy(), nshards)
    path = "/" + "/".join([name] + tail)
    assert router.route(path) == router.route(f"/{name}")


@settings(max_examples=50, deadline=None)
@given(name=NAMES, nshards=NSHARDS,
       assigned=st.dictionaries(NAMES, st.integers(0, 15), max_size=4))
def test_config_round_trip(name, nshards, assigned):
    """A policy rebuilt from its cluster.json form routes identically
    (out-of-range explicit assignments excepted — those raise)."""
    for policy in (HashPartitionPolicy(),
                   SubtreePartitionPolicy(assigned)):
        rebuilt = policy_from_config(policy.config())
        try:
            expected = policy.shard_of(name, nshards)
        except ShardRouteError:
            with pytest.raises(ShardRouteError):
                rebuilt.shard_of(name, nshards)
        else:
            assert rebuilt.shard_of(name, nshards) == expected


def test_unknown_policy_rejected():
    with pytest.raises(ShardRouteError):
        policy_from_config({"policy": "range"})
