"""A PREPARED transaction must survive its session (satellite fix).

``InversionServer.disconnect`` aborts buffered transactions of a dying
session — correct for ordinary sessions, fatal for a 2PC participant:
its vote is durable, so its fate belongs to the coordinator's decision
log, not to local session teardown.  These are the regression tests
for the prepared-survives-disconnect carve-out."""

import pytest

from repro.core.filesystem import InversionFS
from repro.core.server import InversionServer
from repro.db.database import Database
from repro.db.transactions import PREPARED
from repro.errors import FileNotFoundError_


def _server(tmp_path):
    db = Database.create(str(tmp_path / "db"))
    fs = InversionFS.mkfs(db)
    return db, fs, InversionServer(fs)


def test_ordinary_disconnect_still_aborts(tmp_path):
    db, fs, server = _server(tmp_path)
    conn = server.connect()
    server.dispatch(conn, "p_begin")
    fd = server.dispatch(conn, "p_creat", "/f")
    server.dispatch(conn, "p_write", fd, b"data")
    server.dispatch(conn, "p_close", fd)
    server.disconnect(conn)
    with pytest.raises(FileNotFoundError_):
        fs.stat("/f")
    db.close()


def test_prepared_transaction_survives_disconnect(tmp_path):
    db, fs, server = _server(tmp_path)
    conn = server.connect()
    server.dispatch(conn, "p_begin")
    fd = server.dispatch(conn, "p_creat", "/f")
    server.dispatch(conn, "p_write", fd, b"promised")
    server.dispatch(conn, "p_close", fd)
    tx = server._sessions[conn]._tx
    xid = tx.xid
    server.dispatch(conn, "p_prepare", "0.99")
    assert tx.state == PREPARED

    server.disconnect(conn)

    # the vote is still on the books, not rolled back...
    assert db.tm.in_doubt() == {xid: "0.99"}
    assert not db.tm.is_committed(xid)
    # ...and the transaction still holds its locks (nobody may write
    # over an in-doubt participant's data).
    assert any(xid in db.locks.holders(r) for r in list(db.locks._locks))
    db.close()


def test_prepared_survives_disconnect_then_crash_and_commits(tmp_path):
    """The full in-doubt life cycle across a session death *and* a
    process death: disconnect, crash, reopen, then the (recovered)
    coordinator decision arrives as a commit."""
    db, fs, server = _server(tmp_path)
    conn = server.connect()
    server.dispatch(conn, "p_begin")
    fd = server.dispatch(conn, "p_creat", "/f")
    server.dispatch(conn, "p_write", fd, b"promised")
    server.dispatch(conn, "p_close", fd)
    xid = server._sessions[conn]._tx.xid
    server.dispatch(conn, "p_prepare", "0.42")
    server.disconnect(conn)
    db.simulate_crash()

    recovered = Database.open(str(tmp_path / "db"))
    assert recovered.tm.recovery_report()["in_doubt"] == 1
    assert recovered.tm.in_doubt() == {xid: "0.42"}
    recovered.tm.resolve_in_doubt(xid, commit=True)
    recovered_fs = InversionFS.attach(recovered)
    assert recovered_fs.read_file("/f") == b"promised"
    recovered.close()


def test_scheduler_teardown_keeps_prepared_transaction(tmp_path):
    """The multi-user scheduler's close() drains sessions through
    server.disconnect — a prepared participant must survive that drain
    exactly as it survives a lone disconnect."""
    from repro.sched.scheduler import MultiUserScheduler

    db, fs, server = _server(tmp_path)
    sched = MultiUserScheduler(server, seed=1)
    session = sched.add_session([], name="party")  # admitted, no work
    conn = session.conn
    server.dispatch(conn, "p_begin")
    fd = server.dispatch(conn, "p_creat", "/g")
    server.dispatch(conn, "p_write", fd, b"vote")
    server.dispatch(conn, "p_close", fd)
    xid = server._sessions[conn]._tx.xid
    server.dispatch(conn, "p_prepare", "1.7")
    sched.close()
    assert db.tm.in_doubt() == {xid: "1.7"}
    assert not db.tm.is_committed(xid)
    db.close()
