"""Crash-exploring the 2PC protocol end to end (satellite 1).

The bounded sweep runs in the default suite; the full enumeration of
every write boundary — every data force, prepare record, decision
force and phase-two commit record on both shards, with torn tails —
is ``-m torture``."""

import pytest

from repro.testkit.explorer import (ShardedCrashExplorer,
                                    ShardedWorkloadRunner, harvest_cluster)
from repro.testkit.workload import SHARDED_WORKLOADS, cross_shard_workload


def test_sharded_explorer_rejects_unsharded_workloads(tmp_path):
    from repro.testkit.workload import commit_workload
    with pytest.raises(ValueError):
        ShardedCrashExplorer(str(tmp_path), commit_workload())


def test_cross_shard_workload_registered():
    assert "cross_shard" in SHARDED_WORKLOADS
    wl = SHARDED_WORKLOADS["cross_shard"]()
    assert wl.shards == 2


def test_profile_pass_matches_oracle(tmp_path):
    explorer = ShardedCrashExplorer(str(tmp_path), cross_shard_workload())
    total = explorer.count_write_boundaries()
    # data forces + 4 prepares + 2 decisions + phase-2 records + ...
    assert total > 40


def test_bounded_cross_shard_sweep_no_violations(tmp_path):
    explorer = ShardedCrashExplorer(str(tmp_path), cross_shard_workload(),
                                    torn_append=True, seed=3)
    report = explorer.explore(max_points=14)
    assert report.total_writes > 0
    assert len(report.points_tested) > 0
    assert report.violations == [], \
        "; ".join(f"@{r.point}: {r.detail}" for r in report.violations)


@pytest.mark.torture
def test_full_cross_shard_sweep_every_boundary(tmp_path):
    """Every durable write of the cross-shard workload is a crash
    point; zero violations, and recovery must have exercised *both*
    in-doubt verdicts (some crashes land between prepare and decision,
    some between decision and phase two)."""
    explorer = ShardedCrashExplorer(str(tmp_path), cross_shard_workload(),
                                    torn_append=True, seed=3)
    report = explorer.explore()
    assert report.total_writes > 100
    assert len(report.points_tested) == report.total_writes
    assert report.violations == [], \
        "; ".join(f"@{r.point}: {r.detail}" for r in report.violations)
    in_doubt_commits = sum(r.recovery.get("in_doubt_commits", 0)
                           for r in report.results if r.recovery)
    in_doubt_aborts = sum(r.recovery.get("in_doubt_aborts", 0)
                          for r in report.results if r.recovery)
    assert in_doubt_commits > 0, "no crash landed after a decision force"
    assert in_doubt_aborts > 0, "no crash landed inside the prepare window"
    ambiguous = sum(1 for r in report.results if r.ambiguous)
    assert ambiguous > 0, "no crash point recovered to the committed side"


@pytest.mark.torture
def test_full_cross_shard_sweep_clean_appends(tmp_path):
    """The same enumeration without torn appends (whole-write crashes
    only) — the protocol must hold in both failure models."""
    explorer = ShardedCrashExplorer(str(tmp_path), cross_shard_workload(),
                                    torn_append=False, seed=0)
    report = explorer.explore()
    assert report.violations == [], \
        "; ".join(f"@{r.point}: {r.detail}" for r in report.violations)


def test_runner_without_crash_matches_model(tmp_path):
    """The sharded runner's oracle bookkeeping is itself correct: an
    unarmed full run ends in exactly the modelled state."""
    from repro.shard import ShardedCluster
    wl = cross_shard_workload()
    cluster = ShardedCluster.create(str(tmp_path / "c"), wl.shards,
                                    policy="subtree",
                                    assignments=dict(wl.assignments))
    client = cluster.client()
    from repro.testkit.oracle import apply_client_op
    for op in wl.setup_ops:
        apply_client_op(client, op)
    client.close()
    runner = ShardedWorkloadRunner(cluster, wl)
    runner.run()
    assert harvest_cluster(cluster) == runner.completed_state()
    cluster.close()
