"""Shared fixtures for the sharded-cluster suite."""

from __future__ import annotations

import pytest

from repro.shard import ShardedCluster


@pytest.fixture
def cluster2(tmp_path) -> ShardedCluster:
    """A two-shard cluster with two explicitly placed subtrees (``/a``
    on shard 0, ``/b`` on shard 1), both directories created."""
    cluster = ShardedCluster.create(str(tmp_path / "cluster"), 2,
                                    policy="subtree",
                                    assignments={"a": 0, "b": 1})
    boot = cluster.client()
    boot.p_mkdir("/a")
    boot.p_mkdir("/b")
    boot.close()
    yield cluster
    cluster.close()
