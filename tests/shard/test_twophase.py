"""Two-phase commit: protocol behaviour, durability, and recovery.

The scenarios drive the participant half-calls (``p_prepare`` /
``p_resolve``) and the coordinator decision log by hand, so each crash
window of the protocol is pinned down individually; the crash-schedule
explorer then sweeps the same windows mechanically
(``test_shard_crash_explorer``)."""

import pytest

from repro.db.transactions import PREPARED
from repro.errors import FileNotFoundError_, TransactionError
from repro.shard import DECISION_TAG, ShardedCluster
from repro.testkit.workload import payload


def _write(client, path, data):
    fd = client.p_creat(path)
    client.p_write(fd, data)
    client.p_close(fd)


def _exists(client, path):
    try:
        client.p_stat(path)
        return True
    except FileNotFoundError_:
        return False


def _fresh(tmp_path, name="c"):
    cluster = ShardedCluster.create(str(tmp_path / name), 2,
                                    policy="subtree",
                                    assignments={"a": 0, "b": 1})
    boot = cluster.client()
    boot.p_mkdir("/a")
    boot.p_mkdir("/b")
    boot.close()
    return cluster


# -- the happy path ------------------------------------------------------


def test_cross_shard_commit_visible_everywhere(cluster2):
    client = cluster2.client()
    client.p_begin()
    _write(client, "/a/f", b"left")
    _write(client, "/b/g", b"right")
    client.p_commit()
    assert cluster2.stats.cross_shard_txns == 1
    assert cluster2.stats.prepares == 2
    assert cluster2.stats.decisions == 1
    reader = cluster2.client()
    fd = reader.p_open("/a/f")
    assert reader.p_read(fd, 4) == b"left"
    reader.p_close(fd)
    fd = reader.p_open("/b/g")
    assert reader.p_read(fd, 5) == b"right"
    reader.p_close(fd)
    reader.close()
    client.close()


def test_single_shard_txn_sends_no_messages(cluster2):
    client = cluster2.client()
    client.p_begin()
    _write(client, "/a/f1", payload(0, "f1", 2000))
    _write(client, "/a/f2", payload(0, "f2", 100))
    client.p_commit()
    assert cluster2.stats.single_shard_txns == 1
    assert cluster2.stats.cross_shard_txns == 0
    assert cluster2.stats.cross_shard_messages == 0
    assert cluster2.stats.prepares == 0
    client.close()


def test_cross_shard_abort_leaves_no_trace(cluster2):
    client = cluster2.client()
    client.p_begin()
    _write(client, "/a/f", b"x")
    _write(client, "/b/g", b"y")
    client.p_abort()
    assert not _exists(client, "/a/f")
    assert not _exists(client, "/b/g")
    assert cluster2.stats.prepares == 0
    client.close()


def test_read_only_participants_skip_prepare(cluster2):
    seed = cluster2.client()
    _write(seed, "/b/r", b"readme")
    seed.close()
    client = cluster2.client()
    client.p_begin()
    fd = client.p_open("/b/r")       # enlists shard 1, read-only
    client.p_read(fd, 6)
    client.p_close(fd)
    _write(client, "/a/w", b"w")     # the only writer
    client.p_commit()
    # one writer: local commit, no 2PC, even though two shards enlisted
    assert cluster2.stats.prepares == 0
    assert cluster2.stats.single_shard_txns == 1
    client.close()


# -- the prepared window -------------------------------------------------


def test_prepared_is_invisible_until_resolved(cluster2):
    """Between prepare and resolve, no observer sees the new state —
    the window a cross-shard rename's atomicity hangs on."""
    seed = cluster2.client()
    _write(seed, "/a/src", b"moving")
    seed.close()

    mover = cluster2.client()
    mover.p_begin()
    mover.p_rename("/a/src", "/b/dst")
    # drive phase 1 by hand; stop before the decision.
    gid = f"0.{mover.xid_on(0)}"
    for shard in (0, 1):
        cluster2.dispatch(shard, mover._conns[shard], "p_prepare", gid)

    observer = cluster2.client()
    assert _exists(observer, "/a/src")      # unlink not committed
    assert not _exists(observer, "/b/dst")  # creat prepared: invisible

    cluster2.log_decision(0, gid)
    for shard in (0, 1):
        cluster2.dispatch(shard, mover._conns[shard], "p_resolve", True)
    assert not _exists(observer, "/a/src")
    assert _exists(observer, "/b/dst")
    observer.close()
    mover.close()


def test_prepare_requires_transaction(cluster2):
    client = cluster2.client()
    conn = client._conn(0)
    with pytest.raises(TransactionError):
        cluster2.dispatch(0, conn, "p_prepare", "0.1")
    client.close()


# -- crash windows, one by one -------------------------------------------


def test_crash_before_decision_presumes_abort(tmp_path):
    cluster = _fresh(tmp_path)
    client = cluster.client()
    client.p_begin()
    _write(client, "/a/f", b"A")
    _write(client, "/b/g", b"B")
    gid = f"0.{client.xid_on(0)}"
    for shard in (0, 1):
        cluster.dispatch(shard, client._conns[shard], "p_prepare", gid)
    # prepared on both shards, decision never forced: power fails.
    cluster.simulate_crash()
    recovered = ShardedCluster.open(str(tmp_path / "c"))
    assert recovered.stats.in_doubt_aborts == 2
    assert recovered.stats.in_doubt_commits == 0
    check = recovered.client()
    assert not _exists(check, "/a/f")
    assert not _exists(check, "/b/g")
    check.close()
    recovered.close()


def test_crash_after_decision_commits_in_doubt(tmp_path):
    cluster = _fresh(tmp_path)
    client = cluster.client()
    client.p_begin()
    _write(client, "/a/f", b"A")
    _write(client, "/b/g", b"B")
    gid = f"0.{client.xid_on(0)}"
    for shard in (0, 1):
        cluster.dispatch(shard, client._conns[shard], "p_prepare", gid)
    cluster.log_decision(0, gid)
    # decision durable, phase 2 never ran: power fails.
    cluster.simulate_crash()
    recovered = ShardedCluster.open(str(tmp_path / "c"))
    assert recovered.stats.in_doubt_commits == 2
    assert recovered.stats.in_doubt_aborts == 0
    check = recovered.client()
    assert _exists(check, "/a/f")
    assert _exists(check, "/b/g")
    fd = check.p_open("/a/f")
    assert check.p_read(fd, 1) == b"A"
    check.p_close(fd)
    check.close()
    recovered.close()


def test_partial_phase_two_crash_recovers_the_rest(tmp_path):
    """One participant resolved, the other still prepared at the crash:
    recovery must drive the straggler to the same verdict."""
    cluster = _fresh(tmp_path)
    client = cluster.client()
    client.p_begin()
    _write(client, "/a/f", b"A")
    _write(client, "/b/g", b"B")
    gid = f"0.{client.xid_on(0)}"
    for shard in (0, 1):
        cluster.dispatch(shard, client._conns[shard], "p_prepare", gid)
    cluster.log_decision(0, gid)
    cluster.dispatch(0, client._conns[0], "p_resolve", True)
    cluster.simulate_crash()
    recovered = ShardedCluster.open(str(tmp_path / "c"))
    assert recovered.stats.in_doubt_commits == 1   # only shard 1 in doubt
    check = recovered.client()
    assert _exists(check, "/a/f")
    assert _exists(check, "/b/g")
    check.close()
    recovered.close()


def test_recovery_is_idempotent(tmp_path):
    cluster = _fresh(tmp_path)
    client = cluster.client()
    client.p_begin()
    _write(client, "/a/f", b"A")
    _write(client, "/b/g", b"B")
    gid = f"0.{client.xid_on(0)}"
    for shard in (0, 1):
        cluster.dispatch(shard, client._conns[shard], "p_prepare", gid)
    cluster.log_decision(0, gid)
    cluster.simulate_crash()
    once = ShardedCluster.open(str(tmp_path / "c"))
    once.close()
    twice = ShardedCluster.open(str(tmp_path / "c"))
    assert twice.stats.in_doubt_commits == 0
    assert twice.stats.in_doubt_aborts == 0
    check = twice.client()
    assert _exists(check, "/a/f") and _exists(check, "/b/g")
    check.close()
    twice.close()


# -- the decision log ----------------------------------------------------


def test_torn_decision_tail_is_discarded(cluster2):
    dev = cluster2._decision_device(0)
    dev.sync_append_meta(DECISION_TAG, b"D 0.7 C\n")
    dev.sync_append_meta(DECISION_TAG, b"D 0.9 ")   # torn mid-append
    assert cluster2.decisions(0) == {"0.7"}


def test_decision_log_ignores_garbage_lines(cluster2):
    dev = cluster2._decision_device(0)
    dev.sync_append_meta(DECISION_TAG, b"D 0.3 C\nnot a decision\nD\n")
    assert cluster2.decisions(0) == {"0.3"}


def test_prepared_state_constant_round_trips():
    assert PREPARED == "prepared"
