"""The sharded deterministic scheduler: determinism, atomicity under
concurrency, and cross-shard lock contention.

The headline property (satellite 3): sessions racing a cross-shard
``mv`` against readers of both paths must see the old name or the new
name — never both, never neither.  Each probe is a :class:`ClientOp`,
which runs in a single scheduler slice, so it observes the cluster at
one instant of the interleaving."""

import pytest

from repro.core.constants import O_RDWR
from repro.errors import FileNotFoundError_
from repro.sched.scheduler import Call, Ref, Txn
from repro.shard import ClientOp, ShardedCluster, ShardedScheduler
from repro.testkit.workload import payload


def _write(client, path, data):
    fd = client.p_creat(path)
    client.p_write(fd, data)
    client.p_close(fd)


def _exists(client, path):
    try:
        client.p_stat(path)
        return True
    except FileNotFoundError_:
        return False


def _mkcluster(tmp_path, name="c"):
    cluster = ShardedCluster.create(str(tmp_path / name), 2,
                                    policy="subtree",
                                    assignments={"a": 0, "b": 1})
    boot = cluster.client()
    boot.p_mkdir("/a")
    boot.p_mkdir("/b")
    boot.close()
    return cluster


def _disjoint_programs(nsessions=4, ntxns=2):
    programs = []
    for i in range(nsessions):
        top = "ab"[i % 2]
        prog = []
        for j in range(ntxns):
            path = f"/{top}/s{i}t{j}"
            prog.append(Txn([
                Call("p_creat", path),
                Call("p_write", Ref(j * 3), payload(i, path, 700)),
                Call("p_close", Ref(j * 3)),
            ]))
        programs.append(prog)
    return programs


def test_disjoint_sessions_complete_and_replay_identically(tmp_path):
    hashes = []
    for run in range(2):
        cluster = _mkcluster(tmp_path, f"run{run}")
        with ShardedScheduler(cluster, seed=11) as sched:
            for i, prog in enumerate(_disjoint_programs()):
                sched.add_session(prog, name=f"w{i}")
            report = sched.run()
            assert all(r["state"] == "done" for r in report["sessions"])
            hashes.append(sched.trace_hash())
        # all work landed, all of it single-shard
        check = cluster.client()
        assert len(check.p_readdir("/a")) == 4
        assert len(check.p_readdir("/b")) == 4
        check.close()
        assert cluster.stats.cross_shard_messages == 0
        assert cluster.stats.single_shard_txns == 8
        cluster.close()
    assert hashes[0] == hashes[1], "same seed+programs must replay"


def test_seed_changes_interleaving(tmp_path):
    hashes = []
    for seed in (1, 2):
        cluster = _mkcluster(tmp_path, f"seed{seed}")
        with ShardedScheduler(cluster, seed=seed) as sched:
            for i, prog in enumerate(_disjoint_programs()):
                sched.add_session(prog, name=f"w{i}")
            sched.run()
            hashes.append(sched.trace_hash())
        cluster.close()
    assert hashes[0] != hashes[1]


def test_cross_shard_mv_is_atomic_to_racing_readers(tmp_path):
    """Readers probing both names in one slice while a cross-shard
    rename runs: every probe sees exactly one of the two names."""
    cluster = _mkcluster(tmp_path)
    seed = cluster.client()
    _write(seed, "/a/src", payload(0, "src", 1800))
    seed.close()

    def probe(client):
        return (_exists(client, "/a/src"), _exists(client, "/b/dst"))

    with ShardedScheduler(cluster, seed=5) as sched:
        sched.add_session([Call("p_rename", "/a/src", "/b/dst")],
                          name="mover", home=0)
        for r in range(3):
            sched.add_session(
                [ClientOp(f"probe{i}", probe) for i in range(4)],
                name=f"reader{r}", home=r % 2)
        sched.run()
        observations = []
        for session in sched.sessions:
            if session.name.startswith("reader"):
                observations.extend(session.values.values())
    for src_seen, dst_seen in observations:
        assert (src_seen, dst_seen) in {(True, False), (False, True)}, \
            f"reader saw a torn rename: src={src_seen} dst={dst_seen}"
    # the probes must actually straddle the move: someone saw the old
    # world and someone the new one, else the race never happened.
    assert {(True, False), (False, True)} <= set(observations)
    check = cluster.client()
    assert not _exists(check, "/a/src")
    assert _exists(check, "/b/dst")
    check.close()
    cluster.close()


def test_cross_shard_lock_cycle_resolves_by_timeout(tmp_path):
    """Two sessions take X locks on opposite shards in opposite order —
    a deadlock no single shard's waits-for graph can see.  The lock
    timeout (on the parked shard's clock) must break the cycle, the
    victim must retry, and both sessions must complete."""
    cluster = _mkcluster(tmp_path)
    seed = cluster.client()
    _write(seed, "/a/h", b"hot-a")
    _write(seed, "/b/h", b"hot-b")
    seed.close()
    for db in cluster.dbs:
        db.locks.timeout_s = 0.5   # sim seconds; keep the test quick

    def xlock(path):
        # open-write-close inside the open cluster transaction: the
        # write takes the file's exclusive lock until commit.
        return [Call("p_open", path, O_RDWR),
                Call("p_write", Ref(0), b"++"),
                Call("p_close", Ref(0))]

    def both(first, second):
        items = xlock(first)
        tail = [Call("p_open", second, O_RDWR),
                Call("p_write", Ref(3), b"--"),
                Call("p_close", Ref(3))]
        return [Txn(items + tail)]

    with ShardedScheduler(cluster, seed=3, max_retries=20) as sched:
        sched.add_session(both("/a/h", "/b/h"), name="ab", home=0)
        sched.add_session(both("/b/h", "/a/h"), name="ba", home=1)
        report = sched.run()
    assert all(r["state"] == "done" for r in report["sessions"])
    assert report["retries"] >= 1, "the cycle never formed"
    assert report["lock_parks"] >= 1
    cluster.close()


def test_victim_retry_preserves_effects_exactly_once(tmp_path):
    """After timeout-driven retries, each session's transaction must
    have applied exactly once (no doubled appends, no lost writes)."""
    cluster = _mkcluster(tmp_path)
    seed_client = cluster.client()
    _write(seed_client, "/a/h", b"")
    _write(seed_client, "/b/h", b"")
    seed_client.close()
    for db in cluster.dbs:
        db.locks.timeout_s = 0.5

    def writer(mark, first, second):
        def fn(client):
            for path in (first, second):
                fd = client.p_open(path, O_RDWR)
                client.p_write(fd, mark)
                client.p_close(fd)
        # one ClientOp per txn: the retry re-runs the whole function,
        # whose writes are at offset 0 — idempotent by construction.
        return [Txn([ClientOp(f"w{mark!r}", fn)])]

    with ShardedScheduler(cluster, seed=9, max_retries=20) as sched:
        sched.add_session(writer(b"A", "/a/h", "/b/h"), name="ab", home=0)
        sched.add_session(writer(b"B", "/b/h", "/a/h"), name="ba", home=1)
        report = sched.run()
    assert all(r["state"] == "done" for r in report["sessions"])
    check = cluster.client()
    for path in ("/a/h", "/b/h"):
        fd = check.p_open(path)
        assert check.p_read(fd, 1) in (b"A", b"B")
        check.p_close(fd)
    check.close()
    cluster.close()
