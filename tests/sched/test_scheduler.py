"""The deterministic multi-session scheduler.

Covers the sched subsystem's contracts: seeded determinism (same seed ⇒
identical event trace), admission control and backpressure, deadlock-
victim retry with capped backoff, commit clustering, the fairness
report, and simulated lock waits landing in the per-xid accounting.
"""

from __future__ import annotations

import pytest

from repro.core.server import InversionServer
from repro.errors import SchedAdmissionError, SessionFailedError
from repro.sched import Apply, Call, MultiUserScheduler, Ref, Txn
from repro.sched.scheduler import DONE, FAILED


def _write(path: str, data: bytes) -> Apply:
    return Apply(f"write {path}",
                 lambda fs, tx, path=path, data=data:
                 fs.write_file(tx, path, data))


def _disjoint_programs(nclients: int, ntxns: int = 3) -> list[list[Txn]]:
    return [[Txn([_write(f"/f{c}", b"%d:%d" % (c, t) * 50)],
                 tag=f"c{c}t{t}") for t in range(ntxns)]
            for c in range(nclients)]


def _seed_files(fs, nclients: int, extra: tuple = ()) -> None:
    tx = fs.begin()
    for c in range(nclients):
        fs.write_file(tx, f"/f{c}", b"seed")
    for path in extra:
        fs.write_file(tx, path, b"seed")
    fs.commit(tx)
    fs.db.tm.flush_commits()


def _run(fs, programs, **kw):
    server = InversionServer(fs)
    sched = MultiUserScheduler(server, **kw)
    try:
        for i, program in enumerate(programs):
            sched.add_session(program, name=f"s{i}")
        report = sched.run()
    finally:
        sched.close()
    return sched, report


class TestDeterminism:
    def test_same_seed_same_trace(self, tmp_path):
        hashes = []
        for run in range(2):
            from repro.db.database import Database
            from repro.core.filesystem import InversionFS
            db = Database.create(str(tmp_path / f"d{run}"))
            fs = InversionFS.mkfs(db)
            _seed_files(fs, 3)
            sched, _ = _run(fs, _disjoint_programs(3), seed=7)
            hashes.append(sched.trace_hash())
            db.close()
        assert hashes[0] == hashes[1]

    def test_different_seed_different_trace(self, tmp_path):
        hashes = []
        for run, seed in enumerate((0, 1)):
            from repro.db.database import Database
            from repro.core.filesystem import InversionFS
            db = Database.create(str(tmp_path / f"d{run}"))
            fs = InversionFS.mkfs(db)
            _seed_files(fs, 3)
            sched, _ = _run(fs, _disjoint_programs(3), seed=seed)
            hashes.append(sched.trace_hash())
            db.close()
        assert hashes[0] != hashes[1]

    def test_results_correct_under_interleaving(self, fs):
        _seed_files(fs, 4)
        _run(fs, _disjoint_programs(4, ntxns=2), seed=3)
        for c in range(4):
            assert fs.read_file(f"/f{c}") == b"%d:1" % c * 50


class TestAdmission:
    def test_queue_then_backpressure(self, fs):
        _seed_files(fs, 4)
        programs = _disjoint_programs(4, ntxns=1)
        server = InversionServer(fs)
        sched = MultiUserScheduler(server, max_inflight=2, admission_queue=1)
        try:
            a = sched.add_session(programs[0], name="a")
            b = sched.add_session(programs[1], name="b")
            queued = sched.add_session(programs[2], name="q")
            assert a.conn is not None and b.conn is not None
            assert queued.conn is None          # waiting in the queue
            assert sched.stats.admission_waits == 1
            with pytest.raises(SchedAdmissionError):
                sched.add_session(programs[3], name="refused")
            assert sched.stats.rejected == 1
            sched.run()
        finally:
            sched.close()
        # the queued session was admitted when a slot freed, and ran.
        assert queued.state == DONE
        assert queued.admission_wait >= 0.0
        assert fs.read_file("/f2") == b"2:0" * 50

    def test_admission_queue_preserves_fifo(self, fs):
        _seed_files(fs, 5)
        programs = _disjoint_programs(5, ntxns=1)
        server = InversionServer(fs)
        sched = MultiUserScheduler(server, max_inflight=1, admission_queue=4)
        try:
            order = []
            for i, program in enumerate(programs):
                session = sched.add_session(program, name=f"s{i}")
                session._order_probe = order  # noqa: SLF001 (test hook)
            sched.run()
        finally:
            sched.close()
        admits = [s for (_, kind, s, _) in sched.trace if kind == "admit"]
        assert admits == [f"s{i}" for i in range(5)]


class TestVictimRetry:
    def test_deadlock_victim_retries_and_completes(self, fs):
        """Opposite lock orders deadlock; the victim backs off, retries
        the whole transaction, and both sessions finish."""
        _seed_files(fs, 0, extra=("/x", "/y"))
        programs = [
            [Txn([_write("/x", b"a" * 64), _write("/y", b"a" * 64)],
                 tag="xy")],
            [Txn([_write("/y", b"b" * 64), _write("/x", b"b" * 64)],
                 tag="yx")],
        ]
        # seed 3 interleaves the first writes before either second
        # write, producing the cycle (deterministically — same seed,
        # same interleaving).
        sched, report = _run(fs, programs, seed=3)
        assert all(s.state == DONE for s in sched.sessions)
        assert sched.stats.retries >= 1
        assert sched.stats.backoff_seconds.count == sched.stats.retries
        assert sched.stats.backoff_seconds.max <= sched.backoff_cap
        assert report["retries"] == sched.stats.retries
        # 2PL serializability: both files carry the same writer's bytes.
        assert fs.read_file("/x")[:1] == fs.read_file("/y")[:1]

    def test_retry_budget_exhaustion_fails_strictly(self, fs):
        """With no retries allowed, the deadlock victim fails and
        strict mode surfaces it."""
        _seed_files(fs, 0, extra=("/x", "/y"))
        programs = [
            [Txn([_write("/x", b"a" * 64), _write("/y", b"a" * 64)])],
            [Txn([_write("/y", b"b" * 64), _write("/x", b"b" * 64)])],
        ]
        server = InversionServer(fs)
        sched = MultiUserScheduler(server, seed=3, max_retries=0)
        try:
            for i, program in enumerate(programs):
                sched.add_session(program, name=f"s{i}")
            with pytest.raises(SessionFailedError, match="retry budget"):
                sched.run()
            # non-strict reruns report instead of raising
        finally:
            sched.close()
        failed = [s for s in sched.sessions if s.state == FAILED]
        done = [s for s in sched.sessions if s.state == DONE]
        assert len(failed) == 1 and len(done) == 1


class TestLockWaits:
    def test_hot_file_waits_park_and_land_in_accounting(self, fs):
        """Contending sessions park on the scheduler (no threads), the
        waits advance the simulated clock, and the wait time lands in
        the per-xid accounting and lock metrics."""
        _seed_files(fs, 0, extra=("/hot",))
        programs = [
            [Txn([_write("/hot", bytes([65 + c]) * 512)], tag=f"h{c}")
             for _ in range(2)]
            for c in range(3)
        ]
        sched, report = _run(fs, programs, seed=2)
        db = fs.db
        assert sched.stats.lock_parks > 0
        assert report["lock_parks"] == sched.stats.lock_parks
        assert db.locks.stats.waits > 0
        hist = db.obs.metrics.value("lock.wait_seconds")
        assert hist.count == db.locks.stats.waits
        assert hist.sum > 0.0
        waited_xids = [xid for xid, row in db.obs.tx.breakdown().items()
                       if row.get("lock_wait_seconds")]
        assert waited_xids, "no per-xid lock wait recorded"

    def test_fairness_report_shape(self, fs):
        _seed_files(fs, 3)
        sched, report = _run(fs, _disjoint_programs(3), seed=0)
        assert report["starved"] is False
        assert report["max_ready_wait_s"] >= 0.0
        assert len(report["sessions"]) == 3
        for row in report["sessions"]:
            assert row["state"] == DONE
            assert row["slices"] > 0


class TestCommitClustering:
    def test_commits_batch_under_group_window(self, fs):
        """With clustering on and a group-commit window open, each
        round's commits drain back-to-back and share one status
        force."""
        _seed_files(fs, 4)
        fs.db.tm.group_commit_window = 0.05
        forces0 = fs.db.tm.stats.status_forces
        _run(fs, _disjoint_programs(4, ntxns=3), seed=0)
        fs.db.tm.flush_commits()
        fs.db.tm.group_commit_window = 0.0
        forces = fs.db.tm.stats.status_forces - forces0
        assert forces < 12              # 12 commits in fewer forces
        assert fs.db.tm.stats.max_group == 4

    def test_clustering_can_be_disabled(self, fs):
        _seed_files(fs, 4)
        fs.db.tm.group_commit_window = 0.05
        forces0 = fs.db.tm.stats.status_forces
        _run(fs, _disjoint_programs(4, ntxns=3), seed=0,
             cluster_commits=False)
        fs.db.tm.flush_commits()
        fs.db.tm.group_commit_window = 0.0
        forces = fs.db.tm.stats.status_forces - forces0
        assert fs.db.tm.stats.max_group < 4 or forces > 3


class TestPrograms:
    def test_call_and_ref_plumb_results(self, fs):
        """Call units auto-commit one RPC each; Ref feeds an earlier
        result (the fd) into later calls."""
        program = [
            Call("p_begin"),
            Call("p_creat", "/ref"),
            Call("p_write", Ref(1), b"via ref"),
            Call("p_close", Ref(1)),
            Call("p_commit"),
        ]
        sched, _ = _run(fs, [program], seed=0)
        assert fs.read_file("/ref") == b"via ref"

    def test_abort_txn_leaves_no_trace(self, fs):
        _seed_files(fs, 1)
        programs = [[
            Txn([_write("/f0", b"kept")], tag="keep"),
            Txn([_write("/f0", b"discarded")], abort=True, tag="drop"),
        ]]
        _run(fs, programs, seed=0)
        assert fs.read_file("/f0") == b"kept"

    def test_commit_hook_sees_commit_order(self, fs):
        _seed_files(fs, 3)
        server = InversionServer(fs)
        sched = MultiUserScheduler(server, seed=4)
        committed = []
        sched.commit_hook = lambda session, tag, xid: committed.append(
            (tag, xid))
        try:
            for i, program in enumerate(_disjoint_programs(3, ntxns=2)):
                sched.add_session(program, name=f"s{i}")
            sched.run()
        finally:
            sched.close()
        assert len(committed) == 6
        xids = [xid for _, xid in committed]
        assert xids == sorted(xids, key=lambda x: fs.db.tm.commit_time(x))


class TestMetrics:
    def test_sched_metrics_mirrored_and_unbound_on_close(self, fs):
        _seed_files(fs, 2)
        server = InversionServer(fs)
        sched = MultiUserScheduler(server, seed=0)
        try:
            for i, program in enumerate(_disjoint_programs(2)):
                sched.add_session(program, name=f"s{i}")
            sched.run()
            registry = fs.db.obs.metrics
            assert registry.value("sched.slices") == sched.stats.slices
            assert registry.value("sched.context_switches") == \
                sched.stats.context_switches
        finally:
            sched.close()
        # the wait strategy is restored on close
        from repro.db.locks import ThreadWaitStrategy
        assert isinstance(fs.db.locks.wait_strategy, ThreadWaitStrategy)
