"""NFS server (statelessness, PRESTOserve) and client (transfer split,
pipelining)."""

import pytest

from repro.errors import NfsError
from repro.nfs.client import NFSClient, UDP_RPC_10MBIT
from repro.nfs.ffs import BLOCK_SIZE, FastFileSystem
from repro.nfs.prestoserve import PrestoServe
from repro.nfs.server import NFS_MAX_TRANSFER, NFSServer
from repro.sim.clock import SimClock
from repro.sim.disk import DiskModel
from repro.sim.network import NetworkModel


def build(prestoserve=True, pipeline=True):
    clock = SimClock()
    disk = DiskModel(clock=clock)
    ffs = FastFileSystem(clock, disk)
    board = PrestoServe.attach(ffs) if prestoserve else None
    server = NFSServer(ffs, board)
    client = NFSClient(server, NetworkModel(clock=clock, params=UDP_RPC_10MBIT),
                       pipeline=pipeline)
    return clock, ffs, board, server, client


def test_create_write_read_cycle():
    _clock, _ffs, _board, _server, client = build()
    fh = client.create("/f")
    data = bytes(range(256)) * 200
    client.write(fh, 0, data)
    assert client.read(fh, 0, len(data)) == data
    assert client.getattr(fh).size == len(data)


def test_lookup_and_remove():
    _clock, _ffs, _board, _server, client = build()
    client.create("/f")
    fh = client.lookup("/f")
    client.remove("/f")
    with pytest.raises(NfsError):
        client.lookup("/f")


def test_stale_handle_rejected():
    _clock, _ffs, _board, server, client = build()
    with pytest.raises(NfsError):
        server.nfs_read(999, 0, 10)


def test_oversize_protocol_transfer_rejected():
    _clock, _ffs, _board, server, _client = build()
    fh = server.nfs_create("/f")
    with pytest.raises(NfsError):
        server.nfs_read(fh, 0, NFS_MAX_TRANSFER + 1)
    with pytest.raises(NfsError):
        server.nfs_write(fh, 0, bytes(NFS_MAX_TRANSFER + 1))


def test_client_splits_large_transfers():
    _clock, _ffs, _board, _server, client = build()
    fh = client.create("/f")
    msgs_before = client.network.stats.messages
    client.write(fh, 0, bytes(4 * NFS_MAX_TRANSFER))
    # 4 transfers → ≥ 8 messages (pipelined ones also count).
    assert client.network.stats.messages - msgs_before >= 8


def test_writes_without_board_are_forced():
    """"NFS must force every write to stable storage synchronously"."""
    _clock, ffs, _board, _server, client = build(prestoserve=False)
    fh = client.create("/f")
    writes_before = ffs.disk.stats.writes
    client.write(fh, 0, bytes(BLOCK_SIZE))
    assert ffs.disk.stats.writes > writes_before


def test_board_absorbs_writes():
    _clock, ffs, board, _server, client = build(prestoserve=True)
    fh = client.create("/f")
    writes_before = ffs.disk.stats.writes
    client.write(fh, 0, bytes(BLOCK_SIZE))
    assert ffs.disk.stats.writes == writes_before
    assert board.nvram.stats.absorbed_writes >= 1


def test_read_after_write_served_from_board():
    _clock, ffs, _board, _server, client = build()
    fh = client.create("/f")
    client.write(fh, 0, b"fresh" + bytes(BLOCK_SIZE - 5))
    assert client.read(fh, 0, 5) == b"fresh"


def test_nvram_speedup_matches_paper_shape():
    """With the board, page writes cost network only; without it, they
    cost network + forced disk — the Figure 6 asymmetry."""
    def run(prestoserve):
        clock, _ffs, _board, _server, client = build(prestoserve)
        fh = client.create("/f")
        start = clock.now()
        for i in range(16):
            client.write(fh, i * BLOCK_SIZE, bytes(BLOCK_SIZE))
        return clock.now() - start
    assert run(True) * 1.5 < run(False)


def test_pipelined_reads_faster_than_serial():
    def run(pipeline):
        clock, ffs, _board, _server, client = build(pipeline=pipeline)
        fh = client.create("/f")
        client.write(fh, 0, bytes(32 * BLOCK_SIZE))
        ffs.drop_caches()
        start = clock.now()
        client.read(fh, 0, 32 * BLOCK_SIZE)
        return clock.now() - start
    assert run(True) < run(False)


def test_byte_write_pays_rmw_read():
    clock, ffs, _board, _server, client = build()
    fh = client.create("/f")
    client.write(fh, 0, bytes(BLOCK_SIZE))
    ffs.drop_caches()
    reads_before = ffs.disk.stats.reads
    client.write(fh, 10, b"x")
    assert ffs.disk.stats.reads == reads_before + 1
