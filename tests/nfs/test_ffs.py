"""Fast File System simulator."""

import pytest

from repro.errors import FfsError, FfsFileTooLargeError
from repro.nfs.ffs import BLOCK_SIZE, FastFileSystem, MAX_FFS_FILE_SIZE
from repro.sim.clock import SimClock
from repro.sim.disk import DiskModel


@pytest.fixture
def ffs():
    clock = SimClock()
    return FastFileSystem(clock, DiskModel(clock=clock))


def test_create_lookup_unlink(ffs):
    inode = ffs.create("/f")
    assert ffs.lookup("/f").ino == inode.ino
    assert ffs.exists("/f")
    ffs.unlink("/f")
    assert not ffs.exists("/f")
    with pytest.raises(FfsError):
        ffs.lookup("/f")


def test_duplicate_create_rejected(ffs):
    ffs.create("/f")
    with pytest.raises(FfsError):
        ffs.create("/f")


def test_write_read_roundtrip(ffs):
    inode = ffs.create("/f")
    data = bytes(range(256)) * 100
    ffs.write(inode, 0, data)
    assert ffs.read(inode, 0, len(data)) == data
    assert inode.size == len(data)


def test_partial_block_rmw(ffs):
    inode = ffs.create("/f")
    ffs.write(inode, 0, b"a" * 100)
    ffs.write(inode, 50, b"B" * 10)
    assert ffs.read(inode, 0, 100) == b"a" * 50 + b"B" * 10 + b"a" * 40


def test_holes_read_zero(ffs):
    inode = ffs.create("/f")
    ffs.write(inode, 3 * BLOCK_SIZE, b"tail")
    assert ffs.read(inode, 0, 4) == bytes(4)


def test_read_truncated_at_eof(ffs):
    inode = ffs.create("/f")
    ffs.write(inode, 0, b"abc")
    assert ffs.read(inode, 1, 100) == b"bc"


def test_four_gb_limit(ffs):
    """The paper: "the practical upper limit on file sizes in the
    current UNIX Fast File System is 4 GBytes"."""
    inode = ffs.create("/f")
    with pytest.raises(FfsFileTooLargeError):
        ffs.write(inode, MAX_FFS_FILE_SIZE - 1, b"xx")


def test_file_blocks_mostly_contiguous(ffs):
    """Cylinder-group policy: one file's blocks are physically close."""
    inode = ffs.create("/f")
    ffs.write(inode, 0, bytes(50 * BLOCK_SIZE))
    addrs = [inode.blocks[i] for i in range(50)]
    # Monotone and dense (allowing the occasional indirect block gap).
    assert addrs == sorted(addrs)
    assert addrs[-1] - addrs[0] < 60


def test_different_files_in_different_cylinder_groups(ffs):
    a = ffs.create("/a")
    b = ffs.create("/b")
    ffs.write(a, 0, bytes(BLOCK_SIZE))
    ffs.write(b, 0, bytes(BLOCK_SIZE))
    assert a.cylinder_group != b.cylinder_group
    assert abs(a.blocks[0] - b.blocks[0]) >= 2048 - 1


def test_sync_write_hits_disk_immediately(ffs):
    inode = ffs.create("/f")
    writes_before = ffs.disk.stats.writes
    ffs.write(inode, 0, bytes(BLOCK_SIZE), sync=True)
    assert ffs.disk.stats.writes == writes_before + 1


def test_async_write_deferred_until_flush(ffs):
    inode = ffs.create("/f")
    writes_before = ffs.disk.stats.writes
    ffs.write(inode, 0, bytes(BLOCK_SIZE), sync=False)
    assert ffs.disk.stats.writes == writes_before
    ffs.flush()
    assert ffs.disk.stats.writes == writes_before + 1


def test_clean_cached_write_never_written(ffs):
    """dirty=False models PRESTOserve owning stability."""
    inode = ffs.create("/f")
    writes_before = ffs.disk.stats.writes
    ffs.write(inode, 0, bytes(BLOCK_SIZE), sync=False, dirty=False)
    ffs.flush()
    assert ffs.disk.stats.writes == writes_before


def test_cache_eviction_writes_dirty_blocks():
    clock = SimClock()
    ffs = FastFileSystem(clock, DiskModel(clock=clock), cache_blocks=8)
    inode = ffs.create("/f")
    ffs.write(inode, 0, bytes(20 * BLOCK_SIZE), sync=False)
    assert ffs.disk.stats.writes >= 12


def test_indirect_blocks_charged(ffs):
    inode = ffs.create("/f")
    nblocks = 13
    ffs.write(inode, 0, bytes(nblocks * BLOCK_SIZE))
    assert ffs.stats.indirect_writes == 1
    assert len(inode.indirect_blocks) == 1


def test_drop_caches_then_reads_pay_disk(ffs):
    inode = ffs.create("/f")
    ffs.write(inode, 0, bytes(4 * BLOCK_SIZE))
    ffs.drop_caches()
    reads_before = ffs.disk.stats.reads
    ffs.read(inode, 0, 4 * BLOCK_SIZE)
    assert ffs.disk.stats.reads == reads_before + 4


def test_indirect_block_writes_not_double_counted(ffs):
    """Regression: allocating an indirect block used to bump both
    indirect_writes and data_writes for the same physical write.  The
    categories are disjoint: 13 logical data blocks = 13 data writes
    plus exactly one indirect write, device cost unchanged."""
    inode = ffs.create("/f")
    nblocks = 13  # NDIRECT + 1: forces one indirect block
    ffs.write(inode, 0, bytes(nblocks * BLOCK_SIZE))
    assert ffs.stats.data_writes == nblocks
    assert ffs.stats.indirect_writes == 1


def test_bind_metrics_mirrors_stats(ffs):
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    ffs.bind_metrics(registry)
    inode = ffs.create("/f")
    ffs.write(inode, 0, bytes(2 * BLOCK_SIZE))
    assert registry.value("ffs.data_writes") == ffs.stats.data_writes == 2
    assert registry.value("ffs.inode_writes") == ffs.stats.inode_writes
