"""Unit tests for the benchmark harness itself."""

import pytest

from repro.bench.report import (
    PAPER_TABLE3,
    format_figure,
    format_table3,
    shape_ratios,
)
from repro.bench.workload import Benchmark, BenchmarkSizes, PAGE_IO


def test_sizes_default_match_paper():
    sizes = BenchmarkSizes()
    assert sizes.file_size == 25_000_000
    assert sizes.transfer_size == 1_000_000
    assert sizes.io_size is None  # adapter decides


def test_sizes_scaled_bounds():
    tiny = BenchmarkSizes.scaled(0.0001)
    assert tiny.file_size >= 4 * PAGE_IO
    assert tiny.transfer_size >= 2 * PAGE_IO
    half = BenchmarkSizes.scaled(0.5)
    assert half.file_size == 12_500_000


def test_paper_table3_complete():
    for config in ("inversion_cs", "nfs", "inversion_sp"):
        assert set(PAPER_TABLE3[config]) == set(Benchmark.ALL_OPS)


def test_paper_numbers_shape_sanity():
    """The transcription itself must encode the paper's story."""
    cs, nfs, sp = (PAPER_TABLE3["inversion_cs"], PAPER_TABLE3["nfs"],
                   PAPER_TABLE3["inversion_sp"])
    for op in Benchmark.ALL_OPS:
        assert cs[op] >= nfs[op], op          # NFS beats client/server
        assert sp[op] <= cs[op], op           # in-process beats remote
    # The one NFS win over single-process:
    assert nfs["write_random_pages"] < sp["write_random_pages"]


def test_shape_ratios():
    results = {"inversion_cs": {"create": 100.0}, "nfs": {"create": 50.0},
               "inversion_sp": {}}
    assert shape_ratios(results) == {"create": 2.0}


def test_format_table3_includes_paper_rows():
    results = {c: dict.fromkeys(Benchmark.ALL_OPS, 1.0)
               for c in ("inversion_cs", "nfs", "inversion_sp")}
    text = format_table3(results, "unit test")
    assert "Create 25MByte file" in text
    assert "(paper)" in text
    assert "unit test" in text


def test_format_figure_each():
    results = {c: dict.fromkeys(Benchmark.ALL_OPS, 1.0)
               for c in ("inversion_cs", "nfs", "inversion_sp")}
    for fig in ("fig3", "fig4", "fig5", "fig6"):
        text = format_figure(fig, results)
        assert "Figure" in text
        assert "#" in text  # the bars


def test_benchmark_payload_deterministic():
    class Dummy:
        clock = None
    bench_a = Benchmark.__new__(Benchmark)
    bench_b = Benchmark.__new__(Benchmark)
    assert bench_a._payload(1000, 3) == bench_b._payload(1000, 3)
    assert bench_a._payload(1000, 3) != bench_a._payload(1000, 4)
    assert len(bench_a._payload(12345, 0)) == 12345


def test_random_offsets_deterministic_and_aligned():
    bench = Benchmark.__new__(Benchmark)
    bench.seed = 42
    a = bench._random_offsets(10, 100_000, 8192, "x")
    b = bench._random_offsets(10, 100_000, 8192, "x")
    c = bench._random_offsets(10, 100_000, 8192, "y")
    assert a == b
    assert a != c
    assert all(off % 8192 == 0 for off in a)
    assert all(0 <= off < 100_000 for off in a)
