"""Smoke tests for the replication benchmark (scaled way down)."""

import json

import pytest

import repro.bench.replication as bench


@pytest.fixture(autouse=True)
def _tiny(monkeypatch):
    monkeypatch.setattr(bench, "REPLICA_COUNTS", (0, 1))
    monkeypatch.setattr(bench, "READER_SESSIONS", 2)
    monkeypatch.setattr(bench, "FILES", 2)
    monkeypatch.setattr(bench, "CHUNKS_PER_FILE", 1)
    monkeypatch.setattr(bench, "LAG_WRITE_TXNS", 4)
    monkeypatch.setattr(bench, "LAG_SYNC_EVERY", 2)
    monkeypatch.setattr(bench, "PROMO_BACKLOG_TXNS", 2)


def test_read_scaling_rows():
    rows = bench.run_read_scaling()
    assert [r["replicas"] for r in rows] == [0, 1]
    for row in rows:
        assert row["reads"] == 2 * 2  # sessions × files, 1 chunk each
        assert row["reads_per_sec"] > 0
    # With one replica, every read was served by it, none by the primary.
    assert rows[0]["replica_reads"] == 0
    assert rows[1]["replica_reads"] > 0


def test_lag_samples_and_shipping_costs():
    lag = bench.run_lag()
    assert len(lag["samples"]) == 2
    assert lag["max_lag_xids"] >= 1   # syncs lag the writes by design
    assert lag["final_lag_xids"] == 0
    assert lag["bytes_shipped"] > 0
    assert lag["rounds"] >= len(lag["samples"])


def test_promotion_drains_the_backlog():
    promo = bench.run_promotion()
    assert promo["backlog_entries"] > 0
    assert promo["drained_entries"] == promo["backlog_entries"]
    assert promo["promotion_s"] > 0
    assert promo["promotions"] == 1


def test_main_writes_deterministic_json(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(bench, "REPLICA_COUNTS", (1, 4))
    out1 = tmp_path / "one.json"
    out2 = tmp_path / "two.json"
    assert bench.main([str(out1)]) == 0
    assert bench.main([str(out2)]) == 0
    assert out1.read_bytes() == out2.read_bytes()
    doc = json.loads(out1.read_text())
    assert doc["scaling"]["speedup_4_over_1"] > 1.0
    assert "wrote" in capsys.readouterr().out
