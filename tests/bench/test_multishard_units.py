"""The multi-shard benchmark at small scale: counters, determinism,
and the shape of the scaling story (CI-sized smoke of task 6)."""

from repro.bench.multishard import run_multishard, run_shards


def test_disjoint_config_sends_no_cross_shard_messages():
    r = run_shards(2, clients=6, txns=2)
    assert r["routing"]["cross_shard_messages"] == 0
    assert r["routing"]["single_shard_txns"] == 12
    assert r["routing"]["cross_shard_txns"] == 0
    assert r["transactions"] == 12
    assert r["status_forces"] == 12        # one force per local commit


def test_twophase_config_pays_per_transaction():
    r = run_shards(2, clients=4, txns=2, twophase=True)
    routing = r["routing"]
    assert routing["cross_shard_txns"] == 8
    assert routing["prepares"] == 16       # two writers per txn
    assert routing["decisions"] == 8       # one decision force per txn
    assert routing["cross_shard_messages"] > 0
    assert routing["messages_per_txn"] == \
        routing["cross_shard_messages"] / 8


def test_runs_are_byte_identical():
    a = run_multishard(shard_counts=(1, 2), clients=4, txns=2)
    b = run_multishard(shard_counts=(1, 2), clients=4, txns=2)
    assert a == b
    for ra, rb in zip(a["disjoint"], b["disjoint"]):
        assert ra["trace_hash"] == rb["trace_hash"]


def test_shards_speed_up_disjoint_work():
    result = run_multishard(shard_counts=(1, 2), clients=8, txns=2)
    speedups = result["scaling"]["speedups_over_one_shard"]
    assert speedups["1"] == 1.0
    assert speedups["2"] > 1.3
    # crossing the partition is slower than staying home
    assert result["twophase"]["txns_per_sec"] < \
        result["disjoint"][1]["txns_per_sec"]
