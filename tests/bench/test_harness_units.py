"""Harness drivers: config builders and op selection."""

import pytest

from repro.bench.harness import (
    BUILDERS,
    TABLE3_CONFIGS,
    build_inversion_sp,
    build_nfs,
    run_config,
)
from repro.bench.workload import Benchmark, BenchmarkSizes

TINY = BenchmarkSizes.scaled(0.01)


def test_builders_cover_table3_configs():
    assert set(TABLE3_CONFIGS) <= set(BUILDERS)


def test_run_config_full(tmp_path):
    results = run_config("nfs", sizes=TINY)
    assert set(results) == set(Benchmark.ALL_OPS)
    assert all(v >= 0 for v in results.values())


def test_run_config_subset():
    results = run_config("nfs", sizes=TINY, ops=("read_seq_pages",))
    assert set(results) == {"create", "read_seq_pages"}


def test_builder_kwargs_reach_configuration():
    built = build_inversion_sp(buffer_pages=64)
    try:
        assert built.adapter.db.buffers.capacity == 64
    finally:
        built.close()
    built = build_nfs(prestoserve=False)
    try:
        assert built.name == "nfs_nopresto"
        assert built.adapter.prestoserve is None
    finally:
        built.close()


def test_inversion_adapter_prefers_chunk_io():
    from repro.core.constants import CHUNK_SIZE
    built = build_inversion_sp()
    try:
        assert built.adapter.preferred_io_size == CHUNK_SIZE
    finally:
        built.close()


def test_nfs_adapter_prefers_page_io():
    built = build_nfs()
    try:
        assert built.adapter.preferred_io_size == 8192
    finally:
        built.close()


def test_workload_reads_verify_content():
    """The read ops raise if the file system returns wrong bytes —
    guard the guard."""
    built = build_nfs()
    try:
        bench = Benchmark(built.adapter, TINY)
        bench.op_create()
        # Corrupt the stored data behind the adapter's back.
        ffs = built.adapter.ffs
        inode = ffs.lookup(Benchmark.FILE_NAME)
        block = inode.blocks[0]
        ffs._data[block] = bytes(len(ffs._data[block]))
        with pytest.raises(AssertionError):
            bench.op_read_single()
    finally:
        built.close()


def test_cli_scaled_run(capsys):
    from repro.bench.__main__ import main
    assert main(["fig3", "--scale", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "scaled" in out
