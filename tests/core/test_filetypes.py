"""Typed files: declaration, assignment, enforced function typing."""

import pytest

from repro.core.filetypes import FileTypeManager
from repro.core.functions import (
    make_satellite_image,
    make_troff_document,
    register_standard_types,
    snow,
)
from repro.errors import FileTypeError, FunctionError


@pytest.fixture
def typed_fs(fs, client):
    tx = fs.begin()
    register_standard_types(fs, tx)
    fs.commit(tx)
    return fs, client


def _store(client, fs, path, data, ftype):
    fd = client.p_creat(path, ftype="plain")
    client.p_write(fd, data)
    client.p_close(fd)
    tx = fs.begin()
    fs.set_file_type(tx, path, ftype)
    fs.commit(tx)


def test_function_runs_on_right_type(typed_fs, clock):
    fs, client = typed_fs
    img = make_satellite_image(16, 16, 5, snow_fraction=1.0)
    _store(client, fs, "/img.tm", img, "tm_image")
    fileid = fs.resolve("/img.tm")
    result = fs.db.funcs.call("snow", [fileid], fs.db.asof(clock.now()))
    assert result == snow(img)


def test_type_checking_enforced(typed_fs, clock):
    """Paper: "POSTGRES will automatically enforce type checking
    when … functions are called that operate on the file"."""
    fs, client = typed_fs
    _store(client, fs, "/doc.t", make_troff_document("T", ["x"]),
           "troff_document")
    fileid = fs.resolve("/doc.t")
    snap = fs.db.asof(clock.now())
    with pytest.raises((FileTypeError, FunctionError)):
        fs.db.funcs.call("snow", [fileid], snap)
    # But the document functions work.
    assert fs.db.funcs.call("linecount", [fileid], snap) > 0


def test_function_with_extra_args(typed_fs, clock):
    fs, client = typed_fs
    img = make_satellite_image(8, 8, 5, snow_fraction=0.0)
    _store(client, fs, "/i", img, "avhrr_image")
    fileid = fs.resolve("/i")
    snap = fs.db.asof(clock.now())
    avg = fs.db.funcs.call("pixelavg", [fileid, 1], snap)
    assert 0.0 <= avg <= 255.0


def test_functions_honour_time_travel(typed_fs, clock):
    """Functions applied under a historical snapshot analyse the
    historical bytes."""
    fs, client = typed_fs
    doc_v1 = make_troff_document("v1", ["alpha"], paragraphs=1)
    _store(client, fs, "/d", doc_v1, "troff_document")
    t0 = clock.now()
    from repro.core.constants import O_RDWR
    fd = client.p_open("/d", O_RDWR)
    client.p_write(fd, make_troff_document("v2", ["beta"], paragraphs=1))
    client.p_close(fd)
    fileid = fs.resolve("/d")
    then = fs.db.funcs.call("keywords", [fileid], fs.db.asof(t0))
    now = fs.db.funcs.call("keywords", [fileid], fs.db.asof(clock.now()))
    assert "alpha" in then
    assert "beta" in now


def test_functions_for_type_lists_table2_column(typed_fs):
    fs, _client = typed_fs
    tx = fs.begin()
    ftm = FileTypeManager(fs)
    troff_funcs = ftm.functions_for_type("troff_document", tx)
    fs.commit(tx)
    assert set(troff_funcs) >= {"keywords", "wordcount", "fonts", "sizes"}


def test_custom_type_and_function_registration(fs, client, clock):
    ftm = FileTypeManager(fs)
    tx = fs.begin()
    ftm.define_file_type(tx, "csv_table", "comma separated values")
    ftm.register_content_function(
        tx, "colcount", lambda data: data.split(b"\n")[0].count(b",") + 1,
        "int4", ["csv_table"])
    fs.commit(tx)
    _store(client, fs, "/t.csv", b"a,b,c\n1,2,3\n", "csv_table")
    fileid = fs.resolve("/t.csv")
    assert fs.db.funcs.call("colcount", [fileid],
                            fs.db.asof(clock.now())) == 3


def test_fileid_function_gets_fs_context(fs, client, clock):
    ftm = FileTypeManager(fs)
    tx = fs.begin()
    ftm.register_fileid_function(
        tx, "depth",
        lambda f, fileid, snapshot: f.namespace.construct_path(
            fileid, snapshot).count("/"),
        "int4")
    fs.commit(tx)
    client.p_mkdir("/a")
    fd = client.p_creat("/a/b")
    client.p_close(fd)
    fileid = fs.resolve("/a/b")
    assert fs.db.funcs.call("depth", [fileid],
                            fs.db.asof(clock.now())) == 2
