"""The Table 2 file-type functions and the synthetic data generators."""

import pytest

from repro.core import functions as fn
from repro.errors import FileTypeError


def test_linecount_and_wordcount():
    doc = b"one two\nthree\n"
    assert fn.linecount(doc) == 2
    assert fn.wordcount(doc) == 3
    assert fn.linecount(b"") == 0


def test_keywords_from_troff():
    doc = fn.make_troff_document("On RISC", ["RISC", "pipeline"])
    assert "RISC" in fn.keywords(doc)
    assert "pipeline" in fn.keywords(doc)
    assert fn.keywords(b"no macros here") == ""


def test_fonts_and_sizes():
    doc = b".ft B\n.ps 12\n.ps 10\nbody \\fItext\\fR\n"
    assert set(fn.fonts(doc).split()) >= {"B", "I", "R"}
    assert fn.sizes(doc) == "10 12"


def test_satellite_header_roundtrip():
    img = fn.make_satellite_image(width=8, height=4, nbands=5)
    assert fn.pixelcount(img) == 32
    assert len(fn.getband(img, 0)) == 32
    assert len(fn.getband(img, 4)) == 32


def test_snow_fraction_controllable():
    clean = fn.make_satellite_image(32, 32, 5, snow_fraction=0.0, seed=1)
    snowy = fn.make_satellite_image(32, 32, 5, snow_fraction=1.0, seed=1)
    half = fn.make_satellite_image(32, 32, 5, snow_fraction=0.5, seed=1)
    assert fn.snow(clean) == 0
    assert fn.snow(snowy) == 1024
    assert 300 < fn.snow(half) < 700


def test_pixelavg_and_getpixel():
    img = fn.make_satellite_image(4, 4, 2, snow_fraction=1.0, seed=3)
    assert fn.pixelavg(img, 0) >= 200  # snow pixels are bright in band 0
    value = fn.getpixel(img, 0, 0)
    assert 0 <= value <= 255


def test_getpixel_out_of_bounds():
    img = fn.make_satellite_image(4, 4, 1)
    with pytest.raises(FileTypeError):
        fn.getpixel(img, 4, 0)


def test_bad_band_rejected():
    img = fn.make_satellite_image(4, 4, 2)
    with pytest.raises(FileTypeError):
        fn.getband(img, 5)


def test_corrupt_image_rejected():
    with pytest.raises(FileTypeError):
        fn.pixelcount(b"NOPE" + bytes(100))
    with pytest.raises(FileTypeError):
        fn.pixelcount(b"")
    truncated = fn.make_satellite_image(8, 8, 3)[:-10]
    with pytest.raises(FileTypeError):
        fn.getband(truncated, 2)


def test_generators_deterministic():
    a = fn.make_satellite_image(16, 16, 5, 0.3, seed=7)
    b = fn.make_satellite_image(16, 16, 5, 0.3, seed=7)
    c = fn.make_satellite_image(16, 16, 5, 0.3, seed=8)
    assert a == b
    assert a != c
    assert fn.make_ascii_document(10, seed=1) == fn.make_ascii_document(10, seed=1)


def test_register_standard_types(fs):
    tx = fs.begin()
    fn.register_standard_types(fs, tx)
    fs.commit(tx)
    tx2 = fs.begin()
    snap = fs.db.snapshot(tx2)
    for typename in fn.STANDARD_TYPES:
        assert fs.db.catalog.lookup_type(typename, snap) is not None
    snow_proc = fs.db.catalog.lookup_function("snow", snap)
    assert snow_proc is not None
    fs.commit(tx2)
