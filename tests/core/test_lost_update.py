"""ROADMAP open item 4: the open-time-size lost update.

A FileHandle captures the file's size at open.  Before the fix, flush
published that captured size unconditionally, so a handle that stayed
open across another transaction's commit — including a ``write(b"")``
handle that never takes a chunk lock — could commit a stale, smaller
size and "shrink" the other writer's durable data.  The fix detects
the intervening commit via the per-file data version, re-merges any
buffered chunks whose written spans don't cover the committed extent,
and reconciles size against the current fileatt row under the write
lock.
"""

from __future__ import annotations

import pytest

from repro.core.constants import O_RDWR
from repro.core.filesystem import InversionFS
from repro.db.database import Database
from repro.sched import Apply, MultiUserScheduler, Txn
from repro.sim.clock import SimClock


@pytest.fixture
def fs(tmp_path):
    db = Database.create(str(tmp_path / "db"), clock=SimClock())
    try:
        yield InversionFS.mkfs(db)
    finally:
        db.close()


def _commit_file(fs, path, data):
    tx = fs.begin()
    fs.write_file(tx, path, data)
    fs.commit(tx)


def test_zero_length_write_does_not_shrink_concurrent_commit(fs):
    """write(b"") takes no chunk locks, so nothing serializes it
    against a concurrent writer — its flush must still not publish the
    stale open-time size over the larger committed one."""
    _commit_file(fs, "/f", b"a" * 1000)
    txb = fs.begin()
    handle = fs.open("/f", O_RDWR, tx=txb)
    assert handle.size == 1000
    # Another transaction commits a longer overwrite under the open
    # handle (legal: the empty writer holds no locks yet).
    _commit_file(fs, "/f", b"b" * 5000)
    handle.write(b"")
    handle.close()
    fs.commit(txb)
    assert fs.stat("/f").size == 5000
    assert fs.read_file("/f") == b"b" * 5000


def test_shorter_overwrite_reconciles_size_at_flush(fs):
    """A 100-byte overwrite committed after a concurrent 5000-byte one
    must land at size 5000 (write-at-zero never truncates), not at the
    open-time max(1000, 100)."""
    _commit_file(fs, "/f", b"a" * 1000)
    txb = fs.begin()
    handle = fs.open("/f", O_RDWR, tx=txb)
    _commit_file(fs, "/f", b"b" * 5000)
    handle.write(b"c" * 100)
    handle.close()
    fs.commit(txb)
    assert fs.stat("/f").size == 5000
    assert fs.read_file("/f") == b"c" * 100 + b"b" * 4900


def test_scheduler_interleaved_different_length_overwrites(fs):
    """Scheduler-driven version of the same race: two sessions
    overwrite one hot file with different lengths.  Whatever the
    commit order, the final state must be a prefix-overwrite of the
    longer committed content — never a truncation to the shorter
    writer's open-time size."""
    _commit_file(fs, "/hot", b"s" * 1000)
    fs.db.tm.flush_commits()
    from repro.core.server import InversionServer

    parked = 0
    for seed in range(6):
        server = InversionServer(fs)
        sched = MultiUserScheduler(server, seed=seed)
        try:
            sched.add_session(
                [Txn([Apply("long", lambda f, tx: f.write_file(
                    tx, "/hot", b"L" * 5000))], tag="long")], name="a")
            sched.add_session(
                [Txn([Apply("short", lambda f, tx: f.write_file(
                    tx, "/hot", b"S" * 100))], tag="short")], name="b")
            sched.run(strict=True)
        finally:
            sched.close()
        parked += sched.stats.lock_parks
        legal = {
            b"L" * 5000,                    # long committed last
            b"S" * 100 + b"L" * 4900,       # short committed last
        }
        assert fs.stat("/hot").size == 5000, f"seed {seed} lost the size"
        assert fs.read_file("/hot") in legal, f"seed {seed} torn content"
        # Re-seed a known full-length baseline for the next round
        # (write-at-zero never truncates, so size stays 5000).
        _commit_file(fs, "/hot", b"s" * 5000)
        fs.db.tm.flush_commits()
    assert parked > 0, "no seed ever contended; race never exercised"
