"""File attribute table semantics."""

import pytest

from repro.core.fileatt import FileAtt
from repro.errors import FileNotFoundError_


def test_create_sets_all_timestamps_equal(fs, clock):
    tx = fs.begin()
    att = fs.fileatt.create(tx, 4242, "mao", "plain")
    fs.commit(tx)
    assert att.ctime == att.mtime == att.atime
    assert att.size == 0
    assert att.owner == "mao"


def test_partial_update_preserves_other_fields(fs, clock):
    tx = fs.begin()
    fs.fileatt.create(tx, 4242, "mao", "plain")
    fs.commit(tx)
    clock.advance(3.0)
    tx = fs.begin()
    updated = fs.fileatt.update(tx, 4242, size=99)
    fs.commit(tx)
    assert updated.size == 99
    assert updated.owner == "mao"
    assert updated.type == "plain"
    assert updated.mtime < clock.now()  # untouched


def test_owner_change(fs):
    tx = fs.begin()
    fs.fileatt.create(tx, 7, "alice", "plain")
    fs.fileatt.update(tx, 7, owner="bob")
    fs.commit(tx)
    tx = fs.begin()
    assert fs.fileatt.get(7, fs.db.snapshot(tx), tx).owner == "bob"
    fs.commit(tx)


def test_missing_file_raises(fs):
    tx = fs.begin()
    with pytest.raises(FileNotFoundError_):
        fs.fileatt.get(999999, fs.db.snapshot(tx), tx)
    with pytest.raises(FileNotFoundError_):
        fs.fileatt.update(tx, 999999, size=1)
    with pytest.raises(FileNotFoundError_):
        fs.fileatt.remove(tx, 999999)
    fs.abort(tx)


def test_attribute_history_is_versioned(fs, clock):
    tx = fs.begin()
    fs.fileatt.create(tx, 11, "root", "plain")
    fs.commit(tx)
    t0 = clock.now()
    tx = fs.begin()
    fs.fileatt.update(tx, 11, size=500)
    fs.commit(tx)
    then = fs.fileatt.get(11, fs.db.asof(t0))
    now = fs.fileatt.get(11, fs.db.asof(clock.now()))
    assert then.size == 0
    assert now.size == 500


def test_row_roundtrip():
    att = FileAtt(5, "o", "t", 10, 1.0, 2.0, 3.0)
    assert FileAtt.from_row(att.to_row()) == att


def test_deep_directory_nesting(fs, client):
    path = ""
    for depth in range(20):
        path += f"/d{depth}"
        client.p_mkdir(path)
    fd = client.p_creat(path + "/leaf")
    client.p_close(fd)
    assert fs.read_file(path + "/leaf") == b""
    fileid = fs.resolve(path + "/leaf")
    assert fs.path_of(fileid) == path + "/leaf"


def test_large_directory_listing(fs, client):
    client.p_mkdir("/big")
    names = [f"entry{i:03d}" for i in range(150)]
    for name in names:
        fd = client.p_creat(f"/big/{name}")
        client.p_close(fd)
    assert fs.readdir("/big") == sorted(names)
