"""Self-identifying-block consistency checking with injected corruption."""

import pytest

from repro.core.checker import ConsistencyChecker
from repro.core.chunks import ChunkStore, chunk_table_name
from repro.core.constants import CHUNK_SIZE
from repro.errors import InversionError


@pytest.fixture
def populated(fs, client):
    client.p_mkdir("/data")
    for name, size in (("a", 100), ("b", 2 * CHUNK_SIZE + 7)):
        fd = client.p_creat(f"/data/{name}")
        client.p_write(fd, b"z" * size)
        client.p_close(fd)
    return fs, client


def test_clean_file_system_reports_clean(populated):
    fs, _client = populated
    report = ConsistencyChecker(fs).check_all()
    assert report.clean
    assert report.files_checked == 2
    assert report.chunks_checked == 4  # 1 + 3 chunks


def test_misdirected_write_detected(populated):
    """A chunk tagged with the wrong file identifier (a misdirected
    write) is exactly what self-identification exists to catch."""
    fs, _client = populated
    fileid = fs.resolve("/data/a")
    tx = fs.begin()
    table = fs.db.table(chunk_table_name(fileid), tx)
    tid, row = next(iter(table.scan(fs.db.snapshot(tx), tx)))
    table.update(tx, tid, (row[0], 999999, row[2]))  # wrong selfid
    fs.commit(tx)
    report = ConsistencyChecker(fs).check_file(fileid)
    kinds = {c.kind for c in report.corruptions}
    assert "misdirected" in kinds
    with pytest.raises(InversionError):
        ConsistencyChecker(fs).raise_if_corrupt()


def test_negative_chunkno_detected(populated):
    fs, _client = populated
    fileid = fs.resolve("/data/a")
    tx = fs.begin()
    table = fs.db.table(chunk_table_name(fileid), tx)
    table.insert(tx, (-5, fileid, b"garbage"))
    fs.commit(tx)
    report = ConsistencyChecker(fs).check_file(fileid)
    assert any(c.kind == "negative-chunkno" for c in report.corruptions)


def test_size_mismatch_detected(populated):
    """Attributes claiming more bytes than any visible chunk covers."""
    fs, _client = populated
    fileid = fs.resolve("/data/a")
    tx = fs.begin()
    fs.fileatt.update(tx, fileid, size=10 * CHUNK_SIZE)
    fs.commit(tx)
    report = ConsistencyChecker(fs).check_file(fileid)
    assert any(c.kind == "size-mismatch" for c in report.corruptions)


def test_duplicate_chunk_version_detected(populated):
    """Two visible versions of one chunk number — the corruption a
    mis-coalesced batched write-back would leave behind."""
    fs, _client = populated
    fileid = fs.resolve("/data/b")
    tx = fs.begin()
    table = fs.db.table(chunk_table_name(fileid), tx)
    table.insert(tx, (0, fileid, b"shadow copy"))  # chunk 0 again
    fs.commit(tx)
    report = ConsistencyChecker(fs).check_file(fileid)
    assert any(c.kind == "duplicate-chunk" and c.chunkno == 0
               for c in report.corruptions)


def test_batched_flush_preserves_visible_chunk_count(populated):
    """Coalescing dirty runs into multi-page device writes must neither
    lose nor duplicate a chunk version: the per-file visible chunk
    count is invariant across a flush, and the checker stays clean."""
    fs, client = populated
    checker = ConsistencyChecker(fs)
    # Dirty a long dense run: a fresh multi-chunk file plus an overwrite.
    fd = client.p_creat("/data/run")
    client.p_write(fd, b"r" * (5 * CHUNK_SIZE + 11))
    client.p_close(fd)
    fileids = {name: fs.resolve(f"/data/{name}") for name in ("a", "b", "run")}
    before = {name: checker.visible_chunk_count(fid)
              for name, fid in fileids.items()}
    assert before["run"] == 6
    fs.db.flush_caches()
    assert fs.db.buffers.stats.batched_writes > 0  # runs really coalesced
    after = {name: checker.visible_chunk_count(fid)
             for name, fid in fileids.items()}
    assert after == before
    assert checker.check_all().clean


def test_orphan_naming_entry_detected(populated):
    fs, _client = populated
    tx = fs.begin()
    fs.namespace.add_entry(tx, fs.namespace.root_fileid, "ghost", 424242)
    fs.commit(tx)
    report = ConsistencyChecker(fs).check_all()
    assert any(c.kind == "unreadable" and c.fileid == 424242
               for c in report.corruptions)


def test_checker_sees_historical_versions_too(populated):
    """Corruption in a superseded version is still corruption (history
    must stay trustworthy for time travel)."""
    fs, client = populated
    from repro.core.constants import O_RDWR
    fileid = fs.resolve("/data/a")
    # Corrupt the CURRENT version, then supersede it with a good one.
    tx = fs.begin()
    table = fs.db.table(chunk_table_name(fileid), tx)
    tid, row = next(iter(table.scan(fs.db.snapshot(tx), tx)))
    table.update(tx, tid, (row[0], 31337, row[2]))
    fs.commit(tx)
    fd = client.p_open("/data/a", O_RDWR)
    client.p_write(fd, b"fresh" * 20)
    client.p_close(fd)
    report = ConsistencyChecker(fs).check_file(fileid)
    assert any(c.kind == "misdirected" for c in report.corruptions)
