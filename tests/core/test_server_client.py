"""Client/server access path: RPC dispatch, sessions, network costs."""

import pytest

from repro.core.client import RemoteInversionClient
from repro.core.constants import O_RDONLY, O_RDWR
from repro.core.server import InversionServer
from repro.errors import InversionError
from repro.sim.network import ETHERNET_10MBIT, NetworkModel


@pytest.fixture
def remote(fs, clock):
    server = InversionServer(fs)
    network = NetworkModel(clock=clock, params=ETHERNET_10MBIT)
    client = RemoteInversionClient(server, network)
    yield fs, client, network
    client.close()


def test_full_file_cycle_over_rpc(remote):
    fs, client, _net = remote
    fd = client.p_creat("/r")
    client.p_write(fd, b"over the wire")
    client.p_lseek(fd, 0, 0, 0)
    assert client.p_read(fd, 100) == b"over the wire"
    client.p_close(fd)
    assert fs.read_file("/r") == b"over the wire"


def test_every_call_charges_network(remote):
    _fs, client, net = remote
    msgs = net.stats.messages
    fd = client.p_creat("/n")
    assert net.stats.messages > msgs
    msgs = net.stats.messages
    client.p_write(fd, b"x" * 8000)
    assert net.stats.messages >= msgs + 2
    client.p_close(fd)


def test_large_read_ships_payload(remote):
    _fs, client, net = remote
    fd = client.p_creat("/big")
    client.p_begin()
    client.p_write(fd, b"z" * 100_000)
    client.p_commit()
    client.p_lseek(fd, 0, 0, 0)
    sent = net.stats.bytes_sent
    client.p_read(fd, 100_000)
    assert net.stats.bytes_sent - sent >= 100_000
    client.p_close(fd)


def test_transactions_over_rpc(remote):
    fs, client, _net = remote
    client.p_begin()
    fd = client.p_creat("/t1")
    client.p_write(fd, b"a")
    client.p_abort()
    assert not fs.exists("/t1")


def test_sessions_isolated(fs, clock):
    server = InversionServer(fs)
    net = NetworkModel(clock=clock, params=ETHERNET_10MBIT)
    c1 = RemoteInversionClient(server, net)
    c2 = RemoteInversionClient(server, net)
    c1.p_begin()
    c2.p_begin()  # a second session may hold its own transaction
    c1.p_abort()
    c2.p_abort()
    c1.close()
    c2.close()


def test_disconnect_aborts_open_transaction(fs, clock):
    server = InversionServer(fs)
    net = NetworkModel(clock=clock, params=ETHERNET_10MBIT)
    client = RemoteInversionClient(server, net)
    client.p_begin()
    fd = client.p_creat("/leak")
    client.p_write(fd, b"x")
    client.close()  # server aborts the in-flight transaction
    assert not fs.exists("/leak")


def test_unknown_method_rejected(fs):
    server = InversionServer(fs)
    session = server.connect()
    with pytest.raises(InversionError):
        server.dispatch(session, "drop_all_tables")


def test_unknown_session_rejected(fs):
    server = InversionServer(fs)
    with pytest.raises(InversionError):
        server.dispatch(99, "p_begin")


def test_queries_over_rpc(remote):
    _fs, client, _net = remote
    fd = client.p_creat("/q1")
    client.p_close(fd)
    rows = client.p_query('retrieve (filename) where filename = "q1"')
    assert rows == [("q1",)]


def test_write_behind_cheaper_than_synchronous(fs, clock):
    """Consecutive writes overlap network and server work."""
    server = InversionServer(fs)
    net = NetworkModel(clock=clock, params=ETHERNET_10MBIT)
    pipelined = RemoteInversionClient(server, net, write_behind=True)
    fd = pipelined.p_creat("/wb")
    pipelined.p_begin()
    start = clock.now()
    for i in range(8):
        pipelined.p_write(fd, b"d" * 4096)
    pipelined.p_commit()
    piped = clock.now() - start
    pipelined.p_close(fd)

    sync = RemoteInversionClient(server, net, write_behind=False)
    fd2 = sync.p_creat("/sync")
    sync.p_begin()
    start = clock.now()
    for i in range(8):
        sync.p_write(fd2, b"d" * 4096)
    sync.p_commit()
    serial = clock.now() - start
    sync.p_close(fd2)
    pipelined.close()
    sync.close()
    assert piped < serial


def test_bad_arity_rejected_before_dispatch(fs):
    """Malformed argument lists fail with a protocol error naming the
    method — not a TypeError from deep inside the library."""
    server = InversionServer(fs)
    session = server.connect()
    server.dispatch(session, "p_begin")
    with pytest.raises(InversionError, match="p_creat"):
        server.dispatch(session, "p_creat")             # missing path
    with pytest.raises(InversionError, match="p_read"):
        server.dispatch(session, "p_read", 1, 2, 3, 4)  # too many args
    with pytest.raises(InversionError, match="p_write"):
        server.dispatch(session, "p_write", 1, b"d", bogus=True)
    # the session survives rejected requests and still works.
    fd = server.dispatch(session, "p_creat", "/valid")
    server.dispatch(session, "p_write", fd, b"ok")
    server.dispatch(session, "p_close", fd)
    server.dispatch(session, "p_commit")
    assert fs.read_file("/valid") == b"ok"


def test_allowed_methods_match_client_surface(fs):
    """Every method the server exposes exists on InversionClient with
    an inspectable signature (the validation cache depends on it)."""
    import inspect
    from repro.core.library import InversionClient
    server = InversionServer(fs)
    for method in server.ALLOWED:
        fn = getattr(InversionClient, method)
        assert callable(fn)
        inspect.signature(fn)  # must not raise
