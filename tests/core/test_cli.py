"""The command-line tool (python -m repro.fs)."""

import pytest

from repro.fs.__main__ import main


@pytest.fixture
def dbdir(tmp_path):
    path = str(tmp_path / "clidb")
    assert main([path, "mkfs"]) == 0
    return path


def run(dbdir, *argv) -> int:
    return main([dbdir, *argv])


def test_mkfs_ls_empty(dbdir, capsys):
    assert run(dbdir, "ls") == 0
    assert capsys.readouterr().out == ""


def test_put_cat_roundtrip(dbdir, tmp_path, capsys):
    local = tmp_path / "x.txt"
    local.write_bytes(b"cli contents")
    assert run(dbdir, "put", "/x.txt", str(local)) == 0
    capsys.readouterr()
    assert run(dbdir, "cat", "/x.txt") == 0
    assert capsys.readouterr().out == "cli contents"


def test_mkdir_ls_stat(dbdir, tmp_path, capsys):
    run(dbdir, "mkdir", "/d")
    local = tmp_path / "y"
    local.write_bytes(b"12345")
    run(dbdir, "put", "/d/y", str(local))
    capsys.readouterr()
    assert run(dbdir, "ls", "/d") == 0
    out = capsys.readouterr().out
    assert "y" in out and "5" in out
    assert run(dbdir, "stat", "/d/y") == 0
    out = capsys.readouterr().out
    assert "size    : 5" in out
    assert "table   : inv" in out


def test_rm_and_time_travel_cat(dbdir, tmp_path, capsys):
    local = tmp_path / "z"
    local.write_bytes(b"undelete me")
    run(dbdir, "put", "/z", str(local))
    capsys.readouterr()
    assert run(dbdir, "rm", "/z") == 0
    out = capsys.readouterr().out
    asof = out.strip().rsplit(" ", 1)[-1].rstrip(")")
    assert run(dbdir, "cat", "/z") == 1  # gone now
    capsys.readouterr()
    assert run(dbdir, "cat", "/z", "--asof", asof) == 0
    assert capsys.readouterr().out == "undelete me"


def test_query_command(dbdir, tmp_path, capsys):
    local = tmp_path / "q"
    local.write_bytes(b"abc")
    run(dbdir, "put", "/q", str(local))
    capsys.readouterr()
    assert run(dbdir, "query",
               'retrieve (filename, size(file)) where size(file) > 0') == 0
    assert "q\t3" in capsys.readouterr().out


def test_history_command(dbdir, tmp_path, capsys):
    local = tmp_path / "h"
    for generation in (b"one", b"two!"):
        local.write_bytes(generation)
        run(dbdir, "put", "/h", str(local))
    capsys.readouterr()
    assert run(dbdir, "history", "/h") == 0
    out = capsys.readouterr().out
    assert "2 committed change instants" in out


def test_check_command(dbdir, tmp_path, capsys):
    local = tmp_path / "c"
    local.write_bytes(b"fine")
    run(dbdir, "put", "/c", str(local))
    capsys.readouterr()
    assert run(dbdir, "check") == 0
    assert "checked 1 files" in capsys.readouterr().out


def test_vacuum_command(dbdir, tmp_path, capsys):
    local = tmp_path / "v"
    for generation in (b"g0", b"g1"):
        local.write_bytes(generation)
        run(dbdir, "put", "/v", str(local))
    capsys.readouterr()
    assert run(dbdir, "vacuum", "/v") == 0
    assert "archived=1" in capsys.readouterr().out


def test_devices_command(dbdir, capsys):
    assert run(dbdir, "devices") == 0
    assert "magnetic0" in capsys.readouterr().out


def test_error_paths(dbdir, capsys):
    assert run(dbdir, "cat", "/missing") == 1
    assert "error:" in capsys.readouterr().err
