"""Property-based namespace semantics vs a reference tree model."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import InversionClient, InversionFS
from repro.db.database import Database
from repro.errors import InversionError

NAMES = st.sampled_from(["a", "b", "c", "dir1", "dir2", "file.txt"])
DEPTH = st.integers(min_value=1, max_value=3)


class ReferenceTree:
    """Executable specification: nested dicts, files are bytes."""

    def __init__(self) -> None:
        self.root: dict = {}

    def _walk(self, parts):
        node = self.root
        for part in parts:
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        return node

    def mkdir(self, parts) -> bool:
        parent = self._walk(parts[:-1])
        if not isinstance(parent, dict) or parts[-1] in parent:
            return False
        parent[parts[-1]] = {}
        return True

    def creat(self, parts) -> bool:
        parent = self._walk(parts[:-1])
        if not isinstance(parent, dict) or parts[-1] in parent:
            return False
        parent[parts[-1]] = b""
        return True

    def unlink(self, parts) -> bool:
        parent = self._walk(parts[:-1])
        if not isinstance(parent, dict):
            return False
        node = parent.get(parts[-1])
        if not isinstance(node, bytes):
            return False
        del parent[parts[-1]]
        return True

    def rmdir(self, parts) -> bool:
        parent = self._walk(parts[:-1])
        if not isinstance(parent, dict):
            return False
        node = parent.get(parts[-1])
        if not isinstance(node, dict) or node:
            return False
        del parent[parts[-1]]
        return True

    def listing(self, parts):
        node = self._walk(parts)
        return sorted(node) if isinstance(node, dict) else None


op_strategy = st.tuples(
    st.sampled_from(["mkdir", "creat", "unlink", "rmdir"]),
    st.lists(NAMES, min_size=1, max_size=3),
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=st.lists(op_strategy, min_size=1, max_size=25))
def test_namespace_matches_reference_tree(tmp_path_factory, ops):
    workdir = tmp_path_factory.mktemp("propns")
    db = Database.create(str(workdir / "db"))
    try:
        fs = InversionFS.mkfs(db)
        client = InversionClient(fs)
        reference = ReferenceTree()
        for kind, parts in ops:
            path = "/" + "/".join(parts)
            expected_ok = getattr(reference, kind)(parts)
            try:
                if kind == "mkdir":
                    client.p_mkdir(path)
                elif kind == "creat":
                    client.p_close(client.p_creat(path))
                elif kind == "unlink":
                    client.p_unlink(path)
                else:
                    client.p_rmdir(path)
                actual_ok = True
            except InversionError:
                actual_ok = False
            assert actual_ok == expected_ok, (kind, path)

        # Final structural comparison, every directory level.
        def compare(parts):
            expected = reference.listing(parts)
            path = "/" + "/".join(parts) if parts else "/"
            assert sorted(fs.readdir(path)) == expected
            node = reference._walk(parts)
            for name, child in node.items():
                if isinstance(child, dict):
                    compare(parts + [name])
        compare([])
    finally:
        db.close()
