"""Fine-grained time travel on files and metadata."""

import pytest

from repro.core.constants import O_RDONLY, O_RDWR


def _write(client, path, data):
    fd = client.p_open(path, O_RDWR)
    client.p_write(fd, data)
    client.p_close(fd)


def test_every_committed_state_is_visible(fs, client, clock):
    """Unlike Plan 9 / 3DFS daily snapshots, *every* transaction
    boundary is a visitable instant."""
    fd = client.p_creat("/log")
    client.p_close(fd)
    instants = []
    for i in range(5):
        _write(client, "/log", f"gen{i}".encode())
        instants.append(clock.now())
    for i, t in enumerate(instants):
        assert fs.read_file("/log", timestamp=t) == f"gen{i}".encode()


def test_prefix_of_history_before_creation(fs, client, clock):
    t_before = clock.now()
    fd = client.p_creat("/later")
    client.p_close(fd)
    assert not fs.exists("/later", timestamp=t_before)
    with pytest.raises(Exception):
        fs.read_file("/later", timestamp=t_before)


def test_metadata_time_travel(fs, client, clock):
    fd = client.p_creat("/meta", owner="mao")
    client.p_write(fd, b"0123")
    client.p_close(fd)
    t0 = clock.now()
    _write(client, "/meta", b"01234567")
    att_then = fs.stat("/meta", timestamp=t0)
    att_now = fs.stat("/meta")
    assert att_then.size == 4
    assert att_now.size == 8
    assert att_then.owner == "mao"


def test_namespace_time_travel_readdir(fs, client, clock):
    client.p_mkdir("/d")
    fd = client.p_creat("/d/one")
    client.p_close(fd)
    t0 = clock.now()
    fd = client.p_creat("/d/two")
    client.p_close(fd)
    client.p_unlink("/d/one")
    assert fs.readdir("/d") == ["two"]
    assert fs.readdir("/d", timestamp=t0) == ["one"]


def test_undelete_via_time_travel(fs, client, clock):
    """Paper: "it allows users to undelete files removed
    accidentally"."""
    fd = client.p_creat("/precious")
    client.p_write(fd, b"do not lose")
    client.p_close(fd)
    t0 = clock.now()
    client.p_unlink("/precious")
    assert not fs.exists("/precious")
    recovered = fs.read_file("/precious", timestamp=t0)
    fd = client.p_creat("/precious")
    client.p_write(fd, recovered)
    client.p_close(fd)
    assert fs.read_file("/precious") == b"do not lose"


def test_rename_history(fs, client, clock):
    fd = client.p_creat("/old_name")
    client.p_close(fd)
    t0 = clock.now()
    client.p_rename("/old_name", "/new_name")
    assert fs.exists("/old_name", timestamp=t0)
    assert not fs.exists("/new_name", timestamp=t0)
    assert fs.exists("/new_name")


def test_aborted_changes_never_appear_in_history(fs, client, clock):
    fd = client.p_creat("/stable")
    client.p_write(fd, b"good")
    client.p_close(fd)
    client.p_begin()
    f2 = client.p_open("/stable", O_RDWR)
    client.p_write(f2, b"BAD!")
    mid = clock.now()
    client.p_abort()
    assert fs.read_file("/stable", timestamp=mid) == b"good"
    assert fs.read_file("/stable") == b"good"


def test_historical_open_through_library(client, clock):
    fd = client.p_creat("/doc")
    client.p_write(fd, b"draft")
    client.p_close(fd)
    t0 = clock.now()
    _write(client, "/doc", b"final")
    hist_fd = client.p_open("/doc", O_RDONLY, timestamp=t0)
    assert client.p_read(hist_fd, 10) == b"draft"
    assert client.p_stat("/doc", timestamp=t0).size == 5
    client.p_close(hist_fd)


def test_only_changed_blocks_are_versioned(fs, client):
    """Paper: "Inversion does not create copies of entire files every
    time a change is made.  Instead, only the changed blocks are
    saved"."""
    from repro.core.chunks import ChunkStore, CHUNK_SIZE
    fd = client.p_creat("/blocky")
    client.p_write(fd, bytes(CHUNK_SIZE * 3))
    client.p_close(fd)
    fileid = fs.resolve("/blocky")
    store = ChunkStore(fs.db, fileid, None)
    versions_before = store.version_count()
    fd = client.p_open("/blocky", O_RDWR)
    client.p_lseek(fd, 0, CHUNK_SIZE, 0)  # inside chunk 1 only
    client.p_write(fd, b"patch")
    client.p_close(fd)
    assert store.version_count() == versions_before + 1
