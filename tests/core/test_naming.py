"""Namespace management — including the paper's Table 1."""

import pytest

from repro.core.constants import ROOT_PARENT
from repro.core.naming import basename_dirname, split_path
from repro.errors import FileExistsError_, FileNotFoundError_


def test_split_path():
    assert split_path("/etc/passwd") == ["etc", "passwd"]
    assert split_path("/") == []
    assert split_path("//a//b/") == ["a", "b"]


def test_relative_path_rejected():
    with pytest.raises(FileNotFoundError_):
        split_path("etc/passwd")


def test_basename_dirname():
    assert basename_dirname("/etc/passwd") == ("/etc", "passwd")
    assert basename_dirname("/top") == ("/", "top")
    with pytest.raises(FileNotFoundError_):
        basename_dirname("/")


def test_root_entry_exists(fs):
    """"The root directory, named '/', appears in every POSTGRES
    database as shipped."""
    snap = fs._snap(None)
    entry = fs.namespace.lookup_entry(ROOT_PARENT, "", snap)
    assert entry is not None
    assert entry[1][2] == fs.namespace.root_fileid


def test_table1_etc_passwd_shape(fs, client):
    """Reproduce Table 1: the naming rows for /etc/passwd form a chain
    ('' → etc → passwd) linked through parentid."""
    client.p_mkdir("/etc")
    fd = client.p_creat("/etc/passwd")
    client.p_close(fd)
    tx = fs.begin()
    rows = {r[0]: r for r in fs.db.iter_table_rows("naming", tx)}
    fs.commit(tx)
    root = rows[""]
    etc = rows["etc"]
    passwd = rows["passwd"]
    assert root[1] == ROOT_PARENT
    assert etc[1] == root[2]       # etc's parentid = root's file id
    assert passwd[1] == etc[2]     # passwd's parentid = etc's file id
    assert passwd[2] != etc[2] != root[2]


def test_resolve_and_construct_are_inverses(fs, client):
    client.p_mkdir("/a")
    client.p_mkdir("/a/b")
    fd = client.p_creat("/a/b/c.txt")
    client.p_close(fd)
    tx = fs.begin()
    snap = fs.db.snapshot(tx)
    fileid = fs.namespace.resolve("/a/b/c.txt", snap, tx)
    assert fs.namespace.construct_path(fileid, snap, tx) == "/a/b/c.txt"
    assert fs.namespace.construct_path(fs.namespace.root_fileid, snap, tx) == "/"
    fs.commit(tx)


def test_resolve_missing(fs):
    with pytest.raises(FileNotFoundError_):
        fs.resolve("/no/such/file")
    assert not fs.exists("/no/such/file")


def test_duplicate_entry_rejected(fs):
    tx = fs.begin()
    fs.namespace.add_entry(tx, fs.namespace.root_fileid, "x", 12345)
    with pytest.raises(FileExistsError_):
        fs.namespace.add_entry(tx, fs.namespace.root_fileid, "x", 67890)
    fs.abort(tx)


def test_children_sorted_by_index(fs, client):
    for name in ("zeta", "alpha", "mid"):
        client.p_mkdir(f"/{name}")
    tx = fs.begin()
    names = [n for n, _f in fs.namespace.children(
        fs.namespace.root_fileid, fs.db.snapshot(tx), tx)]
    fs.commit(tx)
    assert names == sorted(names)


def test_same_name_in_different_directories(fs, client):
    client.p_mkdir("/d1")
    client.p_mkdir("/d2")
    for d in ("d1", "d2"):
        fd = client.p_creat(f"/{d}/same.txt")
        client.p_close(fd)
    assert fs.resolve("/d1/same.txt") != fs.resolve("/d2/same.txt")


def test_rename_entry(fs, client):
    client.p_mkdir("/src")
    client.p_mkdir("/dst")
    fd = client.p_creat("/src/f")
    client.p_close(fd)
    old_id = fs.resolve("/src/f")
    client.p_rename("/src/f", "/dst/g")
    assert fs.resolve("/dst/g") == old_id
    assert not fs.exists("/src/f")


def test_rename_over_existing_rejected(fs, client):
    fd = client.p_creat("/a"); client.p_close(fd)
    fd = client.p_creat("/b"); client.p_close(fd)
    with pytest.raises(FileExistsError_):
        client.p_rename("/a", "/b")


def test_overlong_name_rejected_cleanly(fs, client):
    from repro.core.naming import MAX_FILENAME_BYTES
    with pytest.raises(FileNotFoundError_):
        client.p_creat("/" + "x" * (MAX_FILENAME_BYTES + 1))
    # And multibyte names are measured in bytes, not characters.
    ok_name = "é" * (MAX_FILENAME_BYTES // 2)
    fd = client.p_creat("/" + ok_name)
    client.p_close(fd)
    assert fs.exists("/" + ok_name)


def test_embedded_nul_rejected(fs):
    tx = fs.begin()
    with pytest.raises(FileNotFoundError_):
        fs.namespace.add_entry(tx, fs.namespace.root_fileid, "a\0b", 1)
    fs.abort(tx)


def test_remove_entry_returns_fileid(fs, client):
    fd = client.p_creat("/gone")
    client.p_close(fd)
    fileid = fs.resolve("/gone")
    tx = fs.begin()
    assert fs.namespace.remove_entry(tx, fs.namespace.root_fileid,
                                     "gone") == fileid
    fs.commit(tx)
