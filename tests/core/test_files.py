"""File handles: byte-stream semantics over chunks."""

import pytest

from repro.core.constants import (
    CHUNK_SIZE,
    MAX_FILE_SIZE,
    O_RDONLY,
    O_RDWR,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.errors import (
    BadFileDescriptorError,
    FileTooLargeError,
    ReadOnlyFileError,
)


@pytest.fixture
def open_rw(fs, client):
    fd = client.p_creat("/f")
    client.p_close(fd)

    def factory(tx):
        return fs.open("/f", O_RDWR, tx=tx)
    return fs, factory


def test_write_read_roundtrip(open_rw):
    fs, factory = open_rw
    tx = fs.begin()
    with factory(tx) as f:
        f.write(b"hello world")
        f.seek(0)
        assert f.read() == b"hello world"
    fs.commit(tx)


def test_cross_chunk_write_and_read(open_rw):
    fs, factory = open_rw
    data = bytes(range(256)) * ((3 * CHUNK_SIZE) // 256 + 1)
    data = data[:3 * CHUNK_SIZE - 100]
    tx = fs.begin()
    with factory(tx) as f:
        f.write(data)
    fs.commit(tx)
    assert fs.read_file("/f") == data


def test_partial_chunk_rmw(open_rw):
    fs, factory = open_rw
    tx = fs.begin()
    with factory(tx) as f:
        f.write(b"a" * 100)
        f.seek(50)
        f.write(b"B" * 10)
        f.seek(0)
        assert f.read() == b"a" * 50 + b"B" * 10 + b"a" * 40
    fs.commit(tx)


def test_sparse_write_reads_zero_holes(open_rw):
    fs, factory = open_rw
    tx = fs.begin()
    with factory(tx) as f:
        f.seek(2 * CHUNK_SIZE + 5)
        f.write(b"end")
        f.seek(0)
        head = f.read(10)
    fs.commit(tx)
    assert head == bytes(10)
    att = fs.stat("/f")
    assert att.size == 2 * CHUNK_SIZE + 8


def test_seek_whences(open_rw):
    fs, factory = open_rw
    tx = fs.begin()
    with factory(tx) as f:
        f.write(b"0123456789")
        assert f.seek(2, SEEK_SET) == 2
        assert f.seek(3, SEEK_CUR) == 5
        assert f.seek(-1, SEEK_END) == 9
        assert f.read() == b"9"
        with pytest.raises(ValueError):
            f.seek(-20, SEEK_SET)
        with pytest.raises(ValueError):
            f.seek(0, 99)
    fs.commit(tx)


def test_read_past_eof_truncated(open_rw):
    fs, factory = open_rw
    tx = fs.begin()
    with factory(tx) as f:
        f.write(b"abc")
        f.seek(1)
        assert f.read(100) == b"bc"
        f.seek(10)
        assert f.read(5) == b""
    fs.commit(tx)


def test_write_without_tx_rejected(fs, client):
    fd = client.p_creat("/g")
    client.p_close(fd)
    handle = fs.open("/g", O_RDONLY)
    with pytest.raises(ReadOnlyFileError):
        handle.write(b"x")
    handle.close()


def test_historical_handle_refuses_write(fs, client, clock):
    fd = client.p_creat("/h")
    client.p_write(fd, b"v1")
    client.p_close(fd)
    t0 = clock.now()
    with pytest.raises(ReadOnlyFileError):
        fs.open("/h", O_RDWR, timestamp=t0)


def test_max_file_size_enforced(open_rw):
    fs, factory = open_rw
    tx = fs.begin()
    with factory(tx) as f:
        with pytest.raises(FileTooLargeError):
            f.seek(MAX_FILE_SIZE + 1)
        f.seek(MAX_FILE_SIZE - 1)
        with pytest.raises(FileTooLargeError):
            f.write(b"xx")
    fs.abort(tx)


def test_closed_handle_rejected(open_rw):
    fs, factory = open_rw
    tx = fs.begin()
    f = factory(tx)
    f.close()
    with pytest.raises(BadFileDescriptorError):
        f.read(1)
    with pytest.raises(BadFileDescriptorError):
        f.write(b"x")
    fs.commit(tx)


def test_size_and_mtime_updated_on_flush(open_rw, clock):
    fs, factory = open_rw
    before = fs.stat("/f")
    tx = fs.begin()
    clock.advance(1.0)
    with factory(tx) as f:
        f.write(b"grow" * 100)
    fs.commit(tx)
    after = fs.stat("/f")
    assert after.size == 400
    assert after.mtime > before.mtime
    assert after.ctime == before.ctime


def test_exception_in_with_block_discards_buffer(open_rw):
    fs, factory = open_rw
    tx = fs.begin()
    with pytest.raises(RuntimeError):
        with factory(tx) as f:
            f.write(b"doomed")
            raise RuntimeError("boom")
    fs.abort(tx)
    assert fs.read_file("/f") == b""
