"""Optional atime tracking."""

import pytest

from repro.core.constants import O_RDONLY, O_RDWR


def test_atime_off_by_default(fs, client, clock):
    fd = client.p_creat("/f")
    client.p_write(fd, b"x")
    client.p_close(fd)
    before = fs.stat("/f").atime
    clock.advance(5.0)
    tx = fs.begin()
    with fs.open("/f", O_RDONLY, tx=tx) as f:
        f.read()
    fs.commit(tx)
    assert fs.stat("/f").atime == before


def test_atime_stamped_when_enabled(fs, client, clock):
    fs.track_atime = True
    fd = client.p_creat("/f")
    client.p_write(fd, b"x")
    client.p_close(fd)
    before = fs.stat("/f").atime
    clock.advance(5.0)
    tx = fs.begin()
    with fs.open("/f", O_RDONLY, tx=tx) as f:
        f.read()
        f.seek(0)
        f.read()  # stamped once per handle, not per read
    fs.commit(tx)
    after = fs.stat("/f").atime
    assert after > before


def test_atime_never_stamped_on_historical_handles(fs, client, clock):
    fs.track_atime = True
    fd = client.p_creat("/f")
    client.p_write(fd, b"x")
    client.p_close(fd)
    t0 = clock.now()
    clock.advance(1.0)
    handle = fs.open("/f", O_RDONLY, timestamp=t0)
    handle.read()
    handle.close()
    # The past is immutable; nothing was written.
    assert fs.stat("/f").atime <= t0


def test_atime_visible_to_queries(fs, client, clock):
    fs.track_atime = True
    fd = client.p_creat("/f")
    client.p_write(fd, b"data")
    client.p_close(fd)
    clock.advance(10.0)
    tx = fs.begin()
    with fs.open("/f", O_RDWR, tx=tx) as f:
        f.read()
    fs.commit(tx)
    tx = fs.begin()
    rows = fs.query(tx, 'retrieve (filename) where mtime_of(file) >= 0')
    fs.commit(tx)
    assert ("f",) in rows
