"""Property-based file semantics: Inversion vs an in-memory reference.

Random sequences of write/seek/read/truncating operations are applied
both to an Inversion file and to a plain ``bytearray`` model; the two
must never disagree.  This is the strongest guard on the chunking,
coalescing, and RMW logic.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import InversionClient, InversionFS
from repro.core.constants import CHUNK_SIZE, O_RDWR
from repro.db.database import Database

MAX_OFFSET = 3 * CHUNK_SIZE


class ReferenceFile:
    """The executable specification of a byte-stream file."""

    def __init__(self) -> None:
        self.data = bytearray()

    def write(self, offset: int, payload: bytes) -> None:
        if offset > len(self.data):
            self.data.extend(bytes(offset - len(self.data)))
        end = offset + len(payload)
        self.data[offset:end] = payload

    def read(self, offset: int, n: int) -> bytes:
        return bytes(self.data[offset:offset + n])

    @property
    def size(self) -> int:
        return len(self.data)


op_strategy = st.one_of(
    st.tuples(st.just("write"),
              st.integers(min_value=0, max_value=MAX_OFFSET),
              st.binary(min_size=1, max_size=CHUNK_SIZE + 100)),
    st.tuples(st.just("read"),
              st.integers(min_value=0, max_value=MAX_OFFSET),
              st.integers(min_value=1, max_value=2 * CHUNK_SIZE)),
)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=st.lists(op_strategy, min_size=1, max_size=20),
       commit_every=st.integers(min_value=1, max_value=7))
def test_file_matches_reference_model(tmp_path_factory, ops, commit_every):
    workdir = tmp_path_factory.mktemp("propfs")
    db = Database.create(str(workdir / "db"))
    try:
        fs = InversionFS.mkfs(db)
        client = InversionClient(fs)
        fd = client.p_creat("/model")
        reference = ReferenceFile()
        client.p_begin()
        for i, op in enumerate(ops):
            if op[0] == "write":
                _kind, offset, payload = op
                client.p_lseek(fd, 0, offset, 0)
                client.p_write(fd, payload)
                reference.write(offset, payload)
            else:
                _kind, offset, n = op
                client.p_lseek(fd, 0, offset, 0)
                assert client.p_read(fd, n) == reference.read(offset, n)
            if (i + 1) % commit_every == 0:
                client.p_commit()
                client.p_begin()
        client.p_commit()
        client.p_close(fd)
        # Whole-file comparison, through a fresh read path.
        assert fs.read_file("/model") == bytes(reference.data)
        assert fs.stat("/model").size == reference.size
    finally:
        db.close()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(writes=st.lists(
    st.tuples(st.integers(min_value=0, max_value=MAX_OFFSET),
              st.binary(min_size=1, max_size=CHUNK_SIZE)),
    min_size=1, max_size=10))
def test_history_is_append_only(tmp_path_factory, writes):
    """Every committed state remains readable at its own instant, in
    order — i.e. history is an append-only sequence of snapshots."""
    workdir = tmp_path_factory.mktemp("prophist")
    db = Database.create(str(workdir / "db"))
    try:
        fs = InversionFS.mkfs(db)
        client = InversionClient(fs)
        fd = client.p_creat("/h")
        reference = ReferenceFile()
        states = []
        for offset, payload in writes:
            client.p_begin()
            client.p_lseek(fd, 0, offset, 0)
            client.p_write(fd, payload)
            client.p_commit()
            reference.write(offset, payload)
            client.p_stat("/h")  # reconcile size for historical stats
            states.append((db.clock.now(), bytes(reference.data)))
        client.p_close(fd)
        for when, expected in states:
            assert fs.read_file("/h", timestamp=when) == expected
    finally:
        db.close()
