"""Rule-driven file migration across the storage hierarchy."""

import pytest

from repro.core.migration import MigrationEngine
from repro.errors import MigrationError


@pytest.fixture
def tiered(fs, client):
    fs.db.add_device("juke0", "jukebox")
    fs.db.add_device("tape0", "tape")
    return fs, client, MigrationEngine(fs)


def _put(client, path, data, owner="root"):
    fd = client.p_creat(path, owner=owner)
    client.p_write(fd, data)
    client.p_close(fd)


def test_rule_validation(tiered):
    fs, _client, engine = tiered
    with pytest.raises(MigrationError):
        engine.add_rule("bad", "size(file) > 0", "nonexistent-device")


def test_size_rule_moves_large_files(tiered):
    fs, client, engine = tiered
    _put(client, "/big.dat", b"x" * 50_000)
    _put(client, "/small.dat", b"y" * 100)
    engine.add_rule("archive-big", "size(file) > 10000", "juke0")
    tx = fs.begin()
    reports = engine.run(tx)
    fs.commit(tx)
    assert reports[0].moved == ["/big.dat"]
    assert engine.device_of(fs.resolve("/big.dat")) == "juke0"
    assert engine.device_of(fs.resolve("/small.dat")) == "magnetic0"


def test_data_and_history_survive_migration(tiered, clock):
    fs, client, engine = tiered
    _put(client, "/f", b"version-one" * 100)
    t0 = clock.now()
    from repro.core.constants import O_RDWR
    fd = client.p_open("/f", O_RDWR)
    client.p_write(fd, b"VERSION-TWO")
    client.p_close(fd)
    engine.add_rule("r", 'size(file) > 0', "juke0")
    tx = fs.begin()
    engine.run(tx)
    fs.commit(tx)
    assert fs.read_file("/f")[:11] == b"VERSION-TWO"
    # Time travel works across devices: history moved with the table.
    assert fs.read_file("/f", timestamp=t0) == b"version-one" * 100


def test_owner_rule(tiered):
    fs, client, engine = tiered
    _put(client, "/mao1", b"d" * 10, owner="mao")
    _put(client, "/root1", b"d" * 10, owner="root")
    engine.add_rule("evict-mao", 'owner(file) = "mao"', "tape0")
    tx = fs.begin()
    reports = engine.run(tx)
    fs.commit(tx)
    assert reports[0].moved == ["/mao1"]
    assert engine.device_of(fs.resolve("/mao1")) == "tape0"


def test_priority_order_first_match_wins(tiered):
    fs, client, engine = tiered
    _put(client, "/f", b"z" * 20_000)
    engine.add_rule("low", "size(file) > 0", "tape0", priority=1)
    engine.add_rule("high", "size(file) > 10000", "juke0", priority=9)
    tx = fs.begin()
    reports = engine.run(tx)
    fs.commit(tx)
    by_name = {r.rule: r for r in reports}
    assert by_name["high"].moved == ["/f"]
    assert by_name["low"].moved == []
    assert engine.device_of(fs.resolve("/f")) == "juke0"


def test_already_placed_files_skipped(tiered):
    fs, client, engine = tiered
    _put(client, "/f", b"x" * 1000)
    engine.add_rule("r", "size(file) > 0", "juke0")
    tx = fs.begin()
    engine.run(tx)
    fs.commit(tx)
    tx2 = fs.begin()
    reports = engine.run(tx2)
    fs.commit(tx2)
    assert reports[0].moved == []
    assert reports[0].skipped == ["/f"]


def test_aborted_migration_leaves_file_in_place(tiered):
    fs, client, engine = tiered
    _put(client, "/f", b"x" * 1000)
    engine.add_rule("r", "size(file) > 0", "juke0")
    tx = fs.begin()
    engine.run(tx)
    fs.abort(tx)
    assert engine.device_of(fs.resolve("/f")) == "magnetic0"
    assert fs.read_file("/f") == b"x" * 1000


def test_rules_survive_restart(tmp_path):
    """Rules are 'declared to the database manager': a fresh session
    sees and enforces them."""
    from repro.core.filesystem import InversionFS
    from repro.core.library import InversionClient
    from repro.db.database import Database
    db = Database.create(str(tmp_path / "d"))
    db.add_device("juke0", "jukebox")
    fs = InversionFS.mkfs(db)
    MigrationEngine(fs).add_rule("persisted", "size(file) > 100", "juke0")
    db.simulate_crash()

    db2 = Database.open(str(tmp_path / "d"))
    fs2 = InversionFS.attach(db2)
    engine = MigrationEngine(fs2)
    assert [r.name for r in engine.rules] == ["persisted"]
    client = InversionClient(fs2)
    _put(client, "/late.dat", b"y" * 500)
    tx = fs2.begin()
    reports = engine.run(tx)
    fs2.commit(tx)
    assert reports[0].moved == ["/late.dat"]
    db2.close()


def test_drop_rule(tiered):
    fs, _client, engine = tiered
    engine.add_rule("temp", "size(file) > 0", "juke0")
    assert engine.drop_rule("temp")
    assert not engine.drop_rule("temp")
    assert engine.rules == []


def test_bad_qualification_rejected_at_declaration(tiered):
    fs, _client, engine = tiered
    with pytest.raises(Exception):
        engine.add_rule("broken", "size(file >", "juke0")
    assert engine.rules == []


def test_directories_never_migrate(tiered):
    fs, client, engine = tiered
    client.p_mkdir("/dir")
    engine.add_rule("r", "size(file) >= 0", "juke0")
    tx = fs.begin()
    reports = engine.run(tx)
    fs.commit(tx)
    assert "/dir" not in reports[0].moved
