"""NFS access to Inversion (the paper's 'near term' plan)."""

import pytest

from repro.core.nfs_bridge import InversionNFSBridge
from repro.errors import NfsError, ReadOnlyFileError
from repro.nfs.client import NFSClient, UDP_RPC_10MBIT
from repro.sim.network import NetworkModel


@pytest.fixture
def bridge(fs):
    return InversionNFSBridge(fs)


@pytest.fixture
def mounted(fs, clock, bridge):
    """The unmodified NFS client talking to Inversion."""
    return NFSClient(bridge, NetworkModel(clock=clock, params=UDP_RPC_10MBIT))


def test_standard_nfs_client_mounts_inversion(fs, mounted):
    fh = mounted.create("/via_nfs.txt")
    mounted.write(fh, 0, b"over the NFS protocol")
    assert mounted.read(fh, 0, 100) == b"over the NFS protocol"
    assert mounted.getattr(fh).size == 21
    # The same file is visible through the native interface.
    assert fs.read_file("/via_nfs.txt") == b"over the NFS protocol"


def test_lookup_and_remove(fs, mounted, client):
    fd = client.p_creat("/native.txt")
    client.p_write(fd, b"made natively")
    client.p_close(fd)
    fh = mounted.lookup("/native.txt")
    assert mounted.read(fh, 5, 8) == b"natively"
    mounted.remove("/native.txt")
    assert not fs.exists("/native.txt")
    with pytest.raises(NfsError):
        mounted.lookup("/native.txt")


def test_every_nfs_op_is_its_own_transaction(fs, bridge):
    """"The NFS protocol makes every operation an atomic transaction" —
    a write is durable the moment the reply would go out."""
    fh = bridge.nfs_create("/atomic")
    bridge.nfs_write(fh, 0, b"landed")
    # No commit call exists on the bridge; it already committed.
    assert fs.read_file("/atomic") == b"landed"


def test_large_transfers_split_by_client(mounted):
    fh = mounted.create("/big")
    data = bytes(range(256)) * 256  # 64 KB
    mounted.write(fh, 0, data)
    assert mounted.read(fh, 0, len(data)) == data


def test_beyond_ffs_4gb_limit(fs, bridge):
    """Inversion behind NFS serves offsets FFS never could."""
    fh = bridge.nfs_create("/huge")
    offset = 5 * 1024 ** 3  # 5 GB, past the FFS limit
    bridge.nfs_write(fh, offset, b"far out")
    assert bridge.nfs_getattr(fh).size == offset + 7
    assert bridge.nfs_read(fh, offset, 7) == b"far out"


def test_fcntl_time_travel(fs, bridge, clock):
    fh = bridge.nfs_create("/tt")
    bridge.nfs_write(fh, 0, b"version one")
    t0 = clock.now()
    bridge.nfs_write(fh, 0, b"VERSION TWO")
    assert bridge.nfs_read(fh, 0, 11) == b"VERSION TWO"

    bridge.fcntl_set_timestamp(fh, t0)
    assert bridge.fcntl_get_timestamp(fh) == t0
    assert bridge.nfs_read(fh, 0, 11) == b"version one"
    assert bridge.nfs_getattr(fh).size == 11
    with pytest.raises(ReadOnlyFileError):
        bridge.nfs_write(fh, 0, b"no")

    bridge.fcntl_set_timestamp(fh, None)
    assert bridge.nfs_read(fh, 0, 11) == b"VERSION TWO"


def test_oversize_protocol_transfer_rejected(bridge):
    fh = bridge.nfs_create("/f")
    with pytest.raises(NfsError):
        bridge.nfs_read(fh, 0, 8193)
    with pytest.raises(NfsError):
        bridge.nfs_write(fh, 0, bytes(8193))


def test_crash_between_ops_loses_nothing_committed(tmp_path):
    from repro.core.filesystem import InversionFS
    from repro.db.database import Database
    db = Database.create(str(tmp_path / "d"))
    fs = InversionFS.mkfs(db)
    bridge = InversionNFSBridge(fs)
    fh = bridge.nfs_create("/f")
    bridge.nfs_write(fh, 0, b"persisted")
    db.simulate_crash()
    db2 = Database.open(str(tmp_path / "d"))
    fs2 = InversionFS.attach(db2)
    assert fs2.read_file("/f") == b"persisted"
    db2.close()
