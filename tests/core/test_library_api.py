"""The Figure 2 client library: p_creat/p_open/p_close/p_read/p_write/
p_lseek plus p_begin/p_commit/p_abort."""

import pytest

from repro.core.constants import O_RDONLY, O_RDWR, SEEK_CUR, SEEK_END
from repro.errors import BadFileDescriptorError, TransactionError


def test_figure2_signatures_exist(client):
    for name in ("p_creat", "p_open", "p_close", "p_read", "p_write",
                 "p_lseek", "p_begin", "p_commit", "p_abort"):
        assert callable(getattr(client, name))


def test_create_write_read_cycle(client):
    fd = client.p_creat("/f")
    assert client.p_write(fd, b"hello") == 5
    client.p_lseek(fd, 0, 0)
    assert client.p_read(fd, 5) == b"hello"
    client.p_close(fd)


def test_fd_numbers_start_above_stdio(client):
    fd = client.p_creat("/f")
    assert fd >= 3
    client.p_close(fd)


def test_p_lseek_64bit_offsets(client):
    """offset = (high << 32) | low — the widened seek of Figure 2."""
    fd = client.p_creat("/big")
    client.p_begin()
    pos = client.p_lseek(fd, 1, 16, 0)
    assert pos == (1 << 32) | 16
    client.p_write(fd, b"far")
    client.p_lseek(fd, 1, 16, 0)
    assert client.p_read(fd, 3) == b"far"
    client.p_commit()
    client.p_close(fd)
    # Reported size reflects the 4 GB+ offset, beyond FFS's limit.
    assert client.p_stat("/big").size == (1 << 32) + 16 + 3


def test_p_lseek_cur_and_end(client):
    fd = client.p_creat("/s")
    client.p_write(fd, b"0123456789")
    client.p_lseek(fd, 0, 2, SEEK_CUR) if False else None
    assert client.p_lseek(fd, 0, 0, SEEK_END) == 10
    assert client.p_lseek(fd, 0, (1 << 32) - 4 & 0xFFFFFFFF, 0) >= 0
    client.p_close(fd)


def test_bad_fd_rejected(client):
    with pytest.raises(BadFileDescriptorError):
        client.p_read(77, 1)
    with pytest.raises(BadFileDescriptorError):
        client.p_close(77)


def test_transaction_spanning_multiple_files(client, fs):
    """"Inversion supports transactions encompassing changes to
    arbitrary numbers of files, and commits or aborts all changes
    atomically."""
    client.p_begin()
    fd1 = client.p_creat("/src1.c")
    fd2 = client.p_creat("/src2.c")
    client.p_write(fd1, b"int main;")
    client.p_write(fd2, b"int helper;")
    client.p_commit()
    client.p_close(fd1)
    client.p_close(fd2)
    assert fs.read_file("/src1.c") == b"int main;"
    assert fs.read_file("/src2.c") == b"int helper;"


def test_abort_rolls_back_every_file(client, fs):
    fd_keep = client.p_creat("/keep")
    client.p_write(fd_keep, b"safe")
    client.p_close(fd_keep)
    client.p_begin()
    fd1 = client.p_creat("/a")
    fd2 = client.p_open("/keep", O_RDWR)
    client.p_write(fd1, b"doomed")
    client.p_write(fd2, b"OVERWRITTEN")
    client.p_abort()
    assert not fs.exists("/a")
    assert fs.read_file("/keep") == b"safe"


def test_no_nested_transactions(client):
    """"A single application program may only have one transaction
    active at any time."""
    client.p_begin()
    with pytest.raises(TransactionError):
        client.p_begin()
    client.p_commit()


def test_commit_without_begin_rejected(client):
    with pytest.raises(TransactionError):
        client.p_commit()
    with pytest.raises(TransactionError):
        client.p_abort()


def test_autocommit_each_call_is_durable(client, fs):
    fd = client.p_creat("/auto")
    client.p_write(fd, b"one")
    # No explicit commit: the chunk already committed.  The library
    # batches attribute maintenance, so the recorded size lags until a
    # stat/close reconciles it — other clients see the data then.
    client.p_stat("/auto")
    assert fs.read_file("/auto") == b"one"
    client.p_close(fd)


def test_historical_open_via_timestamp(client, clock):
    fd = client.p_creat("/t")
    client.p_write(fd, b"old contents")
    client.p_close(fd)
    t0 = clock.now()
    fd = client.p_open("/t", O_RDWR)
    client.p_write(fd, b"NEW")
    client.p_close(fd)
    hist = client.p_open("/t", O_RDONLY, timestamp=t0)
    assert client.p_read(hist, 100) == b"old contents"
    client.p_close(hist)


def test_position_preserved_across_autocommit_calls(client):
    fd = client.p_creat("/pos")
    client.p_write(fd, b"aaa")
    client.p_write(fd, b"bbb")  # continues at offset 3
    client.p_lseek(fd, 0, 0)
    assert client.p_read(fd, 6) == b"aaabbb"
    client.p_close(fd)


def test_p_stat_reconciles_pending_size(client):
    fd = client.p_creat("/sz")
    client.p_write(fd, b"x" * 1000)
    assert client.p_stat("/sz").size == 1000
    client.p_close(fd)


def test_p_readdir_and_namespace_calls(client):
    client.p_mkdir("/dir")
    fd = client.p_creat("/dir/file")
    client.p_close(fd)
    assert client.p_readdir("/dir") == ["file"]
    client.p_rename("/dir/file", "/dir/renamed")
    assert client.p_readdir("/dir") == ["renamed"]
    client.p_unlink("/dir/renamed")
    client.p_rmdir("/dir")
    assert client.p_readdir("/") == []


def test_handles_rebind_after_commit(client):
    client.p_begin()
    fd = client.p_creat("/rebind")
    client.p_write(fd, b"first")
    client.p_commit()
    client.p_begin()
    client.p_write(fd, b"-more")
    client.p_commit()
    client.p_lseek(fd, 0, 0)
    assert client.p_read(fd, 20) == b"first-more"
    client.p_close(fd)
