"""Range reads over the chunk store: the index half of the sequential
fast path.  ``read_range`` must be byte-identical to per-chunk reads in
every configuration — MVCC rewrites, coalescing-buffer overlays, holes,
time travel through the archive, and the unindexed ablation."""

import pytest

from repro.core.chunks import ChunkStore, chunk_table_name
from repro.core.constants import CHUNK_SIZE, O_RDONLY
from repro.db.btree import BTree


@pytest.fixture
def store(fs, client):
    fd = client.p_creat("/f")
    client.p_close(fd)
    tx = fs.begin()
    s = ChunkStore(fs.db, fs.resolve("/f", tx), tx)
    yield fs, tx, s
    fs.commit(tx)


def write_chunks(tx, s, contents: dict[int, bytes]) -> None:
    for chunkno, data in contents.items():
        s.write_chunk(tx, chunkno, data)
    s.flush(tx)


def test_range_matches_per_chunk_reads(store):
    fs, tx, s = store
    contents = {0: b"zero", 1: b"one", 2: b"two", 5: b"five"}
    write_chunks(tx, s, contents)
    snap = fs.db.snapshot(tx)
    got = s.read_range(0, 5, snap, tx)
    assert got == contents  # 3 and 4 are holes: absent, not b""
    for c in range(6):
        assert got.get(c, b"") == s.read_chunk(c, snap, tx)


def test_empty_and_inverted_ranges(store):
    fs, tx, s = store
    write_chunks(tx, s, {0: b"x"})
    snap = fs.db.snapshot(tx)
    assert s.read_range(3, 2, snap, tx) == {}
    assert s.read_range(10, 20, snap, tx) == {}


def test_range_sees_newest_version(store):
    """No-overwrite MVCC: superseded versions stay in the heap and the
    index; the range scan must resolve each chunk to its newest visible
    version, exactly as index_eq does."""
    fs, tx, s = store
    write_chunks(tx, s, {0: b"v1", 1: b"stable"})
    write_chunks(tx, s, {0: b"v2"})
    write_chunks(tx, s, {0: b"v3"})
    got = s.read_range(0, 1, fs.db.snapshot(tx), tx)
    assert got == {0: b"v3", 1: b"stable"}


def test_dirty_buffer_shadows_range(store):
    fs, tx, s = store
    write_chunks(tx, s, {0: b"flushed", 1: b"old"})
    s.write_chunk(tx, 1, b"buffered")
    s.write_chunk(tx, 7, b"new")
    got = s.read_range(0, 9, fs.db.snapshot(tx), tx)
    assert got == {0: b"flushed", 1: b"buffered", 7: b"new"}


def test_range_is_one_descent(store):
    fs, tx, s = store
    write_chunks(tx, s, {c: bytes([c]) * 16 for c in range(20)})
    d0 = BTree.total_descents
    got = s.read_range(0, 19, fs.db.snapshot(tx), tx)
    assert len(got) == 20
    assert BTree.total_descents - d0 == 1


def test_unindexed_ablation_range(fs, client):
    fs.chunk_index = False  # the Figure 3 ablation configuration
    fd = client.p_creat("/plain")
    client.p_close(fd)
    tx = fs.begin()
    s = ChunkStore(fs.db, fs.resolve("/plain", tx), tx)
    assert not s._indexed
    write_chunks(tx, s, {0: b"a", 2: b"c"})
    write_chunks(tx, s, {0: b"a2"})
    snap = fs.db.snapshot(tx)
    assert s.read_range(0, 3, snap, tx) == {0: b"a2", 2: b"c"}
    assert s.visible_chunk_count(snap, tx) == 2
    fs.commit(tx)


def test_visible_chunk_count_counts_chunks_not_versions(store):
    fs, tx, s = store
    write_chunks(tx, s, {0: b"x", 1: b"y", 2: b"z"})
    write_chunks(tx, s, {1: b"y2"})
    assert s.visible_chunk_count(fs.db.snapshot(tx), tx) == 3
    assert s.version_count() == 4


# -- time travel ------------------------------------------------------------


def test_historical_range_read(fs, client, clock):
    fd = client.p_creat("/hist")
    client.p_write(fd, b"A" * CHUNK_SIZE + b"B" * CHUNK_SIZE)
    client.p_close(fd)
    t0 = clock.now()
    fd = client.p_open("/hist", 2)
    client.p_lseek(fd, 0, 0, 0)
    client.p_write(fd, b"X" * CHUNK_SIZE)
    client.p_close(fd)
    assert fs.read_file("/hist", timestamp=t0) == \
        b"A" * CHUNK_SIZE + b"B" * CHUNK_SIZE
    assert fs.read_file("/hist") == b"X" * CHUNK_SIZE + b"B" * CHUNK_SIZE


def test_historical_range_read_after_vacuum(fs, client, clock):
    """Archived versions are merged into the range scan: the archive
    index contributes chunks the live index no longer resolves."""
    fd = client.p_creat("/vac")
    client.p_write(fd, b"old" + bytes(CHUNK_SIZE - 3) + b"two")
    client.p_close(fd)
    t0 = clock.now()
    fd = client.p_open("/vac", 2)
    client.p_lseek(fd, 0, 0, 0)
    client.p_write(fd, b"new")
    client.p_close(fd)
    fileid = fs.resolve("/vac")
    stats = fs.db.vacuum(chunk_table_name(fileid))
    assert stats.archived >= 1
    old = fs.read_file("/vac", timestamp=t0)
    assert old == b"old" + bytes(CHUNK_SIZE - 3) + b"two"
    assert fs.read_file("/vac")[:3] == b"new"


def test_historical_library_read_spans_archive(fs, client, clock):
    """The same through the library's historical open — the path the
    benchmark read loop takes."""
    fd = client.p_creat("/doc")
    client.p_write(fd, b"h" * (CHUNK_SIZE * 2))
    client.p_close(fd)
    t0 = clock.now()
    fd = client.p_open("/doc", 2)
    client.p_write(fd, b"n" * CHUNK_SIZE)
    client.p_close(fd)
    fs.db.vacuum(chunk_table_name(fs.resolve("/doc")))
    hist = client.p_open("/doc", O_RDONLY, timestamp=t0)
    assert client.p_read(hist, CHUNK_SIZE * 2) == b"h" * (CHUNK_SIZE * 2)
    client.p_close(hist)


# -- flush resolution paths -------------------------------------------------


def test_dense_flush_updates_existing_versions(store):
    """A dense dirty set resolves its existing TIDs with one range scan;
    updates must still supersede the old versions (not duplicate them)."""
    fs, tx, s = store
    write_chunks(tx, s, {c: b"first" for c in range(8)})
    write_chunks(tx, s, {c: b"second" for c in range(8)})
    snap = fs.db.snapshot(tx)
    assert s.read_range(0, 7, snap, tx) == {c: b"second" for c in range(8)}
    assert s.visible_chunk_count(snap, tx) == 8
    assert s.version_count() == 16


def test_sparse_flush_uses_per_chunk_probes(store):
    """Two random writes in a huge span take the per-chunk probe path;
    semantics are identical to the dense path."""
    fs, tx, s = store
    write_chunks(tx, s, {0: b"lo", 1000: b"hi"})
    write_chunks(tx, s, {0: b"lo2", 1000: b"hi2"})
    snap = fs.db.snapshot(tx)
    assert s.read_range(0, 1000, snap, tx) == {0: b"lo2", 1000: b"hi2"}
    assert s.version_count() == 4
