"""Chunk compression with random access."""

import zlib

import pytest

from repro.core.compression import CompressionService
from repro.errors import FileNotFoundError_, InversionError


@pytest.fixture
def svc(fs):
    return CompressionService(fs)


def _payload(n: int) -> bytes:
    # Compressible but non-trivial: repeated text with a counter.
    return b"".join(b"line %06d: the quick brown fox\n" % i
                    for i in range(n // 31 + 1))[:n]


def test_roundtrip(fs, svc):
    data = _payload(50_000)
    tx = fs.begin()
    svc.create_compressed(tx, "/c", data)
    fs.commit(tx)
    assert svc.read_all("/c") == data


def test_storage_actually_smaller(fs, svc):
    data = _payload(100_000)
    tx = fs.begin()
    svc.create_compressed(tx, "/c", data)
    fs.commit(tx)
    ratio = svc.compression_ratio("/c")
    assert ratio < 0.5
    assert fs.stat("/c").size < len(data) // 2


def test_random_access_reads_correct_bytes(fs, svc):
    data = _payload(80_000)
    tx = fs.begin()
    svc.create_compressed(tx, "/c", data, chunk_size=4096)
    fs.commit(tx)
    for offset, n in ((0, 10), (4095, 10), (40_000, 1000), (79_990, 100)):
        assert svc.read("/c", offset, n) == data[offset:offset + n]


def test_random_access_touches_few_chunks(fs, svc):
    """Paper: "Inversion determines which compressed chunk contains
    the bytes of interest, uncompresses it, and returns the user only
    the desired data"."""
    data = _payload(80_000)
    tx = fs.begin()
    svc.create_compressed(tx, "/c", data, chunk_size=4096)
    fs.commit(tx)
    info = svc.info("/c")
    assert svc.chunks_touched(info, 41_000, 10) == 1
    assert svc.chunks_touched(info, 4090, 10) == 2
    assert svc.chunks_touched(info, 0, 80_000) == 20


def test_read_past_end(fs, svc):
    tx = fs.begin()
    svc.create_compressed(tx, "/c", _payload(1000))
    fs.commit(tx)
    assert svc.read("/c", 5000, 10) == b""
    assert svc.read("/c", 990, 100) == _payload(1000)[990:]


def test_codecs(fs, svc):
    data = _payload(20_000)
    for codec in ("zlib", "zlib-fast", "zlib-best", "none"):
        tx = fs.begin()
        svc.create_compressed(tx, f"/{codec}", data, codec=codec)
        fs.commit(tx)
        assert svc.read_all(f"/{codec}") == data
    assert svc.info("/none").codec == "none"
    assert fs.stat("/zlib-best").size <= fs.stat("/zlib-fast").size


def test_unknown_codec_rejected(fs, svc):
    tx = fs.begin()
    with pytest.raises(InversionError):
        svc.create_compressed(tx, "/x", b"data", codec="lzma")
    fs.abort(tx)


def test_uncompressed_file_not_compressed_error(fs, svc, client):
    fd = client.p_creat("/plain")
    client.p_write(fd, b"plain bytes")
    client.p_close(fd)
    with pytest.raises(FileNotFoundError_):
        svc.info("/plain")


def test_time_travel_on_compressed_files(fs, svc, clock):
    data = _payload(10_000)
    tx = fs.begin()
    svc.create_compressed(tx, "/c", data)
    fs.commit(tx)
    t0 = clock.now()
    # Rewriting chunk 0 through the chunk store models an update.
    from repro.core.chunks import ChunkStore
    fileid = fs.resolve("/c")
    tx2 = fs.begin()
    store = ChunkStore(fs.db, fileid, tx2)
    new_piece = zlib.compress(b"REWRITTEN" + data[9:svc.info("/c").chunk_size],
                              6)
    store.write_chunk(tx2, 0, new_piece)
    store.flush(tx2)
    fs.commit(tx2)
    assert svc.read("/c", 0, 9) == b"REWRITTEN"
    assert svc.read("/c", 0, 9, timestamp=t0) == data[:9]


def test_empty_file(fs, svc):
    tx = fs.begin()
    svc.create_compressed(tx, "/empty", b"")
    fs.commit(tx)
    assert svc.read_all("/empty") == b""
    assert svc.info("/empty").usize == 0
