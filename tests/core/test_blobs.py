"""Large objects: the database face of Inversion storage."""

import pytest

from repro.core.blobs import LargeObjectManager
from repro.core.constants import O_RDWR
from repro.errors import FileNotFoundError_


@pytest.fixture
def lom(fs):
    return LargeObjectManager(fs)


def test_anonymous_object_lifecycle(fs, lom):
    tx = fs.begin()
    oid = lom.lo_creat(tx)
    lom.lo_write(tx, oid, 0, b"blob data")
    fs.commit(tx)
    assert lom.lo_read(oid, 0, 100) == b"blob data"
    assert lom.lo_size(oid) == 9


def test_object_has_no_pathname(fs, lom):
    tx = fs.begin()
    oid = lom.lo_creat(tx)
    fs.commit(tx)
    with pytest.raises(FileNotFoundError_):
        fs.path_of(oid)


def test_expose_path_gives_dual_access(fs, lom, client):
    """Paper: "the same Inversion file can be used by a database
    application and by a file system client simultaneously"."""
    tx = fs.begin()
    oid = lom.lo_creat(tx)
    lom.lo_write(tx, oid, 0, b"shared bytes")
    lom.expose_path(tx, oid, "/shared.blob")
    fs.commit(tx)
    # File system view:
    assert fs.read_file("/shared.blob") == b"shared bytes"
    # Database view, after a file system write:
    fd = client.p_open("/shared.blob", O_RDWR)
    client.p_write(fd, b"SHARED")
    client.p_close(fd)
    assert lom.lo_read(oid, 0, 100) == b"SHARED bytes"


def test_from_path_wraps_existing_file(fs, lom, client):
    fd = client.p_creat("/existing")
    client.p_write(fd, b"file-side data")
    client.p_close(fd)
    oid = lom.from_path("/existing")
    assert lom.lo_read(oid, 5, 4) == b"side"
    with pytest.raises(FileNotFoundError_):
        lom.from_path("/missing")


def test_lo_time_travel(fs, lom, clock):
    tx = fs.begin()
    oid = lom.lo_creat(tx)
    lom.lo_write(tx, oid, 0, b"v1")
    fs.commit(tx)
    t0 = clock.now()
    tx2 = fs.begin()
    lom.lo_write(tx2, oid, 0, b"v2")
    fs.commit(tx2)
    assert lom.lo_read(oid, 0, 2) == b"v2"
    assert lom.lo_read(oid, 0, 2, timestamp=t0) == b"v1"


def test_lo_unlink(fs, lom):
    tx = fs.begin()
    oid = lom.lo_creat(tx)
    lom.lo_unlink(tx, oid)
    fs.commit(tx)
    with pytest.raises(FileNotFoundError_):
        lom.lo_size(oid)


def test_lo_sparse_write(fs, lom):
    tx = fs.begin()
    oid = lom.lo_creat(tx)
    lom.lo_write(tx, oid, 10_000, b"tail")
    fs.commit(tx)
    assert lom.lo_size(oid) == 10_004
    assert lom.lo_read(oid, 0, 4) == bytes(4)
