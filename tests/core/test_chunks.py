"""Decomposition of files into tables (Figure 1)."""

import pytest

from repro.core.chunks import CHUNK_SCHEMA, ChunkStore, chunk_table_name
from repro.core.constants import CHUNK_SIZE
from repro.db.page import PAGE_SIZE
from repro.errors import FileTooLargeError, TableError


def test_table_name_computed_from_fileid():
    """Paper: "the name of the POSTGRES table storing data chunks for
    /etc/passwd would be inv23114"."""
    assert chunk_table_name(23114) == "inv23114"


def test_full_chunk_record_fits_one_per_page():
    """The chunk size is calculated so that a single record fits
    exactly on a data manager page."""
    from repro.db.tuples import TUPLE_HEADER_SIZE
    payload = CHUNK_SCHEMA.pack((0, 1, b"x" * CHUNK_SIZE))
    record = TUPLE_HEADER_SIZE + len(payload)
    from repro.db.page import HEADER_SIZE, SLOT_SIZE
    assert record + SLOT_SIZE <= PAGE_SIZE - HEADER_SIZE
    assert 2 * (record + SLOT_SIZE) > PAGE_SIZE - HEADER_SIZE


@pytest.fixture
def store(fs, client):
    fd = client.p_creat("/f")
    client.p_close(fd)
    tx = fs.begin()
    s = ChunkStore(fs.db, fs.resolve("/f", tx), tx)
    yield fs, tx, s
    fs.commit(tx)


def test_write_flush_read(store):
    fs, tx, s = store
    s.write_chunk(tx, 0, b"hello")
    s.flush(tx)
    assert s.read_chunk(0, fs.db.snapshot(tx), tx) == b"hello"


def test_dirty_buffer_shadows_table(store):
    fs, tx, s = store
    s.write_chunk(tx, 3, b"buffered")
    assert s.read_chunk(3, fs.db.snapshot(tx), tx) == b"buffered"
    assert s.visible_chunk_count(fs.db.snapshot(tx), tx) == 0  # not flushed


def test_missing_chunk_is_empty(store):
    fs, tx, s = store
    assert s.read_chunk(42, fs.db.snapshot(tx), tx) == b""


def test_rewrite_keeps_old_version(store):
    fs, tx, s = store
    s.write_chunk(tx, 0, b"v1")
    s.flush(tx)
    s.write_chunk(tx, 0, b"v2")
    s.flush(tx)
    assert s.read_chunk(0, fs.db.snapshot(tx), tx) == b"v2"
    assert s.version_count() == 2  # no-overwrite: both versions stored


def test_selfid_column_reserved_for_self_identification(store):
    """Paper: "space has been reserved in the tables storing file
    data" — every chunk record carries its file id."""
    fs, tx, s = store
    s.write_chunk(tx, 0, b"data")
    s.flush(tx)
    rows = [r for _t, r in s.table.scan(fs.db.snapshot(tx), tx)]
    assert rows == [(0, s.fileid, b"data")]


def test_coalescing_auto_flush(store):
    """"Multiple small sequential writes during a single transaction
    are coalesced": the buffer flushes itself at the limit."""
    from repro.core.constants import COALESCE_CHUNK_LIMIT
    fs, tx, s = store
    for i in range(COALESCE_CHUNK_LIMIT):
        s.write_chunk(tx, i, b"c%d" % i)
    assert len(s._dirty) == 0  # hit the limit → flushed
    assert s.visible_chunk_count(fs.db.snapshot(tx), tx) \
        == COALESCE_CHUNK_LIMIT


def test_oversize_chunk_rejected(store):
    fs, tx, s = store
    with pytest.raises(TableError):
        s.write_chunk(tx, 0, b"x" * (CHUNK_SIZE + 1))


def test_chunkno_over_limit_rejected(store):
    fs, tx, s = store
    with pytest.raises(FileTooLargeError):
        s.write_chunk(tx, 2 ** 31, b"far")


def test_discard_drops_buffered_writes(store):
    fs, tx, s = store
    s.write_chunk(tx, 0, b"nope")
    s.discard()
    assert s.read_chunk(0, fs.db.snapshot(tx), tx) == b""


def test_flush_returns_count_and_is_idempotent(store):
    fs, tx, s = store
    s.write_chunk(tx, 0, b"a")
    s.write_chunk(tx, 1, b"b")
    assert s.flush(tx) == 2
    assert s.flush(tx) == 0
