"""Client-side write batching (``write_batch_chunks``) and the
orphaned-session cleanup it makes necessary.

The batched write RPC is the symmetric twin of ``read_batch_chunks``:
sequential ``p_write`` calls accumulate client-side and ship as one
``p_write`` per window.  The tests pin the protocol invariants — same
bytes on the server whatever the batch size, buffers flushed before any
other RPC — and the server's guarantee that a session dying with
buffered writes mid-transaction releases its locks and reconciles its
pending attribute updates.
"""

import pytest

from repro.core.client import RemoteInversionClient
from repro.core.constants import CHUNK_SIZE
from repro.core.server import InversionServer
from repro.sim.network import ETHERNET_10MBIT, NetworkModel


def make_remote(fs, clock, **kwargs):
    server = InversionServer(fs)
    network = NetworkModel(clock=clock, params=ETHERNET_10MBIT)
    return server, RemoteInversionClient(server, network, **kwargs)


def chunks(n, seed=0):
    return [bytes([65 + (seed + i) % 26]) * CHUNK_SIZE for i in range(n)]


def test_sequential_writes_ship_as_batched_rpcs(fs, clock):
    server, client = make_remote(fs, clock, write_batch_chunks=4)
    fd = client.p_creat("/wb")
    client.p_begin()
    for piece in chunks(8):
        client.p_write(fd, piece)
    client.p_commit()
    client.p_close(fd)
    assert client.buffered_writes == 8
    assert client.batched_writes == 2  # 8 chunks / window of 4
    assert fs.read_file("/wb") == b"".join(chunks(8))
    client.close()


def test_default_batch_size_preserves_paper_protocol(fs, clock):
    _server, client = make_remote(fs, clock)
    fd = client.p_creat("/plain")
    client.p_begin()
    for piece in chunks(4):
        client.p_write(fd, piece)
    client.p_commit()
    client.p_close(fd)
    assert client.buffered_writes == 0
    assert client.batched_writes == 0
    client.close()


def test_batching_sends_fewer_messages(fs, clock):
    server1, batched = make_remote(fs, clock, write_batch_chunks=16)
    fd = batched.p_creat("/few")
    batched.p_begin()
    before = batched.network.stats.messages
    for piece in chunks(16):
        batched.p_write(fd, piece)
    batched_msgs = batched.network.stats.messages - before
    batched.p_commit()
    batched.p_close(fd)
    batched.close()

    server2, plain = make_remote(fs, clock, write_batch_chunks=1)
    fd = plain.p_creat("/many")
    plain.p_begin()
    before = plain.network.stats.messages
    for piece in chunks(16):
        plain.p_write(fd, piece)
    plain_msgs = plain.network.stats.messages - before
    plain.p_commit()
    plain.p_close(fd)
    plain.close()
    assert batched_msgs * 4 < plain_msgs


def test_read_after_buffered_write_sees_the_bytes(fs, clock):
    """The write buffer is flushed before any read RPC, so a client
    always observes its own writes in program order."""
    _server, client = make_remote(fs, clock, write_batch_chunks=8)
    fd = client.p_creat("/ryw")
    client.p_begin()
    client.p_write(fd, b"hello ")
    client.p_write(fd, b"world")
    client.p_lseek(fd, 0, 0, 0)
    assert client.p_read(fd, 100) == b"hello world"
    client.p_commit()
    client.p_close(fd)
    client.close()


def test_seek_breaks_the_batch(fs, clock):
    """A non-sequential write ships the pending buffer first, then
    starts a fresh one at the new position — bytes land where the
    paper protocol would put them."""
    _server, client = make_remote(fs, clock, write_batch_chunks=8)
    fd = client.p_creat("/seeky")
    client.p_begin()
    client.p_write(fd, b"A" * 10)
    client.p_lseek(fd, 0, 5, 0)
    client.p_write(fd, b"B" * 10)
    client.p_commit()
    client.p_close(fd)
    assert fs.read_file("/seeky") == b"A" * 5 + b"B" * 10
    client.close()


def test_graceful_close_flushes_buffered_writes(fs, clock):
    _server, client = make_remote(fs, clock, write_batch_chunks=8)
    fd = client.p_creat("/flushed")
    client.p_write(fd, b"kept")  # auto-commit write, buffered client-side
    client.close()               # must ship the buffer before disconnect
    assert fs.read_file("/flushed") == b"kept"


# -- orphaned-session cleanup ------------------------------------------------


def test_disconnect_mid_transaction_releases_locks(fs, clock):
    """A session dying with buffered batched writes inside an open
    transaction must not strand its exclusive locks: the next session
    touching the same paths would block forever."""
    server, dying = make_remote(fs, clock, write_batch_chunks=8)
    dying.p_begin()
    fd = dying.p_creat("/contested")
    dying.p_write(fd, b"buffered, never shipped")
    # The process dies: the server tears the session down without the
    # client-side flush a graceful close would do.
    server.disconnect(dying._session)
    assert not fs.exists("/contested")  # the transaction aborted

    survivor = RemoteInversionClient(
        server, NetworkModel(clock=clock, params=ETHERNET_10MBIT))
    fd2 = survivor.p_creat("/contested")  # would deadlock on leaked locks
    survivor.p_write(fd2, b"second session wins")
    survivor.p_close(fd2)
    survivor.close()
    assert fs.read_file("/contested") == b"second session wins"


def test_disconnect_releases_locks_even_if_abort_hook_raises(fs, clock):
    server, dying = make_remote(fs, clock)
    dying.p_begin()
    fd = dying.p_creat("/hooked")
    dying.p_write(fd, b"x")
    session = server._sessions[dying._session]

    def bad_hook():
        raise RuntimeError("cache invalidation failed")

    session._tx.abort_hooks.append(bad_hook)
    server.disconnect(dying._session)  # must not raise, must not leak

    survivor = RemoteInversionClient(
        server, NetworkModel(clock=clock, params=ETHERNET_10MBIT))
    fd2 = survivor.p_creat("/hooked")
    survivor.p_write(fd2, b"ok")
    survivor.p_close(fd2)
    survivor.close()
    assert fs.read_file("/hooked") == b"ok"


def test_disconnect_reconciles_pending_attributes(fs, clock):
    """Auto-commit writes durably commit their chunks but defer the
    fileatt size update to close/stat.  A session that dies before
    closing must still reconcile, or every other session sees a stale
    size for data that is already on disk."""
    server, dying = make_remote(fs, clock)
    fd = dying.p_creat("/orphan")
    dying.p_write(fd, b"z" * 1000)  # auto-commit: chunk durable, att lags
    server.disconnect(dying._session)

    assert fs.stat("/orphan").size == 1000
    assert fs.read_file("/orphan") == b"z" * 1000
