"""InversionFS: directories, files, metadata, atomicity."""

import pytest

from repro.core.constants import O_CREAT, O_RDWR, TYPE_DIRECTORY
from repro.core.filesystem import InversionFS
from repro.errors import (
    DirectoryNotEmptyError,
    FileExistsError_,
    FileNotFoundError_,
    FileTypeError,
    IsADirectoryError_,
    NotADirectoryError_,
)


def test_mkfs_then_attach(db):
    fs = InversionFS.mkfs(db)
    again = InversionFS.attach(db)
    assert again.namespace.root_fileid == fs.namespace.root_fileid


def test_attach_non_inversion_database_rejected(db):
    with pytest.raises(FileNotFoundError_):
        InversionFS.attach(db)


def test_mkdir_and_readdir(fs):
    tx = fs.begin()
    fs.mkdir(tx, "/docs")
    fs.mkdir(tx, "/docs/papers")
    fs.commit(tx)
    assert fs.readdir("/") == ["docs"]
    assert fs.readdir("/docs") == ["papers"]
    assert fs.stat("/docs").type == TYPE_DIRECTORY


def test_creat_in_missing_dir_rejected(fs):
    tx = fs.begin()
    with pytest.raises(FileNotFoundError_):
        fs.creat(tx, "/nowhere/f")
    fs.abort(tx)


def test_creat_through_file_rejected(fs, client):
    fd = client.p_creat("/plainfile")
    client.p_close(fd)
    tx = fs.begin()
    with pytest.raises(NotADirectoryError_):
        fs.creat(tx, "/plainfile/child")
    fs.abort(tx)


def test_duplicate_creat_rejected(fs):
    tx = fs.begin()
    fs.creat(tx, "/f")
    with pytest.raises(FileExistsError_):
        fs.creat(tx, "/f")
    fs.abort(tx)


def test_open_creat_flag(fs):
    tx = fs.begin()
    with fs.open("/new", O_RDWR | O_CREAT, tx=tx) as f:
        f.write(b"fresh")
    fs.commit(tx)
    assert fs.read_file("/new") == b"fresh"


def test_open_directory_rejected(fs):
    tx = fs.begin()
    fs.mkdir(tx, "/d")
    fs.commit(tx)
    with pytest.raises(IsADirectoryError_):
        fs.open("/d")


def test_unlink_directory_rejected(fs):
    tx = fs.begin()
    fs.mkdir(tx, "/d")
    with pytest.raises(IsADirectoryError_):
        fs.unlink(tx, "/d")
    fs.abort(tx)


def test_rmdir_nonempty_rejected(fs, client):
    client.p_mkdir("/d")
    fd = client.p_creat("/d/f")
    client.p_close(fd)
    tx = fs.begin()
    with pytest.raises(DirectoryNotEmptyError):
        fs.rmdir(tx, "/d")
    fs.abort(tx)


def test_rmdir_empty(fs, client):
    client.p_mkdir("/d")
    client.p_mkdir("/d/sub")
    tx = fs.begin()
    fs.rmdir(tx, "/d/sub")
    fs.commit(tx)
    assert fs.readdir("/d") == []


def test_creation_is_atomic_namespace_plus_attributes(fs):
    """"When a new file is created in a directory, the directory …
    must be updated, and the new file must be created.  If only one of
    these operations takes place, then the file system's structure is
    corrupt" — an abort must undo all three inserts."""
    tx = fs.begin()
    fileid = fs.creat(tx, "/half")
    fs.abort(tx)
    assert not fs.exists("/half")
    tx2 = fs.begin()
    snap = fs.db.snapshot(tx2)
    assert fs.fileatt.get_entry(fileid, snap, tx2) is None
    fs.commit(tx2)


def test_write_file_overwrite_semantics(fs):
    tx = fs.begin()
    fs.write_file(tx, "/w", b"version one")
    fs.commit(tx)
    tx2 = fs.begin()
    fs.write_file(tx2, "/w", b"TWO")
    fs.commit(tx2)
    # Overwrite-in-place of the prefix; the file keeps its length.
    assert fs.read_file("/w") == b"TWOsion one"


def test_set_file_type_requires_defined_type(fs, client):
    fd = client.p_creat("/img")
    client.p_close(fd)
    tx = fs.begin()
    with pytest.raises(FileTypeError):
        fs.set_file_type(tx, "/img", "undeclared")
    fs.db.catalog.define_type(tx, "declared")
    fs.set_file_type(tx, "/img", "declared")
    fs.commit(tx)
    assert fs.stat("/img").type == "declared"


def test_owner_recorded(fs):
    tx = fs.begin()
    fs.creat(tx, "/mine", owner="mao")
    fs.commit(tx)
    assert fs.stat("/mine").owner == "mao"


def test_file_on_named_device(fs):
    fs.db.add_device("juke0", "jukebox")
    tx = fs.begin()
    fileid = fs.creat(tx, "/archive.dat", device="juke0")
    with fs.open("/archive.dat", O_RDWR, tx=tx) as f:
        f.write(b"on optical media")
    fs.commit(tx)
    from repro.core.chunks import chunk_table_name
    assert fs.db.switch.get("juke0").relation_exists(chunk_table_name(fileid))
    assert fs.read_file("/archive.dat") == b"on optical media"


def test_path_of(fs, client):
    client.p_mkdir("/a")
    fd = client.p_creat("/a/b")
    client.p_close(fd)
    assert fs.path_of(fs.resolve("/a/b")) == "/a/b"
