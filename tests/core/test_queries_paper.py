"""The paper's own example queries, run verbatim (modulo type names).

The paper shows three queries:

1. ``retrieve (filename) where "RISC" in keywords(file)``
2. ``retrieve (filename) where owner(file) = "mao" and (filetype(file)
   = "movie" or filetype(file) = "sound") and dir(file) = "/users/mao"``
3. ``retrieve (snow(file), filename) where filetype(file) = "tm" and
   snow(file)/size(file) > 0.5 and month_of(file) = "April"``
"""

import pytest

from repro.core.filetypes import FileTypeManager
from repro.core.functions import (
    make_satellite_image,
    make_troff_document,
    register_standard_types,
)


@pytest.fixture
def corpus(fs, client, clock):
    tx = fs.begin()
    register_standard_types(fs, tx)
    ftm = FileTypeManager(fs)
    ftm.define_file_type(tx, "movie")
    ftm.define_file_type(tx, "sound")
    ftm.define_file_type(tx, "tm")   # alias used by the paper's query
    fs.commit(tx)

    def put(path, data, ftype, owner="root"):
        fd = client.p_creat(path, owner=owner)
        client.p_write(fd, data)
        client.p_close(fd)
        tx = fs.begin()
        fs.set_file_type(tx, path, ftype)
        fs.commit(tx)

    client.p_mkdir("/papers")
    put("/papers/risc.t", make_troff_document("RISC II", ["RISC", "vlsi"]),
        "troff_document")
    put("/papers/cisc.t", make_troff_document("VAX", ["CISC"]),
        "troff_document")

    client.p_mkdir("/users")
    client.p_mkdir("/users/mao")
    put("/users/mao/clip.mov", b"\x00movie-bytes", "movie", owner="mao")
    put("/users/mao/talk.au", b"\x00sound-bytes", "sound", owner="mao")
    put("/users/mao/notes.txt", b"text", "plain", owner="mao")
    put("/elsewhere.mov", b"\x00other", "movie", owner="mao")

    # The snow corpus: functions are defined for tm_image; the paper's
    # "tm" type gets the same treatment by re-registering snow for it.
    tx = fs.begin()
    from repro.core import functions as fnmod
    ftm.register_content_function(tx, "snow_tm", fnmod.snow, "int8", ["tm"])
    fs.commit(tx)
    # size(file) is bytes; with 1 byte/pixel/band the paper's
    # snow/size > 0.5 predicate needs a mostly-snow image.
    snowy = make_satellite_image(64, 64, 1, snow_fraction=0.9, seed=2)
    clear = make_satellite_image(64, 64, 1, snow_fraction=0.05, seed=3)
    put("/snowy.tm", snowy, "tm")
    put("/clear.tm", clear, "tm")
    return fs, client


def q(fs, text):
    tx = fs.begin()
    try:
        return fs.query(tx, text)
    finally:
        fs.commit(tx)


def test_keywords_query(corpus):
    fs, _client = corpus
    rows = q(fs, 'retrieve (filename) where filetype(file) = "troff_document" '
                 'and "RISC" in keywords(file)')
    assert rows == [("risc.t",)]


def test_owner_filetype_dir_query(corpus):
    """The movie-or-sound query, verbatim."""
    fs, _client = corpus
    rows = q(fs, 'retrieve (filename) '
                 'where owner(file) = "mao" '
                 'and (filetype(file) = "movie" or filetype(file) = "sound") '
                 'and dir(file) = "/users/mao" sort by filename')
    assert rows == [("clip.mov",), ("talk.au",)]


def test_snow_query(corpus):
    fs, _client = corpus
    rows = q(fs, 'retrieve (snow_tm(file), filename) '
                 'where filetype(file) = "tm" '
                 'and snow_tm(file) / size(file) > 0.5')
    assert len(rows) == 1
    count, name = rows[0]
    assert name == "snowy.tm"
    assert count > 0.5 * 64 * 64


def test_month_of_function(corpus):
    fs, _client = corpus
    rows = q(fs, 'retrieve (filename, month_of(file)) '
                 'where filename = "snowy.tm"')
    assert rows[0][1] == "January"  # simulated epoch starts in January 1970


def test_size_query(corpus):
    fs, _client = corpus
    rows = q(fs, 'retrieve (filename, size(file)) where size(file) > 4000 '
                 'sort by filename')
    assert [r[0] for r in rows] == ["clear.tm", "snowy.tm"]


def test_query_through_client_library(corpus):
    fs, client = corpus
    rows = client.p_query('retrieve (filename) where owner(file) = "mao" '
                          'and dir(file) = "/users/mao" sort by filename')
    assert [r[0] for r in rows] == ["clip.mov", "notes.txt", "talk.au"]
