"""Shared fixtures: fresh databases, mounted file systems, clients."""

from __future__ import annotations

import pytest

from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.db.database import Database
from repro.sim.clock import SimClock


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def db(tmp_path, clock) -> Database:
    database = Database.create(str(tmp_path / "db"), clock=clock)
    yield database
    database.close()


@pytest.fixture
def fs(db) -> InversionFS:
    return InversionFS.mkfs(db)


@pytest.fixture
def client(fs) -> InversionClient:
    return InversionClient(fs)


@pytest.fixture
def small_db(tmp_path, clock) -> Database:
    """A database with a deliberately tiny buffer cache, to exercise
    eviction paths."""
    database = Database.create(str(tmp_path / "smalldb"), clock=clock,
                               buffer_pages=16)
    yield database
    database.close()
