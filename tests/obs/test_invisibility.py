"""Observability is semantically invisible.

The contract the tentpole hangs on: registry mirrors, per-transaction
accounting, and even *enabled* tracing never advance the simulated
clock, never touch a device, and never shift a crash boundary.  These
tests pin it with the crash-schedule explorer (identical schedules,
zero violations, tracing on) and with byte-level comparison of a
workload's simulated costs with tracing on vs off.
"""

import pytest

from repro.core.filesystem import InversionFS
from repro.db.database import Database
from repro.sim.clock import SimClock
from repro.testkit import CrashScheduleExplorer
from repro.testkit.workload import (Workload, group_commit_workload,
                                    payload, write_heavy_workload)


class TracedWorkload(Workload):
    """The same workload, with tracing switched on for every run the
    explorer builds (profiling pass and each crash point)."""

    def setup(self, db, fs) -> None:
        super().setup(db, fs)
        db.obs.tracer.enable()


def traced(workload: Workload) -> TracedWorkload:
    return TracedWorkload(**vars(workload))


@pytest.mark.parametrize("factory", [write_heavy_workload,
                                     group_commit_workload],
                         ids=["write_heavy", "group_commit"])
def test_explorer_schedule_identical_with_tracing(tmp_path, factory):
    plain = CrashScheduleExplorer(
        str(tmp_path / "plain"), factory()).explore(max_points=15)
    assert plain.violations == [], "\n".join(
        f"point {v.point}: {v.detail}" for v in plain.violations)

    with_tracing = CrashScheduleExplorer(
        str(tmp_path / "traced"), traced(factory())).explore(max_points=15)
    assert with_tracing.violations == [], "\n".join(
        f"point {v.point}: {v.detail}" for v in with_tracing.violations)

    # Same durable-write trace → same crash points, point for point.
    assert with_tracing.total_writes == plain.total_writes
    assert with_tracing.points_tested == plain.points_tested


def _run_workload(workdir, trace: bool):
    """A small mixed workload; returns every simulated-cost observable:
    final sim time and the root device's full disk-stat vector."""
    clock = SimClock()
    db = Database.create(str(workdir), clock=clock)
    fs = InversionFS.mkfs(db)
    if trace:
        db.obs.tracer.enable()
    tx = fs.begin()
    fs.mkdir(tx, "/d")
    fs.write_file(tx, "/d/a", payload(0, "a", 60_000))
    fs.commit(tx)
    tx = fs.begin()
    fs.write_file(tx, "/d/b", payload(0, "b", 9_000))
    fs.commit(tx)
    db.buffers.invalidate_all()
    fs.read_file("/d/a")
    # Exercise the registry while the run is live — collection must
    # not perturb anything either.
    snapshot = db.obs.metrics.collect()
    assert snapshot["buffer.hits"] != {}
    root = db.switch.get(db.catalog.root_device)
    stats = vars(root.disk.stats).copy()
    spans = db.obs.tracer.spans_emitted
    now = clock.now()
    db.close()
    return now, stats, spans


def test_costs_byte_identical_with_tracing_enabled(tmp_path):
    plain_now, plain_stats, plain_spans = _run_workload(
        tmp_path / "plain", trace=False)
    traced_now, traced_stats, traced_spans = _run_workload(
        tmp_path / "traced", trace=True)
    assert plain_spans == 0
    assert traced_spans > 0                 # tracing actually ran
    assert traced_now == plain_now          # == , not approx: bit-identical
    assert traced_stats == plain_stats


def test_registry_reset_does_not_disturb_mirrors(tmp_path):
    """An explicit registry reset mid-run zeroes pushed series only;
    the mirrored simulation counters and costs are untouched."""
    clock = SimClock()
    db = Database.create(str(tmp_path / "d"), clock=clock)
    fs = InversionFS.mkfs(db)
    tx = fs.begin()
    fs.write_file(tx, "/f", payload(0, "f", 30_000))
    fs.commit(tx)
    before = db.obs.metrics.value("txn.commits_recorded")
    db.obs.metrics.reset()
    assert db.obs.metrics.value("txn.commits_recorded") == before
    assert db.obs.metrics.get("device.writes").total() == 0  # pushed: cleared
    db.close()
