"""TxAccountant: attribution by current transaction, explicit-xid
charges, and the report rendering CI smokes."""

import threading

from repro.bench.report import format_tx_breakdown
from repro.obs.accounting import FIELDS, TxAccountant


def test_charge_books_to_current_xid():
    acct = TxAccountant()
    acct.begin(7)
    acct.charge("buffer_hits")
    acct.charge("device_pages_read", 3)
    acct.end(7)
    row = acct.row(7)
    assert row["buffer_hits"] == 1
    assert row["device_pages_read"] == 3


def test_charge_outside_transaction_dropped():
    acct = TxAccountant()
    acct.charge("buffer_hits")          # bootstrap read: nobody pays
    acct.begin(1)
    acct.end(1)
    acct.charge("buffer_hits")          # after end: dropped too
    assert acct.row(1)["buffer_hits"] == 0
    assert acct.breakdown() == {1: dict.fromkeys(FIELDS, 0)}


def test_charge_xid_creates_row():
    acct = TxAccountant()
    acct.charge_xid(9, "lock_waits")
    acct.charge_xid(9, "lock_wait_seconds", 0.25)
    assert acct.row(9)["lock_waits"] == 1
    assert acct.row(9)["lock_wait_seconds"] == 0.25


def test_breakdown_in_begin_order():
    acct = TxAccountant()
    for xid in (4, 2, 9):
        acct.begin(xid)
        acct.charge("status_forces")
        acct.end(xid)
    assert list(acct.breakdown()) == [4, 2, 9]


def test_threads_attribute_independently():
    acct = TxAccountant()
    acct.begin(1)

    def other():
        acct.begin(2)
        acct.charge("buffer_misses")
        acct.end(2)

    t = threading.Thread(target=other)
    t.start()
    t.join()
    acct.charge("buffer_hits")
    assert acct.row(1) == {**dict.fromkeys(FIELDS, 0), "buffer_hits": 1}
    assert acct.row(2)["buffer_misses"] == 1


def test_end_only_clears_matching_xid():
    acct = TxAccountant()
    acct.begin(1)
    acct.end(99)                        # stale end from another path
    acct.charge("buffer_hits")
    assert acct.row(1)["buffer_hits"] == 1


def test_format_tx_breakdown_renders_all_fields():
    acct = TxAccountant()
    acct.begin(3)
    acct.charge("buffer_hits", 12)
    acct.charge("lock_wait_seconds", 0.125)
    acct.end(3)
    text = format_tx_breakdown(acct.breakdown())
    lines = text.splitlines()
    assert lines[2].split() == ["xid", "buf.hit", "buf.miss", "rd.ops",
                                "rd.pages", "wr.ops", "wr.pages",
                                "lk.waits", "lk.secs", "forces", "cc.hits"]
    row = [line for line in lines if line.lstrip().startswith("3")][0]
    assert "12" in row and "0.125" in row
    assert lines[-1].lstrip().startswith("total")


def test_live_database_attributes_commit_costs(tmp_path):
    """The end-to-end wiring: a committed transaction's durable work
    (device writes, the status-file force) lands on its own xid."""
    from repro.core.filesystem import InversionFS
    from repro.db.database import Database
    from repro.sim.clock import SimClock

    db = Database.create(str(tmp_path / "d"), clock=SimClock())
    fs = InversionFS.mkfs(db)
    tx = fs.begin()
    fs.mkdir(tx, "/a")
    fs.write_file(tx, "/a/f", b"x" * 10_000)
    fs.commit(tx)
    row = db.obs.tx.row(tx.xid)
    db.close()
    assert row["device_write_ops"] > 0
    assert row["device_pages_written"] >= row["device_write_ops"]
    assert row["status_forces"] >= 1
    assert row["buffer_hits"] + row["buffer_misses"] > 0
