"""MetricsRegistry: specs, pushed vs mirrored series, the reset rule."""

import pytest

from repro.obs.registry import (HistogramValue, Metric, MetricSpec,
                                MetricsRegistry)


def spec(name="t.hits", kind="counter", unit="ops", labels=()):
    return MetricSpec(name, kind, unit, "test metric", "tests", labels)


# -- MetricSpec validation --------------------------------------------------


def test_bad_kind_rejected():
    with pytest.raises(ValueError):
        MetricSpec("x", "timer", "ops", "h", "m")


def test_missing_help_rejected():
    with pytest.raises(ValueError):
        MetricSpec("x", "counter", "ops", "", "m")


def test_missing_unit_rejected():
    with pytest.raises(ValueError):
        MetricSpec("x", "counter", "", "h", "m")


# -- pushed series ----------------------------------------------------------


def test_counter_inc_with_labels():
    m = Metric(spec(labels=("device", "relation")))
    m.inc(device="d0", relation="r")
    m.inc(3, device="d0", relation="r")
    m.inc(device="d1", relation="r")
    assert m.value(device="d0", relation="r") == 4
    assert m.value(device="d1", relation="r") == 1
    assert m.total() == 5


def test_wrong_labels_rejected():
    m = Metric(spec(labels=("device",)))
    with pytest.raises(ValueError):
        m.inc(disk="d0")
    with pytest.raises(ValueError):
        m.inc()


def test_kind_mismatch_rejected():
    counter = Metric(spec(kind="counter"))
    gauge = Metric(spec(name="t.g", kind="gauge"))
    hist = Metric(spec(name="t.h", kind="histogram", unit="seconds"))
    with pytest.raises(TypeError):
        counter.set(1)
    with pytest.raises(TypeError):
        gauge.inc()
    with pytest.raises(TypeError):
        hist.inc()


def test_gauge_set_overwrites():
    m = Metric(spec(name="t.g", kind="gauge"))
    m.set(5)
    m.set(2)
    assert m.value() == 2


def test_histogram_aggregates():
    m = Metric(spec(name="t.h", kind="histogram", unit="seconds"))
    for v in (1.0, 3.0, 2.0):
        m.observe(v)
    h = m.value()
    assert (h.count, h.sum, h.min, h.max) == (3, 6.0, 1.0, 3.0)
    assert h.mean == 2.0
    assert m.total() == 3  # histograms contribute their counts


def test_unset_series_reads_zero():
    assert Metric(spec()).value() == 0
    h = Metric(spec(name="t.h", kind="histogram", unit="seconds")).value()
    assert isinstance(h, HistogramValue) and h.count == 0


# -- mirrored series --------------------------------------------------------


def test_mirror_reads_live_value():
    class Stats:
        hits = 0

    stats = Stats()
    m = Metric(spec())
    m.mirror(lambda: stats.hits)
    assert m.value() == 0
    stats.hits = 7
    assert m.value() == 7


def test_mirror_wins_over_pushed():
    m = Metric(spec())
    m.inc(10)
    m.mirror(lambda: 3)
    assert m.value() == 3


def test_mirror_series_dynamic_labels():
    counts = {}
    m = Metric(spec(name="t.descents", labels=("relation",)))
    m.mirror_series(lambda: {(rel,): n for rel, n in counts.items()})
    assert m.series() == {}
    assert m.value(relation="pg_class") == 0
    counts["pg_class"] = 4
    assert m.series() == {("pg_class",): 4}
    assert m.value(relation="pg_class") == 4
    assert m.total() == 4


# -- registry ---------------------------------------------------------------


def test_register_idempotent_for_identical_spec():
    reg = MetricsRegistry()
    a = reg.register(spec())
    b = reg.register(spec())
    assert a is b


def test_register_conflicting_spec_rejected():
    reg = MetricsRegistry()
    reg.register(spec())
    with pytest.raises(ValueError):
        reg.register(spec(unit="pages"))


def test_collect_snapshots_all_series():
    reg = MetricsRegistry()
    reg.register(spec(labels=("device",))).inc(2, device="d0")
    reg.register(spec(name="t.g", kind="gauge")).set(9)
    snap = reg.collect()
    assert snap["t.hits"] == {("d0",): 2}
    assert snap["t.g"] == {(): 9}


def test_describe_sorted_by_name():
    reg = MetricsRegistry()
    reg.register(spec(name="z.last"))
    reg.register(spec(name="a.first"))
    assert [s.name for s in reg.describe()] == ["a.first", "z.last"]


def test_reset_zeroes_pushed_but_not_mirrors():
    """The one sanctioned explicit reset touches pushed series only —
    mirrored stats belong to their owning component (the reset rule)."""
    reg = MetricsRegistry()
    pushed = reg.register(spec(labels=("device",)))
    pushed.inc(5, device="d0")
    mirrored = reg.register(spec(name="t.m"))
    mirrored.mirror(lambda: 11)
    reg.reset()
    assert pushed.value(device="d0") == 0
    assert mirrored.value() == 11
