"""METRICS.md generation and drift checking (`python -m repro.obs`)."""

import pytest

from repro.obs import __main__ as obs_cli
from repro.obs import docs


def test_committed_docs_match_code():
    """The acceptance gate CI runs: the checked-in METRICS.md must be
    exactly what the specs render."""
    assert docs.check_docs() == []


def test_catalog_is_unique_and_well_owned():
    specs = docs.catalog()
    names = [s.name for s in specs]
    assert len(names) == len(set(names))
    for s in specs:
        assert s.module in docs.OWNING_MODULES


def test_every_live_registry_metric_is_documented(tmp_path):
    """METRICS.md covers every migrated counter: anything a real
    session registers (including client/server RPC families) has a
    documented spec."""
    from repro.core.client import RemoteInversionClient
    from repro.core.filesystem import InversionFS
    from repro.core.server import InversionServer
    from repro.db.database import Database
    from repro.sim.clock import SimClock
    from repro.sim.network import NetworkModel

    clock = SimClock()
    db = Database.create(str(tmp_path / "d"), clock=clock)
    fs = InversionFS.mkfs(db)
    client = RemoteInversionClient(InversionServer(fs), NetworkModel(clock))
    fd = client.p_creat("/f")
    client.p_write(fd, b"hello")
    client.p_close(fd)
    live = set(db.obs.metrics.names())
    db.close()
    documented = {s.name for s in docs.catalog()}
    assert live <= documented, f"undocumented: {sorted(live - documented)}"


def test_check_docs_missing_file(tmp_path):
    problems = docs.check_docs(str(tmp_path / "METRICS.md"))
    assert problems and "missing" in problems[0]


def test_check_docs_reports_first_difference(tmp_path):
    path = str(tmp_path / "METRICS.md")
    docs.write_docs(path)
    assert docs.check_docs(path) == []
    text = open(path, encoding="utf-8").read()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text.replace("disk.reads", "disk.readz", 1))
    problems = docs.check_docs(path)
    assert "stale" in problems[0]
    assert any("disk.readz" in p for p in problems)


def test_cli_write_then_check(tmp_path, capsys):
    path = str(tmp_path / "METRICS.md")
    assert obs_cli.main(["--write-docs", "--path", path]) == 0
    assert obs_cli.main(["--check-docs", "--path", path]) == 0
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("drift\n")
    assert obs_cli.main(["--check-docs", "--path", path]) == 1


def test_cli_requires_a_mode():
    with pytest.raises(SystemExit):
        obs_cli.main([])
