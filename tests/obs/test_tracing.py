"""Tracer: off by default, deterministic span trees, JSONL sink."""

import json

import pytest

from repro.obs.tracing import NO_SPAN, Tracer
from repro.sim.clock import SimClock


def test_disabled_tracer_returns_shared_noop():
    tr = Tracer(SimClock())
    span = tr.span("x", foo=1)
    assert span is NO_SPAN
    with span as s:
        s.set(bar=2)  # no-op, must not raise
    assert tr.spans_emitted == 0
    assert tr.events() == []


def test_span_records_sim_clock_interval():
    clock = SimClock()
    tr = Tracer(clock)
    tr.enable()
    clock.advance(1.0)
    with tr.span("op"):
        clock.advance(0.5)
    (event,) = tr.events()
    assert event["name"] == "op"
    assert event["start"] == pytest.approx(1.0)
    assert event["end"] == pytest.approx(1.5)


def test_span_never_advances_the_clock():
    clock = SimClock()
    tr = Tracer(clock)
    tr.enable()
    with tr.span("op", big="attrs"):
        pass
    assert clock.now() == 0.0


def test_parent_child_nesting():
    tr = Tracer(SimClock())
    tr.enable()
    with tr.span("outer") as outer:
        with tr.span("inner"):
            pass
    inner_ev, outer_ev = tr.events()  # inner exits (emits) first
    assert inner_ev["name"] == "inner"
    assert inner_ev["parent"] == outer_ev["span"]
    assert outer_ev["parent"] is None
    assert outer.span_id == outer_ev["span"]


def test_sibling_spans_share_parent():
    tr = Tracer(SimClock())
    tr.enable()
    with tr.span("outer"):
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
    a, b, outer = tr.events()
    assert a["parent"] == b["parent"] == outer["span"]
    assert a["span"] != b["span"]


def test_mid_span_set_and_error_recorded():
    tr = Tracer(SimClock())
    tr.enable()
    with pytest.raises(KeyError):
        with tr.span("op", pages=1) as sp:
            sp.set(pages=4)
            raise KeyError("boom")
    (event,) = tr.events()
    assert event["pages"] == 4
    assert event["error"] == "KeyError"


def test_span_ids_deterministic_across_tracers():
    def run(tr):
        tr.enable()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        return [(e["span"], e["parent"], e["name"]) for e in tr.events()]

    assert run(Tracer(SimClock())) == run(Tracer(SimClock()))


def test_jsonl_sink(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    tr = Tracer(SimClock())
    tr.enable(path=path)
    with tr.span("op", device="d0"):
        pass
    tr.disable()
    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    assert len(lines) == 1
    assert lines[0]["name"] == "op"
    assert lines[0]["device"] == "d0"
    # disabled again: no further emission
    with tr.span("op2"):
        pass
    assert tr.spans_emitted == 1


def test_reserved_envelope_keys_win_over_attrs():
    """An attribute named like an envelope field (a span tracing a page
    range might naturally pass ``start=``) must not clobber the
    timestamps or ids."""
    clock = SimClock()
    tr = Tracer(clock)
    tr.enable()
    clock.advance(2.0)
    with tr.span("device.write", start=17, parent=99):
        pass
    (event,) = tr.events()
    assert event["start"] == pytest.approx(2.0)
    assert event["parent"] is None
