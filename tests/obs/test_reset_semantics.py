"""The one reset rule: a metric spans exactly one Database session.

Components that physically outlive a session must not leak counts into
the next one: non-volatile devices zero their stats on ``rebind_clock``
adoption, and the registry re-baselines the process-global B-tree
descent attributes at bind time.
"""

from repro.core.filesystem import InversionFS
from repro.db.btree import BTree
from repro.db.database import Database
from repro.sim.clock import SimClock
from repro.testkit.workload import payload


def test_surviving_device_stats_zeroed_on_reopen(tmp_path):
    db = Database.create(str(tmp_path / "d"), clock=SimClock())
    InversionFS.mkfs(db)
    db.add_device("m0", "memdisk")
    dev = db.switch.get("m0")
    dev.create_relation("r")
    page = dev.extend("r")
    dev.write_page("r", page, b"x" * 8192)
    dev.read_page("r", page)
    assert dev.stats.writes > 0 and dev.stats.reads > 0
    assert db.obs.metrics.value("memdisk.writes", device="m0") > 0
    db.close()

    db2 = Database.open(str(tmp_path / "d"))
    dev2 = db2.switch.get("m0")
    assert dev2 is dev                     # the instance survived ...
    assert dev2.stats.writes == 0          # ... its session counters did not
    assert dev2.stats.reads == 0
    assert db2.obs.metrics.value("memdisk.writes", device="m0") == 0
    assert dev2.read_page("r", page) == b"x" * 8192  # media state is physical
    db2.close()


def test_disk_model_stats_zeroed_on_reopen(tmp_path):
    """rebind_clock also recreates the embedded DiskModel stats (and
    any staging disk's), not just the device's own counters."""
    db = Database.create(str(tmp_path / "d"), clock=SimClock())
    InversionFS.mkfs(db)
    db.add_device("jb", "jukebox")
    dev = db.switch.get("jb")
    dev.create_relation("r")
    page = dev.extend("r")
    dev.write_page("r", page, b"y" * 8192)
    assert dev.staging_disk.stats.writes > 0
    db.close()

    db2 = Database.open(str(tmp_path / "d"))
    dev2 = db2.switch.get("jb")
    assert dev2 is dev
    assert dev2.staging_disk.stats.writes == 0
    assert db2.obs.metrics.value("disk.writes", device="jb.staging") == 0
    db2.close()


def test_btree_descents_rebaselined_per_session(tmp_path):
    """The legacy BTree class attributes are process-global (benchmarks
    pin them as absolutes); the registry reports session-relative
    deltas, starting at zero even mid-process."""
    db = Database.create(str(tmp_path / "d"), clock=SimClock())
    fs = InversionFS.mkfs(db)
    tx = fs.begin()
    fs.mkdir(tx, "/d")
    fs.write_file(tx, "/d/f", payload(0, "f", 20_000))
    fs.commit(tx)
    session_descents = db.obs.metrics.value("btree.total_descents")
    assert session_descents > 0
    assert BTree.total_descents >= session_descents
    series = db.obs.metrics.get("btree.descents").series()
    assert series                          # per-relation deltas appear
    assert all(n > 0 for n in series.values())
    db.close()

    db2 = Database.open(str(tmp_path / "d"))
    assert BTree.total_descents > 0        # class attr keeps counting ...
    assert db2.obs.metrics.value("btree.total_descents") == 0  # ... we don't
    assert db2.obs.metrics.get("btree.descents").series() == {}
    fs2 = InversionFS.attach(db2)
    fs2.read_file("/d/f")
    assert db2.obs.metrics.value("btree.total_descents") > 0
    db2.close()


def test_flush_and_invalidate_never_reset_counters(tmp_path):
    """`flush_all`/`invalidate_all` move data, not counters — the
    explicit non-goal the reset rule documents."""
    db = Database.create(str(tmp_path / "d"), clock=SimClock())
    fs = InversionFS.mkfs(db)
    tx = fs.begin()
    fs.write_file(tx, "/f", payload(0, "f", 30_000))
    fs.commit(tx)
    hits = db.buffers.stats.hits
    writes = db.obs.metrics.get("device.writes").total()
    assert hits > 0 and writes > 0
    db.buffers.flush_all()
    db.buffers.invalidate_all()
    assert db.buffers.stats.hits == hits
    assert db.obs.metrics.value("buffer.hits") == hits
    assert db.obs.metrics.get("device.writes").total() >= writes
    db.close()
