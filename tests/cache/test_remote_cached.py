"""Integration: the lease-coherent cache on the remote client.

Zero-message hot reads, cross-client coherence, negative caching,
rename subtree invalidation, disconnect revocation, and the
per-transaction accounting of cache hits.
"""

from __future__ import annotations

import pytest

from repro.core.client import RemoteInversionClient
from repro.core.library import O_RDWR
from repro.core.server import InversionServer
from repro.errors import FileNotFoundError_
from repro.sim.network import ETHERNET_10MBIT, NetworkModel


@pytest.fixture
def server(fs) -> InversionServer:
    return InversionServer(fs)


def make_client(server, clock, **kwargs) -> RemoteInversionClient:
    network = NetworkModel(clock=clock, params=ETHERNET_10MBIT)
    kwargs.setdefault("cache_paths", 64)
    kwargs.setdefault("cache_chunks", 32)
    return RemoteInversionClient(server, network, **kwargs)


def test_warm_reread_and_restat_cost_zero_messages(server, clock):
    client = make_client(server, clock)
    data = b"h" * 40_000
    client.p_mkdir("/hot")
    fd = client.p_creat("/hot/f")
    client.p_write(fd, data)
    client.p_close(fd)
    client.p_stat("/hot/f")
    fd = client.p_open("/hot/f", 0)
    assert client.p_read(fd, len(data)) == data
    m0 = client.network.stats.messages
    for _ in range(4):
        att = client.p_stat("/hot/f")
        assert att.size == len(data)
        client.p_lseek(fd, 0, 0)            # absorbed client-side
        assert client.p_read(fd, len(data)) == data
    assert client.network.stats.messages == m0
    assert client._cache.stats.hits["att"] == 4
    assert client._cache.stats.hits["seek"] == 4
    client.close()


def test_cross_client_write_invalidates_cached_chunks(server, clock):
    reader = make_client(server, clock)
    writer = make_client(server, clock, cache_paths=0, cache_chunks=0)
    old = b"a" * 20_000
    fd = reader.p_creat("/f")
    reader.p_write(fd, old)
    reader.p_close(fd)
    reader.p_stat("/f")
    fd = reader.p_open("/f", 0)
    assert reader.p_read(fd, len(old)) == old
    new = b"b" * 20_000
    wfd = writer.p_open("/f", O_RDWR)
    writer.p_write(wfd, new)
    writer.p_close(wfd)
    # The writer's commit bumped the object's epoch; the reader drops
    # its chunks on the piggybacked notice and re-reads fresh bytes.
    reader.p_lseek(fd, 0, 0)
    assert reader.p_read(fd, len(new)) == new
    assert reader._cache.stats.invalidations > 0
    reader.close()
    writer.close()


def test_negative_caching_reraises_same_message(server, clock):
    client = make_client(server, clock)
    client.p_mkdir("/d")
    with pytest.raises(FileNotFoundError_) as first:
        client.p_stat("/d/nope")
    m0 = client.network.stats.messages
    with pytest.raises(FileNotFoundError_) as second:
        client.p_stat("/d/nope")
    assert client.network.stats.messages == m0      # served locally
    assert str(second.value) == str(first.value)
    assert client._cache.stats.hits["negative"] >= 1
    # Creating the file invalidates the negative entry.
    client.p_close(client.p_creat("/d/nope"))
    assert client.p_stat("/d/nope").size == 0
    client.close()


def test_rename_invalidates_cached_subtree(server, clock):
    client = make_client(server, clock)
    client.p_mkdir("/d")
    fd = client.p_creat("/d/a")
    client.p_write(fd, b"x" * 100)
    client.p_close(fd)
    client.p_stat("/d/a")                   # caches /d/a -> oid
    client.p_rename("/d", "/e")
    with pytest.raises(FileNotFoundError_):
        client.p_stat("/d/a")
    assert client.p_stat("/e/a").size == 100
    client.close()


def test_disconnect_revokes_lease(server, clock):
    client = make_client(server, clock)
    session = client._session
    leases = server.leases
    assert leases.subscribed(session)
    before = leases.stats.lease_revocations
    client.close()                          # disconnects the session
    assert not leases.subscribed(session)
    assert leases.stats.lease_revocations == before + 1
    assert client._cache.revoked


def test_revoked_session_stops_serving(server, clock):
    client = make_client(server, clock)
    fd = client.p_creat("/f")
    client.p_write(fd, b"z" * 100)
    client.p_close(fd)
    client.p_stat("/f")
    # The server forcibly expires the lease (crash-recovery path).
    server.leases.revoke(client._session)
    att = client.p_stat("/f")               # goes to the server again
    assert att.size == 100
    assert client._cache.revoked


def test_cache_hits_charged_to_owning_xid(db, server, clock):
    client = make_client(server, clock)
    data = b"w" * 20_000
    fd = client.p_creat("/f")
    client.p_write(fd, data)
    client.p_close(fd)
    client.p_stat("/f")
    fd = client.p_open("/f", 0)
    client.p_read(fd, len(data))            # fills; owner = this read's xid
    client.p_lseek(fd, 0, 0)
    client.p_read(fd, len(data))            # served from cache
    client.p_close(fd)
    client.close()
    charged = sum(row.get("client_cache_hits", 0)
                  for row in db.obs.tx.breakdown().values())
    assert charged == client._cache.stats.hits["chunk"]
    assert charged > 0


def test_explicit_transactions_bypass_the_cache(server, clock):
    client = make_client(server, clock)
    fd = client.p_creat("/f")
    client.p_write(fd, b"q" * 100)
    client.p_close(fd)
    client.p_stat("/f")                     # cached
    client.p_begin()
    m0 = client.network.stats.messages
    client.p_stat("/f")                     # in-tx: always an RPC
    assert client.network.stats.messages > m0
    client.p_commit()
    client.close()
