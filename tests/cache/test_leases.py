"""Unit tests for the server-side lease/epoch bookkeeping."""

from __future__ import annotations

from repro.cache.leases import (EPOCH_MODULUS, MAX_PENDING, LeaseManager,
                                epoch_newer, normalize_path)


class _FakeTx:
    def __init__(self, xid: int) -> None:
        self.xid = xid


def test_normalize_path_collapses_slashes():
    assert normalize_path("/a//b/") == "/a/b"
    assert normalize_path("a/b") == "/a/b"
    assert normalize_path("/") == "/"
    assert normalize_path("") == "/"


def test_epoch_newer_basics():
    assert epoch_newer(2, 1)
    assert not epoch_newer(1, 2)
    assert not epoch_newer(5, 5)


def test_epoch_newer_across_wraparound():
    # RFC 1982 serial arithmetic: the counter wraps, comparisons hold.
    old = EPOCH_MODULUS - 2
    assert epoch_newer(1, old)          # wrapped past zero
    assert not epoch_newer(old, 1)
    assert epoch_newer(0, EPOCH_MODULUS - 1)


def test_bump_fans_out_to_every_subscriber():
    lm = LeaseManager()
    lm.subscribe(1)
    lm.subscribe(2)
    lm.bump_name("/a/b")
    assert lm.poll(1) == [("name", "/a/b", 1)]
    assert lm.poll(2) == [("name", "/a/b", 1)]
    # Drained: the next poll is empty, not a repeat.
    assert lm.poll(1) == []


def test_tx_bumps_queue_until_flush_and_dedup():
    lm = LeaseManager()
    lm.subscribe(1)
    tx = _FakeTx(7)
    lm.bump_oid(42, tx)
    lm.bump_name("/x", tx)
    lm.bump_oid(42, tx)          # duplicate: one notice, original order
    assert lm.poll(1) == []      # nothing before the visibility point
    lm.flush_tx(7)
    notices = lm.poll(1)
    assert [(n[0], n[1]) for n in notices] == [("oid", 42), ("name", "/x")]
    lm.flush_tx(7)               # idempotent
    assert lm.poll(1) == []


def test_channel_overflow_collapses_to_full_flush():
    lm = LeaseManager()
    lm.subscribe(1)
    for i in range(MAX_PENDING + 10):
        lm.bump_oid(i)
    notices = lm.poll(1)
    assert len(notices) == 1
    assert notices[0][:2] == ("all", "")


def test_revoke_makes_poll_return_none():
    lm = LeaseManager()
    lm.subscribe(1)
    assert lm.revoke(1)
    assert not lm.revoke(1)      # second revoke is a no-op
    assert lm.poll(1) is None
    assert lm.stats.lease_revocations == 1


def test_revoke_all_counts_channels():
    lm = LeaseManager()
    lm.subscribe(1)
    lm.subscribe(2)
    assert lm.revoke_all() == 2
    assert lm.poll(1) is None and lm.poll(2) is None


def test_grant_goes_to_one_session_only():
    lm = LeaseManager()
    lm.subscribe(1)
    lm.subscribe(2)
    lm.grant(1, "/a//b", 99)
    assert lm.poll(1) == [("grant", "/a/b", 99, 0)]
    assert lm.poll(2) == []
    assert lm.stats.lease_grants == 1
