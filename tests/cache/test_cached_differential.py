"""Property-based differential testing with client caches enabled.

Two concurrent cached sessions run random transaction scripts through
the deterministic scheduler; the final file-system state must equal
the commit-order ModelFS oracle — i.e. the cache never serves a stale
byte the oracle would not.  Each session owns a private subtree and
both contend on a shared hot file, so every interleaving is
semantically valid and the lease invalidation path (one session's
commit dropping the other's cached state) is exercised constantly.

Contended hot-file overwrites use *variable* lengths, including
zero-length ``write(b"")``: concurrent different-length overwrites of
one file are exactly the open-time-size lost update of ROADMAP open
item 4 (fixed by reconciling size under the write lock at flush), so
the suite generates them again instead of sidestepping them with one
fixed length.

The scheduler-level test at the bottom drives cache-served reads
directly (top-level ``Call`` requests are what the scheduler cache
intercepts) and checks no read ever returns a torn mix of two
committed versions.
"""

from __future__ import annotations

import tempfile

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.cache import session_cache_factory  # noqa: E402
from repro.core.filesystem import InversionFS  # noqa: E402
from repro.core.server import InversionServer  # noqa: E402
from repro.db.database import Database  # noqa: E402
from repro.sched import Apply, Call, MultiUserScheduler, Ref, Txn  # noqa: E402
from repro.sim.clock import SimClock  # noqa: E402
from repro.testkit.concurrent import ConcurrentWorkloadRunner  # noqa: E402
from repro.testkit.oracle import harvest_state  # noqa: E402
from repro.testkit.workload import TxStep, Workload  # noqa: E402

HOT_SIZE = 1000


def session_ops(session: int):
    own_file = st.integers(0, 2).map(lambda j: f"/s{session}/f{j}")
    sizes = st.integers(0, 20_000)
    versions = st.integers(1, 9)
    # Contended overwrites vary in length — 0 (a pure write(b""))
    # through past the seeded HOT_SIZE — so interleavings that used to
    # trigger the open-time-size lost update are generated.
    hot_sizes = st.one_of(st.just(0), st.integers(1, 3 * HOT_SIZE))
    return st.one_of(
        st.tuples(st.just("write"), own_file, sizes).map(
            lambda t: (t[0], t[1], bytes([65 + session]) * t[2])),
        st.tuples(st.just("write"), st.just("/hot"), versions,
                  hot_sizes).map(
            lambda t: (t[0], t[1], bytes([48 + t[2]]) * t[3])),
    )


def session_script(session: int):
    steps = st.tuples(
        st.lists(session_ops(session), min_size=1, max_size=3),
        st.booleans())
    return st.lists(steps, min_size=1, max_size=4).map(
        lambda raw: tuple(TxStep(tuple(ops), abort=abort)
                          for ops, abort in raw))


scripts = st.tuples(session_script(0), session_script(1))

SETTINGS = settings(max_examples=20, deadline=None, derandomize=True,
                    suppress_health_check=[HealthCheck.too_slow])


def _setup_ops():
    return (("mkdir", "/s0"), ("mkdir", "/s1"),
            ("write", "/hot", b"0" * HOT_SIZE))


@given(sessions=scripts, seed=st.integers(0, 7))
@SETTINGS
def test_cached_concurrent_sessions_match_oracle(sessions, seed):
    workload = Workload("cached_diff", [], sessions=sessions,
                        sched_seed=seed, setup_ops=_setup_ops())
    with tempfile.TemporaryDirectory() as root:
        db = Database.create(root + "/db", clock=SimClock())
        try:
            fs = InversionFS.mkfs(db)
            workload.setup(db, fs)
            runner = ConcurrentWorkloadRunner(db, fs, workload, cached=True)
            runner.run()
            assert harvest_state(fs) == runner.completed_state()
        finally:
            db.close()


@given(sessions=scripts)
@SETTINGS
def test_cached_and_uncached_runs_agree(sessions):
    """The cache is semantically invisible: the same script lands in
    the same final state with caching on or off."""
    states = []
    for cached in (False, True):
        workload = Workload("cached_vs_not", [], sessions=sessions,
                            sched_seed=3, setup_ops=_setup_ops())
        with tempfile.TemporaryDirectory() as root:
            db = Database.create(root + "/db", clock=SimClock())
            try:
                fs = InversionFS.mkfs(db)
                workload.setup(db, fs)
                runner = ConcurrentWorkloadRunner(db, fs, workload,
                                                  cached=cached)
                runner.run()
                states.append(harvest_state(fs))
            finally:
                db.close()
    assert states[0] == states[1]


def _reader_program(rounds: int) -> list:
    """Top-level Calls (the requests the scheduler cache serves):
    stat, open, read the whole hot file, close — ``rounds`` times."""
    program = []
    ordinal = 0
    for _ in range(rounds):
        program.append(Call("p_stat", "/hot"))
        open_ord = ordinal + 1
        program.append(Call("p_open", "/hot", 0))
        program.append(Call("p_read", Ref(open_ord), HOT_SIZE))
        program.append(Call("p_close", Ref(open_ord)))
        ordinal += 4
    return program


def _writer_program(versions) -> list:
    return [Txn([Apply(f"hot v{v}",
                       lambda fs, tx, v=v: fs.write_file(
                           tx, "/hot", bytes([48 + v]) * HOT_SIZE))],
                tag=f"v{v}") for v in versions]


@pytest.mark.parametrize("seed", [0, 1, 5])
def test_scheduler_cached_reads_are_never_torn(tmp_path, seed):
    """A cached reader racing a writer must only ever observe whole
    committed versions of the hot file — a mix of two versions in one
    read means a stale chunk survived an invalidation."""
    db = Database.create(str(tmp_path / "db"), clock=SimClock())
    try:
        fs = InversionFS.mkfs(db)
        tx = fs.begin()
        fs.write_file(tx, "/hot", b"0" * HOT_SIZE)
        fs.commit(tx)
        db.tm.flush_commits()
        server = InversionServer(fs)
        factory = session_cache_factory()
        sched = MultiUserScheduler(server, seed=seed, cache_factory=factory)
        try:
            reader = sched.add_session(_reader_program(rounds=6), name="r")
            sched.add_session(_writer_program(range(1, 6)), name="w")
            sched.run(strict=True)
        finally:
            sched.close()
        legal = {bytes([48 + v]) * HOT_SIZE for v in range(0, 6)}
        reads = [v for v in reader.values.values() if isinstance(v, bytes)]
        assert len(reads) == 6
        for data in reads:
            assert data in legal, f"torn read: {data[:8]}...{data[-8:]}"
    finally:
        db.close()


def test_scheduler_cache_actually_serves(tmp_path):
    """A quiet re-read workload must land in the cache (guards against
    the factory wiring silently degrading to a no-op)."""
    db = Database.create(str(tmp_path / "db"), clock=SimClock())
    try:
        fs = InversionFS.mkfs(db)
        tx = fs.begin()
        fs.write_file(tx, "/hot", b"0" * HOT_SIZE)
        fs.commit(tx)
        db.tm.flush_commits()
        server = InversionServer(fs)
        factory = session_cache_factory()
        sched = MultiUserScheduler(server, seed=0, cache_factory=factory)
        try:
            sched.add_session(_reader_program(rounds=4), name="r")
            sched.run(strict=True)
        finally:
            sched.close()
        assert factory.stats.hits.get("att", 0) > 0
        assert factory.stats.hits.get("chunk", 0) > 0
    finally:
        db.close()
