"""Leases on the sharded cluster: the caching cluster client, and
lease expiry during in-doubt recovery."""

from __future__ import annotations

import pytest

from repro.errors import FileNotFoundError_
from repro.shard.cluster import ShardedCluster


@pytest.fixture
def cluster(tmp_path):
    c = ShardedCluster.create(str(tmp_path / "cl"), 2, policy="subtree",
                              assignments={"a": 0, "b": 1})
    yield c
    c.close()


def test_cluster_client_caches_stats_across_shards(cluster):
    client = cluster.client(cache_paths=32, cache_chunks=16)
    client.p_mkdir("/a")
    client.p_mkdir("/b")
    client.p_close(client.p_creat("/a/x"))
    client.p_close(client.p_creat("/b/y"))
    client.p_stat("/a/x")
    client.p_stat("/b/y")
    before = dict(client._cache_stats.hits)
    client.p_stat("/a/x")       # shard 0 hit
    client.p_stat("/b/y")       # shard 1 hit
    assert client._cache_stats.hits["att"] == before.get("att", 0) + 2
    client.close()


def test_cluster_client_negative_caching(cluster):
    client = cluster.client(cache_paths=32)
    client.p_mkdir("/a")
    with pytest.raises(FileNotFoundError_) as first:
        client.p_stat("/a/nope")
    with pytest.raises(FileNotFoundError_) as second:
        client.p_stat("/a/nope")
    assert str(second.value) == str(first.value)
    assert client._cache_stats.hits.get("negative", 0) >= 1
    client.close()


def test_expire_leases_revokes_every_shard(cluster):
    client = cluster.client(cache_paths=32, cache_chunks=16)
    client.p_mkdir("/a")
    client.p_mkdir("/b")
    client.p_stat("/a")
    client.p_stat("/b")
    revoked = cluster.expire_leases()
    assert revoked == 2          # one subscription per shard
    # The client notices per shard on its next request there.
    client.p_stat("/a")
    client.p_stat("/b")
    assert all(cache.revoked for cache in client._caches.values())
    client.close()


def test_in_doubt_recovery_expires_leases(cluster):
    """Cluster recovery must not leave any pre-crash lease alive — a
    cached client from before the crash could otherwise shield stale
    entries from post-recovery mutations."""
    client = cluster.client(cache_paths=32, cache_chunks=16)
    client.p_mkdir("/a")
    client.p_stat("/a")
    assert any(server.leases is not None and server.leases._channels
               for server in cluster.servers)
    cluster._recover_in_doubt()
    assert all(not server.leases._channels
               for server in cluster.servers if server.leases is not None)
    client.p_stat("/a")          # served by the server, lease gone
    assert all(cache.revoked for cache in client._caches.values())
    client.close()


def test_cached_cluster_client_coherent_across_clients(cluster):
    reader = cluster.client(cache_paths=32, cache_chunks=16)
    writer = cluster.client()
    reader.p_mkdir("/a")
    reader.p_close(reader.p_creat("/a/f"))
    assert reader.p_stat("/a/f").size == 0
    fd = writer.p_creat("/a/f2")     # unrelated mutation
    writer.p_write(fd, b"x" * 500)
    writer.p_close(fd)
    wfd = writer.p_open("/a/f", 2)   # O_RDWR
    writer.p_write(wfd, b"y" * 123)
    writer.p_close(wfd)
    # The writer's commit invalidates the reader's cached att.
    assert reader.p_stat("/a/f").size == 123
    reader.close()
    writer.close()
