"""Crash exploration with client caches enabled.

Lease bookkeeping is pure in-memory dict work — no device I/O, no
simulated-clock advance — so enabling the cache must leave the durable
write sequence untouched: the same number of write boundaries, and
zero oracle violations at every crash point.  The full enumerations
ride under ``-m torture`` like their uncached counterparts.
"""

from __future__ import annotations

import pytest

from repro.testkit.explorer import CrashScheduleExplorer, ShardedCrashExplorer
from repro.testkit.workload import concurrent_workload, cross_shard_workload


def test_cached_run_has_identical_write_boundaries(tmp_path):
    plain = CrashScheduleExplorer(str(tmp_path / "plain"),
                                  concurrent_workload())
    cached = CrashScheduleExplorer(str(tmp_path / "cached"),
                                   concurrent_workload(), cached=True)
    assert plain.count_write_boundaries() == cached.count_write_boundaries()


def test_cached_crash_points_zero_violations(tmp_path):
    explorer = CrashScheduleExplorer(str(tmp_path), concurrent_workload(),
                                     cached=True)
    report = explorer.explore(max_points=5)
    assert not report.violations, report.summary()
    assert len(report.points_tested) > 0


def test_sharded_cached_run_has_identical_write_boundaries(tmp_path):
    plain = ShardedCrashExplorer(str(tmp_path / "plain"),
                                 cross_shard_workload())
    cached = ShardedCrashExplorer(str(tmp_path / "cached"),
                                  cross_shard_workload(), cached=True)
    assert plain.count_write_boundaries() == cached.count_write_boundaries()


def test_sharded_cached_sweep_no_violations(tmp_path):
    explorer = ShardedCrashExplorer(str(tmp_path), cross_shard_workload(),
                                    torn_append=True, seed=3, cached=True)
    report = explorer.explore(max_points=10)
    assert report.violations == [], \
        "; ".join(f"@{r.point}: {r.detail}" for r in report.violations)
    assert len(report.points_tested) > 0


@pytest.mark.torture
def test_full_cached_concurrent_sweep(tmp_path):
    explorer = CrashScheduleExplorer(str(tmp_path), concurrent_workload(),
                                     torn_append=True, cached=True)
    report = explorer.explore()
    assert not report.violations, report.summary()
    assert len(report.points_tested) == report.total_writes


@pytest.mark.torture
def test_full_cached_cross_shard_sweep(tmp_path):
    explorer = ShardedCrashExplorer(str(tmp_path), cross_shard_workload(),
                                    torn_append=True, seed=3, cached=True)
    report = explorer.explore()
    assert report.violations == [], \
        "; ".join(f"@{r.point}: {r.detail}" for r in report.violations)
    assert len(report.points_tested) == report.total_writes
