"""Unit tests for the client cache tiers: LRU bounds, negative
caching, invalidation application, and the chunk serve/fill rules."""

from __future__ import annotations

from types import SimpleNamespace

from repro.cache.client import ClientCache
from repro.cache.leases import LeaseManager
from repro.core.chunks import CHUNK_SIZE


def make_cache(max_paths: int = 4, max_chunks: int = 4) -> ClientCache:
    lm = LeaseManager()
    lm.subscribe(1)
    return ClientCache(lm, 1, max_paths=max_paths, max_chunks=max_chunks)


def att_of(size: int):
    return SimpleNamespace(size=size)


def test_path_lru_eviction():
    cache = make_cache(max_paths=2)
    cache.fill_path("/a", 1)
    cache.fill_path("/b", 2)
    cache.lookup_oid("/a")          # touch: /b is now least recent
    cache.fill_path("/c", 3)
    assert cache.lookup_oid("/a") == 1
    assert cache.lookup_oid("/b") is None
    assert cache.lookup_oid("/c") == 3
    assert cache.stats.evictions == 1


def test_chunk_lru_eviction():
    cache = make_cache(max_chunks=2)
    cache.fill_att(9, att_of(3 * CHUNK_SIZE))
    for chunkno in range(3):
        cache.fill_read(9, chunkno * CHUNK_SIZE, b"x" * CHUNK_SIZE)
    assert cache.serve_read(9, 0, CHUNK_SIZE) is None       # evicted
    assert cache.serve_read(9, CHUNK_SIZE, CHUNK_SIZE) is not None
    assert cache.stats.evictions == 1


def test_negative_and_positive_displace_each_other():
    cache = make_cache()
    cache.fill_negative("/gone", "no such file: /gone")
    assert cache.lookup_negative("/gone") == "no such file: /gone"
    cache.fill_path("/gone", 5)     # the file was created
    assert cache.lookup_negative("/gone") is None
    assert cache.lookup_oid("/gone") == 5
    cache.fill_negative("/gone", "again")   # ... and unlinked
    assert cache.lookup_oid("/gone") is None


def test_name_invalidation_drops_whole_subtree():
    cache = make_cache()
    cache.fill_path("/d/a", 1)
    cache.fill_path("/d/sub/b", 2)
    cache.fill_negative("/d/missing", "nope")
    cache.fill_path("/dz", 3)       # sibling sharing the prefix string
    cache._apply_invalidation(("name", "/d", 7))
    assert cache.lookup_oid("/d/a") is None
    assert cache.lookup_oid("/d/sub/b") is None
    assert cache.lookup_negative("/d/missing") is None
    assert cache.lookup_oid("/dz") == 3     # /dz is not under /d


def test_oid_invalidation_drops_att_and_chunks_only():
    cache = make_cache()
    cache.fill_path("/f", 9)
    cache.fill_att(9, att_of(CHUNK_SIZE))
    cache.fill_read(9, 0, b"x" * CHUNK_SIZE)
    cache._apply_invalidation(("oid", 9, 3))
    assert cache.lookup_att(9) is None
    assert cache.serve_read(9, 0, 10) is None
    assert cache.lookup_oid("/f") == 9      # the name still resolves


def test_quiet_batch_rule_for_grants():
    cache = make_cache()
    # A batch carrying an invalidation must not apply its grants.
    cache.apply_notices([("oid", 5, 1), ("grant", "/g", 7, 1)])
    assert cache.lookup_oid("/g") is None
    # A quiet batch applies them.
    cache.apply_notices([("grant", "/g", 7, 2)])
    assert cache.lookup_oid("/g") == 7


def test_inval_seq_counts_applied_invalidations():
    cache = make_cache()
    seq = cache.inval_seq
    cache.apply_notices([("name", "/a", 1), ("oid", 2, 2)])
    assert cache.inval_seq == seq + 2
    cache.apply_notices([("grant", "/a", 1, 3)])
    assert cache.inval_seq == seq + 2       # grants don't bump it


def test_revocation_is_terminal():
    cache = make_cache()
    cache.fill_path("/a", 1)
    cache.leases.revoke(1)
    cache.poll()
    assert cache.revoked
    assert cache.lookup_oid("/a") is None
    cache.fill_path("/a", 1)                # refused
    assert cache.lookup_oid("/a") is None


def test_fill_read_requires_att_and_full_coverage():
    cache = make_cache()
    cache.fill_read(9, 0, b"x" * CHUNK_SIZE)        # no att: dropped
    assert cache.serve_read(9, 0, 10) is None
    cache.fill_att(9, att_of(2 * CHUNK_SIZE))
    cache.fill_read(9, 0, b"y" * 100)               # partial chunk: dropped
    assert cache.serve_read(9, 0, 10) is None
    cache.fill_read(9, 0, b"z" * CHUNK_SIZE)        # full chunk: cached
    assert cache.serve_read(9, 0, 10) == (b"z" * 10, [None])


def test_fill_read_tail_chunk_at_eof():
    # A short tail chunk is cacheable when the reply runs to the file's
    # cached size.
    size = CHUNK_SIZE + 100
    cache = make_cache()
    cache.fill_att(9, att_of(size))
    cache.fill_read(9, 0, b"a" * CHUNK_SIZE + b"b" * 100)
    data, owners = cache.serve_read(9, 0, size)
    assert data == b"a" * CHUNK_SIZE + b"b" * 100
    assert len(owners) == 2


def test_serve_read_clamps_to_size_and_detects_eof():
    cache = make_cache()
    cache.fill_att(9, att_of(50))
    cache.fill_read(9, 0, b"q" * 50)
    assert cache.serve_read(9, 0, 1000) == (b"q" * 50, [None])
    assert cache.serve_read(9, 50, 10) == (b"", [])
    assert cache.serve_read(9, 0, -1) == (b"q" * 50, [None])


def test_serve_read_tracks_owner_xids():
    cache = make_cache()
    cache.fill_att(9, att_of(2 * CHUNK_SIZE))
    cache.fill_read(9, 0, b"x" * CHUNK_SIZE, owner=11)
    cache.fill_read(9, CHUNK_SIZE, b"y" * CHUNK_SIZE, owner=12)
    data, owners = cache.serve_read(9, 0, 2 * CHUNK_SIZE)
    assert owners == [11, 12]
