"""Feed-cursor restartability: a replica that dies mid-round resumes
from its durable cursor, re-applies the interrupted round idempotently,
and never rescans from zero or double-applies history."""

import pytest

from repro.core.checker import ConsistencyChecker
from repro.errors import ReplicaError
from repro.replica import REPL_CURSOR_TAG, ReplicaServer
from repro.testkit.oracle import harvest_state

from tests.replica.conftest import make_replica, write_file


def _backlog(db, writer, n=5):
    for i in range(n):
        write_file(writer, f"/f{i}", f"payload {i}".encode() * 100)
    db.tm.flush_commits()


def test_cursor_is_durable_and_round_granular(tmp_path, primary, writer):
    db, _, feed = primary
    write_file(writer, "/seeded", b"base")
    replica = make_replica(tmp_path, feed)
    seeded = replica.cursor
    _backlog(db, writer)
    # Applying a round advances the durable cursor; pulling alone must not.
    feed.pull(replica.cursor, 4)
    root = replica.db.switch.get(replica.db.switch.default_name)
    assert int(root.read_meta(REPL_CURSOR_TAG)) == seeded
    applied, _more = replica.sync_round()
    assert applied > 0
    assert int(root.read_meta(REPL_CURSOR_TAG)) == replica.cursor > seeded
    replica.close()


def test_crash_mid_round_resumes_without_rescan_or_double_apply(
        tmp_path, primary, writer):
    db, fs, feed = primary
    write_file(writer, "/seeded", b"base")
    replica = make_replica(tmp_path, feed)
    seeded_cursor = replica.cursor
    assert seeded_cursor > 0  # a resume from zero would be a rescan
    _backlog(db, writer)

    # Simulate a replica dying mid-round: half the pulled batch applied
    # to its devices, cursor NOT yet saved.
    entries, _next, _more = feed.pull(replica.cursor, 10_000)
    assert len(entries) >= 4
    for entry in entries[: len(entries) // 2]:
        replica._apply_entry(entry)
    path = replica.path
    replica.db.simulate_crash()

    # Restart: the durable cursor is still the seeded one — the round
    # never completed — so the replica re-pulls the same round.
    reopened = ReplicaServer.reopen(feed, path, "replica0")
    assert reopened.cursor == seeded_cursor
    applied = reopened.sync()
    assert applied == len(entries)  # the interrupted round, once, whole

    # Idempotent re-apply converged: replica state equals the primary's,
    # storage invariants hold, and no commit was applied twice (the
    # duplicate status appends collapse by xid on refresh).
    assert harvest_state(reopened.fs) == harvest_state(fs)
    assert ConsistencyChecker(reopened.fs).check_all().clean
    assert reopened.horizon() == feed.durable_horizon()
    reopened.close()


def test_full_round_replayed_twice_converges(tmp_path, primary, writer):
    """The worst restart: the whole round applied, crash before the
    cursor save — every entry replays a second time."""
    db, fs, feed = primary
    write_file(writer, "/seeded", b"base")
    replica = make_replica(tmp_path, feed)
    seeded_cursor = replica.cursor
    _backlog(db, writer)
    entries, _next, _more = feed.pull(replica.cursor, 10_000)
    for entry in entries:
        replica._apply_entry(entry)  # full round, no cursor save
    path = replica.path
    replica.db.simulate_crash()

    reopened = ReplicaServer.reopen(feed, path, "replica0")
    assert reopened.cursor == seeded_cursor
    assert reopened.sync() == len(entries)
    assert harvest_state(reopened.fs) == harvest_state(fs)
    assert ConsistencyChecker(reopened.fs).check_all().clean
    reopened.close()


def test_reopen_refuses_a_non_replica_directory(tmp_path, primary):
    _, _, feed = primary
    from repro.core.filesystem import InversionFS
    from repro.db.database import Database
    plain = Database.create(str(tmp_path / "plain"))
    InversionFS.mkfs(plain)  # a real file system, but never a replica
    plain.close()
    with pytest.raises(ReplicaError):
        ReplicaServer.reopen(feed, str(tmp_path / "plain"), "impostor")


def test_cursor_below_trimmed_base_demands_reseed(tmp_path, primary, writer):
    from repro.errors import FeedGapError
    db, _, feed = primary
    write_file(writer, "/a", b"x")
    stale = make_replica(tmp_path, feed, "stale")
    fast = make_replica(tmp_path, feed, "fast")
    _backlog(db, writer)
    fast.sync()
    feed.acked.pop("stale")  # the primary forgets a long-dead replica
    feed.trim()
    with pytest.raises(FeedGapError):
        stale.sync()
    stale.close()
    fast.close()
