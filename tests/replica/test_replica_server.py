"""Replica behaviour: seed, sync, read-only RPC, staleness, promotion."""

import pytest

from repro.core.checker import ConsistencyChecker
from repro.errors import ReplicaError, ReplicaReadOnlyError
from repro.testkit.oracle import harvest_state

from tests.replica.conftest import make_replica, write_file


def _read(server, path):
    sid = server.connect()
    try:
        fd = server.dispatch(sid, "p_open", path, 0)
        out = b""
        while True:
            chunk = server.dispatch(sid, "p_read", fd, 4096)
            if not chunk:
                break
            out += chunk
        server.dispatch(sid, "p_close", fd)
        return out
    finally:
        server.disconnect(sid)


def test_seed_serves_the_backup_snapshot(tmp_path, primary, writer):
    db, fs, feed = primary
    write_file(writer, "/a", b"seeded content")
    replica = make_replica(tmp_path, feed)
    assert replica.cursor == feed.next_seq
    assert _read(replica, "/a") == b"seeded content"
    assert harvest_state(replica.fs) == harvest_state(fs)
    replica.close()


def test_replica_rejects_mutations(tmp_path, primary, writer):
    _, _, feed = primary
    write_file(writer, "/a", b"x")
    replica = make_replica(tmp_path, feed)
    sid = replica.connect()
    with pytest.raises(ReplicaReadOnlyError):
        replica.dispatch(sid, "p_creat", "/nope")
    with pytest.raises(ReplicaReadOnlyError):
        replica.dispatch(sid, "p_unlink", "/a")
    with pytest.raises(ReplicaReadOnlyError):
        replica.dispatch(sid, "p_query", "retrieve (f.all)")
    replica.disconnect(sid)
    replica.close()


def test_sync_applies_later_commits(tmp_path, primary, writer):
    db, fs, feed = primary
    write_file(writer, "/a", b"v1")
    replica = make_replica(tmp_path, feed)
    before = replica.horizon()
    write_file(writer, "/b", b"second file")
    db.tm.flush_commits()
    applied = replica.sync()
    assert applied > 0
    assert replica.horizon() > before
    assert _read(replica, "/b") == b"second file"
    assert harvest_state(replica.fs) == harvest_state(fs)
    assert replica.stats.rounds >= 1
    assert replica.stats.bytes_shipped > 0
    replica.close()


def test_uncommitted_writes_stay_invisible(tmp_path, primary, writer):
    """The feed ships raw device writes; visibility is decided by the
    shipped status file, so an in-flight transaction's pages never show
    up in a replica read."""
    db, fs, feed = primary
    write_file(writer, "/a", b"committed")
    replica = make_replica(tmp_path, feed)
    writer.p_begin()
    fd = writer.p_creat("/inflight")
    writer.p_write(fd, b"not yet committed")
    writer.p_close(fd)
    db.buffers.flush_all()  # push the uncommitted pages into the feed
    replica.sync()
    assert _read(replica, "/a") == b"committed"
    sid = replica.connect()
    assert "inflight" not in replica.dispatch(sid, "p_readdir", "/")
    replica.disconnect(sid)
    writer.p_commit()
    db.tm.flush_commits()
    replica.sync()
    assert _read(replica, "/inflight") == b"not yet committed"
    replica.close()


def test_local_read_txn_survives_sync(tmp_path, primary, writer):
    """A replica-local read transaction spans a catch-up sync: refresh
    preserves in-progress records, so commit still succeeds, and the
    shipped status file is untouched (read-only txns append nothing)."""
    db, fs, feed = primary
    write_file(writer, "/a", b"v1")
    replica = make_replica(tmp_path, feed)
    sid = replica.connect()
    replica.dispatch(sid, "p_begin")
    fd = replica.dispatch(sid, "p_open", "/a", 0)
    assert replica.dispatch(sid, "p_read", fd, 100) == b"v1"
    write_file(writer, "/b", b"concurrent")
    db.tm.flush_commits()
    replica.sync()
    replica.dispatch(sid, "p_close", fd)
    replica.dispatch(sid, "p_commit")
    replica.disconnect(sid)
    assert harvest_state(replica.fs) == harvest_state(fs)
    assert ConsistencyChecker(replica.fs).check_all().clean
    replica.close()


def test_bounded_staleness_forces_catch_up(tmp_path, primary, writer):
    db, _, feed = primary
    write_file(writer, "/a", b"v1")
    replica = make_replica(tmp_path, feed, staleness_xids=0)
    write_file(writer, "/b", b"fresh")
    db.tm.flush_commits()
    assert feed.durable_horizon() > replica.horizon()
    assert _read(replica, "/b") == b"fresh"  # the read itself syncs
    assert replica.stats.staleness_syncs >= 1
    assert replica.horizon() == feed.durable_horizon()
    replica.close()


def test_promotion_lifts_read_only_and_followers_rebind(tmp_path, primary,
                                                        writer):
    db, fs, feed = primary
    write_file(writer, "/a", b"before failover")
    r0 = make_replica(tmp_path, feed, "replica0")
    r1 = make_replica(tmp_path, feed, "replica1")
    write_file(writer, "/b", b"backlog")
    db.tm.flush_commits()
    r0.sync()  # r0 is ahead; r1 is stale at failover time
    expected = harvest_state(fs)
    db.simulate_crash()

    new_feed = r0.promote()
    assert not r0.read_only
    assert r0.stats.promotions == 1
    with pytest.raises(ReplicaError):
        r0.promote()  # already primary
    assert harvest_state(r0.fs) == expected

    # The stale follower resumes from its cursor on the new feed.
    r1.rebind_feed(new_feed)
    r1.sync()
    assert harvest_state(r1.fs) == expected

    # The new primary takes writes; the follower ships them.
    sid = r0.connect()
    fd = r0.dispatch(sid, "p_creat", "/after")
    r0.dispatch(sid, "p_write", fd, b"new history")
    r0.dispatch(sid, "p_close", fd)
    r0.disconnect(sid)
    r0.db.tm.flush_commits()
    r1.sync()
    assert _read(r1, "/after") == b"new history"
    assert harvest_state(r1.fs) == harvest_state(r0.fs)
    r0.close()
    r1.close()


def test_repl_metrics_are_registered_on_every_member(tmp_path, primary,
                                                     writer):
    db, _, feed = primary
    write_file(writer, "/a", b"x")
    replica = make_replica(tmp_path, feed)
    write_file(writer, "/b", b"y")
    db.tm.flush_commits()
    replica.sync()
    registry = replica.db.obs.metrics
    assert registry.value("repl.rounds") == replica.stats.rounds
    assert registry.value("repl.bytes_shipped") == replica.stats.bytes_shipped
    assert registry.value("repl.cursor_saves") >= 1
    replica.close()
