"""The primary-side feed: tap coverage, batched pulls, gap handling."""

import pytest

from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.db.database import Database
from repro.errors import FeedGapError

from tests.replica.conftest import write_file


def test_tap_records_durable_mutations(primary, writer):
    db, _, feed = primary
    start = feed.next_seq
    write_file(writer, "/a", b"hello feed")
    db.tm.flush_commits()
    kinds = {e.kind for e in feed.log[start - feed.base_seq:]}
    assert "page" in kinds       # heap/B-tree page images
    assert "append" in kinds     # the commit status record
    for dev in db.switch:
        assert dev.describe().get("feed_tap") is True


def test_no_attach_means_no_tap(tmp_path):
    """Replication is off by default: a plain database carries no
    replication state at all."""
    db = Database.create(str(tmp_path / "plain"))
    try:
        for dev in db.switch:
            assert "feed_tap" not in dev.describe()
    finally:
        db.close()


def test_pull_batches_in_order_with_more_flag(primary, writer):
    db, _, feed = primary
    write_file(writer, "/a", b"x" * 9000)
    db.tm.flush_commits()
    assert feed.next_seq > 3
    cursor, got = 0, []
    for _ in range(feed.next_seq * 2):
        entries, cursor, more = feed.pull(cursor, 2)
        assert len(entries) <= 2
        got.extend(entries)
        if not more:
            break
    assert cursor == feed.next_seq
    assert got == feed.log
    assert [e.seq for e in got] == list(range(feed.next_seq))
    # Pulling at the end is an empty, not-an-error round.
    entries, cursor2, more = feed.pull(cursor, 10)
    assert entries == [] and cursor2 == cursor and not more


def test_pull_beyond_end_is_a_gap(primary):
    _, _, feed = primary
    with pytest.raises(FeedGapError):
        feed.pull(feed.next_seq + 1, 10)


def test_ack_and_trim_drop_to_slowest_replica(primary, writer):
    db, _, feed = primary
    write_file(writer, "/a", b"payload")
    db.tm.flush_commits()
    end = feed.next_seq
    assert feed.trim() == 0  # nobody acked yet: keep everything
    feed.ack("r1", end)
    feed.ack("r2", 2)
    dropped = feed.trim()
    assert dropped == 2 and feed.base_seq == 2
    # The fast replica still pulls fine; below-base cursors must re-seed.
    feed.pull(end, 10)
    with pytest.raises(FeedGapError):
        feed.pull(0, 10)


def test_durable_horizon_tracks_flushed_commits(primary, writer):
    db, _, feed = primary
    before = feed.durable_horizon()
    write_file(writer, "/a", b"data")
    db.tm.flush_commits()
    assert feed.durable_horizon() > before


def test_entry_bytes_account_payload_and_names(primary, writer):
    db, _, feed = primary
    write_file(writer, "/a", b"data")
    db.tm.flush_commits()
    for entry in feed.log:
        assert entry.nbytes >= 24 + len(entry.a)
        if entry.payload is not None:
            assert entry.nbytes >= len(entry.payload)


def test_tap_survives_reads(primary, writer):
    """Reads pass through untapped: pulling and reading add nothing."""
    db, fs, feed = primary
    write_file(writer, "/a", b"stable")
    db.tm.flush_commits()
    db.flush_caches()
    end = feed.next_seq
    reader = InversionClient(fs)
    fd = reader.p_open("/a", 0)
    assert reader.p_read(fd, 100) == b"stable"
    reader.p_close(fd)
    feed.pull(0, 1000)
    assert feed.next_seq == end
