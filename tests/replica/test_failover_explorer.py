"""Failover crash exploration: kill the primary at sampled write
boundaries, promote the most caught-up replica, and require (a) the
promoted state to be an oracle-allowed state, (b) zero lost committed
transactions (promoted state == local recovery of the dead primary's
media), (c) surviving followers to converge from their cursors, and
(d) clean storage invariants.  ``-m torture`` opts into the full sweep
of every boundary."""

import pytest

from repro.testkit.failover import FailoverCrashExplorer
from repro.testkit.workload import commit_workload, vacuum_workload

#: sampled boundaries per CI run — each is a full build/seed/crash/
#: promote/verify cycle with two replicas.
CI_POINTS = 6


def _assert_clean(report):
    assert report.violations == [], "\n".join(
        f"point {v.point}: {v.detail}" for v in report.violations)


def test_commit_failover_no_lost_transactions(tmp_path):
    explorer = FailoverCrashExplorer(str(tmp_path), commit_workload(),
                                     nreplicas=2)
    report = explorer.explore(max_points=CI_POINTS)
    assert report.total_writes >= CI_POINTS
    _assert_clean(report)
    crashed = [r for r in report.results if not r.completed]
    assert crashed, "no crash point actually fired"
    for result in crashed:
        assert result.matches_local_recovery
        assert result.followers_converged


def test_torn_append_failover(tmp_path):
    """Torn status tails ship too (the feed is exactly the media), so
    the in-flight transaction may land on either side — and the replica
    must agree with local recovery about which side it landed on."""
    explorer = FailoverCrashExplorer(str(tmp_path), commit_workload(),
                                     nreplicas=2, torn_append=True)
    _assert_clean(explorer.explore(max_points=4))


def test_vacuum_failover_replays_rename_journal(tmp_path):
    """Crashes inside vacuum's heap+index swap window: promotion must
    finish the shipped rename journal exactly like local recovery."""
    explorer = FailoverCrashExplorer(str(tmp_path), vacuum_workload(),
                                     nreplicas=1)
    _assert_clean(explorer.explore(max_points=4))


@pytest.mark.torture
@pytest.mark.parametrize("torn", [False, True], ids=["clean", "torn"])
def test_exhaustive_commit_failover(tmp_path, torn):
    explorer = FailoverCrashExplorer(str(tmp_path), commit_workload(),
                                     nreplicas=2, torn_append=torn)
    _assert_clean(explorer.explore())


@pytest.mark.torture
def test_exhaustive_vacuum_failover(tmp_path):
    explorer = FailoverCrashExplorer(str(tmp_path), vacuum_workload(),
                                     nreplicas=2)
    _assert_clean(explorer.explore())
