"""Shared replication fixtures: a primary with a feed, seeded replicas."""

from __future__ import annotations

import os

import pytest

from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.db.database import Database
from repro.replica import PrimaryFeed, ReplicaServer, ReplStats


@pytest.fixture
def primary(tmp_path):
    """(db, fs, feed) with the feed tap attached from the start."""
    db = Database.create(str(tmp_path / "primary"))
    fs = InversionFS.mkfs(db)
    feed = PrimaryFeed.attach(db, stats=ReplStats())
    yield db, fs, feed
    db.close()


@pytest.fixture
def writer(primary):
    _, fs, _ = primary
    return InversionClient(fs)


def make_replica(tmp_path, feed, name="replica0", **kwargs) -> ReplicaServer:
    return ReplicaServer.seed(feed, os.path.join(str(tmp_path), name),
                              name, **kwargs)


def write_file(writer: InversionClient, path: str, data: bytes) -> None:
    writer.p_begin()
    fd = writer.p_creat(path)
    writer.p_write(fd, data)
    writer.p_close(fd)
    writer.p_commit()
