"""Crash recovery end-to-end: "no file system consistency checker needs
to run … recovery is essentially instantaneous"."""

import pytest

from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.db.database import Database
from repro.sim.clock import SimClock


def build(tmp_path, name="d"):
    clock = SimClock()
    db = Database.create(str(tmp_path / name), clock=clock)
    fs = InversionFS.mkfs(db)
    return clock, db, fs, InversionClient(fs)


def reopen(tmp_path, name="d"):
    db = Database.open(str(tmp_path / name))
    return db, InversionFS.attach(db)


def test_committed_files_survive_crash(tmp_path):
    _clock, db, fs, client = build(tmp_path)
    client.p_mkdir("/home")
    fd = client.p_creat("/home/report.txt")
    client.p_write(fd, b"quarterly numbers")
    client.p_close(fd)
    db.simulate_crash()
    db2, fs2 = reopen(tmp_path)
    assert fs2.read_file("/home/report.txt") == b"quarterly numbers"
    assert fs2.readdir("/home") == ["report.txt"]
    db2.close()


def test_uncommitted_multifile_transaction_rolled_back(tmp_path):
    """The check-in scenario: a crash mid-transaction must leave *no*
    partial state — neither file contents nor namespace entries."""
    _clock, db, fs, client = build(tmp_path)
    fd = client.p_creat("/main.c")
    client.p_write(fd, b"int main() {}")
    client.p_close(fd)

    client.p_begin()
    fd1 = client.p_open("/main.c", 2)
    client.p_write(fd1, b"BROKEN EDIT!!")
    fd2 = client.p_creat("/util.c")
    client.p_write(fd2, b"void util() {}")
    # Force what we can to disk — visibility rules must still hide it.
    db.buffers.flush_all()
    db.simulate_crash()

    db2, fs2 = reopen(tmp_path)
    assert fs2.read_file("/main.c") == b"int main() {}"
    assert not fs2.exists("/util.c")
    db2.close()


def test_directory_creation_atomic_across_crash(tmp_path):
    _clock, db, fs, client = build(tmp_path)
    client.p_begin()
    client.p_mkdir("/a")
    client.p_mkdir("/a/b")
    fd = client.p_creat("/a/b/leaf")
    client.p_write(fd, b"x")
    db.simulate_crash()
    db2, fs2 = reopen(tmp_path)
    assert fs2.readdir("/") == []
    db2.close()


def test_recovery_time_independent_of_data_volume(tmp_path):
    """Recovery reads the status file, not the data — its cost must not
    scale with file bytes."""
    def recovery_cost(name, nbytes):
        clock, db, fs, client = build(tmp_path, name)
        fd = client.p_creat("/blob")
        client.p_write(fd, bytes(nbytes))
        client.p_close(fd)
        db.simulate_crash()
        clock2 = SimClock()
        db2 = Database.open(str(tmp_path / name), clock=clock2)
        cost = clock2.now()
        db2.close()
        return cost

    small = recovery_cost("small", 10_000)
    large = recovery_cost("large", 400_000)
    assert large < small * 3 + 0.05


def test_repeated_crashes(tmp_path):
    _clock, db, fs, client = build(tmp_path)
    fd = client.p_creat("/f")
    client.p_write(fd, b"gen0")
    client.p_close(fd)
    db.simulate_crash()
    for gen in range(1, 4):
        db, fs = reopen(tmp_path)
        client = InversionClient(fs)
        fd = client.p_open("/f", 2)
        client.p_write(fd, b"gen%d" % gen)
        client.p_close(fd)
        db.simulate_crash()
    db2, fs2 = reopen(tmp_path)
    assert fs2.read_file("/f") == b"gen3"
    db2.close()


def test_clock_resumes_after_recorded_history(tmp_path):
    """A reopened database resumes simulated time beyond all recorded
    commits, so post-crash changes never sort *before* pre-crash
    history (regression: a fresh clock at 0 made a new unlink appear to
    precede old commits, breaking time travel)."""
    clock, db, fs, client = build(tmp_path)
    fd = client.p_creat("/f")
    client.p_write(fd, b"old")
    client.p_close(fd)
    t_old = clock.now()
    db.simulate_crash()

    db2, fs2 = reopen(tmp_path)
    assert db2.clock.now() >= t_old
    client2 = InversionClient(fs2)
    client2.p_unlink("/f")
    # The unlink happened after t_old, so t_old must still see the file.
    assert fs2.exists("/f", timestamp=t_old)
    assert fs2.read_file("/f", timestamp=t_old) == b"old"
    db2.close()


def test_time_travel_survives_crash(tmp_path):
    clock, db, fs, client = build(tmp_path)
    fd = client.p_creat("/f")
    client.p_write(fd, b"before")
    client.p_close(fd)
    t0 = clock.now()
    fd = client.p_open("/f", 2)
    client.p_write(fd, b"after.")
    client.p_close(fd)
    db.simulate_crash()
    db2, fs2 = reopen(tmp_path)
    assert fs2.read_file("/f") == b"after."
    assert fs2.read_file("/f", timestamp=t0) == b"before"
    db2.close()
