"""Crash-schedule exploration: crash at every durable-write boundary,
recover, and hold the result to the differential oracle plus the
storage-invariant checker.

The default (CI) runs are bounded but still cover well over 100
distinct crash points across the commit, vacuum, and migration
workloads.  ``-m torture`` opts into full enumeration of every
boundary in both clean and torn-append modes.
"""

import pytest

from repro.testkit import CrashScheduleExplorer
from repro.testkit.explorer import select_points
from repro.testkit.workload import ALL_WORKLOADS, commit_workload, vacuum_workload

#: per-workload bound for the CI run: 3 workloads × 40 + the torn run
#: below ≈ 150 crash points, each a full build/crash/recover/verify cycle.
CI_POINTS = 40


def test_select_points_sampling():
    assert select_points(10, None) == list(range(10))
    assert select_points(3, 10) == [0, 1, 2]
    assert select_points(0, 5) == []
    assert select_points(5, 1) == [0]
    pts = select_points(100, 5)
    assert len(pts) == 5
    assert pts[0] == 0 and pts[-1] == 99  # endpoints always included
    assert pts == sorted(pts)


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_bounded_exploration_finds_no_violations(tmp_path, name):
    explorer = CrashScheduleExplorer(str(tmp_path), ALL_WORKLOADS[name]())
    report = explorer.explore(max_points=CI_POINTS)
    assert report.total_writes >= CI_POINTS, (
        f"workload {name!r} got shorter; not enough crash points to sample")
    assert len(report.points_tested) == CI_POINTS
    assert report.violations == [], "\n".join(
        f"point {v.point}: {v.detail}" for v in report.violations)


def test_recovery_reports_are_collected(tmp_path):
    report = CrashScheduleExplorer(
        str(tmp_path), commit_workload()).explore(max_points=10)
    assert report.violations == []
    crashed = [r for r in report.results if not r.completed]
    assert crashed, "no crash point actually fired"
    for result in crashed:
        assert result.recovery["presumed_aborted"] >= 0
        assert result.recovery["torn_tail"] == 0  # clean mode never tears


def test_torn_append_exploration_allows_both_outcomes(tmp_path):
    """With torn status appends the in-flight transaction may land on
    either side of the crash; anything else is still a violation."""
    explorer = CrashScheduleExplorer(
        str(tmp_path), commit_workload(), torn_append=True)
    report = explorer.explore(max_points=CI_POINTS)
    assert report.violations == [], "\n".join(
        f"point {v.point}: {v.detail}" for v in report.violations)


def test_explorer_detects_unsafe_vacuum_swap(tmp_path, monkeypatch):
    """Teeth check: disable rename-journal replay and the explorer must
    catch the stale-index corruption a crash inside vacuum's heap+index
    swap window leaves behind.  Guards against the explorer silently
    going blind (e.g. relation renames no longer counted as crash
    boundaries)."""
    import repro.db.vacuum as vacuum_mod
    monkeypatch.setattr(vacuum_mod, "replay_rename_journal",
                        lambda switch, root: 0)
    report = CrashScheduleExplorer(str(tmp_path), vacuum_workload()).explore()
    assert report.violations, (
        "sabotaged recovery went undetected — the explorer has no teeth")


@pytest.mark.torture
@pytest.mark.parametrize("torn", [False, True], ids=["clean", "torn"])
@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_full_enumeration(tmp_path, name, torn):
    """Every single write boundary of every workload, both append modes."""
    explorer = CrashScheduleExplorer(
        str(tmp_path), ALL_WORKLOADS[name](), torn_append=torn)
    report = explorer.explore()
    assert len(report.points_tested) == report.total_writes
    assert report.violations == [], "\n".join(
        f"point {v.point}: {v.detail}" for v in report.violations)
