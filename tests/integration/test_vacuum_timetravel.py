"""Vacuum + Inversion: archiving file chunks must not break file-level
time travel."""

import pytest

from repro.core.chunks import chunk_table_name
from repro.core.constants import CHUNK_SIZE, O_RDWR


def test_vacuum_chunk_table_preserves_file_history(fs, client, clock):
    fd = client.p_creat("/f")
    client.p_write(fd, b"A" * (2 * CHUNK_SIZE))
    client.p_close(fd)
    t0 = clock.now()
    fd = client.p_open("/f", O_RDWR)
    client.p_write(fd, b"B" * CHUNK_SIZE)  # supersede chunk 0
    client.p_close(fd)

    table = chunk_table_name(fs.resolve("/f"))
    stats = fs.db.vacuum(table)
    assert stats.archived == 1

    now = fs.read_file("/f")
    then = fs.read_file("/f", timestamp=t0)
    assert now[:CHUNK_SIZE] == b"B" * CHUNK_SIZE
    assert then == b"A" * (2 * CHUNK_SIZE)


def test_vacuum_naming_preserves_undelete(fs, client, clock):
    fd = client.p_creat("/doomed")
    client.p_write(fd, b"save me")
    client.p_close(fd)
    t0 = clock.now()
    client.p_unlink("/doomed")
    fs.db.vacuum("naming")
    fs.db.vacuum("fileatt")
    assert not fs.exists("/doomed")
    assert fs.exists("/doomed", timestamp=t0)
    assert fs.read_file("/doomed", timestamp=t0) == b"save me"


def test_vacuum_to_jukebox_archive(fs, client, clock):
    """The tertiary-store workflow: history migrates to optical media,
    current data stays on magnetic disk."""
    fs.db.add_device("juke0", "jukebox")
    fd = client.p_creat("/f")
    client.p_write(fd, b"old-old-old")
    client.p_close(fd)
    t0 = clock.now()
    fd = client.p_open("/f", O_RDWR)
    client.p_write(fd, b"new-new-new")
    client.p_close(fd)
    table = chunk_table_name(fs.resolve("/f"))
    fs.db.vacuum(table, archive_device="juke0")
    juke = fs.db.switch.get("juke0")
    assert juke.relation_exists(f"a_{table}")
    assert fs.read_file("/f", timestamp=t0) == b"old-old-old"
    assert fs.read_file("/f") == b"new-new-new"


def test_vacuum_shrinks_live_chunk_table(fs, client):
    fd = client.p_creat("/churn")
    for gen in range(6):
        fdw = client.p_open("/churn", O_RDWR)
        client.p_write(fdw, bytes([gen]) * CHUNK_SIZE)
        client.p_close(fdw)
    client.p_close(fd)
    table = chunk_table_name(fs.resolve("/churn"))
    stats = fs.db.vacuum(table)
    assert stats.archived == 5
    assert stats.pages_after < stats.pages_before
    assert fs.read_file("/churn") == bytes([5]) * CHUNK_SIZE


def test_double_vacuum_keeps_archive_growing(fs, client, clock):
    fd = client.p_creat("/f")
    client.p_write(fd, b"v0")
    client.p_close(fd)
    times = [clock.now()]
    for gen in range(1, 4):
        fdw = client.p_open("/f", O_RDWR)
        client.p_write(fdw, b"v%d" % gen)
        client.p_close(fdw)
        table = chunk_table_name(fs.resolve("/f"))
        fs.db.vacuum(table)
        times.append(clock.now())
    for gen, t in enumerate(times):
        assert fs.read_file("/f", timestamp=t) == b"v%d" % gen


def test_purge_history_discards_old_versions(fs, client, clock):
    """The opt-out: "POSTGRES can be instructed not to save old
    versions"."""
    fd = client.p_creat("/nohist")
    client.p_write(fd, b"version-A")
    client.p_close(fd)
    t0 = clock.now()
    fd = client.p_open("/nohist", O_RDWR)
    client.p_write(fd, b"version-B")
    client.p_close(fd)

    stats = fs.purge_history("/nohist")
    assert stats.expunged >= 1
    assert stats.archived == 0
    # Current contents intact; the past is gone for this file's data.
    assert fs.read_file("/nohist") == b"version-B"
    hist = fs.read_file("/nohist", timestamp=t0)
    assert hist != b"version-A"


def test_purge_history_leaves_other_files_alone(fs, client, clock):
    for name in ("keep", "drop"):
        fd = client.p_creat(f"/{name}")
        client.p_write(fd, b"old")
        client.p_close(fd)
    t0 = clock.now()
    for name in ("keep", "drop"):
        fd = client.p_open(f"/{name}", O_RDWR)
        client.p_write(fd, b"new")
        client.p_close(fd)
    fs.purge_history("/drop")
    assert fs.read_file("/keep", timestamp=t0) == b"old"
    assert fs.read_file("/keep") == b"new"
    assert fs.read_file("/drop") == b"new"
