"""Concurrent clients under two-phase locking."""

import threading

import pytest

from repro.core.library import InversionClient
from repro.errors import DeadlockError, LockTimeoutError, TransactionError


def test_two_clients_interleave_on_different_files(fs):
    """Writes to distinct files take distinct chunk-table locks, so two
    transactions proceed concurrently.  (Creation itself serializes on
    the naming table — relation-granularity 2PL — so the files are
    pre-created.)"""
    c1, c2 = InversionClient(fs), InversionClient(fs)
    for path in ("/one", "/two"):
        fd = c1.p_creat(path)
        c1.p_close(fd)
    c1.p_begin()
    c2.p_begin()
    fd1 = c1.p_open("/one", 2)
    fd2 = c2.p_open("/two", 2)
    c1.p_write(fd1, b"from c1")
    c2.p_write(fd2, b"from c2")
    c1.p_commit()
    c2.p_commit()
    c1.p_close(fd1)
    c2.p_close(fd2)
    assert fs.read_file("/one") == b"from c1"
    assert fs.read_file("/two") == b"from c2"


def test_concurrent_same_path_creates_serialize(fs):
    """Key-granularity naming locks: a second creator of the *same
    path* waits for the first transaction, then loses cleanly; creates
    of different names proceed concurrently (previous test)."""
    from repro.errors import FileExistsError_
    fs.db.locks.timeout_s = 5.0
    c1, c2 = InversionClient(fs), InversionClient(fs)
    c1.p_begin()
    c1.p_creat("/contested")
    outcome = []

    def second():
        try:
            fd = c2.p_creat("/contested")  # blocks on the name's X lock
            c2.p_close(fd)
            outcome.append("created")
        except FileExistsError_:
            outcome.append("exists")
    t = threading.Thread(target=second)
    t.start()
    import time
    time.sleep(0.1)
    assert outcome == []  # blocked while c1's transaction is open
    c1.p_commit()
    t.join(timeout=5)
    assert outcome == ["exists"]
    assert fs.exists("/contested")


def test_writer_blocks_writer_until_commit(fs):
    """2PL: a second writer to the same file waits for the first."""
    fs.db.locks.timeout_s = 5.0
    c1, c2 = InversionClient(fs), InversionClient(fs)
    fd = c1.p_creat("/shared")
    c1.p_close(fd)

    c1.p_begin()
    fd1 = c1.p_open("/shared", 2)
    c1.p_write(fd1, b"first")

    order = []

    def second_writer():
        c2.p_begin()
        fd2 = c2.p_open("/shared", 2)
        c2.p_write(fd2, b"SECON")
        order.append("c2 wrote")
        c2.p_commit()
        c2.p_close(fd2)

    t = threading.Thread(target=second_writer)
    t.start()
    import time
    time.sleep(0.15)
    assert order == []  # still blocked on c1's exclusive lock
    order.append("c1 committing")
    c1.p_commit()
    c1.p_close(fd1)
    t.join(timeout=5)
    assert order == ["c1 committing", "c2 wrote"]
    assert fs.read_file("/shared") == b"SECON"


def test_uncommitted_writes_invisible_to_other_client(fs):
    c1, c2 = InversionClient(fs), InversionClient(fs)
    fd = c1.p_creat("/v")
    c1.p_write(fd, b"committed")
    c1.p_close(fd)
    c1.p_begin()
    fd1 = c1.p_open("/v", 2)
    c1.p_write(fd1, b"IN-FLIGHT")
    # c2 reads under its own snapshot (c1 holds X; readdir of other
    # files is fine — check a different file to avoid the lock).
    fd_new = None
    assert fs.read_file("/v", timestamp=fs.db.clock.now()) == b"committed"
    c1.p_abort()
    assert fs.read_file("/v") == b"committed"


def test_deadlock_victim_can_retry(fs):
    fs.db.locks.timeout_s = 5.0
    c1, c2 = InversionClient(fs), InversionClient(fs)
    for path in ("/a", "/b"):
        fd = c1.p_creat(path)
        c1.p_close(fd)

    barrier = threading.Barrier(2, timeout=5)
    results = {}

    def run(client, first, second, key):
        client.p_begin()
        fd1 = client.p_open(first, 2)
        client.p_write(fd1, key.encode())
        barrier.wait()
        try:
            fd2 = client.p_open(second, 2)
            client.p_write(fd2, key.encode())
            client.p_commit()
            results[key] = "committed"
        except (DeadlockError, LockTimeoutError):
            client.p_abort()
            results[key] = "victim"

    t1 = threading.Thread(target=run, args=(c1, "/a", "/b", "c1"))
    t2 = threading.Thread(target=run, args=(c2, "/b", "/a", "c2"))
    t1.start(); t2.start()
    t1.join(timeout=20); t2.join(timeout=20)
    assert sorted(results.values()) == ["committed", "victim"]


def test_session_transaction_isolation(fs):
    """Two InversionClient sessions hold independent transactions."""
    c1, c2 = InversionClient(fs), InversionClient(fs)
    c1.p_begin()
    c2.p_begin()  # no "nested transaction" error across sessions
    c1.p_abort()
    c2.p_abort()
    with pytest.raises(TransactionError):
        c2.p_abort()
