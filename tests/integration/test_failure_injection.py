"""Failure injection around the commit protocol.

The no-overwrite commit is: (1) force the transaction's dirty pages,
(2) append the commit record to the status file.  A crash at any point
before (2) completes must roll the transaction back; after (2), it must
survive.  These tests inject failures at the boundary.
"""

import pytest

from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.db.database import Database
from repro.errors import DeviceError


def build(tmp_path):
    db = Database.create(str(tmp_path / "d"))
    fs = InversionFS.mkfs(db)
    return db, fs, InversionClient(fs)


def reopen(tmp_path):
    db = Database.open(str(tmp_path / "d"))
    return db, InversionFS.attach(db)


def test_crash_after_data_flush_before_status(tmp_path):
    """Data pages durable, commit record missing → rolled back."""
    db, fs, client = build(tmp_path)
    fd = client.p_creat("/base")
    client.p_write(fd, b"committed")
    client.p_close(fd)

    tx = db.begin()
    fs.write_file(tx, "/torn", b"almost committed")
    db.buffers.flush_all()          # step (1) happened...
    db.simulate_crash()             # ...crash before step (2)

    db2, fs2 = reopen(tmp_path)
    assert fs2.read_file("/base") == b"committed"
    assert not fs2.exists("/torn")
    db2.close()


def test_crash_after_status_append_means_committed(tmp_path):
    """Once the status record is durable, the transaction survives even
    though the in-memory caches vanish."""
    db, fs, client = build(tmp_path)
    tx = db.begin()
    fs.write_file(tx, "/kept", b"safe and sound")
    db.commit(tx)                   # both steps completed
    db.simulate_crash()
    db2, fs2 = reopen(tmp_path)
    assert fs2.read_file("/kept") == b"safe and sound"
    db2.close()


def test_status_write_failure_fails_commit_but_data_stays_invisible(tmp_path):
    """If the status append itself dies, the commit call errors and —
    after a crash — the transaction is invisible: the protocol never
    declares success early."""
    db, fs, client = build(tmp_path)
    root = db.switch.get("magnetic0")
    original = root.sync_append_meta

    def broken(tag, data):
        raise DeviceError("status device failed")
    root.sync_append_meta = broken
    tx = db.begin()
    fs.write_file(tx, "/limbo", b"never acknowledged")
    with pytest.raises(DeviceError):
        db.commit(tx)
    root.sync_append_meta = original
    db.simulate_crash()

    db2, fs2 = reopen(tmp_path)
    assert not fs2.exists("/limbo")
    db2.close()


def test_data_flush_failure_aborts_cleanly(tmp_path):
    """A device error while forcing pages surfaces to the caller; the
    transaction can be aborted and the system keeps working."""
    db, fs, client = build(tmp_path)
    fd = client.p_creat("/before")
    client.p_write(fd, b"ok")
    client.p_close(fd)

    dev = db.switch.get("magnetic0")
    original = dev.write_page
    calls = {"n": 0}

    def flaky(relname, pageno, data):
        calls["n"] += 1
        if calls["n"] == 1:
            raise DeviceError("injected write failure")
        original(relname, pageno, data)
    dev.write_page = flaky

    tx = db.begin()
    fs.write_file(tx, "/doomed", b"x" * 10_000)
    with pytest.raises(DeviceError):
        db.commit(tx)
    dev.write_page = original
    db.abort(tx)

    # The system is still usable afterwards.
    fd = client.p_creat("/after")
    client.p_write(fd, b"recovered")
    client.p_close(fd)
    assert fs.read_file("/after") == b"recovered"
    assert fs.read_file("/before") == b"ok"


def test_aborted_transactions_never_reappear_after_many_crashes(tmp_path):
    db, fs, client = build(tmp_path)
    for round_no in range(3):
        tx = db.begin()
        fs.write_file(tx, f"/commit{round_no}", b"yes")
        db.commit(tx)
        tx = db.begin()
        fs.write_file(tx, f"/abort{round_no}", b"no")
        db.abort(tx)
        db.simulate_crash()
        db, fs = reopen(tmp_path)
        client = InversionClient(fs)
    names = fs.readdir("/")
    assert names == ["commit0", "commit1", "commit2"]
    db.close()


def test_vacuum_after_crash_still_safe(tmp_path):
    """Crash, reopen, vacuum: archived history must match what time
    travel saw before the crash."""
    db, fs, client = build(tmp_path)
    fd = client.p_creat("/f")
    client.p_write(fd, b"gen-zero")
    client.p_close(fd)
    t0 = db.clock.now()
    fd = client.p_open("/f", 2)
    client.p_write(fd, b"gen-one!")
    client.p_close(fd)
    db.simulate_crash()

    db2, fs2 = reopen(tmp_path)
    from repro.core.chunks import chunk_table_name
    table = chunk_table_name(fs2.resolve("/f"))
    stats = db2.vacuum(table)
    assert stats.archived >= 1
    assert fs2.read_file("/f") == b"gen-one!"
    assert fs2.read_file("/f", timestamp=t0) == b"gen-zero"
    db2.close()
