"""Rules guarding the file system's own consistency.

The paper's "Consistency Guarantees" section: "use of transaction
processing and the POSTGRES rules system can guarantee this
consistency."  Because Inversion's metadata are ordinary tables, rules
defined on them police the file system itself.
"""

import pytest

from repro.db.rules import RuleViolation, register_action
from repro.errors import InversionError


def test_protect_files_from_deletion(fs, client):
    """An administrator rule makes a master file undeletable."""
    fd = client.p_creat("/master_index")
    client.p_write(fd, b"do not remove")
    client.p_close(fd)
    tx = fs.begin()
    fs.db.rules.define_rule(
        tx, "protect_master", "naming", "delete",
        'new.filename = "master_index"', "reject")
    fs.commit(tx)

    with pytest.raises(RuleViolation):
        client.p_unlink("/master_index")
    assert fs.exists("/master_index")
    # Renaming is an update, not a delete — still allowed.
    client.p_rename("/master_index", "/master_index.v2")
    assert fs.exists("/master_index.v2")


def test_reject_corrupt_attribute_rows(fs, client):
    """Negative sizes can never enter fileatt."""
    tx = fs.begin()
    fs.db.rules.define_rule(tx, "sane_sizes", "fileatt", "replace",
                            "new.size < 0", "reject")
    fs.commit(tx)
    fd = client.p_creat("/f")
    client.p_write(fd, b"fine")
    client.p_close(fd)
    fileid = fs.resolve("/f")
    tx = fs.begin()
    with pytest.raises(RuleViolation):
        fs.fileatt.update(tx, fileid, size=-1)
    fs.abort(tx)
    assert fs.stat("/f").size == 4


def test_enforce_naming_conventions(fs, client):
    """Site policy: no spaces in file names."""
    tx = fs.begin()
    fs.db.rules.define_rule(tx, "no_spaces", "naming", "append",
                            '" " in new.filename', "reject")
    fs.commit(tx)
    with pytest.raises(RuleViolation):
        client.p_creat("/bad name.txt")
    fd = client.p_creat("/good_name.txt")
    client.p_close(fd)
    assert fs.readdir("/") == ["good_name.txt"]


def test_rejecting_rule_keeps_multitable_create_atomic(fs, client):
    """A create touches naming + fileatt + DDL; a rule rejecting the
    naming insert must leave no attribute row or chunk table behind."""
    tx = fs.begin()
    fs.db.rules.define_rule(tx, "no_tmp", "naming", "append",
                            '"tmp" in new.filename', "reject")
    fs.commit(tx)
    with pytest.raises((RuleViolation, InversionError)):
        client.p_creat("/tmpfile")
    tx = fs.begin()
    snapshot = fs.db.snapshot(tx)
    # Nothing leaked into fileatt.
    rows = [r for _t, r in fs.db.table("fileatt", tx).scan(snapshot, tx)]
    assert all(r[0] == fs.namespace.root_fileid for r in rows)
    fs.commit(tx)


def test_audit_trail_via_callback(fs, client):
    """A callback rule materializes an audit log of file deletions —
    derived data maintained by the rules system."""
    from repro.db.tuples import Column, Schema
    tx = fs.begin()
    fs.db.create_table(tx, "deletion_log", Schema([
        Column("filename", "text"), Column("at", "time")]))
    fs.commit(tx)

    def log_delete(db, tx, table, event, row):
        db.table("deletion_log", tx).insert(
            tx, (row[0], db.clock.now()))
    register_action("log_delete", log_delete)
    tx = fs.begin()
    fs.db.rules.define_rule(tx, "audit_deletes", "naming", "delete",
                            'new.filename != ""', "do log_delete")
    fs.commit(tx)

    for name in ("a", "b"):
        fd = client.p_creat(f"/{name}")
        client.p_close(fd)
    client.p_unlink("/a")
    client.p_unlink("/b")
    tx = fs.begin()
    logged = [r[0] for _t, r in
              fs.db.table("deletion_log", tx).scan(fs.db.snapshot(tx), tx)]
    fs.commit(tx)
    assert logged == ["a", "b"]
