"""Property-based differential testing: InversionFS vs the ModelFS
oracle under random operation sequences with commit/abort
interleavings.

Each example builds a fresh database, drives both the real file system
and the model through the same transactions (aborted transactions are
applied to a scratch copy that is discarded), then requires the real
visible state to equal the model — both live and after a simulated
crash + reopen, which by the no-overwrite design must preserve exactly
the committed state.
"""

import tempfile

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.filesystem import InversionFS  # noqa: E402
from repro.db.database import Database  # noqa: E402
from repro.errors import InversionError  # noqa: E402
from repro.testkit.oracle import ModelFS, apply_fs_op, harvest_state  # noqa: E402

NAMES = ("a", "b", "c", "dir")

paths = st.lists(st.sampled_from(NAMES), min_size=1, max_size=3).map(
    lambda parts: "/" + "/".join(parts))
payloads = st.binary(min_size=0, max_size=300)

ops = st.one_of(
    st.tuples(st.just("mkdir"), paths),
    st.tuples(st.just("write"), paths, payloads),
    st.tuples(st.just("unlink"), paths),
    st.tuples(st.just("rmdir"), paths),
    st.tuples(st.just("rename"), paths, paths),
)

#: a script: each entry is one transaction — (ops, abort?).
scripts = st.lists(
    st.tuples(st.lists(ops, min_size=1, max_size=4), st.booleans()),
    min_size=1, max_size=6)

SETTINGS = settings(max_examples=25, deadline=None, derandomize=True,
                    suppress_health_check=[HealthCheck.too_slow])


def run_script(fs: InversionFS, model: ModelFS, script) -> ModelFS:
    """Drive fs and model through the script; returns the model state
    reflecting exactly the committed transactions."""
    for tx_ops, abort in script:
        tx = fs.begin()
        scratch = model.copy()
        for op in tx_ops:
            reason = scratch.why_invalid(op)
            if reason == "target inside source subtree":
                # The model rejects directory-rename cycles the real fs
                # does not guard against; never send them.
                continue
            if reason is not None:
                # Both sides must agree the op is invalid — and the
                # rejection must leave the transaction usable.
                with pytest.raises(InversionError):
                    apply_fs_op(fs, tx, op)
                continue
            apply_fs_op(fs, tx, op)
            scratch.apply(op)
        if abort:
            fs.abort(tx)
        else:
            fs.commit(tx)
            model = scratch
    return model


@given(script=scripts)
@SETTINGS
def test_fs_matches_oracle_under_commit_abort_interleavings(script):
    with tempfile.TemporaryDirectory() as root:
        db = Database.create(root + "/db")
        try:
            fs = InversionFS.mkfs(db)
            model = run_script(fs, ModelFS(), script)
            assert harvest_state(fs) == model.state()
        finally:
            db.close()


@given(script=scripts)
@SETTINGS
def test_committed_state_survives_crash_and_reopen(script):
    with tempfile.TemporaryDirectory() as root:
        db = Database.create(root + "/db")
        fs = InversionFS.mkfs(db)
        model = run_script(fs, ModelFS(), script)
        db.simulate_crash()  # volatile buffers vanish; media survives
        recovered = Database.open(root + "/db")
        try:
            assert harvest_state(InversionFS.attach(recovered)) == model.state()
        finally:
            recovered.close()


#: write-heavy scripts: multi-chunk payloads so commits leave dense
#: dirty runs for the coalesced write-back path, few aborts.
big_payloads = st.binary(min_size=0, max_size=20000)
write_ops = st.one_of(
    st.tuples(st.just("write"), paths, big_payloads),
    st.tuples(st.just("write"), paths, payloads),
    st.tuples(st.just("mkdir"), paths),
    st.tuples(st.just("unlink"), paths),
)
write_scripts = st.lists(
    st.tuples(st.lists(write_ops, min_size=1, max_size=3),
              st.sampled_from([False, False, False, True])),
    min_size=1, max_size=6)

WRITE_SETTINGS = settings(max_examples=15, deadline=None, derandomize=True,
                          suppress_health_check=[HealthCheck.too_slow])


def run_script_with_history(fs, script):
    """Like run_script, but records (xid, model-copy) after every
    committed transaction, so a crash outcome can be matched against
    any commit-prefix of the history."""
    model = ModelFS()
    history = []
    for tx_ops, abort in script:
        tx = fs.begin()
        scratch = model.copy()
        for op in tx_ops:
            reason = scratch.why_invalid(op)
            if reason == "target inside source subtree":
                continue
            if reason is not None:
                with pytest.raises(InversionError):
                    apply_fs_op(fs, tx, op)
                continue
            apply_fs_op(fs, tx, op)
            scratch.apply(op)
        if abort:
            fs.abort(tx)
        else:
            fs.commit(tx)
            model = scratch
            history.append((tx.xid, model.copy()))
    return model, history


@given(script=write_scripts, window=st.sampled_from([0.0, 0.5, 60.0]))
@WRITE_SETTINGS
def test_group_commit_crash_loses_only_a_floating_suffix(script, window):
    """Under group commit a crash may lose the queued (not yet forced)
    commit records — which are always the *most recent* writing
    commits.  The recovered state must equal the model at exactly the
    last durable commit: no torn middle, no resurrection, no partial
    transaction."""
    with tempfile.TemporaryDirectory() as root:
        db = Database.create(root + "/db")
        fs = InversionFS.mkfs(db)
        db.tm.group_commit_window = window  # after mkfs: bootstrap durable
        model, history = run_script_with_history(fs, script)
        floating = set(db.tm.pending_commit_xids())
        expected = ModelFS()
        for xid, snapshot in history:
            if xid in floating:
                break  # this commit and everything after it is lost
            expected = snapshot
        if window == 0.0:
            assert not floating  # paper behaviour: nothing ever floats
        db.simulate_crash()  # the pending queue dies with the process
        recovered = Database.open(root + "/db")
        try:
            assert (harvest_state(InversionFS.attach(recovered))
                    == expected.state())
        finally:
            recovered.close()


@given(script=write_scripts)
@WRITE_SETTINGS
def test_flushed_group_commits_all_survive(script):
    """An explicit flush (what close/checkpoint do) makes every queued
    commit durable: after it, a crash loses nothing."""
    with tempfile.TemporaryDirectory() as root:
        db = Database.create(root + "/db")
        fs = InversionFS.mkfs(db)
        db.tm.group_commit_window = 60.0
        model, _history = run_script_with_history(fs, script)
        db.tm.flush_commits()
        db.simulate_crash()
        recovered = Database.open(root + "/db")
        try:
            assert (harvest_state(InversionFS.attach(recovered))
                    == model.state())
        finally:
            recovered.close()


@given(data=payloads, shorter=payloads)
@SETTINGS
def test_overwrite_semantics_match_model(data, shorter):
    """The subtlest model rule, pinned directly: an overwrite writes
    from offset 0 and never truncates."""
    with tempfile.TemporaryDirectory() as root:
        db = Database.create(root + "/db")
        try:
            fs = InversionFS.mkfs(db)
            tx = fs.begin()
            fs.write_file(tx, "/f", data)
            fs.write_file(tx, "/f", shorter)
            fs.commit(tx)
            assert fs.read_file("/f") == shorter + data[len(shorter):]
        finally:
            db.close()
