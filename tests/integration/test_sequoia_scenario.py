"""End-to-end Sequoia 2000 scenario: the whole system in one story.

Scientists store typed satellite imagery and documentation across a
storage hierarchy, query it, revise it, vacuum history to optical
media, migrate cold data, survive a crash, and still see every past
state.  Exercises naming, attributes, chunking, typed functions, the
query language, vacuum, migration, devices, the checker, and recovery
together — the way a downstream user actually would.
"""

import pytest

from repro.core.checker import ConsistencyChecker
from repro.core.chunks import chunk_table_name
from repro.core.constants import O_RDWR
from repro.core.filesystem import InversionFS
from repro.core.functions import (
    make_satellite_image,
    make_troff_document,
    register_standard_types,
    snow,
)
from repro.core.library import InversionClient
from repro.core.migration import MigrationEngine
from repro.db.database import Database


@pytest.fixture
def world(tmp_path):
    db = Database.create(str(tmp_path / "sequoia"))
    db.add_device("juke0", "jukebox")
    db.add_device("tape0", "tape")
    fs = InversionFS.mkfs(db)
    client = InversionClient(fs)
    tx = fs.begin()
    register_standard_types(fs, tx)
    fs.commit(tx)
    return tmp_path, db, fs, client


def test_full_scenario(world):
    tmp_path, db, fs, client = world

    # --- ingest a corpus ------------------------------------------------
    client.p_mkdir("/tm")
    client.p_mkdir("/docs")
    images = {}
    for i, frac in enumerate((0.7, 0.6, 0.1, 0.0)):
        img = make_satellite_image(32, 32, 5, snow_fraction=frac, seed=i)
        images[f"scene{i}"] = img
        fd = client.p_creat(f"/tm/scene{i}", ftype="plain")
        client.p_write(fd, img)
        client.p_close(fd)
        tx = fs.begin()
        fs.set_file_type(tx, f"/tm/scene{i}", "tm_image")
        fs.commit(tx)
    fd = client.p_creat("/docs/report.t")
    client.p_write(fd, make_troff_document("Snow Cover 1992",
                                           ["snow", "TM", "Sierra"]))
    client.p_close(fd)
    tx = fs.begin()
    fs.set_file_type(tx, "/docs/report.t", "troff_document")
    fs.commit(tx)
    t_ingested = db.clock.now()

    # --- query the corpus -------------------------------------------------
    rows = client.p_query(
        'retrieve (filename, snow(file)) where filetype(file) = "tm_image" '
        'and snow(file) > 100 sort by filename')
    assert [r[0] for r in rows] == ["scene0", "scene1"]
    for name, count in rows:
        assert count == snow(images[name])
    agg = client.p_query(
        'retrieve (count(filename), sum(size(file))) '
        'where filetype(file) = "tm_image"')
    assert agg[0][0] == 4

    # --- revise a scene (recalibration), keep history --------------------
    recalibrated = make_satellite_image(32, 32, 5, snow_fraction=0.9, seed=99)
    fd = client.p_open("/tm/scene0", O_RDWR)
    client.p_write(fd, recalibrated)
    client.p_close(fd)
    assert fs.read_file("/tm/scene0") == recalibrated
    assert fs.read_file("/tm/scene0", timestamp=t_ingested) == images["scene0"]

    # Functions under historical snapshots analyse historical pixels.
    fileid = fs.resolve("/tm/scene0")
    then = db.funcs.call("snow", [fileid], db.asof(t_ingested))
    now = db.funcs.call("snow", [fileid], db.asof(db.clock.now()))
    assert then == snow(images["scene0"])
    assert now == snow(recalibrated)

    # --- vacuum superseded versions to the optical jukebox ----------------
    table = chunk_table_name(fileid)
    stats = db.vacuum(table, archive_device="juke0")
    assert stats.archived >= 1
    assert fs.read_file("/tm/scene0", timestamp=t_ingested) == images["scene0"]

    # --- migrate cold scenes to tape ----------------------------------------
    engine = MigrationEngine(fs)
    engine.add_rule("cold-scenes",
                    'filetype(file) = "tm_image" and snow(file) < 100',
                    "tape0")
    tx = fs.begin()
    reports = engine.run(tx)
    fs.commit(tx)
    assert sorted(reports[0].moved) == ["/tm/scene2", "/tm/scene3"]
    assert fs.read_file("/tm/scene2") == images["scene2"]

    # --- integrity -----------------------------------------------------------
    report = ConsistencyChecker(fs).check_all()
    assert report.clean

    # --- crash and full revalidation ------------------------------------------
    db.simulate_crash()
    db2 = Database.open(str(tmp_path / "sequoia"))
    fs2 = InversionFS.attach(db2)
    client2 = InversionClient(fs2)

    assert sorted(fs2.readdir("/tm")) == [f"scene{i}" for i in range(4)]
    assert fs2.read_file("/tm/scene0") == recalibrated
    assert fs2.read_file("/tm/scene0", timestamp=t_ingested) == images["scene0"]
    assert fs2.read_file("/tm/scene2") == images["scene2"]  # from tape

    rows = client2.p_query(
        'retrieve (filename) where filetype(file) = "troff_document" '
        'and "Sierra" in keywords(file)')
    assert rows == [("report.t",)]

    report = ConsistencyChecker(fs2).check_all()
    assert report.clean
    db2.close()
