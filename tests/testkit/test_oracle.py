"""The dict-based differential oracle and its parity with the real fs."""

import pytest

from repro.testkit.oracle import ModelError, ModelFS, apply_fs_op, harvest_state


def test_write_creates_and_overwrite_keeps_old_tail():
    m = ModelFS()
    m.apply(("write", "/f", b"abcdefgh"))
    # write_file writes from offset 0 and never truncates: a shorter
    # overwrite leaves the old tail in place.
    m.apply(("write", "/f", b"XY"))
    assert m.state() == {"/f": b"XYcdefgh"}
    m.apply(("write", "/f", b"0123456789"))
    assert m.state() == {"/f": b"0123456789"}


def test_mkdir_unlink_rmdir_roundtrip():
    m = ModelFS()
    m.apply_many([("mkdir", "/d"), ("write", "/d/f", b"x"),
                  ("unlink", "/d/f"), ("rmdir", "/d")])
    assert m.state() == {}


def test_rename_moves_directory_subtree():
    m = ModelFS()
    m.apply_many([("mkdir", "/a"), ("mkdir", "/a/b"),
                  ("write", "/a/b/f", b"x"), ("rename", "/a", "/z")])
    assert m.state() == {"/z": None, "/z/b": None, "/z/b/f": b"x"}


@pytest.mark.parametrize("setup, op", [
    ([], ("mkdir", "/missing/d")),            # parent does not exist
    ([("mkdir", "/d")], ("mkdir", "/d")),     # already exists
    ([("write", "/f", b"x")], ("write", "/f/g", b"y")),  # parent is a file
    ([("mkdir", "/d")], ("write", "/d", b"y")),          # path is a dir
    ([("mkdir", "/d")], ("unlink", "/d")),    # unlink wants a plain file
    ([], ("unlink", "/nope")),
    ([], ("rmdir", "/")),
    ([("mkdir", "/d"), ("write", "/d/f", b"x")], ("rmdir", "/d")),
    ([], ("rename", "/nope", "/x")),
    ([("write", "/a", b"x"), ("write", "/b", b"y")], ("rename", "/a", "/b")),
    ([("mkdir", "/a")], ("rename", "/a", "/a/b")),  # into own subtree
])
def test_invalid_ops_rejected(setup, op):
    m = ModelFS()
    m.apply_many(setup)
    before = m.state()
    assert m.why_invalid(op) is not None
    with pytest.raises(ModelError):
        m.apply(op)
    assert m.state() == before  # rejection mutates nothing


def test_preview_does_not_mutate():
    m = ModelFS()
    m.apply(("write", "/f", b"x"))
    scratch = m.preview([("write", "/g", b"y"), ("unlink", "/f")])
    assert scratch.state() == {"/g": b"y"}
    assert m.state() == {"/f": b"x"}


def test_copy_is_independent():
    m = ModelFS({"/f": b"x"})
    c = m.copy()
    c.apply(("unlink", "/f"))
    assert m.state() == {"/f": b"x"}


def test_harvest_matches_model_after_committed_ops(fs):
    """Parity: the same committed op sequence drives the real fs and
    the model to identical visible states."""
    ops = [
        ("mkdir", "/docs"),
        ("write", "/docs/a", b"A" * 3000),
        ("write", "/b", b"B" * 100),
        ("write", "/docs/a", b"short"),       # shrinking overwrite
        ("rename", "/docs", "/papers"),
        ("unlink", "/b"),
        ("mkdir", "/papers/sub"),
    ]
    model = ModelFS()
    tx = fs.begin()
    for op in ops:
        apply_fs_op(fs, tx, op)
        model.apply(op)
    fs.commit(tx)
    assert harvest_state(fs) == model.state()


def test_harvest_excludes_aborted_transaction(fs):
    tx = fs.begin()
    apply_fs_op(fs, tx, ("write", "/keep", b"yes"))
    fs.commit(tx)
    tx2 = fs.begin()
    apply_fs_op(fs, tx2, ("write", "/drop", b"no"))
    fs.abort(tx2)
    assert harvest_state(fs) == {"/keep": b"yes"}
