"""Fault-injecting device proxy: counted crashes, torn appends,
transient and permanent I/O errors."""

import pytest

from repro.db.page import PAGE_SIZE
from repro.devices.memdisk import MemDisk
from repro.devices.switch import DeviceSwitch
from repro.errors import InjectedFaultError, SimulatedCrashError
from repro.sim.clock import SimClock
from repro.testkit import CrashController, FaultPlan, FaultyDevice


def make_proxy(plan: FaultPlan = FaultPlan(), nrel_pages: int = 4):
    inner = MemDisk("m0", SimClock())
    inner.create_relation("r")
    for _ in range(nrel_pages):
        inner.extend("r")
    ctrl = CrashController(plan)
    return inner, ctrl, FaultyDevice(inner, ctrl)


def page_of(byte: int) -> bytes:
    return bytes([byte]) * PAGE_SIZE


def test_counted_crash_fires_instead_of_write():
    inner, ctrl, dev = make_proxy(FaultPlan(crash_after=2))
    dev.write_page("r", 0, page_of(1))
    dev.write_page("r", 1, page_of(2))
    with pytest.raises(SimulatedCrashError):
        dev.write_page("r", 2, page_of(3))
    assert ctrl.crashed
    # Exactly two writes reached the media; write #2 was suppressed.
    assert inner.read_page("r", 1) == page_of(2)
    assert inner.read_page("r", 2) == bytes(PAGE_SIZE)
    assert ctrl.writes == 2


def test_machine_stays_down_until_disarmed():
    _inner, ctrl, dev = make_proxy(FaultPlan(crash_after=0))
    with pytest.raises(SimulatedCrashError):
        dev.write_page("r", 0, page_of(1))
    # A halted machine services no I/O of any kind.
    with pytest.raises(SimulatedCrashError):
        dev.read_page("r", 0)
    with pytest.raises(SimulatedCrashError):
        dev.extend("r")
    with pytest.raises(SimulatedCrashError):
        dev.flush()
    ctrl.disarm()
    assert dev.read_page("r", 0) == bytes(PAGE_SIZE)


def test_meta_writes_are_counted_boundaries():
    _inner, ctrl, dev = make_proxy()
    dev.sync_write_meta("tag", b"x")
    dev.sync_append_meta("tag", b"y")
    dev.write_page("r", 0, page_of(1))
    assert ctrl.writes == 3
    assert [kind for kind, _dev, _detail in ctrl.write_log] == [
        "meta", "append", "page"]


def test_relation_lifecycle_is_a_counted_boundary():
    """create/drop/rename mutate durable device metadata, so the
    explorer must be able to crash in place of each — that is what lets
    it land inside vacuum's heap+index swap window."""
    inner, ctrl, dev = make_proxy(FaultPlan(crash_after=1))
    dev.create_relation("s")          # write #0: performed
    with pytest.raises(SimulatedCrashError):
        dev.rename_relation("s", "t")  # write #1: suppressed
    assert inner.relation_exists("s")
    assert not inner.relation_exists("t")


def test_torn_append_writes_seeded_prefix():
    record = b"commit 3 10.0 11.0\n"
    inner, ctrl, dev = make_proxy(FaultPlan(crash_after=0, torn_append=True))
    with pytest.raises(SimulatedCrashError):
        dev.sync_append_meta("pg_status", record)
    torn = inner.read_meta("pg_status") or b""
    assert record.startswith(torn)
    assert len(torn) < len(record)
    # The cut never includes the trailing newline, so a torn record is
    # always visibly incomplete to the status-file loader.
    assert not torn.endswith(b"\n")


def test_torn_append_cut_is_deterministic():
    cuts = []
    for _ in range(2):
        inner, _ctrl, dev = make_proxy(
            FaultPlan(crash_after=0, torn_append=True, seed=7))
        with pytest.raises(SimulatedCrashError):
            dev.sync_append_meta("pg_status", b"commit 3 10.0 11.0\n")
        cuts.append(inner.read_meta("pg_status"))
    assert cuts[0] == cuts[1]


def test_transient_write_error_fails_once():
    inner, _ctrl, dev = make_proxy(FaultPlan(write_errors=frozenset({1})))
    dev.write_page("r", 0, page_of(1))
    with pytest.raises(InjectedFaultError):
        dev.write_page("r", 1, page_of(2))
    dev.write_page("r", 1, page_of(2))  # the retry succeeds
    assert inner.read_page("r", 1) == page_of(2)


def test_transient_read_error_fails_once():
    _inner, _ctrl, dev = make_proxy(FaultPlan(read_errors=frozenset({0})))
    with pytest.raises(InjectedFaultError):
        dev.read_page("r", 0)
    assert dev.read_page("r", 0) == bytes(PAGE_SIZE)


def test_permanent_media_failure_on_named_relation():
    inner, _ctrl, dev = make_proxy(
        FaultPlan(broken_relations=frozenset({"r"})))
    inner.create_relation("healthy")
    inner.extend("healthy")
    with pytest.raises(InjectedFaultError):
        dev.read_page("r", 0)
    with pytest.raises(InjectedFaultError):
        dev.write_page("r", 0, page_of(1))
    dev.write_page("healthy", 0, page_of(9))  # other relations unaffected


def test_proxy_delegates_identity_and_extras():
    inner, _ctrl, dev = make_proxy()
    assert dev.name == inner.name
    assert dev.nonvolatile == inner.nonvolatile
    assert dev.stats is inner.stats            # __getattr__ delegation
    row = dev.describe()
    assert row["fault_proxy"] is True
    assert row["name"] == "m0"


def test_one_controller_orders_writes_across_devices():
    clock = SimClock()
    ctrl = CrashController(FaultPlan(crash_after=2))
    devs = []
    for name in ("a", "b"):
        inner = MemDisk(name, clock)
        inner.create_relation("r")
        inner.extend("r")
        devs.append(FaultyDevice(inner, ctrl))
    devs[0].write_page("r", 0, page_of(1))   # global write #0
    devs[1].write_page("r", 0, page_of(2))   # global write #1
    with pytest.raises(SimulatedCrashError):
        devs[0].write_page("r", 0, page_of(3))  # global write #2
    assert ctrl.crashed


def test_switch_wrap_and_unwrap():
    switch = DeviceSwitch()
    inner = MemDisk("m0", SimClock())
    switch.register(inner)
    ctrl = CrashController()
    proxy = switch.wrap("m0", lambda dev: FaultyDevice(dev, ctrl))
    assert switch.get("m0") is proxy
    assert proxy.inner is inner
    assert switch.unwrap("m0") is inner
    assert switch.get("m0") is inner
    # Unwrapping a non-proxy is a no-op.
    assert switch.unwrap("m0") is inner


def test_database_wrap_devices_intercepts_commit(tmp_path):
    from repro.db.database import Database
    db = Database.create(str(tmp_path / "db"))
    try:
        ctrl = CrashController()
        proxies = db.wrap_devices(lambda dev: FaultyDevice(dev, ctrl))
        assert all(isinstance(p, FaultyDevice) for p in proxies)
        tx = db.begin()
        tx.wrote = True  # read-only commits skip the status append
        db.commit(tx)
        # The commit's status-file append went through the proxy.
        assert any(kind == "append" for kind, _d, _t in ctrl.write_log)
        db.unwrap_devices()
        assert not isinstance(db.switch.get(), FaultyDevice)
        tx2 = db.begin()
        db.commit(tx2)  # still functional after unwrap
    finally:
        db.close()
