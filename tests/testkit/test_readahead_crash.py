"""Read-ahead under the crash testkit.

Read-ahead must be semantically invisible: batched reads pass the same
fault gates as page-at-a-time reads, reads are never crash boundaries
(so the explorer's schedules are identical with the window open or
closed), and the differential oracle sees the same bytes either way.
"""

import pytest

from repro.core.constants import CHUNK_SIZE
from repro.db.buffer import BufferCache
from repro.db.page import PAGE_SIZE
from repro.devices.memdisk import MemDisk
from repro.errors import InjectedFaultError
from repro.sim.clock import SimClock
from repro.testkit import CrashController, CrashScheduleExplorer, FaultPlan, FaultyDevice
from repro.testkit.oracle import harvest_state
from repro.testkit.workload import TxStep, Workload, payload


def make_proxy(plan: FaultPlan = FaultPlan(), nrel_pages: int = 8):
    inner = MemDisk("m0", SimClock())
    inner.create_relation("r")
    for i in range(nrel_pages):
        p = inner.extend("r")
        inner.write_page("r", p, bytes([i]) * PAGE_SIZE)
    ctrl = CrashController(plan)
    return inner, ctrl, FaultyDevice(inner, ctrl)


# -- FaultyDevice.read_pages gating ----------------------------------------


def test_batched_read_counts_each_page():
    _inner, ctrl, dev = make_proxy()
    dev.read_pages("r", 0, 5)
    assert ctrl.reads == 5  # same global read indices as 5 read_page calls


def test_injected_error_hits_page_inside_batch():
    """A transient read error aimed at global read #3 fires even when
    that page is fetched as the middle of a batch."""
    _inner, ctrl, dev = make_proxy(FaultPlan(read_errors=frozenset({3})))
    with pytest.raises(InjectedFaultError):
        dev.read_pages("r", 0, 6)
    # The error consumed indices 0..3; a retry of the batch succeeds.
    assert dev.read_pages("r", 0, 6)[2] == bytes([2]) * PAGE_SIZE


def test_broken_relation_fails_batched_reads():
    _inner, _ctrl, dev = make_proxy(
        FaultPlan(broken_relations=frozenset({"r"})))
    with pytest.raises(InjectedFaultError):
        dev.read_pages("r", 0, 2)


def test_batched_reads_are_not_crash_boundaries():
    """Only durable writes advance the crash counter: prefetching more
    (or fewer) pages can never shift where a scheduled crash lands."""
    _inner, ctrl, dev = make_proxy(FaultPlan(crash_after=100))
    w0 = ctrl.writes
    dev.read_pages("r", 0, 8)
    dev.read_page("r", 0)
    assert ctrl.writes == w0


# -- explorer with the window open vs closed -------------------------------


def seqread_workload(seed: int = 0) -> Workload:
    """Multi-chunk sequential files — enough pages that the buffer
    cache's read-ahead actually opens its window during recovery
    verification and the read-back steps."""
    p = lambda tag, size: payload(seed, tag, size)
    big = CHUNK_SIZE * 3 + 123
    return Workload(name="seqread", steps=(
        TxStep((("mkdir", "/data"),
                ("write", "/data/big", p("b0", big)))),
        TxStep((("write", "/data/big", p("b1", CHUNK_SIZE + 17)),)),
        TxStep((("write", "/data/second", p("s0", CHUNK_SIZE * 2)),)),
        TxStep((("unlink", "/data/second"),), abort=True),
    ))


def _no_readahead(monkeypatch):
    monkeypatch.setattr(
        BufferCache, "_readahead_count",
        lambda self, dev, relname, dev_name, pageno, streak: 1)


def test_explorer_schedule_identical_with_and_without_readahead(
        tmp_path, monkeypatch):
    base = CrashScheduleExplorer(
        str(tmp_path / "ra"), seqread_workload()).explore(max_points=20)
    assert base.violations == [], "\n".join(
        f"point {v.point}: {v.detail}" for v in base.violations)

    _no_readahead(monkeypatch)
    plain = CrashScheduleExplorer(
        str(tmp_path / "nora"), seqread_workload()).explore(max_points=20)
    assert plain.violations == []
    # Same durable-write trace → same crash points, point for point.
    assert base.total_writes == plain.total_writes
    assert base.points_tested == plain.points_tested


def test_explorer_with_readahead_survives_torn_appends(tmp_path):
    report = CrashScheduleExplorer(
        str(tmp_path), seqread_workload(), torn_append=True
    ).explore(max_points=15)
    assert report.violations == [], "\n".join(
        f"point {v.point}: {v.detail}" for v in report.violations)


# -- oracle parity ----------------------------------------------------------


def test_oracle_state_identical_with_and_without_readahead(
        tmp_path, clock, monkeypatch):
    """The harvested file-system state (every file read back through
    the chunked read path) is byte-identical whether or not the cache
    prefetches — including a historical read after more writes."""
    from repro.core.filesystem import InversionFS
    from repro.db.database import Database

    def build_and_harvest(workdir):
        database = Database.create(str(workdir), clock=SimClock())
        fs = InversionFS.mkfs(database)
        tx = fs.begin()
        fs.mkdir(tx, "/d")
        fs.write_file(tx, "/d/a", payload(0, "a", CHUNK_SIZE * 4 + 99))
        fs.write_file(tx, "/d/b", payload(0, "b", CHUNK_SIZE - 1))
        fs.commit(tx)
        t0 = database.clock.now()
        tx = fs.begin()
        fs.write_file(tx, "/d/a", payload(1, "a2", CHUNK_SIZE * 2))
        fs.commit(tx)
        database.buffers.invalidate_all()  # cold cache: reads hit devices
        state = harvest_state(fs)
        historical = fs.read_file("/d/a", timestamp=t0)
        database.close()
        return state, historical

    with_ra = build_and_harvest(tmp_path / "ra")
    _no_readahead(monkeypatch)
    without_ra = build_and_harvest(tmp_path / "nora")
    assert with_ra == without_ra
