"""Crash consistency under concurrency.

The concurrent workload drives three interleaved sessions through the
deterministic scheduler while the fault layer crashes the device at
sampled write boundaries.  Because 2PL makes the committed transactions
serializable in commit order, the differential oracle — fed by the
scheduler's commit hook — must hold at every crash point, exactly as it
does for the single-session workloads.
"""

from __future__ import annotations

import pytest

from repro.testkit.explorer import CrashScheduleExplorer
from repro.testkit.workload import concurrent_workload


def test_profiling_pass_matches_oracle(tmp_path):
    """A crash-free concurrent run ends in exactly the state the
    commit-order oracle predicts."""
    explorer = CrashScheduleExplorer(str(tmp_path), concurrent_workload())
    boundaries = explorer.count_write_boundaries()
    assert boundaries > 20


@pytest.mark.parametrize("torn", [False, True])
def test_concurrent_crash_points_zero_violations(tmp_path, torn):
    explorer = CrashScheduleExplorer(str(tmp_path), concurrent_workload(),
                                     torn_append=torn)
    report = explorer.explore(max_points=5)
    assert not report.violations, report.summary()
    assert len(report.points_tested) > 0


def test_same_sched_seed_same_boundaries(tmp_path):
    """Determinism end-to-end: the same workload seed produces the
    same number of durable write boundaries (the crash coordinates are
    replayable)."""
    first = CrashScheduleExplorer(str(tmp_path / "a"),
                                  concurrent_workload())
    second = CrashScheduleExplorer(str(tmp_path / "b"),
                                   concurrent_workload())
    assert first.count_write_boundaries() == second.count_write_boundaries()
