"""The VFS surface behaves identically over every client stack:
in-process, remote, remote+cache, and sharded (satellite matrix for
the transactional POSIX layer)."""

from __future__ import annotations

import pytest

from repro.core.constants import CHUNK_SIZE, O_CREAT, O_RDONLY, O_RDWR
from repro.errors import FileNotFoundError_, StructuralOpError
from repro.testkit.workload import payload


def test_roundtrip_and_namespace(stack):
    vfs, root = stack
    vfs.mkdir(f"{root}/d")
    data = payload(1, "rt", 5000)
    vfs.write_file(f"{root}/d/f", data)
    assert vfs.read_file(f"{root}/d/f") == data
    assert vfs.stat(f"{root}/d/f").size == 5000
    assert vfs.exists(f"{root}/d/f")
    assert not vfs.exists(f"{root}/d/missing")
    assert vfs.readdir(f"{root}/d") == ["f"]
    vfs.rename(f"{root}/d/f", f"{root}/d/g")
    assert vfs.readdir(f"{root}/d") == ["g"]
    vfs.unlink(f"{root}/d/g")
    vfs.rmdir(f"{root}/d")
    assert not vfs.exists(f"{root}/d")


def test_open_lseek_read(stack):
    vfs, root = stack
    data = payload(2, "fd", 2 * CHUNK_SIZE + 100)
    fd = vfs.open(f"{root}/f", O_RDWR | O_CREAT)
    vfs.write(fd, data)
    vfs.close(fd)
    fd = vfs.open(f"{root}/f", O_RDONLY)
    assert vfs.read(fd, 64) == data[:64]
    vfs.lseek(fd, CHUNK_SIZE + 7)
    assert vfs.read(fd, 50) == data[CHUNK_SIZE + 7:CHUNK_SIZE + 57]
    vfs.close(fd)
    # O_CREAT on an existing file opens it.
    fd = vfs.open(f"{root}/f", O_RDWR | O_CREAT)
    vfs.close(fd)


def test_transaction_group_commits_atomically(stack):
    vfs, root = stack
    with vfs.transaction():
        vfs.mkdir(f"{root}/tree")
        vfs.write_file(f"{root}/tree/a", b"alpha")
        vfs.write_file(f"{root}/tree/b", b"beta")
        vfs.rename(f"{root}/tree/b", f"{root}/tree/c")
    assert vfs.readdir(f"{root}/tree") == ["a", "c"]
    assert vfs.read_file(f"{root}/tree/c") == b"beta"


def test_transaction_abort_rolls_back_every_file(stack):
    vfs, root = stack
    vfs.write_file(f"{root}/keep", b"stable")
    with pytest.raises(RuntimeError):
        with vfs.transaction():
            vfs.mkdir(f"{root}/doomed")
            vfs.write_file(f"{root}/doomed/x", b"gone")
            vfs.write_file(f"{root}/keep2", b"gone too")
            raise RuntimeError("boom")
    assert not vfs.exists(f"{root}/doomed")
    assert not vfs.exists(f"{root}/keep2")
    assert vfs.read_file(f"{root}/keep") == b"stable"


def test_explicit_abort(stack):
    vfs, root = stack
    vfs.begin()
    vfs.write_file(f"{root}/tmp", b"speculative")
    vfs.abort()
    assert not vfs.exists(f"{root}/tmp")


def test_iterdir_pages_match_full_listing(stack):
    vfs, root = stack
    vfs.mkdir(f"{root}/big")
    names = sorted(f"n{i:03d}" for i in range(41))
    with vfs.transaction():
        for name in names:
            vfs.write_file(f"{root}/big/{name}", b"")
    assert vfs.readdir(f"{root}/big") == names
    assert list(vfs.iterdir(f"{root}/big", page_size=7)) == names
    page, cookie = vfs.readdir_page(f"{root}/big", None, 7)
    assert page == names[:7] and cookie == names[6]
    page, cookie = vfs.readdir_page(f"{root}/big", cookie, 7)
    assert page == names[7:14]


def test_structural_ops_roundtrip(stack):
    vfs, root = stack
    data = payload(3, "st", 3 * CHUNK_SIZE)
    tail = payload(3, "tl", 450)
    vfs.write_file(f"{root}/base", data)
    vfs.write_file(f"{root}/tail", tail)

    vfs.reflink(f"{root}/base", f"{root}/copy")
    assert vfs.read_file(f"{root}/copy") == data

    vfs.concat([f"{root}/base", f"{root}/tail"], f"{root}/joined")
    assert vfs.read_file(f"{root}/joined") == data + tail

    vfs.slice(f"{root}/base", CHUNK_SIZE, 2 * CHUNK_SIZE + 99,
              f"{root}/mid")
    assert vfs.read_file(f"{root}/mid") == data[CHUNK_SIZE:
                                                2 * CHUNK_SIZE + 99]

    # Copy-on-write: overwriting the source leaves the clone alone.
    vfs.write_file(f"{root}/base", b"X" * 100)
    assert vfs.read_file(f"{root}/copy") == data
    assert vfs.read_file(f"{root}/base")[:100] == b"X" * 100

    vfs.truncate(f"{root}/copy", CHUNK_SIZE + 10)
    assert vfs.read_file(f"{root}/copy") == data[:CHUNK_SIZE + 10]
    vfs.truncate(f"{root}/copy", CHUNK_SIZE + 500)
    assert vfs.read_file(f"{root}/copy") == (
        data[:CHUNK_SIZE + 10] + bytes(490))


def test_structural_alignment_errors(stack):
    vfs, root = stack
    vfs.write_file(f"{root}/odd", b"o" * 1000)       # not chunk-aligned
    vfs.write_file(f"{root}/other", b"p" * 500)
    with pytest.raises(StructuralOpError):
        vfs.concat([f"{root}/odd", f"{root}/other"], f"{root}/bad")
    with pytest.raises(StructuralOpError):
        vfs.slice(f"{root}/odd", 1, 10, f"{root}/bad")
    with pytest.raises(StructuralOpError):
        vfs.slice(f"{root}/odd", 0, 2000, f"{root}/bad")
    with pytest.raises(StructuralOpError):
        vfs.truncate(f"{root}/odd", -1)
    with pytest.raises(FileNotFoundError_):
        vfs.reflink(f"{root}/missing", f"{root}/bad")
    assert not vfs.exists(f"{root}/bad")


def test_structural_ops_inside_group(stack):
    """A reflink inside an aborted group vanishes with the group."""
    vfs, root = stack
    data = payload(4, "grp", 2 * CHUNK_SIZE)
    vfs.write_file(f"{root}/src", data)
    vfs.begin()
    vfs.reflink(f"{root}/src", f"{root}/snap")
    vfs.truncate(f"{root}/src", CHUNK_SIZE)
    vfs.abort()
    assert not vfs.exists(f"{root}/snap")
    assert vfs.read_file(f"{root}/src") == data
    with vfs.transaction():
        vfs.reflink(f"{root}/src", f"{root}/snap")
        vfs.truncate(f"{root}/src", CHUNK_SIZE)
    assert vfs.read_file(f"{root}/snap") == data
    assert vfs.read_file(f"{root}/src") == data[:CHUNK_SIZE]


def test_empty_file_structural_ops(stack):
    vfs, root = stack
    vfs.write_file(f"{root}/empty", b"")
    referenced, materialized = vfs.reflink(f"{root}/empty",
                                           f"{root}/empty2")
    assert (referenced, materialized) == (0, 0)
    assert vfs.read_file(f"{root}/empty2") == b""
    assert vfs.slice(f"{root}/empty", 0, 0, f"{root}/empty3") == (0, 0)
    vfs.truncate(f"{root}/empty", 0)
    assert vfs.stat(f"{root}/empty").size == 0
