"""clone_range edge cases (satellite): empty ranges, the unindexed
ablation, clones resolving across the live heap and the archive, and a
Hypothesis differential of reflink-then-overwrite against the model's
physical copies."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import InversionClient, InversionFS
from repro.core.chunks import ChunkStore
from repro.core.constants import CHUNK_SIZE
from repro.db.database import Database
from repro.testkit.oracle import ModelFS, apply_fs_op, harvest_state
from repro.testkit.workload import payload
from repro.vfs.extents import raise_if_shared_extents_broken, shared_extents


def _fileid(fs, path):
    from repro.db.snapshot import BootstrapSnapshot
    return fs.namespace.resolve(path, BootstrapSnapshot(fs.db.tm), None)


def test_clone_empty_and_inverted_range(fs, client):
    client.p_close(client.p_creat("/src"))
    client.p_close(client.p_creat("/dst"))
    tx = fs.begin()
    src = ChunkStore(fs.db, _fileid(fs, "/src"), tx)
    dst = ChunkStore(fs.db, _fileid(fs, "/dst"), tx)
    assert dst.clone_range(tx, src, 5, 2) == 0      # inverted
    assert dst.clone_range(tx, src, 0, 10) == 0     # source empty
    fs.commit(tx)


def test_clone_unindexed_ablation(tmp_path):
    """With per-file chunk indexes disabled, clone_range gathers by
    heap scan and reference resolution walks all versions — same
    answers, no index."""
    db = Database.create(str(tmp_path / "db"))
    try:
        fs = InversionFS.mkfs(db)
        fs.chunk_index = False
        client = InversionClient(fs)
        data = payload(7, "noidx", 2 * CHUNK_SIZE + 333)
        tx = fs.begin()
        fs.write_file(tx, "/src", data)
        fs.commit(tx)
        tx = fs.begin()
        referenced, materialized = fs.reflink(tx, "/src", "/dst")
        fs.commit(tx)
        assert referenced == 2 and materialized == 1
        assert fs.read_file("/dst") == data
        # Overwrite the source: the clone must keep resolving the
        # pinned versions via the all-versions scan.
        tx = fs.begin()
        fs.write_file(tx, "/src", payload(7, "new", 100))
        fs.commit(tx)
        assert fs.read_file("/dst") == data
        raise_if_shared_extents_broken(fs)
    finally:
        db.close()


def test_clone_resolves_across_live_and_archive(fs, client):
    """A clone pinning versions that vacuum later archives must keep
    reading the pinned bytes — part live heap, part archive."""
    data = payload(8, "arch", 3 * CHUNK_SIZE)
    tx = fs.begin()
    fs.write_file(tx, "/src", data)
    fs.commit(tx)
    tx = fs.begin()
    assert fs.reflink(tx, "/src", "/clone") == (3, 0)
    fs.commit(tx)
    # Supersede chunks 0 and 1; chunk 2's pinned version stays current.
    tx = fs.begin()
    fs.write_file(tx, "/src", payload(8, "v1", 2 * CHUNK_SIZE))
    fs.commit(tx)
    table = f"inv{_fileid(fs, '/src')}"
    stats = fs.db.vacuum(table, keep_history=False)
    # The pin guard must have archived instead of expunging.
    assert stats.history_pinned
    assert fs.db.archive_heap_for(table) is not None
    assert fs.read_file("/clone") == data
    raise_if_shared_extents_broken(fs)


def test_unpinned_purge_still_expunges(fs, client):
    """The guard must not tax ordinary files: vacuuming an unreferenced
    table with keep_history=False still discards history."""
    tx = fs.begin()
    fs.write_file(tx, "/plain", payload(9, "p0", CHUNK_SIZE))
    fs.commit(tx)
    tx = fs.begin()
    fs.write_file(tx, "/plain", payload(9, "p1", CHUNK_SIZE))
    fs.commit(tx)
    table = f"inv{_fileid(fs, '/plain')}"
    stats = fs.db.vacuum(table, keep_history=False)
    assert not stats.history_pinned
    assert fs.db.archive_heap_for(table) is None


def test_nested_clone_flattens(fs, client):
    """Cloning a clone copies the pointers verbatim: the grandchild
    references the original versions, not the intermediate file."""
    data = payload(10, "nest", 2 * CHUNK_SIZE)
    tx = fs.begin()
    fs.write_file(tx, "/a", data)
    fs.commit(tx)
    tx = fs.begin()
    fs.reflink(tx, "/a", "/b")
    fs.commit(tx)
    tx = fs.begin()
    fs.reflink(tx, "/b", "/c")
    fs.commit(tx)
    # Even with the middle file gone, /c reads the pinned originals.
    tx = fs.begin()
    fs.unlink(tx, "/b")
    fs.commit(tx)
    assert fs.read_file("/c") == data
    report = shared_extents(fs)
    assert report.clean, report.corruptions


_PATHS = ("/f0", "/f1", "/f2")

_op = st.one_of(
    st.tuples(st.just("write"), st.sampled_from(_PATHS),
              st.binary(min_size=1, max_size=CHUNK_SIZE + 200)),
    st.tuples(st.just("reflink"), st.sampled_from(_PATHS),
              st.sampled_from(("/r0", "/r1", "/r2"))),
    st.tuples(st.just("slice"), st.sampled_from(_PATHS),
              st.sampled_from((0, CHUNK_SIZE)),
              st.integers(min_value=0, max_value=2 * CHUNK_SIZE),
              st.sampled_from(("/s0", "/s1"))),
    st.tuples(st.just("truncate"), st.sampled_from(_PATHS),
              st.integers(min_value=0, max_value=2 * CHUNK_SIZE)),
    st.tuples(st.just("unlink"), st.sampled_from(("/r0", "/r1", "/s0"))),
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=st.lists(_op, min_size=1, max_size=14))
def test_reflink_then_overwrite_matches_model(tmp_path_factory, ops):
    """Differential: random structural ops + overwrites against the
    ModelFS oracle, which implements them as physical copies.  Any
    divergence means a reference resolved to the wrong version."""
    workdir = tmp_path_factory.mktemp("clonediff")
    db = Database.create(str(workdir / "db"))
    try:
        fs = InversionFS.mkfs(db)
        model = ModelFS()
        for op in ops:
            if model.why_invalid(op) is not None:
                continue
            model.apply(op)
            tx = fs.begin()
            apply_fs_op(fs, tx, op)
            fs.commit(tx)
        assert harvest_state(fs) == model.state()
        report = shared_extents(fs)
        assert report.clean, report.corruptions
    finally:
        db.close()
