"""The headline acceptance claim: by-reference structural ops on a
64 MB file move **zero** data pages — every copied chunk is a pointer
row, and the device write counter confirms no payload migrated."""

from __future__ import annotations

from repro.core.constants import CHUNK_SIZE
from repro.testkit.workload import payload
from repro.vfs import VFS
from repro.vfs.extents import raise_if_shared_extents_broken

#: 8 000 chunks of 8 064 bytes = 64 512 000 bytes — "64 MB" on a chunk
#: boundary, so the whole file clones by reference (no materialized
#: tail chunk).
CHUNKS = 8000
SIZE = CHUNKS * CHUNK_SIZE


def _pages_written(db) -> float:
    return db.obs.metrics.get("device.pages_written").total()


def test_reflink_and_concat_64mb_move_no_data(fs, client):
    vfs = VFS(client)
    data = payload(0, "big", SIZE)
    vfs.write_file("/big", data)

    p0 = _pages_written(fs.db)
    referenced, materialized = vfs.reflink("/big", "/copy")
    reflink_pages = _pages_written(fs.db) - p0
    assert (referenced, materialized) == (CHUNKS, 0)
    # Pointer rows are 40-byte entries, ~200 per 8 KB page: cloning
    # 8 000 chunks costs tens of metadata pages.  The physical copy
    # would have written ~8 000 data pages; a sliver of that budget
    # proves no payload moved.
    assert reflink_pages < CHUNKS / 20, (
        f"reflink wrote {reflink_pages} pages for {CHUNKS} chunks")

    p0 = _pages_written(fs.db)
    referenced, materialized = vfs.concat(["/big", "/copy"], "/double")
    concat_pages = _pages_written(fs.db) - p0
    assert (referenced, materialized) == (2 * CHUNKS, 0)
    assert concat_pages < CHUNKS / 10, (
        f"concat wrote {concat_pages} pages for {2 * CHUNKS} chunks")

    # The pointers resolve to the right bytes (sampled across the
    # file, plus exact sizes).
    assert vfs.stat("/copy").size == SIZE
    assert vfs.stat("/double").size == 2 * SIZE
    fd = vfs.open("/copy", 0)
    for off in (0, CHUNK_SIZE * 1000 + 17, SIZE - 4096):
        vfs.lseek(fd, off)
        assert vfs.read(fd, 4096) == data[off:off + 4096]
    vfs.close(fd)
    fd = vfs.open("/double", 0)
    vfs.lseek(fd, SIZE - 100)
    assert vfs.read(fd, 200) == data[-100:] + data[:100]
    vfs.close(fd)
    raise_if_shared_extents_broken(fs)
