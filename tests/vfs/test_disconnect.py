"""Regression (satellite): a session dying mid-VFS-transaction with
buffered multi-file writes must be fully aborted — no half-published
build tree, no leaked locks, no orphan names."""

from __future__ import annotations

import pytest

from repro.core.client import RemoteInversionClient
from repro.core.constants import O_CREAT, O_RDWR
from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.core.server import InversionServer
from repro.db.database import Database
from repro.errors import FileNotFoundError_
from repro.sim.clock import SimClock
from repro.sim.network import ETHERNET_10MBIT, NetworkModel
from repro.vfs import VFS


def _stack(tmp_path, **caching):
    clock = SimClock()
    db = Database.create(str(tmp_path / "db"), clock=clock)
    fs = InversionFS.mkfs(db)
    server = InversionServer(fs)
    network = NetworkModel(clock=clock, params=ETHERNET_10MBIT)
    client = RemoteInversionClient(server, network, **caching)
    return db, fs, server, client


@pytest.mark.parametrize("caching", [{}, {"cache_paths": 64,
                                          "cache_chunks": 32}],
                         ids=["plain", "cached"])
def test_disconnect_aborts_open_vfs_transaction(tmp_path, caching):
    db, fs, server, client = _stack(tmp_path, **caching)
    vfs = VFS(client)
    vfs.write_file("/stable", b"before")

    vfs.begin()
    vfs.mkdir("/build.tmp")
    vfs.mkdir("/build.tmp/m0")
    vfs.write_file("/build.tmp/m0/a.o", b"A" * 5000)
    vfs.write_file("/build.tmp/m0/b.o", b"B" * 5000)
    fd = vfs.open("/build.tmp/m0/c.o", O_RDWR | O_CREAT)
    vfs.write(fd, b"C" * 9000)                  # stays buffered
    vfs.rename("/build.tmp", "/build")

    # The session dies with the group open and writes buffered.
    server.disconnect(client._session)

    # A fresh session sees no trace of the half-built tree.
    observer = InversionClient(fs)
    assert observer.p_readdir("/") == ["stable"]
    for path in ("/build", "/build.tmp", "/build.tmp/m0/a.o"):
        with pytest.raises(FileNotFoundError_):
            fs.stat(path)
    assert fs.read_file("/stable") == b"before"

    # No locks survive the teardown: the same paths are immediately
    # re-creatable by the next writer.
    observer.p_mkdir("/build.tmp")
    observer.p_close(observer.p_creat("/build.tmp/fresh"))
    assert observer.p_readdir("/build.tmp") == ["fresh"]
    db.close()


def test_disconnect_aborts_structural_ops_in_group(tmp_path):
    """Reflinks and truncates inside the dying session's group vanish
    with it — including their vfsref bookkeeping's visibility."""
    db, fs, server, client = _stack(tmp_path)
    vfs = VFS(client)
    vfs.write_file("/base", b"x" * 20000)

    vfs.begin()
    vfs.reflink("/base", "/snap")
    vfs.truncate("/base", 100)
    server.disconnect(client._session)

    with pytest.raises(FileNotFoundError_):
        fs.stat("/snap")
    assert fs.stat("/base").size == 20000
    db.close()
