"""Fixtures for the transactional-VFS suite: the same VFS surface
constructed over every client stack — in-process, remote, remote with
the lease-coherent cache, and sharded."""

from __future__ import annotations

import pytest

from repro.core.client import RemoteInversionClient
from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.core.server import InversionServer
from repro.db.database import Database
from repro.shard import ShardedCluster
from repro.sim.clock import SimClock
from repro.sim.network import ETHERNET_10MBIT, NetworkModel
from repro.vfs import VFS

STACKS = ("local", "remote", "cached", "sharded")


@pytest.fixture(params=STACKS)
def stack(request, tmp_path):
    """(vfs, prefix, teardown-managed internals) over one client stack.

    ``prefix`` is the directory tests should work under — ``"/a"`` on
    the sharded stack (one subtree, one shard, so the semantics under
    test are identical to the single-server stacks; cross-shard
    behaviour has its own tests) and ``""`` elsewhere."""
    kind = request.param
    if kind == "sharded":
        cluster = ShardedCluster.create(str(tmp_path / "cluster"), 2,
                                        policy="subtree",
                                        assignments={"a": 0, "b": 1})
        client = cluster.client()
        client.p_mkdir("/a")
        client.p_mkdir("/b")
        yield VFS(client), "/a"
        client.close()
        cluster.close()
        return
    clock = SimClock()
    db = Database.create(str(tmp_path / "db"), clock=clock)
    fs = InversionFS.mkfs(db)
    if kind == "local":
        yield VFS(InversionClient(fs)), ""
        db.close()
        return
    server = InversionServer(fs)
    network = NetworkModel(clock=clock, params=ETHERNET_10MBIT)
    caching = {"cache_paths": 64, "cache_chunks": 32} if kind == "cached" \
        else {}
    client = RemoteInversionClient(server, network, **caching)
    yield VFS(client), ""
    client.close()
    db.close()
