"""The VFS scenario workloads under the crash-schedule explorer: every
sampled crash point recovers to a state the differential oracle
accepts, the build tree is never half-published, and the structural
ops never strand a shared extent.  ``-m torture`` opts into the full
boundary enumeration in clean and torn-append modes."""

from __future__ import annotations

import pytest

from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.db.database import Database
from repro.testkit.explorer import CrashScheduleExplorer
from repro.vfs import VFS
from repro.vfs.extents import raise_if_shared_extents_broken
from repro.vfs.scenarios import (VFS_WORKLOADS, build_and_publish,
                                 populate_flat_dir, scan_flat_dir)

#: bounded per-workload sample for CI; torture enumerates everything.
CI_POINTS = 8


@pytest.mark.parametrize("name", sorted(VFS_WORKLOADS))
def test_bounded_exploration_zero_violations(tmp_path, name):
    explorer = CrashScheduleExplorer(str(tmp_path), VFS_WORKLOADS[name]())
    report = explorer.explore(max_points=CI_POINTS)
    assert report.total_writes >= CI_POINTS, (
        f"workload {name!r} too short to sample {CI_POINTS} crash points")
    assert report.violations == [], "\n".join(
        f"point {v.point}: {v.detail}" for v in report.violations)


def test_reflink_churn_torn_append_bounded(tmp_path):
    """The structural-op workload with torn status appends — the
    in-flight group may land on either side of the crash, nothing
    in between."""
    explorer = CrashScheduleExplorer(
        str(tmp_path), VFS_WORKLOADS["vfs_reflink_churn"](),
        torn_append=True)
    report = explorer.explore(max_points=CI_POINTS)
    assert report.violations == [], "\n".join(
        f"point {v.point}: {v.detail}" for v in report.violations)


def test_drivers_roundtrip(tmp_path):
    """The application-shaped drivers: the paged flat-dir scan sees
    exactly the files populated, and the build publishes atomically
    with the staging directory gone."""
    db = Database.create(str(tmp_path / "db"))
    try:
        fs = InversionFS.mkfs(db)
        vfs = VFS(InversionClient(fs))
        populate_flat_dir(vfs, 37, per_tx=10, size=50)
        assert scan_flat_dir(vfs, page_size=8) == 37
        build_and_publish(vfs, modules=2, files_per=2)
        assert not vfs.exists("/build.tmp")
        assert vfs.readdir("/build") == ["m0", "m1", "prog"]
        assert vfs.readdir("/build/m1") == ["o0.o", "o1.o"]
        raise_if_shared_extents_broken(fs)
    finally:
        db.close()


@pytest.mark.torture
@pytest.mark.parametrize("torn", [False, True], ids=["clean", "torn"])
@pytest.mark.parametrize("name", sorted(VFS_WORKLOADS))
def test_full_enumeration(tmp_path, name, torn):
    explorer = CrashScheduleExplorer(str(tmp_path), VFS_WORKLOADS[name](),
                                     torn_append=torn)
    report = explorer.explore()
    assert report.violations == [], "\n".join(
        f"point {v.point}: {v.detail}" for v in report.violations)
