"""The shared-extents checker: clean after structural churn and
vacuum, and able to detect every corruption class it exists for —
unregistered, out-of-range, dangling, and malformed references."""

from __future__ import annotations

from repro.core.chunks import ChunkStore, encode_ref
from repro.core.constants import CHUNK_SIZE
from repro.db.snapshot import BootstrapSnapshot
from repro.testkit.workload import payload
from repro.vfs import VFS
from repro.vfs.extents import raise_if_shared_extents_broken, shared_extents
from repro.vfs.scenarios import reflink_churn


def _fileid(fs, path):
    return fs.namespace.resolve(path, BootstrapSnapshot(fs.db.tm), None)


def _inject_ref_row(fs, dst_path, chunkno, src_id, src_chunkno, src_xmin):
    """Plant a reference row directly at the storage level, bypassing
    the registration the file-system layer always performs."""
    tx = fs.begin()
    store = ChunkStore(fs.db, _fileid(fs, dst_path), tx)
    store.table.lock_exclusive(tx)
    store.table.insert_many(
        tx, [(chunkno, -src_id, encode_ref(src_id, src_chunkno, src_xmin))])
    fs.commit(tx)


def _source_xmin(fs, src_id, chunkno):
    """The committing transaction of the newest version of one chunk —
    what a legitimate clone would have pinned."""
    store = ChunkStore(fs.db, src_id, None)
    snapshot = BootstrapSnapshot(fs.db.tm)
    pairs = list(store.table.index_range_newest(
        ("chunkno",), (chunkno,), (chunkno,), snapshot, None))
    assert pairs, f"chunk {chunkno} has no visible version"
    tid = pairs[0][0]
    return store.table.heap.fetch_raw(tid)[0]


def test_churn_and_vacuum_stay_clean(fs, client):
    """The reflink-churn driver — clones, slices, concats, overwrites,
    unlinks — plus a history-discarding vacuum of the shared base must
    leave every stored reference resolvable and registered."""
    vfs = VFS(client)
    reflink_churn(vfs, rounds=3, chunks=3)
    raise_if_shared_extents_broken(fs)
    stats = fs.db.vacuum(f"inv{_fileid(fs, '/base')}", keep_history=False)
    assert stats.history_pinned  # the guard archived instead of purging
    raise_if_shared_extents_broken(fs)


def test_detects_unregistered_reference(fs, client):
    """A reference whose source has no vfsref row at all is exactly
    what the vacuum guard cannot protect — the checker must say so."""
    tx = fs.begin()
    fs.write_file(tx, "/lone", payload(1, "lone", 2 * CHUNK_SIZE))
    fs.write_file(tx, "/fake", b"")
    fs.commit(tx)
    src_id = _fileid(fs, "/lone")
    _inject_ref_row(fs, "/fake", 0, src_id, 0, _source_xmin(fs, src_id, 0))
    report = shared_extents(fs)
    assert [c.kind for c in report.corruptions] == ["unregistered-reference"]


def test_detects_reference_outside_registered_range(fs, client):
    """Coverage is per chunk range, not per source file: a registered
    slice of chunk 0 does not license a stray reference to chunk 2."""
    tx = fs.begin()
    fs.write_file(tx, "/src", payload(2, "rng", 3 * CHUNK_SIZE))
    fs.write_file(tx, "/fake", b"")
    fs.commit(tx)
    tx = fs.begin()
    fs.slice(tx, "/src", 0, CHUNK_SIZE, "/head")  # registers chunks 0..0
    fs.commit(tx)
    raise_if_shared_extents_broken(fs)
    src_id = _fileid(fs, "/src")
    _inject_ref_row(fs, "/fake", 0, src_id, 2, _source_xmin(fs, src_id, 2))
    report = shared_extents(fs)
    assert [c.kind for c in report.corruptions] == ["unregistered-reference"]


def test_detects_dangling_reference(fs, client):
    """A reference pinning a version that does not exist anywhere —
    live heap or archive — is a dangling pointer."""
    tx = fs.begin()
    fs.write_file(tx, "/src", payload(3, "dang", CHUNK_SIZE))
    fs.write_file(tx, "/fake", b"")
    fs.commit(tx)
    _inject_ref_row(fs, "/fake", 0, _fileid(fs, "/src"), 0, 999_999_999)
    report = shared_extents(fs)
    assert [c.kind for c in report.corruptions] == ["dangling-reference"]


def test_detects_malformed_payload(fs, client):
    """A reference row whose payload is not the 24-byte pin triple is
    storage corruption, reported as such."""
    tx = fs.begin()
    fs.write_file(tx, "/src", payload(4, "mal", CHUNK_SIZE))
    fs.write_file(tx, "/fake", b"")
    fs.commit(tx)
    src_id = _fileid(fs, "/src")
    tx = fs.begin()
    store = ChunkStore(fs.db, _fileid(fs, "/fake"), tx)
    store.table.lock_exclusive(tx)
    store.table.insert_many(tx, [(0, -src_id, b"short")])
    fs.commit(tx)
    report = shared_extents(fs)
    assert [c.kind for c in report.corruptions] == ["bad-reference"]


def test_aborted_clone_rows_are_not_violations(fs, client):
    """Rows inserted by an aborted transaction are unreachable garbage
    (vacuum expunges them); the checker must not flag them even though
    no vfsref row was committed for them."""
    tx = fs.begin()
    fs.write_file(tx, "/src", payload(5, "ab", 2 * CHUNK_SIZE))
    fs.commit(tx)
    tx = fs.begin()
    fs.reflink(tx, "/src", "/ghost")
    fs.abort(tx)
    raise_if_shared_extents_broken(fs)
