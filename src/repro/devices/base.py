"""The device manager interface — the routines every device registers
with the switch.

"For each device, the required interface routines are listed.  These
routines are specific to the database system, and include, for example,
code to create new tables and to commit transactions."  Our interface
is page-oriented: relations (tables, indexes) are named sequences of
8 KB pages; the buffer cache above calls ``read_page``/``write_page``,
and the transaction manager calls ``sync_write_meta`` to force its
status file to stable storage at commit.

Simulated I/O costs are charged inside the device managers, so the
layers above stay cost-model-free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable


class DeviceManager(ABC):
    """Abstract device manager.

    Concrete managers must be safe for single-threaded use under the
    database's two-phase locking; they need no internal locking of
    their own beyond what Python provides.
    """

    #: switch-registered device name, e.g. ``"magnetic0"``.
    name: str

    #: True if the medium retains data across a simulated crash without
    #: an explicit flush (NVRAM, burned WORM blocks).
    nonvolatile: bool = False

    # -- relation lifecycle -------------------------------------------

    @abstractmethod
    def create_relation(self, relname: str) -> None:
        """Create an empty relation.  Idempotence is an error — the
        catalog guarantees uniqueness."""

    @abstractmethod
    def drop_relation(self, relname: str) -> None:
        """Remove a relation and free its storage (on WORM media the
        blocks are orphaned, not reclaimed)."""

    @abstractmethod
    def relation_exists(self, relname: str) -> bool: ...

    @abstractmethod
    def list_relations(self) -> list[str]: ...

    @abstractmethod
    def nblocks(self, relname: str) -> int:
        """Number of pages currently allocated to the relation."""

    # -- page I/O -------------------------------------------------------

    @abstractmethod
    def extend(self, relname: str) -> int:
        """Allocate one new zeroed page at the end of the relation and
        return its page number.  Allocation is a metadata operation; no
        data transfer is charged until the page is written."""

    @abstractmethod
    def read_page(self, relname: str, pageno: int) -> bytes:
        """Read one page, charging simulated I/O cost."""

    def read_pages(self, relname: str, start: int, count: int) -> list[bytes]:
        """Read ``count`` consecutive pages starting at ``start`` in one
        device operation — the sequential-I/O fast path used by the
        buffer cache's read-ahead.  Managers whose cost model rewards
        contiguity (magnetic disk) override this to charge one
        positioning plus a contiguous transfer; the default simply loops
        ``read_page``, so every manager supports the interface."""
        if count < 0:
            raise ValueError(f"negative page count {count}")
        return [self.read_page(relname, start + i) for i in range(count)]

    @abstractmethod
    def write_page(self, relname: str, pageno: int, data: bytes) -> None:
        """Write one page durably-on-medium, charging simulated cost."""

    def write_pages(self, relname: str, start: int,
                    datas: list[bytes]) -> None:
        """Write ``len(datas)`` consecutive pages starting at ``start``
        in one device operation — the write-side twin of ``read_pages``,
        used by the buffer cache's coalesced commit-time flush.  Managers
        whose cost model rewards contiguity (magnetic disk) override this
        to charge one positioning plus a contiguous transfer; the default
        simply loops ``write_page``, so every manager supports the
        interface."""
        for i, data in enumerate(datas):
            self.write_page(relname, start + i, data)

    def rename_relation(self, src: str, dst: str) -> None:
        """Atomically-as-possible replace relation ``dst`` with ``src``
        (the vacuum cleaner's compacted-rewrite swap).  If ``src`` is
        already gone but ``dst`` exists, the rename is treated as
        complete — crash-recovery replay depends on this idempotence.

        The default implementation copies pages; file-backed managers
        override with a true atomic rename."""
        if not self.relation_exists(src):
            if self.relation_exists(dst):
                return  # a crashed rename that already completed
            from repro.errors import DeviceError
            raise DeviceError(f"no relation {src!r} on {self.name}")
        if self.relation_exists(dst):
            self.drop_relation(dst)
        self.create_relation(dst)
        for pageno in range(self.nblocks(src)):
            self.extend(dst)
            self.write_page(dst, pageno, self.read_page(src, pageno))
        self.drop_relation(src)

    # -- durability ------------------------------------------------------

    @abstractmethod
    def flush(self) -> None:
        """Force any device-private caches to stable storage."""

    @abstractmethod
    def sync_write_meta(self, tag: str, data: bytes) -> None:
        """Durably write a small metadata blob (the transaction status
        file lives here on the root device).  Must be crash-safe."""

    @abstractmethod
    def read_meta(self, tag: str) -> bytes | None:
        """Read back a metadata blob, or None if absent."""

    def meta_tags(self) -> list[str]:
        """Every metadata tag with a stored blob, sorted.  Replication's
        base backup (:mod:`repro.replica`) copies a device relation by
        relation and meta by meta; managers that support being cloned
        override this."""
        raise NotImplementedError(
            f"{type(self).__name__} does not enumerate metadata tags")

    def sync_append_meta(self, tag: str, data: bytes) -> None:
        """Durably append to a metadata blob (the transaction status
        file is append-only).  Default implementation read-modify-writes;
        managers with real backing files override with a true append."""
        current = self.read_meta(tag) or b""
        self.sync_write_meta(tag, current + data)

    # -- lifecycle -------------------------------------------------------

    @abstractmethod
    def close(self) -> None: ...

    def simulate_crash(self) -> None:
        """Discard volatile device state, as a power failure would.
        Default: nothing is volatile."""

    def rebind_clock(self, clock) -> None:
        """Attach the device to a new simulated clock.  Non-volatile
        devices (NVRAM, WORM, tape) outlive the database session that
        created them; when a database is reopened, its surviving device
        instances charge their costs to the new session's clock.

        Adoption also zeroes the session counters: a metric spans
        exactly one Database session (the reset rule in
        :mod:`repro.obs.registry`), so a device carried across a
        reopen must not leak the previous session's operation counts
        into the new one.  Media state (pages, burned blocks, head and
        tape positions) is physical and survives."""
        self.clock = clock
        stats = getattr(self, "stats", None)
        if stats is not None:
            self.stats = type(stats)()
        for attr in ("disk", "staging_disk"):
            model = getattr(self, attr, None)
            if model is not None:
                model.clock = clock
                model.stats = type(model.stats)()

    # -- helpers ---------------------------------------------------------

    def describe(self) -> dict[str, object]:
        """Human-readable description for the switch listing."""
        return {"name": self.name, "type": type(self).__name__,
                "nonvolatile": self.nonvolatile}

    @staticmethod
    def _check_page(data: bytes) -> None:
        from repro.db.page import PAGE_SIZE
        if len(data) != PAGE_SIZE:
            raise ValueError(f"page write must be {PAGE_SIZE} bytes, got {len(data)}")

    @staticmethod
    def _validate_relname(relname: str) -> None:
        if not relname or any(c in relname for c in "/\\\0"):
            raise ValueError(f"bad relation name {relname!r}")


def total_pages(dev: DeviceManager, relnames: Iterable[str]) -> int:
    """Sum of allocated pages across ``relnames`` (admin helper)."""
    return sum(dev.nblocks(r) for r in relnames)
