"""The POSTGRES device manager switch and device managers.

"Based on the bdevsw switch in UNIX, the POSTGRES device manager switch
registers the devices that are available to the database system."  Each
device manager implements a small set of interface routines; accesses
to data are location-transparent — the database manager finds the
device storing the data and issues calls through the switch.

Provided managers (POSTGRES 4.0.1 supported the first three; the paper
says the Metrum tape jukebox is "in the near future", so we build it
too):

- :class:`MemDisk` — non-volatile RAM.
- :class:`MagneticDisk` — magnetic disk (file-backed, RZ58 cost model).
- :class:`SonyJukebox` — the 327 GB Sony WORM optical jukebox with its
  magnetic-disk staging cache.
- :class:`TapeJukebox` — a Metrum VHS-form-factor tape jukebox.
"""

from repro.devices.base import DeviceManager
from repro.devices.switch import DeviceSwitch
from repro.devices.memdisk import MemDisk
from repro.devices.magnetic import MagneticDisk
from repro.devices.jukebox import SonyJukebox
from repro.devices.tape import TapeJukebox

__all__ = [
    "DeviceManager",
    "DeviceSwitch",
    "MemDisk",
    "MagneticDisk",
    "SonyJukebox",
    "TapeJukebox",
]
