"""Non-volatile RAM device manager.

POSTGRES 4.0.1 "supports storage on non-volatile RAM, magnetic disk,
and a 327 GByte Sony optical disk WORM jukebox"; the NVRAM manager
"operates on raw devices".  This manager keeps pages in memory and
charges only a bus-copy cost per transfer.  Because the medium is
battery-backed, its contents survive a *simulated* crash (the crash
model is a power failure of the volatile parts of the machine, which
NVRAM by definition survives).  It does not survive real process exit;
durability tests use :class:`repro.devices.magnetic.MagneticDisk`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.page import PAGE_SIZE
from repro.devices.base import DeviceManager
from repro.errors import DeviceError, DeviceFullError
from repro.obs.registry import MetricSpec
from repro.sim.clock import SimClock

METRICS = (
    MetricSpec("memdisk.reads", "counter", "pages",
               "Pages copied out of non-volatile RAM (batched reads "
               "count per page).",
               "repro.devices.memdisk", ("device",)),
    MetricSpec("memdisk.writes", "counter", "pages",
               "Pages copied into non-volatile RAM (batched writes "
               "count per page).",
               "repro.devices.memdisk", ("device",)),
)


@dataclass
class MemDiskStats:
    reads: int = 0
    writes: int = 0


class MemDisk(DeviceManager):
    """RAM-backed device manager with a DMA-copy cost model."""

    nonvolatile = True

    def __init__(self, name: str, clock: SimClock,
                 capacity_bytes: int = 64 * 1024 * 1024,
                 dma_rate_bps: float = 20_000_000.0) -> None:
        self.name = name
        self.clock = clock
        self.capacity_bytes = capacity_bytes
        self.dma_rate_bps = dma_rate_bps
        self.stats = MemDiskStats()
        self._relations: dict[str, list[bytes]] = {}
        self._meta: dict[str, bytes] = {}
        self._used = 0

    # -- relation lifecycle -------------------------------------------

    def create_relation(self, relname: str) -> None:
        self._validate_relname(relname)
        if relname in self._relations:
            raise DeviceError(f"relation {relname!r} already exists on {self.name}")
        self._relations[relname] = []

    def drop_relation(self, relname: str) -> None:
        pages = self._relations.pop(relname, None)
        if pages is None:
            raise DeviceError(f"no relation {relname!r} on {self.name}")
        self._used -= len(pages) * PAGE_SIZE

    def rename_relation(self, src: str, dst: str) -> None:
        """In-memory swap: a dict move, trivially atomic."""
        if src not in self._relations:
            if dst in self._relations:
                return
            raise DeviceError(f"no relation {src!r} on {self.name}")
        if dst in self._relations:
            self.drop_relation(dst)
        self._relations[dst] = self._relations.pop(src)

    def relation_exists(self, relname: str) -> bool:
        return relname in self._relations

    def list_relations(self) -> list[str]:
        return list(self._relations)

    def nblocks(self, relname: str) -> int:
        return len(self._pages(relname))

    def _pages(self, relname: str) -> list[bytes]:
        try:
            return self._relations[relname]
        except KeyError:
            raise DeviceError(f"no relation {relname!r} on {self.name}") from None

    # -- page I/O -------------------------------------------------------

    def extend(self, relname: str) -> int:
        pages = self._pages(relname)
        if self._used + PAGE_SIZE > self.capacity_bytes:
            raise DeviceFullError(f"NVRAM device {self.name} is full")
        pages.append(bytes(PAGE_SIZE))
        self._used += PAGE_SIZE
        return len(pages) - 1

    def _charge(self) -> None:
        self.clock.advance(PAGE_SIZE / self.dma_rate_bps)

    def read_page(self, relname: str, pageno: int) -> bytes:
        pages = self._pages(relname)
        if not (0 <= pageno < len(pages)):
            raise DeviceError(f"{relname!r} page {pageno} out of range")
        self._charge()
        self.stats.reads += 1
        return pages[pageno]

    def read_pages(self, relname: str, start: int, count: int) -> list[bytes]:
        """One DMA burst for the whole run — same bytes, one charge call."""
        if count < 0:
            raise ValueError(f"negative page count {count}")
        pages = self._pages(relname)
        if not (0 <= start and start + count <= len(pages)):
            raise DeviceError(f"{relname!r} pages [{start}, {start + count}) out of range")
        self.clock.advance(count * PAGE_SIZE / self.dma_rate_bps)
        self.stats.reads += count
        return list(pages[start:start + count])

    def write_page(self, relname: str, pageno: int, data: bytes) -> None:
        self._check_page(data)
        pages = self._pages(relname)
        if not (0 <= pageno < len(pages)):
            raise DeviceError(f"{relname!r} page {pageno} out of range")
        self._charge()
        self.stats.writes += 1
        pages[pageno] = bytes(data)

    def write_pages(self, relname: str, start: int,
                    datas: list[bytes]) -> None:
        """One DMA burst for the whole run — same bytes, one charge call."""
        count = len(datas)
        if count == 0:
            return
        for data in datas:
            self._check_page(data)
        pages = self._pages(relname)
        if not (0 <= start and start + count <= len(pages)):
            raise DeviceError(f"{relname!r} pages [{start}, {start + count}) out of range")
        self.clock.advance(count * PAGE_SIZE / self.dma_rate_bps)
        self.stats.writes += count
        for i, data in enumerate(datas):
            pages[start + i] = bytes(data)

    # -- durability ------------------------------------------------------

    def flush(self) -> None:
        """NVRAM needs no flushing."""

    def sync_write_meta(self, tag: str, data: bytes) -> None:
        self.clock.advance(len(data) / self.dma_rate_bps)
        self._meta[tag] = bytes(data)

    def read_meta(self, tag: str) -> bytes | None:
        return self._meta.get(tag)

    def meta_tags(self) -> list[str]:
        return sorted(self._meta)

    def close(self) -> None:
        """Nothing to release."""

    # NVRAM survives the simulated power failure: inherit the no-op
    # simulate_crash from the base class.
