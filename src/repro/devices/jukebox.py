"""Sony WORM optical jukebox device manager.

The paper: "Due to extremely high setup costs (many seconds to load an
optical platter) and relatively low transfer rates, using the jukebox
directly for every transfer would be very slow.  Instead, the Sony
jukebox device manager caches recently-used blocks on magnetic disk.
The size of this cache is tunable, and defaults to 10 MBytes."  And on
layout: "The Sony jukebox device manager allocates tables in units of
extents, where an extent is a collection of physically contiguous
8 KByte data pages … defaults to 16 pages."

Model:

- a set of WORM platters, each a write-once array of blocks (a block,
  once burned, can never be rewritten — :class:`WormViolationError`);
- a small number of drives; touching a platter that is not loaded
  charges a multi-second load;
- a magnetic-disk staging cache (default 10 MB) holding recently used
  and dirty pages; logical page rewrites stay in the staging cache and
  are burned to *fresh* blocks on destage, leaving a revision chain on
  the platter (the Cached-WORM technique of [QUIN91], which POSTGRES'
  Sony manager followed).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.db.page import PAGE_SIZE
from repro.devices.base import DeviceManager
from repro.errors import DeviceError, DeviceFullError, WormViolationError
from repro.obs.registry import MetricSpec
from repro.sim.clock import SimClock
from repro.sim.disk import DiskGeometry, DiskModel, RZ58

JUKEBOX_EXTENT_PAGES = 16
"""Default extent size: 16 physically contiguous pages."""

METRICS = (
    MetricSpec("jukebox.platter_loads", "counter", "ops",
               "Times a drive had to load an optical platter "
               "(multi-second setup cost each).",
               "repro.devices.jukebox", ("device",)),
    MetricSpec("jukebox.burns", "counter", "pages",
               "Pages burned to write-once optical blocks on destage.",
               "repro.devices.jukebox", ("device",)),
    MetricSpec("jukebox.optical_reads", "counter", "pages",
               "Pages read from the platter (staging-cache misses).",
               "repro.devices.jukebox", ("device",)),
    MetricSpec("jukebox.staging_hits", "counter", "pages",
               "Page reads served by the magnetic staging cache.",
               "repro.devices.jukebox", ("device",)),
    MetricSpec("jukebox.staging_misses", "counter", "pages",
               "Page reads that missed the staging cache and went to "
               "the platter.",
               "repro.devices.jukebox", ("device",)),
)


@dataclass(frozen=True)
class JukeboxParams:
    """Cost/geometry parameters for the jukebox."""

    n_platters: int = 50
    platter_capacity_bytes: int = 6_550_000_000  # ≈ 327 GB / 50 platters
    n_drives: int = 2
    platter_load_s: float = 8.0
    seek_s: float = 0.15
    transfer_rate_bps: float = 600_000.0
    staging_cache_bytes: int = 10_000_000
    extent_pages: int = JUKEBOX_EXTENT_PAGES

    @property
    def platter_blocks(self) -> int:
        return self.platter_capacity_bytes // PAGE_SIZE


@dataclass
class JukeboxStats:
    platter_loads: int = 0
    burns: int = 0
    optical_reads: int = 0
    staging_hits: int = 0
    staging_misses: int = 0


class _Platter:
    """One write-once optical platter."""

    def __init__(self, index: int, nblocks: int) -> None:
        self.index = index
        self.nblocks = nblocks
        self.blocks: dict[int, bytes] = {}
        self.next_free = 0

    def burn(self, block: int, data: bytes) -> None:
        if block in self.blocks:
            raise WormViolationError(
                f"platter {self.index} block {block} already burned (WORM)")
        self.blocks[block] = bytes(data)

    def read(self, block: int) -> bytes:
        try:
            return self.blocks[block]
        except KeyError:
            raise DeviceError(
                f"platter {self.index} block {block} never burned") from None

    def allocate(self, count: int) -> int:
        if self.next_free + count > self.nblocks:
            raise DeviceFullError(f"platter {self.index} is full")
        start = self.next_free
        self.next_free += count
        return start


@dataclass
class _RelState:
    npages: int = 0
    # page number -> (platter index, block) of the latest burned version;
    # pages never destaged have no entry.
    burned: dict[int, tuple[int, int]] = field(default_factory=dict)
    # page number -> number of versions burned (WORM revision chain length)
    burn_counts: dict[int, int] = field(default_factory=dict)
    # extents reserved on platters: list of (platter, start_block); used
    # for contiguous burns of fresh pages.
    extents: list[tuple[int, int]] = field(default_factory=list)
    extent_used: int = 0  # blocks used in the last extent


class SonyJukebox(DeviceManager):
    """WORM optical jukebox with a magnetic staging cache."""

    nonvolatile = True  # burned blocks survive anything

    def __init__(self, name: str, clock: SimClock,
                 params: JukeboxParams | None = None,
                 staging_geometry: DiskGeometry = RZ58) -> None:
        self.name = name
        self.clock = clock
        self.params = params or JukeboxParams()
        self.stats = JukeboxStats()
        self.staging_disk = DiskModel(clock=clock, geometry=staging_geometry)
        self._platters = [
            _Platter(i, self.params.platter_blocks)
            for i in range(self.params.n_platters)
        ]
        self._loaded: OrderedDict[int, None] = OrderedDict()  # platter LRU in drives
        self._rels: dict[str, _RelState] = {}
        self._meta: dict[str, bytes] = {}
        # Staging cache: (relname, pageno) -> [data, dirty]
        self._staging: OrderedDict[tuple[str, int], list] = OrderedDict()
        self._staging_used = 0
        self._next_platter = 0
        self._staging_block_cursor = 0

    # -- cost helpers ------------------------------------------------------

    def _load_platter(self, index: int) -> None:
        if index in self._loaded:
            self._loaded.move_to_end(index)
            return
        if len(self._loaded) >= self.params.n_drives:
            self._loaded.popitem(last=False)
        self._loaded[index] = None
        self.stats.platter_loads += 1
        self.clock.advance(self.params.platter_load_s)

    def _optical_io(self, nbytes: int) -> None:
        self.clock.advance(self.params.seek_s + nbytes / self.params.transfer_rate_bps)

    def _staging_io(self, nbytes: int = PAGE_SIZE) -> None:
        # Staging cache I/O is charged as a short-seek magnetic access.
        block = self._staging_block_cursor
        self._staging_block_cursor = (self._staging_block_cursor + 1) % 4096
        self.staging_disk.write_block(block, nbytes)

    # -- staging cache -------------------------------------------------------

    def _stage(self, relname: str, pageno: int, data: bytes, dirty: bool) -> None:
        key = (relname, pageno)
        if key in self._staging:
            entry = self._staging[key]
            entry[0] = bytes(data)
            entry[1] = entry[1] or dirty
            self._staging.move_to_end(key)
            return
        while (self._staging_used + PAGE_SIZE > self.params.staging_cache_bytes
               and self._staging):
            self._evict_one()
        self._staging[key] = [bytes(data), dirty]
        self._staging_used += PAGE_SIZE

    def _evict_one(self) -> None:
        (relname, pageno), (data, dirty) = self._staging.popitem(last=False)
        self._staging_used -= PAGE_SIZE
        if dirty:
            self._burn(relname, pageno, data)

    def _burn(self, relname: str, pageno: int, data: bytes) -> None:
        """Burn the latest version of a page to fresh WORM blocks."""
        st = self._rels[relname]
        platter_idx, block = self._allocate_block(st)
        self._load_platter(platter_idx)
        self._optical_io(PAGE_SIZE)
        self._platters[platter_idx].burn(block, data)
        st.burned[pageno] = (platter_idx, block)
        st.burn_counts[pageno] = st.burn_counts.get(pageno, 0) + 1
        self.stats.burns += 1

    def _allocate_block(self, st: _RelState) -> tuple[int, int]:
        ext = self.params.extent_pages
        if not st.extents or st.extent_used >= ext:
            platter = self._platters[self._next_platter]
            try:
                start = platter.allocate(ext)
            except DeviceFullError:
                self._next_platter += 1
                if self._next_platter >= len(self._platters):
                    raise DeviceFullError(f"jukebox {self.name} is full") from None
                platter = self._platters[self._next_platter]
                start = platter.allocate(ext)
            st.extents.append((platter.index, start))
            st.extent_used = 0
        platter_idx, start = st.extents[-1]
        block = start + st.extent_used
        st.extent_used += 1
        return platter_idx, block

    # -- DeviceManager interface ----------------------------------------------

    def create_relation(self, relname: str) -> None:
        self._validate_relname(relname)
        if relname in self._rels:
            raise DeviceError(f"relation {relname!r} already exists on {self.name}")
        self._rels[relname] = _RelState()

    def drop_relation(self, relname: str) -> None:
        st = self._rels.pop(relname, None)
        if st is None:
            raise DeviceError(f"no relation {relname!r} on {self.name}")
        # WORM blocks cannot be reclaimed; drop the staging entries only.
        for key in [k for k in self._staging if k[0] == relname]:
            del self._staging[key]
            self._staging_used -= PAGE_SIZE

    def relation_exists(self, relname: str) -> bool:
        return relname in self._rels

    def list_relations(self) -> list[str]:
        return list(self._rels)

    def nblocks(self, relname: str) -> int:
        return self._state(relname).npages

    def _state(self, relname: str) -> _RelState:
        try:
            return self._rels[relname]
        except KeyError:
            raise DeviceError(f"no relation {relname!r} on {self.name}") from None

    def extend(self, relname: str) -> int:
        st = self._state(relname)
        pageno = st.npages
        st.npages += 1
        self._stage(relname, pageno, bytes(PAGE_SIZE), dirty=False)
        return pageno

    def read_page(self, relname: str, pageno: int) -> bytes:
        st = self._state(relname)
        if not (0 <= pageno < st.npages):
            raise DeviceError(f"{relname!r} page {pageno} out of range")
        key = (relname, pageno)
        entry = self._staging.get(key)
        if entry is not None:
            self.stats.staging_hits += 1
            self._staging.move_to_end(key)
            self.staging_disk.read_block(self._staging_block_cursor)
            return entry[0]
        self.stats.staging_misses += 1
        loc = st.burned.get(pageno)
        if loc is None:
            # Extended but never written nor destaged, and fell out of
            # staging: logically a zero page.
            return bytes(PAGE_SIZE)
        platter_idx, block = loc
        self._load_platter(platter_idx)
        self._optical_io(PAGE_SIZE)
        self.stats.optical_reads += 1
        data = self._platters[platter_idx].read(block)
        self._stage(relname, pageno, data, dirty=False)
        return data

    def write_page(self, relname: str, pageno: int, data: bytes) -> None:
        self._check_page(data)
        st = self._state(relname)
        if not (0 <= pageno < st.npages):
            raise DeviceError(f"{relname!r} page {pageno} out of range")
        self._staging_io()
        self._stage(relname, pageno, data, dirty=True)

    def flush(self) -> None:
        """Destage every dirty staged page to the platters."""
        for key in list(self._staging):
            entry = self._staging[key]
            if entry[1]:
                self._burn(key[0], key[1], entry[0])
                entry[1] = False

    def sync_write_meta(self, tag: str, data: bytes) -> None:
        self._staging_io(max(512, min(len(data), PAGE_SIZE)))
        self._meta[tag] = bytes(data)

    def read_meta(self, tag: str) -> bytes | None:
        return self._meta.get(tag)

    def meta_tags(self) -> list[str]:
        return sorted(self._meta)

    def close(self) -> None:
        self.flush()

    def simulate_crash(self) -> None:
        """The magnetic staging cache is assumed battery-protected in
        POSTGRES deployments; we flush dirty pages on crash so burned
        state is consistent (a conservative model)."""
        self.flush()

    # -- introspection ---------------------------------------------------------

    def revision_count(self, relname: str, pageno: int) -> int:
        """Number of burned versions of a logical page (WORM revision
        chain length) — verifies that rewrites burn fresh blocks."""
        return self._state(relname).burn_counts.get(pageno, 0)
