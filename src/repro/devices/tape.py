"""Metrum VHS-form-factor tape jukebox device manager.

"In the near future, a 9 TByte Metrum VHS-form factor tape jukebox will
also be supported."  The paper's migration discussion wants files moved
"from fast, expensive storage like magnetic disk to slower, cheaper
storage, such as magnetic tape", so this manager exists as the cold
tier for :mod:`repro.core.migration` and as a second exercise of the
device-manager switch.

Model: a library of cartridges, one drive, serpentine linear media.
Touching an unloaded cartridge charges a load; every access charges a
wind to the target position (cost proportional to distance) plus
streaming transfer.  Tape is rewriteable (unlike the WORM jukebox) but
brutally slow for random access — which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.page import PAGE_SIZE
from repro.devices.base import DeviceManager
from repro.errors import DeviceError, DeviceFullError
from repro.obs.registry import MetricSpec
from repro.sim.clock import SimClock

METRICS = (
    MetricSpec("tape.loads", "counter", "ops",
               "Cartridge loads into the single drive.",
               "repro.devices.tape", ("device",)),
    MetricSpec("tape.reads", "counter", "pages",
               "Pages streamed off tape.",
               "repro.devices.tape", ("device",)),
    MetricSpec("tape.writes", "counter", "pages",
               "Pages streamed onto tape.",
               "repro.devices.tape", ("device",)),
    MetricSpec("tape.wind_seconds", "counter", "seconds",
               "Simulated seconds spent winding to target positions.",
               "repro.devices.tape", ("device",)),
)


@dataclass(frozen=True)
class TapeParams:
    n_cartridges: int = 600
    cartridge_capacity_bytes: int = 15_000_000_000  # ≈ 9 TB / 600
    cartridge_load_s: float = 25.0
    wind_rate_bps: float = 80_000_000.0  # high-speed search
    transfer_rate_bps: float = 1_000_000.0

    @property
    def cartridge_blocks(self) -> int:
        return self.cartridge_capacity_bytes // PAGE_SIZE


@dataclass
class TapeStats:
    loads: int = 0
    reads: int = 0
    writes: int = 0
    wind_seconds: float = 0.0


@dataclass
class _RelState:
    npages: int = 0
    # page number -> (cartridge, block)
    location: dict[int, tuple[int, int]] = field(default_factory=dict)


class TapeJukebox(DeviceManager):
    """Sequential-media tape library."""

    nonvolatile = True

    def __init__(self, name: str, clock: SimClock,
                 params: TapeParams | None = None) -> None:
        self.name = name
        self.clock = clock
        self.params = params or TapeParams()
        self.stats = TapeStats()
        self._cartridges: list[dict[int, bytes]] = [
            {} for _ in range(self.params.n_cartridges)]
        self._next_free: list[int] = [0] * self.params.n_cartridges
        self._loaded: int | None = None
        self._head_block = 0
        self._rels: dict[str, _RelState] = {}
        self._meta: dict[str, bytes] = {}
        self._alloc_cartridge = 0

    # -- cost helpers -----------------------------------------------------

    def _position(self, cartridge: int, block: int) -> None:
        if self._loaded != cartridge:
            self._loaded = cartridge
            self._head_block = 0
            self.stats.loads += 1
            self.clock.advance(self.params.cartridge_load_s)
        distance_bytes = abs(block - self._head_block) * PAGE_SIZE
        wind = distance_bytes / self.params.wind_rate_bps
        self.stats.wind_seconds += wind
        self.clock.advance(wind)
        self._head_block = block

    def _transfer(self, nbytes: int) -> None:
        self.clock.advance(nbytes / self.params.transfer_rate_bps)
        self._head_block += max(1, nbytes // PAGE_SIZE)

    def _allocate(self) -> tuple[int, int]:
        p = self.params
        while self._alloc_cartridge < p.n_cartridges:
            c = self._alloc_cartridge
            if self._next_free[c] < p.cartridge_blocks:
                block = self._next_free[c]
                self._next_free[c] += 1
                return c, block
            self._alloc_cartridge += 1
        raise DeviceFullError(f"tape library {self.name} is full")

    # -- DeviceManager interface ---------------------------------------------

    def create_relation(self, relname: str) -> None:
        self._validate_relname(relname)
        if relname in self._rels:
            raise DeviceError(f"relation {relname!r} already exists on {self.name}")
        self._rels[relname] = _RelState()

    def drop_relation(self, relname: str) -> None:
        st = self._rels.pop(relname, None)
        if st is None:
            raise DeviceError(f"no relation {relname!r} on {self.name}")
        for cartridge, block in st.location.values():
            self._cartridges[cartridge].pop(block, None)

    def relation_exists(self, relname: str) -> bool:
        return relname in self._rels

    def list_relations(self) -> list[str]:
        return list(self._rels)

    def _state(self, relname: str) -> _RelState:
        try:
            return self._rels[relname]
        except KeyError:
            raise DeviceError(f"no relation {relname!r} on {self.name}") from None

    def nblocks(self, relname: str) -> int:
        return self._state(relname).npages

    def extend(self, relname: str) -> int:
        st = self._state(relname)
        pageno = st.npages
        st.npages += 1
        return pageno

    def read_page(self, relname: str, pageno: int) -> bytes:
        st = self._state(relname)
        if not (0 <= pageno < st.npages):
            raise DeviceError(f"{relname!r} page {pageno} out of range")
        loc = st.location.get(pageno)
        if loc is None:
            return bytes(PAGE_SIZE)
        cartridge, block = loc
        self._position(cartridge, block)
        self._transfer(PAGE_SIZE)
        self.stats.reads += 1
        return self._cartridges[cartridge][block]

    def write_page(self, relname: str, pageno: int, data: bytes) -> None:
        self._check_page(data)
        st = self._state(relname)
        if not (0 <= pageno < st.npages):
            raise DeviceError(f"{relname!r} page {pageno} out of range")
        loc = st.location.get(pageno)
        if loc is None:
            loc = self._allocate()
            st.location[pageno] = loc
        cartridge, block = loc
        self._position(cartridge, block)
        self._transfer(PAGE_SIZE)
        self.stats.writes += 1
        self._cartridges[cartridge][block] = bytes(data)

    def flush(self) -> None:
        """Streaming writes land on medium immediately."""

    def sync_write_meta(self, tag: str, data: bytes) -> None:
        self._meta[tag] = bytes(data)

    def read_meta(self, tag: str) -> bytes | None:
        return self._meta.get(tag)

    def meta_tags(self) -> list[str]:
        return sorted(self._meta)

    def close(self) -> None:
        """Nothing to release."""
