"""Magnetic disk device manager.

"In the current system, the magnetic disk device manager uses the
underlying UNIX file system to store data" — and therefore inherits the
FFS cylinder-group layout policy, under which "data for a single file
are kept close together".  The manager reproduces that policy in its
cost model: each relation's pages are allocated in contiguous
*extents* carved from a device-wide cursor, so pages within one
relation are (mostly) physically sequential while two relations growing
at the same time land in alternating regions of the disk.  That is
exactly the layout that makes Inversion's file creation slow (B-tree
and heap writes bounce the head between regions — Figure 3) while its
sequential reads stay fast (Table 3).

Pages are persisted in one real file per relation, so databases survive
process restarts; simulated I/O cost is charged against a
:class:`~repro.sim.disk.DiskModel` at the allocated block addresses.

Block address 0 up to ``meta_region_blocks`` is reserved for small
metadata blobs — the transaction status file lives there, which is why
every commit seeks to the front of the disk.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.db.page import PAGE_SIZE
from repro.devices.base import DeviceManager
from repro.errors import DeviceError, DeviceFullError
from repro.sim.clock import SimClock
from repro.sim.disk import DiskGeometry, DiskModel, RZ58

EXTENT_PAGES = 64
"""Pages per allocation extent — the contiguity unit (an FFS-style
cylinder-group chunk)."""


@dataclass
class _RelState:
    npages: int
    extents: list[int]  # starting block address of each extent


class MagneticDisk(DeviceManager):
    """File-backed magnetic disk with an RZ58-calibrated cost model."""

    nonvolatile = False

    def __init__(self, name: str, clock: SimClock, directory: str,
                 geometry: DiskGeometry = RZ58,
                 meta_region_blocks: int = 64) -> None:
        self.name = name
        self.clock = clock
        self.directory = directory
        self.disk = DiskModel(clock=clock, geometry=geometry)
        self.meta_region_blocks = meta_region_blocks
        os.makedirs(directory, exist_ok=True)
        self._files: dict[str, object] = {}
        self._rels: dict[str, _RelState] = {}
        self._next_block = meta_region_blocks
        self._meta_slots: dict[str, int] = {}
        self._load_allocmap()

    # -- allocation map persistence -------------------------------------

    def _allocmap_path(self) -> str:
        return os.path.join(self.directory, "_alloc.json")

    def _load_allocmap(self) -> None:
        path = self._allocmap_path()
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as f:
                data = json.load(f)
            self._next_block = data["next_block"]
            self._meta_slots = data.get("meta_slots", {})
            for relname, info in data["relations"].items():
                st = _RelState(info["npages"], info["extents"])
                # The map is written lazily; after a crash the backing
                # file is the truth about how far the relation grew.
                relpath = self._relpath(relname)
                if not os.path.exists(relpath):
                    # create_relation makes the backing file before the
                    # map entry, so a mapped relation with no file means
                    # a drop/rename crashed mid-way: forget the entry.
                    continue
                on_disk = os.path.getsize(relpath) // PAGE_SIZE
                while on_disk > st.npages:
                    if len(st.extents) <= st.npages // EXTENT_PAGES:
                        st.extents.append(self._next_block)
                        self._next_block += EXTENT_PAGES
                    st.npages += 1
                self._rels[relname] = st
        else:
            # Rebuild from .rel files if the map is missing (stale-map
            # crash path): assign fresh sequential extents; only the
            # cost model is affected, never the data.
            for fname in sorted(os.listdir(self.directory)):
                if not fname.endswith(".rel"):
                    continue
                relname = fname[:-4]
                size = os.path.getsize(os.path.join(self.directory, fname))
                npages = size // PAGE_SIZE
                extents = []
                for _ in range(0, max(npages, 1), EXTENT_PAGES):
                    extents.append(self._next_block)
                    self._next_block += EXTENT_PAGES
                self._rels[relname] = _RelState(npages, extents)

    def _save_allocmap(self) -> None:
        data = {
            "next_block": self._next_block,
            "meta_slots": self._meta_slots,
            "relations": {
                name: {"npages": st.npages, "extents": st.extents}
                for name, st in self._rels.items()
            },
        }
        tmp = self._allocmap_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(data, f)
        os.replace(tmp, self._allocmap_path())

    # -- relation files ---------------------------------------------------

    def _relpath(self, relname: str) -> str:
        return os.path.join(self.directory, relname + ".rel")

    def _file(self, relname: str):
        f = self._files.get(relname)
        if f is None:
            path = self._relpath(relname)
            mode = "r+b" if os.path.exists(path) else "w+b"
            f = open(path, mode)
            self._files[relname] = f
        return f

    def _state(self, relname: str) -> _RelState:
        try:
            return self._rels[relname]
        except KeyError:
            raise DeviceError(f"no relation {relname!r} on {self.name}") from None

    def _block_of(self, st: _RelState, pageno: int) -> int:
        return st.extents[pageno // EXTENT_PAGES] + (pageno % EXTENT_PAGES)

    # -- DeviceManager interface -----------------------------------------

    def create_relation(self, relname: str) -> None:
        self._validate_relname(relname)
        if relname in self._rels:
            raise DeviceError(f"relation {relname!r} already exists on {self.name}")
        self._rels[relname] = _RelState(0, [])
        self._file(relname)  # create the backing file now
        self._save_allocmap()

    def drop_relation(self, relname: str) -> None:
        st = self._rels.pop(relname, None)
        if st is None:
            raise DeviceError(f"no relation {relname!r} on {self.name}")
        f = self._files.pop(relname, None)
        if f is not None:
            f.close()
        path = self._relpath(relname)
        if os.path.exists(path):
            os.remove(path)
        self._save_allocmap()

    def rename_relation(self, src: str, dst: str) -> None:
        """Atomic swap via ``os.replace`` on the backing files.  After a
        crash either the old or the new contents of ``dst`` are present,
        never a mixture."""
        self._validate_relname(dst)
        st = self._rels.get(src)
        if st is None or not os.path.exists(self._relpath(src)):
            if dst in self._rels or os.path.exists(self._relpath(dst)):
                self._rels.pop(src, None)
                self._save_allocmap()
                return
            raise DeviceError(f"no relation {src!r} on {self.name}")
        for name in (src, dst):
            f = self._files.pop(name, None)
            if f is not None:
                f.close()
        os.replace(self._relpath(src), self._relpath(dst))
        del self._rels[src]
        self._rels[dst] = st
        self._save_allocmap()

    def relation_exists(self, relname: str) -> bool:
        return relname in self._rels

    def list_relations(self) -> list[str]:
        return list(self._rels)

    def nblocks(self, relname: str) -> int:
        return self._state(relname).npages

    def extend(self, relname: str) -> int:
        st = self._state(relname)
        if st.npages % EXTENT_PAGES == 0:
            # Need a new extent.
            if self._next_block + EXTENT_PAGES > self.disk.geometry.total_blocks:
                raise DeviceFullError(f"device {self.name} is full")
            st.extents.append(self._next_block)
            self._next_block += EXTENT_PAGES
            self._save_allocmap()
        pageno = st.npages
        st.npages += 1
        return pageno

    def read_page(self, relname: str, pageno: int) -> bytes:
        st = self._state(relname)
        if not (0 <= pageno < st.npages):
            raise DeviceError(f"{relname!r} page {pageno} out of range ({st.npages})")
        self.disk.read_block(self._block_of(st, pageno))
        f = self._file(relname)
        f.seek(pageno * PAGE_SIZE)
        data = f.read(PAGE_SIZE)
        if len(data) < PAGE_SIZE:
            # Allocated but never written: zero page.
            data = data + bytes(PAGE_SIZE - len(data))
        return data

    def read_pages(self, relname: str, start: int, count: int) -> list[bytes]:
        """Batched sequential read: pages that are physically contiguous
        on the simulated medium (within one extent, or across adjacent
        extents) are charged as a single positioning plus one contiguous
        transfer — the fast path that makes read-ahead cheaper than
        ``count`` independent ``read_page`` calls."""
        if count < 0:
            raise ValueError(f"negative page count {count}")
        if count == 0:
            return []
        st = self._state(relname)
        if not (0 <= start and start + count <= st.npages):
            raise DeviceError(
                f"{relname!r} pages [{start}, {start + count}) out of range ({st.npages})")
        # Group the page run into physically contiguous block runs.
        run_blk = self._block_of(st, start)
        run_len = 1
        for i in range(1, count):
            blk = self._block_of(st, start + i)
            if blk == run_blk + run_len:
                run_len += 1
            else:
                self.disk.read_blocks(run_blk, run_len)
                run_blk, run_len = blk, 1
        self.disk.read_blocks(run_blk, run_len)
        f = self._file(relname)
        f.seek(start * PAGE_SIZE)
        raw = f.read(count * PAGE_SIZE)
        if len(raw) < count * PAGE_SIZE:
            # Tail pages allocated but never written: zero-fill.
            raw = raw + bytes(count * PAGE_SIZE - len(raw))
        return [raw[i * PAGE_SIZE:(i + 1) * PAGE_SIZE] for i in range(count)]

    def write_page(self, relname: str, pageno: int, data: bytes) -> None:
        self._check_page(data)
        st = self._state(relname)
        if not (0 <= pageno < st.npages):
            raise DeviceError(f"{relname!r} page {pageno} out of range ({st.npages})")
        self.disk.write_block(self._block_of(st, pageno))
        f = self._file(relname)
        f.seek(pageno * PAGE_SIZE)
        f.write(data)

    def write_pages(self, relname: str, start: int,
                    datas: list[bytes]) -> None:
        """Batched sequential write: pages that are physically contiguous
        on the simulated medium are charged as a single positioning plus
        one contiguous transfer — the gathered write-behind that makes a
        coalesced commit-time flush cheaper than ``len(datas)``
        independent ``write_page`` calls."""
        count = len(datas)
        if count == 0:
            return
        for data in datas:
            self._check_page(data)
        st = self._state(relname)
        if not (0 <= start and start + count <= st.npages):
            raise DeviceError(
                f"{relname!r} pages [{start}, {start + count}) out of range ({st.npages})")
        run_blk = self._block_of(st, start)
        run_len = 1
        for i in range(1, count):
            blk = self._block_of(st, start + i)
            if blk == run_blk + run_len:
                run_len += 1
            else:
                self.disk.write_blocks(run_blk, run_len)
                run_blk, run_len = blk, 1
        self.disk.write_blocks(run_blk, run_len)
        f = self._file(relname)
        f.seek(start * PAGE_SIZE)
        f.write(b"".join(datas))

    # -- durability --------------------------------------------------------

    def flush(self) -> None:
        self.disk.flush()
        for f in self._files.values():
            f.flush()
        self._save_allocmap()

    def _meta_path(self, tag: str) -> str:
        return os.path.join(self.directory, tag + ".meta")

    def sync_write_meta(self, tag: str, data: bytes) -> None:
        # Small metadata blobs live in the reserved region at the front
        # of the disk; writing one seeks the head there and forces the
        # write — this is the per-commit cost of the status file.
        slot = self._meta_slots.setdefault(tag, len(self._meta_slots) % self.meta_region_blocks)
        nbytes = max(512, min(len(data), PAGE_SIZE))
        self.disk.write_block(slot, nbytes)
        self.disk.flush()
        tmp = self._meta_path(tag) + ".tmp"
        with open(tmp, "wb") as f:
            f.write(data)
        os.replace(tmp, self._meta_path(tag))

    def sync_append_meta(self, tag: str, data: bytes) -> None:
        # A true append: one forced block write in the metadata region.
        slot = self._meta_slots.setdefault(tag, len(self._meta_slots) % self.meta_region_blocks)
        self.disk.write_block(slot, max(512, min(len(data), PAGE_SIZE)))
        self.disk.flush()
        with open(self._meta_path(tag), "ab") as f:
            f.write(data)

    def read_meta(self, tag: str) -> bytes | None:
        path = self._meta_path(tag)
        if not os.path.exists(path):
            return None
        slot = self._meta_slots.get(tag, 0)
        size = os.path.getsize(path)
        self.disk.read_block(slot, max(512, min(size, PAGE_SIZE)))
        with open(path, "rb") as f:
            return f.read()

    def meta_tags(self) -> list[str]:
        # Scan the backing directory rather than ``_meta_slots``: the
        # slot map only learns a tag when it is written this session,
        # while a base backup must see every blob on the medium.
        return sorted(fname[:-len(".meta")]
                      for fname in os.listdir(self.directory)
                      if fname.endswith(".meta"))

    def close(self) -> None:
        self.flush()
        for f in self._files.values():
            f.close()
        self._files.clear()

    def simulate_crash(self) -> None:
        """Writes already issued through write_page are on the medium;
        only OS-level file handles are volatile."""
        for f in self._files.values():
            f.flush()  # the bytes were "on disk" the moment we charged them
            f.close()
        self._files.clear()
