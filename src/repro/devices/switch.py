"""The device manager switch.

A registry mapping device names to :class:`DeviceManager` instances.
"Accesses to data are location-transparent — the database manager finds
the device storing the data and issues calls through the device manager
switch to manipulate it."  The catalog records which device each
relation lives on; everything above resolves devices through this
switch, which is what lets an Inversion file live on magnetic disk, in
NVRAM, or in the optical jukebox with identical code paths.
"""

from __future__ import annotations

from typing import Iterator

from repro.devices.base import DeviceManager
from repro.errors import UnknownDeviceError


class DeviceSwitch:
    """Name → device manager registry."""

    def __init__(self) -> None:
        self._devices: dict[str, DeviceManager] = {}
        self._default: str | None = None

    def register(self, device: DeviceManager, default: bool = False) -> None:
        """Register ``device``; the first registered device (or the one
        registered with ``default=True``) becomes the default."""
        if device.name in self._devices:
            raise UnknownDeviceError(f"device {device.name!r} already registered")
        self._devices[device.name] = device
        if default or self._default is None:
            self._default = device.name

    def get(self, name: str | None = None) -> DeviceManager:
        """Resolve a device by name (None → the default device)."""
        if name is None:
            name = self._default
        if name is None or name not in self._devices:
            raise UnknownDeviceError(f"no device named {name!r} registered")
        return self._devices[name]

    def wrap(self, name: str, wrapper) -> DeviceManager:
        """Replace the device named ``name`` with ``wrapper(device)``
        — the registration hook used by interposing proxies such as the
        testkit's :class:`~repro.testkit.faults.FaultyDevice`.  The
        proxy must keep the wrapped device's name so catalog rows keep
        resolving."""
        device = self.get(name)
        proxy = wrapper(device)
        if proxy.name != device.name:
            raise UnknownDeviceError(
                f"wrapper changed device name {device.name!r} → {proxy.name!r}")
        self._devices[name] = proxy
        return proxy

    def unwrap(self, name: str) -> DeviceManager:
        """Undo :meth:`wrap`: restore the proxied device's ``inner``
        manager.  A no-op for devices that are not proxies."""
        device = self.get(name)
        inner = getattr(device, "inner", None)
        if isinstance(inner, DeviceManager):
            self._devices[name] = inner
            return inner
        return device

    @property
    def default_name(self) -> str:
        if self._default is None:
            raise UnknownDeviceError("no devices registered")
        return self._default

    def names(self) -> list[str]:
        return list(self._devices)

    def __contains__(self, name: str) -> bool:
        return name in self._devices

    def __iter__(self) -> Iterator[DeviceManager]:
        return iter(self._devices.values())

    def describe(self) -> list[dict[str, object]]:
        """The switch table, as an administrator would list it."""
        rows = []
        for name, dev in self._devices.items():
            row = dev.describe()
            row["default"] = name == self._default
            rows.append(row)
        return rows

    def flush_all(self) -> None:
        for dev in self._devices.values():
            dev.flush()

    def close_all(self) -> None:
        for dev in self._devices.values():
            dev.close()

    def simulate_crash(self) -> None:
        for dev in self._devices.values():
            dev.simulate_crash()
