"""Large-namespace and structural-op workload scenarios.

Two shapes live here, sharing the same four scenario families:

- **Explorer workloads** (`*_workload` factories, collected in
  :data:`VFS_WORKLOADS`): data-only scripts in the
  :mod:`repro.testkit.workload` format, so the crash-schedule explorer
  and the deterministic multi-session scheduler can run them
  unchanged.  They exercise the new model op kinds — ``reflink``,
  ``concat``, ``slice``, ``truncate`` — against the differential
  oracle at every crash point.

- **VFS drivers** (plain functions taking a :class:`~repro.vfs.api.VFS`
  session): the same scenarios expressed as application code — atomic
  multi-file groups via ``vfs.transaction()``, directory scans via the
  paged ``iterdir`` — sized up for the ``repro.bench.vfsio``
  benchmark's large-namespace runs.

The families, after the paper's workloads plus WTF's (PAPERS.md):

``flat_dir``     one directory with very many children (the
                 million-file case, scaled by a parameter), built in
                 per-transaction batches, listed in bounded pages.
``build_tree``   an Andrew-benchmark-style source tree compiled into
                 ``/build.tmp`` and atomically published by a single
                 directory rename — the multi-file commit group.
``hotspot``      concurrent sessions contending on one hot file while
                 churning private subtrees.
``reflink_churn`` by-reference copies, slices and concats interleaved
                 with overwrites, truncates and vacuum passes — the
                 workload the shared-extents invariant polices.
"""

from __future__ import annotations

from repro.core.constants import CHUNK_SIZE
from repro.testkit.workload import TxStep, VacuumStep, Workload, payload


# -- explorer workloads ---------------------------------------------------

def flat_dir_workload(seed: int = 0, nfiles: int = 24,
                      per_tx: int = 6) -> Workload:
    """One directory, many children, created in per-transaction batches
    (each batch is one atomic group) with one aborted batch in the
    middle — after any crash the directory holds an exact multiple of
    ``per_tx`` files, never a partial batch."""
    p = lambda tag, size: payload(seed, tag, size)  # noqa: E731
    steps = [TxStep((("mkdir", "/flat"),))]
    batch: list[tuple] = []
    for i in range(nfiles):
        batch.append(("write", f"/flat/f{i:05d}", p(f"f{i}", 120 + i % 7)))
        if len(batch) == per_tx:
            steps.append(TxStep(tuple(batch)))
            batch = []
    if batch:
        steps.append(TxStep(tuple(batch)))
    # A batch that aborts: none of its files may ever be visible.
    steps.insert(3, TxStep(tuple(
        ("write", f"/flat/never{i}", p(f"n{i}", 90)) for i in range(per_tx)),
        abort=True))
    return Workload("vfs_flat_dir", steps)


def build_tree_workload(seed: int = 0) -> Workload:
    """An Andrew-style build: sources written under ``/src``, objects
    "compiled" into ``/build.tmp`` in per-module groups, then the whole
    tree published by one atomic rename to ``/build``.  The invariant a
    crash must never break: ``/build`` either does not exist or holds
    the complete tree — no half-published build."""
    p = lambda tag, size: payload(seed, tag, size)  # noqa: E731
    return Workload("vfs_build_tree", [
        TxStep((("mkdir", "/src"),
                ("mkdir", "/src/lib"),
                ("write", "/src/lib/a.c", p("a.c", 2200)),
                ("write", "/src/lib/b.c", p("b.c", 900)),
                ("write", "/src/main.c", p("main.c", 3100)))),
        TxStep((("mkdir", "/build.tmp"),
                ("mkdir", "/build.tmp/lib"),
                ("write", "/build.tmp/lib/a.o", p("a.o", 4100)),
                ("write", "/build.tmp/lib/b.o", p("b.o", 1700)))),
        TxStep((("write", "/build.tmp/main.o", p("main.o", 5200)),
                ("write", "/build.tmp/prog", p("prog", 9000)))),
        TxStep((("write", "/build.tmp/prog.dbg", p("dbg", 12000)),),
               abort=True),
        TxStep((("rename", "/build.tmp", "/build"),)),       # the publish
        TxStep((("write", "/src/main.c", p("main2", 2800)),)),
    ])


def hotspot_workload(seed: int = 0) -> Workload:
    """Three sessions through the deterministic scheduler: all contend
    on ``/hot`` (serialized by its exclusive lock), each churns a
    private subtree, one truncates the hot file mid-stream."""
    p = lambda tag, size: payload(seed, tag, size)  # noqa: E731
    return Workload("vfs_hotspot", [], sessions=(
        (TxStep((("mkdir", "/h0"),
                 ("write", "/h0/a", p("0a", 2600)))),
         TxStep((("write", "/hot", p("0h", 1900)),)),
         TxStep((("reflink", "/hot", "/h0/snap"),)),
         TxStep((("write", "/h0/b", p("0b", 7000)),))),
        (TxStep((("write", "/hot", p("1h", 2400)),)),
         TxStep((("truncate", "/hot", 700),)),
         TxStep((("mkdir", "/h1"),
                 ("write", "/h1/a", p("1a", 5000)),), abort=True),
         TxStep((("mkdir", "/h1"),
                 ("write", "/h1/a", p("1b", 1100)),))),
        (TxStep((("mkdir", "/h2"),
                 ("write", "/h2/a", p("2a", 12000)))),
         TxStep((("write", "/hot", p("2h", 800)),)),
         TxStep((("write", "/h2/a", p("2b", 300)),))),
    ), setup_ops=(("write", "/hot", p("seedh", 1200)),),
        group_commit_window=0.25, sched_seed=seed)


def reflink_churn_workload(seed: int = 0) -> Workload:
    """Structural ops under churn: a chunk-aligned base file reflinked,
    sliced and concatenated, sources overwritten (copy-on-write must
    isolate the clones), clones truncated, and vacuum passes — one
    history-discarding — that the ``vfsref`` pin guard must survive.
    The differential oracle holds physical copies; any divergence means
    a reference resolved to the wrong version (or nothing)."""
    p = lambda tag, size: payload(seed, tag, size)  # noqa: E731
    two = CHUNK_SIZE * 2
    return Workload("vfs_reflink_churn", [
        TxStep((("write", "/base", p("base", two + 511)),
                ("write", "/al", p("al", two)))),            # aligned
        TxStep((("reflink", "/base", "/copy1"),
                ("mkdir", "/snaps"))),
        TxStep((("slice", "/base", 0, CHUNK_SIZE + 200, "/snaps/head"),
                ("concat", ("/al", "/base"), "/joined"))),
        TxStep((("write", "/base", p("base2", 1500)),)),     # CoW divergence
        TxStep((("reflink", "/joined", "/copy2"),), abort=True),
        VacuumStep(path="/base"),                            # history kept
        TxStep((("truncate", "/copy1", CHUNK_SIZE + 77),
                ("reflink", "/al", "/snaps/al"))),
        VacuumStep(path="/base", keep_history=False),        # pin guard
        TxStep((("write", "/al", p("al2", 640)),
                ("unlink", "/copy1"))),
        VacuumStep(path="/al", keep_history=False),
    ])


#: The VFS scenario workloads, explored separately from ALL_WORKLOADS
#: (tests opt in; single-server tooling listing ALL_WORKLOADS is
#: unchanged).
VFS_WORKLOADS = {
    "vfs_flat_dir": flat_dir_workload,
    "vfs_build_tree": build_tree_workload,
    "vfs_hotspot": hotspot_workload,
    "vfs_reflink_churn": reflink_churn_workload,
}


# -- VFS drivers (application-shaped; the benchmark runs these) -----------

def populate_flat_dir(vfs, nfiles: int, dirpath: str = "/flat",
                      per_tx: int = 64, size: int = 64,
                      seed: int = 0) -> None:
    """Create ``nfiles`` children of one directory in atomic batches of
    ``per_tx`` — the large-namespace fixture."""
    vfs.mkdir(dirpath)
    for lo in range(0, nfiles, per_tx):
        with vfs.transaction():
            for i in range(lo, min(lo + per_tx, nfiles)):
                vfs.write_file(f"{dirpath}/f{i:07d}",
                               payload(seed, f"flat{i}", size))


def scan_flat_dir(vfs, dirpath: str = "/flat",
                  page_size: int = 512) -> int:
    """List a huge directory in bounded pages via the paged readdir
    cookie protocol; returns the number of names seen."""
    count = 0
    for _name in vfs.iterdir(dirpath, page_size=page_size):
        count += 1
    return count


def build_and_publish(vfs, modules: int = 4, files_per: int = 4,
                      seed: int = 0) -> None:
    """The Andrew-style scenario as application code: write sources,
    compile into ``/build.tmp`` one atomic group per module, publish
    with a single rename inside the final group."""
    with vfs.transaction():
        vfs.mkdir("/src")
        for m in range(modules):
            vfs.mkdir(f"/src/m{m}")
            for f in range(files_per):
                vfs.write_file(f"/src/m{m}/s{f}.c",
                               payload(seed, f"s{m}.{f}", 1400))
    vfs.mkdir("/build.tmp")
    for m in range(modules):
        with vfs.transaction():
            vfs.mkdir(f"/build.tmp/m{m}")
            for f in range(files_per):
                vfs.write_file(f"/build.tmp/m{m}/o{f}.o",
                               payload(seed, f"o{m}.{f}", 2100))
    with vfs.transaction():
        vfs.write_file("/build.tmp/prog", payload(seed, "prog", 6200))
        vfs.rename("/build.tmp", "/build")


def reflink_churn(vfs, rounds: int = 4, chunks: int = 4,
                  seed: int = 0) -> None:
    """Structural-op churn: keep reflinking/slicing/concatenating a
    chunk-aligned base while overwriting it, unlinking stale clones."""
    base_size = CHUNK_SIZE * chunks
    vfs.write_file("/base", payload(seed, "base", base_size))
    vfs.mkdir("/clones")
    for r in range(rounds):
        with vfs.transaction():
            vfs.reflink("/base", f"/clones/r{r}")
            vfs.slice("/base", 0, CHUNK_SIZE, f"/clones/head{r}")
        vfs.concat([f"/clones/r{r}", f"/clones/head{r}"],
                   f"/clones/joined{r}")
        vfs.write_file("/base", payload(seed, f"base{r}", CHUNK_SIZE))
        if r:
            vfs.unlink(f"/clones/joined{r - 1}")
