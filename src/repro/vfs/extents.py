"""The shared-extents invariant.

A by-reference clone leaves chunk-table rows that *point* at exact
chunk versions of another file.  The invariant this module proves:
**every reference stored anywhere — current, superseded, or archived —
still resolves**, i.e. the version it pins exists in the source's live
heap or its archive.  Vacuum is the only thing that destroys versions;
the ``vfsref`` registry plus the vacuum cleaner's history-pin guard
(:meth:`repro.db.vacuum.VacuumCleaner.vacuum_table`) must therefore
never let a pinned version be expunged.  ``shared_extents`` walks the
storage level (all versions, visibility ignored — time travel can
reach any of them) and reports every violation as a
:class:`~repro.core.checker.Corruption`.
"""

from __future__ import annotations

from repro.core.checker import CheckReport, Corruption
from repro.core.chunks import REF_PAYLOAD, ChunkStore, chunk_table_name
from repro.core.filesystem import VFSREF_TABLE
from repro.db.snapshot import BootstrapSnapshot
from repro.errors import InversionError, TableError


def _ref_rows(db, table_name):
    """Every by-reference row stored for one chunk table, from the
    live heap and the archive alike (an archived dst version may still
    be time-travel readable, so its references must resolve too)."""
    from repro.db.heap import HeapFile
    info = db.catalog.lookup_table(table_name, BootstrapSnapshot(db.tm),
                                   use_cache=False)
    if info is not None:
        heap = HeapFile(db.buffers, info.devname, info.name, info.schema,
                        cpu=db.cpu)
        for _tid, xmin, _xmax, values in heap.scan_all_versions():
            # Aborted-insert garbage is unreachable (vacuum expunges
            # it); only committed versions carry the invariant.
            if values[1] < 0 and db.tm.is_committed(xmin):
                yield values
    archive = db.archive_heap_for(table_name)
    if archive is not None:
        for _tid, _xmin, _xmax, values in archive.scan_all_versions():
            if values[1] < 0:
                yield values


def _registry_covers(db, src_fid: int, chunkno: int) -> bool:
    """True when some ``vfsref`` row pins this source chunk — the
    bookkeeping the vacuum guard relies on.  The guard checks source
    coverage only (any registered claim pins the whole range for every
    reader), and registry rows are never deleted, so a flattened
    nested clone is covered by the original clone's registration even
    after the intermediate file is unlinked."""
    if not db.table_exists(VFSREF_TABLE):
        return False
    table = db.table(VFSREF_TABLE)
    snapshot = BootstrapSnapshot(db.tm)
    for _tid, row in table.index_eq(("src",), (src_fid,), snapshot):
        if row[2] <= chunkno <= row[3]:
            return True
    return False


def shared_extents(fs, report: CheckReport | None = None) -> CheckReport:
    """Validate every chunk reference in the file system.

    For each file's chunk table (live and archived versions both):
    every reference row must decode, must resolve to its pinned source
    version, and must be covered by a ``vfsref`` registry row (else
    the vacuum guard would not protect it).  A clean report is the
    proof that no reachable shared extent was vacuumed away."""
    report = report or CheckReport()
    db = fs.db
    snapshot = BootstrapSnapshot(db.tm)
    naming = db.table("naming")
    seen: set[int] = set()
    for _tid, (_name, _parent, fileid) in naming.scan(snapshot):
        if fileid in seen or fileid == fs.namespace.root_fileid:
            seen.add(fileid)
            continue
        seen.add(fileid)
        table_name = chunk_table_name(fileid)
        if not db.table_exists(table_name):
            continue
        report.files_checked += 1
        store = ChunkStore(db, fileid, None)
        for values in _ref_rows(db, table_name):
            report.chunks_checked += 1
            chunkno, selfid, payload = values
            if len(payload) != REF_PAYLOAD.size:
                report.corruptions.append(Corruption(
                    fileid, chunkno, "bad-reference",
                    f"reference payload is {len(payload)} bytes, "
                    f"expected {REF_PAYLOAD.size}"))
                continue
            src_fid, src_chunkno, src_xmin = REF_PAYLOAD.unpack(payload)
            if src_fid != -selfid:
                report.corruptions.append(Corruption(
                    fileid, chunkno, "bad-reference",
                    f"selfid names source {-selfid}, payload names "
                    f"{src_fid}"))
                continue
            try:
                store._resolve_ref(payload, None)
            except TableError as exc:
                report.corruptions.append(Corruption(
                    fileid, chunkno, "dangling-reference", str(exc)))
                continue
            if not _registry_covers(db, src_fid, src_chunkno):
                report.corruptions.append(Corruption(
                    fileid, chunkno, "unregistered-reference",
                    f"reference to inv{src_fid} chunk {src_chunkno} has "
                    f"no vfsref registry row — vacuum would not protect "
                    f"it"))
    return report


def raise_if_shared_extents_broken(fs) -> None:
    """Assertion-style entry point for tests and workloads."""
    report = shared_extents(fs)
    if not report.clean:
        first = report.corruptions[0]
        raise InversionError(
            f"{len(report.corruptions)} shared-extent violations; first: "
            f"file {first.fileid} chunk {first.chunkno} [{first.kind}]: "
            f"{first.detail}")
