"""The transactional POSIX-flavored file API.

:class:`VFS` wraps any ``p_*`` client — in-process, remote, cached, or
sharded — behind the calls an application expects (open/read/write/
lseek/close, mkdir/rename/unlink/readdir/stat/truncate) and makes the
transaction boundary explicit: everything issued between
:meth:`VFS.begin` and :meth:`VFS.commit` is one atomic group, however
many files and directories it touches.  WTF (PAPERS.md) is the model:
transactional POSIX semantics for applications, plus O(1)
concatenation/slicing by pointer manipulation — here
:meth:`VFS.reflink`, :meth:`VFS.concat` and :meth:`VFS.slice`, which
ride :meth:`repro.core.chunks.ChunkStore.clone_range`.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core.constants import O_CREAT, O_RDONLY, SEEK_SET
from repro.errors import FileNotFoundError_
from repro.obs.registry import MetricSpec

METRICS = (
    MetricSpec("vfs.ops", "counter", "ops",
               "Calls issued through the transactional VFS surface "
               "(every public method counts one).",
               "repro.vfs.api"),
    MetricSpec("vfs.group_commits", "counter", "ops",
               "Commits that closed an explicit begin() group — "
               "multi-file atomic batches, as opposed to auto-committed "
               "single calls.",
               "repro.vfs.api"),
    MetricSpec("vfs.reflinks", "counter", "ops",
               "By-reference structural ops (reflink, concat, slice).",
               "repro.vfs.api"),
    MetricSpec("vfs.chunks_referenced", "counter", "chunks",
               "Chunks cloned as pointer rows by structural ops — "
               "each one a ~24-byte metadata write instead of a chunk "
               "copy.",
               "repro.vfs.api"),
    MetricSpec("vfs.chunks_materialized", "counter", "chunks",
               "Chunks structural ops had to copy physically "
               "(unaligned tails, and cross-shard fallbacks).",
               "repro.vfs.api"),
    MetricSpec("vfs.readdir_pages", "counter", "ops",
               "Paged readdir requests (bounded listing pages instead "
               "of whole-directory replies).",
               "repro.vfs.api"),
)

DEFAULT_READDIR_PAGE = 512


class VFS:
    """A transactional POSIX-flavored session over one ``p_*`` client.

    The client supplies the wire (and the sharding/caching behaviour);
    the VFS supplies the application surface and the multi-file
    transaction discipline.  One VFS = one session = at most one open
    transaction."""

    def __init__(self, client, obs=None) -> None:
        self.client = client
        self._in_group = False
        self.ops = 0
        self.group_commits = 0
        self.reflinks = 0
        self.chunks_referenced = 0
        self.chunks_materialized = 0
        self.readdir_pages = 0
        if obs is not None:
            obs.bind_vfs(self)

    # -- transactions -----------------------------------------------------

    def begin(self) -> None:
        """Open an explicit transaction: every call until ``commit()``
        (or ``abort()``) becomes one atomic group."""
        self.ops += 1
        self.client.p_begin()
        self._in_group = True

    def commit(self) -> None:
        self.ops += 1
        self.client.p_commit()
        if self._in_group:
            self._in_group = False
            self.group_commits += 1

    def abort(self) -> None:
        self.ops += 1
        self._in_group = False
        self.client.p_abort()

    @contextmanager
    def transaction(self):
        """``with vfs.transaction(): ...`` — commit on success, abort
        on any exception.  The idiom for atomic multi-file groups."""
        self.begin()
        try:
            yield self
        except BaseException:
            self.abort()
            raise
        self.commit()

    # -- file descriptors -------------------------------------------------

    def open(self, path: str, mode: int = O_RDONLY,
             timestamp: float | None = None,
             device: str | None = None) -> int:
        """Open (optionally create, with ``O_CREAT``) a file; returns a
        descriptor.  ``timestamp`` opens the historical version."""
        self.ops += 1
        if mode & O_CREAT:
            try:
                return self.client.p_open(path, mode & ~O_CREAT,
                                          timestamp)
            except FileNotFoundError_:
                return self.client.p_creat(path, mode & ~O_CREAT,
                                           device=device)
        return self.client.p_open(path, mode, timestamp)

    def read(self, fd: int, nbytes: int) -> bytes:
        self.ops += 1
        return self.client.p_read(fd, nbytes)

    def write(self, fd: int, data: bytes) -> int:
        self.ops += 1
        return self.client.p_write(fd, data)

    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET) -> int:
        self.ops += 1
        return self.client.p_lseek(fd, offset >> 32,
                                   offset & 0xFFFFFFFF, whence)

    def close(self, fd: int) -> None:
        self.ops += 1
        self.client.p_close(fd)

    # -- namespace --------------------------------------------------------

    def mkdir(self, path: str, owner: str = "root") -> None:
        self.ops += 1
        self.client.p_mkdir(path, owner=owner)

    def rename(self, old: str, new: str) -> None:
        self.ops += 1
        self.client.p_rename(old, new)

    def unlink(self, path: str) -> None:
        self.ops += 1
        self.client.p_unlink(path)

    def rmdir(self, path: str) -> None:
        self.ops += 1
        self.client.p_rmdir(path)

    def stat(self, path: str, timestamp: float | None = None):
        self.ops += 1
        return self.client.p_stat(path, timestamp)

    def exists(self, path: str) -> bool:
        self.ops += 1
        try:
            self.client.p_stat(path)
            return True
        except FileNotFoundError_:
            return False

    def readdir(self, path: str, timestamp: float | None = None) -> list[str]:
        """The full (sorted) listing in one call — fine for small
        directories; use :meth:`iterdir` for large ones."""
        self.ops += 1
        return self.client.p_readdir(path, timestamp)

    def readdir_page(self, path: str, cookie: str | None = None,
                     limit: int = DEFAULT_READDIR_PAGE,
                     timestamp: float | None = None
                     ) -> tuple[list[str], str | None]:
        """One bounded page of a listing: (names after ``cookie``,
        next cookie or None)."""
        self.ops += 1
        self.readdir_pages += 1
        return self.client.p_readdir(path, timestamp,
                                     cookie=cookie, limit=limit)

    def iterdir(self, path: str, page_size: int = DEFAULT_READDIR_PAGE,
                timestamp: float | None = None):
        """Iterate a directory in pages — a million-file listing never
        materializes more than ``page_size`` names in one reply."""
        cookie = None
        while True:
            names, cookie = self.readdir_page(path, cookie, page_size,
                                              timestamp)
            yield from names
            if cookie is None:
                return

    # -- structural (by-reference) ops ------------------------------------

    def reflink(self, src: str, dst: str,
                device: str | None = None) -> tuple[int, int]:
        """Copy ``src`` to new file ``dst`` by reference: chunk-pointer
        rows, no data movement, copy-on-write afterwards.  Returns
        (chunks referenced, chunks materialized)."""
        self.ops += 1
        self.reflinks += 1
        r, m = self.client.p_reflink(src, dst, device=device)
        self.chunks_referenced += r
        self.chunks_materialized += m
        return r, m

    def concat(self, srcs, dst: str,
               device: str | None = None) -> tuple[int, int]:
        """Concatenate ``srcs`` into new file ``dst`` by reference
        (every source but the last must be chunk-aligned in size)."""
        self.ops += 1
        self.reflinks += 1
        r, m = self.client.p_concat(list(srcs), dst, device=device)
        self.chunks_referenced += r
        self.chunks_materialized += m
        return r, m

    def slice(self, src: str, lo: int, hi: int, dst: str,
              device: str | None = None) -> tuple[int, int]:
        """Extract ``src[lo:hi]`` into new file ``dst`` by reference
        (``lo`` chunk-aligned; the partial tail is materialized)."""
        self.ops += 1
        self.reflinks += 1
        r, m = self.client.p_slice(src, lo, hi, dst, device=device)
        self.chunks_referenced += r
        self.chunks_materialized += m
        return r, m

    def truncate(self, path: str, size: int) -> None:
        self.ops += 1
        self.client.p_truncate(path, size)

    # -- whole-file conveniences ------------------------------------------

    def read_file(self, path: str, timestamp: float | None = None) -> bytes:
        fd = self.open(path, O_RDONLY, timestamp=timestamp)
        try:
            size = self.client.p_stat(path, timestamp).size
            return self.read(fd, size) if size else b""
        finally:
            self.close(fd)

    def write_file(self, path: str, data: bytes,
                   device: str | None = None) -> int:
        from repro.core.constants import O_RDWR
        fd = self.open(path, O_RDWR | O_CREAT, device=device)
        try:
            return self.write(fd, data) if data else 0
        finally:
            self.close(fd)
