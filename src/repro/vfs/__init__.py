"""repro.vfs — the transactional POSIX-flavored surface.

Applications talk to Inversion through :class:`~repro.vfs.api.VFS`:
open/read/write/lseek/close plus rename/unlink/mkdir/readdir/stat/
truncate, with ``begin()/commit()/abort()`` making one transaction
span any number of files and directories — a group rename, an
all-or-nothing multi-file write, an atomic build-tree publish.  The
layer is client-agnostic: the same code runs over the in-process
:class:`~repro.core.library.InversionClient`, the remote
:class:`~repro.core.client.RemoteInversionClient` (cached or not), and
the :class:`~repro.shard.client.ShardedInversionClient` (cross-shard
groups ride the existing 2PC).

The headline structural ops — :meth:`~repro.vfs.api.VFS.reflink`,
:meth:`~repro.vfs.api.VFS.concat`, :meth:`~repro.vfs.api.VFS.slice` —
copy chunk-table *rows* (pointer remaps) instead of data:
O(chunks-touched) metadata writes, zero payload movement, with
copy-on-write preserved for free by the no-overwrite storage manager.
:func:`~repro.vfs.extents.shared_extents` is the matching checker
invariant: referenced chunk versions are never vacuumed while
reachable.
"""

from repro.vfs.api import VFS

__all__ = ["VFS"]
