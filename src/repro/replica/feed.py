"""The primary side of log shipping: the committed-delta feed.

The no-overwrite storage manager already *is* a replication log: commit
order is data-then-status, records of uncommitted transactions are
invisible, and the status file is append-only.  So a replica that
re-applies the primary's durable device writes **in the order they were
performed** inherits the primary's crash-consistency argument wholesale
— any prefix of the feed is a state the primary itself could have
crashed into, and the transaction status file decides visibility at
that point.

:class:`FeedTapDevice` is an interposing device-manager proxy (the same
switch-wrap seam the fault-injection testkit uses) that records every
*successful* durable mutation — page writes, metadata writes and
appends, relation create/drop/rename/extend — into the
:class:`PrimaryFeed` log, payload included, so a feed entry is
self-contained and replayable without touching the primary again.

:class:`PrimaryFeed` hands the log out in **batched, restartable sync
rounds**: a replica pulls from its cursor (a plain entry sequence
number), applies the batch, durably saves the advanced cursor on its
own root device, and acks.  Because the cursor is saved only after the
whole round applied, a replica that dies mid-round simply re-pulls the
same round — apply is idempotent (see :mod:`repro.replica.server`) —
and never rescans from zero.

Everything here is **off by default**: no ``PrimaryFeed.attach``, no
tap, no overhead, byte-identical benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.base import DeviceManager
from repro.errors import FeedGapError
from repro.obs.registry import MetricSpec

METRICS = (
    MetricSpec("repl.rounds", "counter", "ops",
               "Sync rounds completed (one pull + apply + durable "
               "cursor save + ack).",
               "repro.replica.feed"),
    MetricSpec("repl.entries_shipped", "counter", "ops",
               "Feed entries shipped to replicas across all rounds.",
               "repro.replica.feed"),
    MetricSpec("repl.pages_shipped", "counter", "pages",
               "Page-write entries shipped (the data volume of the "
               "no-overwrite feed).",
               "repro.replica.feed"),
    MetricSpec("repl.bytes_shipped", "counter", "bytes",
               "Payload bytes shipped to replicas (page images + "
               "status/meta blobs + entry headers).",
               "repro.replica.feed"),
    MetricSpec("repl.cursor_saves", "counter", "ops",
               "Durable replica-cursor writes (one forced meta write "
               "per applied round).",
               "repro.replica.feed"),
    MetricSpec("repl.lag_xids", "gauge", "xids",
               "Primary durable commit horizon minus the slowest "
               "replica's published horizon, at last sample.",
               "repro.replica.feed"),
    MetricSpec("repl.lag_seconds", "gauge", "seconds",
               "Commit-time gap (simulated seconds) between the "
               "primary's horizon transaction and the slowest "
               "replica's, at last sample.",
               "repro.replica.feed"),
    MetricSpec("repl.promotions", "counter", "ops",
               "Replicas promoted to primary after a failover.",
               "repro.replica.feed"),
    MetricSpec("repl.replica_reads", "counter", "calls",
               "RPC requests served by read-only replicas.",
               "repro.replica.feed"),
    MetricSpec("repl.staleness_syncs", "counter", "ops",
               "Reads that exceeded the bounded-staleness contract and "
               "triggered a catch-up sync round before being served.",
               "repro.replica.feed"),
)


@dataclass
class ReplStats:
    """Plain counters, mirrored into every member's metrics registry by
    :func:`bind_repl_stats` (the hot paths keep integer bumps)."""

    rounds: int = 0
    entries_shipped: int = 0
    pages_shipped: int = 0
    bytes_shipped: int = 0
    cursor_saves: int = 0
    lag_xids: int = 0
    lag_seconds: float = 0.0
    promotions: int = 0
    replica_reads: int = 0
    staleness_syncs: int = 0


def bind_repl_stats(registry, stats: ReplStats) -> None:
    """Mirror one :class:`ReplStats` onto a metrics registry (called
    for the primary's and every replica's Database session)."""
    for spec in METRICS:
        attr = spec.name.split(".", 1)[1]
        registry.register(spec).mirror(lambda a=attr: getattr(stats, a))


#: per-entry bookkeeping overhead charged on the wire (seq + kind +
#: names), so create/rename entries are not free.
ENTRY_HEADER_BYTES = 24


@dataclass(frozen=True)
class FeedEntry:
    """One durable mutation, self-contained and replay-exact.

    ======== ============== ========================== ===========
    kind     a              b                          payload
    ======== ============== ========================== ===========
    create   relname        —                          —
    drop     relname        —                          —
    rename   src relname    dst relname                —
    extend   relname        target pageno (int)        —
    page     relname        pageno (int)               page image
    meta     tag            —                          blob
    append   tag            —                          appended bytes
    ======== ============== ========================== ===========
    """

    seq: int
    dev: str
    kind: str
    a: str
    b: object = None
    payload: bytes | None = None

    @property
    def nbytes(self) -> int:
        n = ENTRY_HEADER_BYTES + len(self.a)
        if isinstance(self.b, str):
            n += len(self.b)
        if self.payload is not None:
            n += len(self.payload)
        return n


class PrimaryFeed:
    """The committed-delta feed of one primary database.

    The log keeps every entry since ``base_seq`` (a promoted replica
    seeds it with the entries it applied, so surviving followers resume
    from their cursors without a re-seed).  ``pull`` is read-only and
    side-effect-free on the primary: entries carry their payloads, so a
    round never races vacuum's relation swaps or drops."""

    def __init__(self, db, stats: ReplStats | None = None,
                 base_seq: int = 0, log: list | None = None) -> None:
        self.db = db
        self.stats = stats or ReplStats()
        self.base_seq = base_seq
        self.log: list[FeedEntry] = log if log is not None else []
        #: replica id -> highest acked cursor, for lag and trimming.
        self.acked: dict[str, int] = {}

    # -- wiring ----------------------------------------------------------

    @classmethod
    def attach(cls, db, stats: ReplStats | None = None,
               base_seq: int = 0, log: list | None = None) -> "PrimaryFeed":
        """Interpose :class:`FeedTapDevice` over every device of ``db``
        and return the feed.  This is the *only* way replication state
        enters a database — never called at defaults."""
        feed = cls(db, stats=stats, base_seq=base_seq, log=log)
        db.wrap_devices(lambda inner: FeedTapDevice(inner, feed))
        return feed

    @property
    def next_seq(self) -> int:
        return self.base_seq + len(self.log)

    def _record(self, dev: str, kind: str, a: str, b=None,
                payload: bytes | None = None) -> None:
        self.log.append(FeedEntry(self.next_seq, dev, kind, a, b, payload))

    # -- the ship/ack protocol --------------------------------------------

    def pull(self, cursor: int, max_entries: int
             ) -> tuple[list[FeedEntry], int, bool]:
        """One sync round: up to ``max_entries`` entries starting at
        ``cursor``.  Returns ``(entries, next_cursor, more)``; ``more``
        tells the replica to keep pulling before publishing itself as
        caught up."""
        if cursor < self.base_seq:
            raise FeedGapError(
                f"cursor {cursor} below feed base {self.base_seq}: "
                f"re-seed the replica from a new base backup")
        if cursor > self.next_seq:
            raise FeedGapError(
                f"cursor {cursor} ahead of feed end {self.next_seq}: "
                f"the replica followed a longer history than this "
                f"primary (promote the most caught-up replica)")
        lo = cursor - self.base_seq
        entries = self.log[lo:lo + max_entries]
        next_cursor = cursor + len(entries)
        return entries, next_cursor, next_cursor < self.next_seq

    def ack(self, replica_id: str, cursor: int) -> None:
        self.acked[replica_id] = cursor

    def trim(self) -> int:
        """Drop entries every known replica has acked.  Returns the
        number dropped.  A replica that reconnects below the new base
        gets :class:`FeedGapError` and must re-seed."""
        if not self.acked:
            return 0
        floor = min(self.acked.values())
        drop = max(0, floor - self.base_seq)
        if drop:
            del self.log[:drop]
            self.base_seq = floor
        return drop

    # -- horizons ----------------------------------------------------------

    def durable_horizon(self) -> int:
        """Highest committed xid durable on the primary's status file —
        what a fully caught-up replica will publish."""
        return self.db.tm.durable_committed_xid()

    def checkpoint(self) -> None:
        """Force everything volatile down to the devices (and hence
        into the feed): dirty buffer pages, queued group-commit records,
        device-private caches.  A base backup is taken right after."""
        self.db.buffers.flush_all()
        self.db.tm.flush_commits()
        self.db.switch.flush_all()


class FeedTapDevice(DeviceManager):
    """Interposing proxy recording every successful durable mutation
    into the feed log, payload included.

    Ordering note for the failover testkit: the fault-injecting
    :class:`~repro.testkit.faults.FaultyDevice` wraps *outside* this tap
    (``wrap_devices`` stacks proxies), so a write the simulated crash
    suppressed never reaches the tap — the feed only ever contains
    writes that reached the media, exactly like a physical log."""

    def __init__(self, inner: DeviceManager, feed: PrimaryFeed) -> None:
        self.inner = inner
        self.feed = feed
        self.name = inner.name
        self.nonvolatile = inner.nonvolatile

    # -- recorded mutations ------------------------------------------------

    def create_relation(self, relname: str) -> None:
        self.inner.create_relation(relname)
        self.feed._record(self.name, "create", relname)

    def drop_relation(self, relname: str) -> None:
        self.inner.drop_relation(relname)
        self.feed._record(self.name, "drop", relname)

    def rename_relation(self, src: str, dst: str) -> None:
        self.inner.rename_relation(src, dst)
        self.feed._record(self.name, "rename", src, dst)

    def extend(self, relname: str) -> int:
        pageno = self.inner.extend(relname)
        self.feed._record(self.name, "extend", relname, pageno)
        return pageno

    def write_page(self, relname: str, pageno: int, data: bytes) -> None:
        self.inner.write_page(relname, pageno, data)
        self.feed._record(self.name, "page", relname, pageno, bytes(data))

    def write_pages(self, relname: str, start: int,
                    datas: list[bytes]) -> None:
        self.inner.write_pages(relname, start, datas)
        for i, data in enumerate(datas):
            self.feed._record(self.name, "page", relname, start + i,
                              bytes(data))

    def sync_write_meta(self, tag: str, data: bytes) -> None:
        self.inner.sync_write_meta(tag, data)
        self.feed._record(self.name, "meta", tag, payload=bytes(data))

    def sync_append_meta(self, tag: str, data: bytes) -> None:
        self.inner.sync_append_meta(tag, data)
        self.feed._record(self.name, "append", tag, payload=bytes(data))

    # -- pass-through ---------------------------------------------------

    def relation_exists(self, relname: str) -> bool:
        return self.inner.relation_exists(relname)

    def list_relations(self) -> list[str]:
        return self.inner.list_relations()

    def nblocks(self, relname: str) -> int:
        return self.inner.nblocks(relname)

    def read_page(self, relname: str, pageno: int) -> bytes:
        return self.inner.read_page(relname, pageno)

    def read_pages(self, relname: str, start: int, count: int) -> list[bytes]:
        return self.inner.read_pages(relname, start, count)

    def flush(self) -> None:
        self.inner.flush()

    def read_meta(self, tag: str) -> bytes | None:
        return self.inner.read_meta(tag)

    def meta_tags(self) -> list[str]:
        return self.inner.meta_tags()

    def close(self) -> None:
        self.inner.close()

    def simulate_crash(self) -> None:
        self.inner.simulate_crash()

    def rebind_clock(self, clock) -> None:
        self.inner.rebind_clock(clock)

    def describe(self) -> dict[str, object]:
        row = self.inner.describe()
        row["feed_tap"] = True
        return row

    def __getattr__(self, attr):
        # Device-specific extras (``disk``, ``stats``, ...).
        return getattr(self.inner, attr)
