"""Base backup: cloning a primary database into a replica directory.

A replica starts life as a *base backup* — a page-exact copy of the
primary taken at a known feed position.  The copy is logical (relation
by relation, metadata blob by metadata blob, through the ordinary
device-manager interface) so it works for any device type the switch
knows, and it charges simulated I/O on both sides: sequential reads on
the primary's clock, sequential writes on the replica's.

The caller must quiesce the primary first —
:meth:`repro.replica.feed.PrimaryFeed.checkpoint` forces dirty buffer
pages, queued group-commit records, and device-private caches down to
the media — and record ``feed.next_seq`` as the backup's cursor
*before* any further write.  :meth:`repro.replica.server.ReplicaServer.seed`
does both in the right order.
"""

from __future__ import annotations

import json
import os

from repro.db.database import _DEVICE_REGISTRY, _DEVICES_FILE, Database
from repro.devices.jukebox import SonyJukebox
from repro.devices.magnetic import MagneticDisk
from repro.devices.memdisk import MemDisk
from repro.devices.tape import TapeJukebox
from repro.errors import ReplicaError
from repro.sim.clock import SimClock

#: pages copied per device read — sequential runs keep the primary's
#: disk model on its fast contiguous-transfer path during the backup.
COPY_BATCH_PAGES = 64


def _make_target(kind: str, name: str, clock: SimClock, replica_path: str):
    if kind == "magnetic":
        return MagneticDisk(name, clock, os.path.join(replica_path, name))
    if kind == "memdisk":
        return MemDisk(name, clock)
    if kind == "jukebox":
        return SonyJukebox(name, clock)
    if kind == "tape":
        return TapeJukebox(name, clock)
    raise ReplicaError(f"cannot clone device type {kind!r}")


def copy_device(src, dst, batch: int = COPY_BATCH_PAGES) -> tuple[int, int]:
    """Copy every relation and metadata blob from ``src`` to ``dst``
    through the device-manager interface.  Returns (relations copied,
    pages copied)."""
    npages_total = 0
    relnames = sorted(src.list_relations())
    for relname in relnames:
        dst.create_relation(relname)
        npages = src.nblocks(relname)
        for _ in range(npages):
            dst.extend(relname)
        for start in range(0, npages, batch):
            count = min(batch, npages - start)
            pages = src.read_pages(relname, start, count)
            dst.write_pages(relname, start, pages)
        npages_total += npages
    for tag in src.meta_tags():
        blob = src.read_meta(tag)
        if blob is not None:
            dst.sync_write_meta(tag, blob)
    return len(relnames), npages_total


def clone_database(db: Database, replica_path: str,
                   clock: SimClock | None = None) -> Database:
    """Clone ``db`` (already checkpointed — see the module docstring)
    into ``replica_path`` and open the copy as an independent
    :class:`~repro.db.database.Database` on its own simulated clock.

    Magnetic devices get fresh backing directories under
    ``replica_path``; in-memory media (memdisk, jukebox, tape) get
    fresh instances registered under the replica's path so
    :meth:`Database.open` adopts them."""
    config = db._load_device_config()
    if config is None:
        raise ReplicaError(f"no database at {db.path}")
    if os.path.exists(os.path.join(replica_path, _DEVICES_FILE)):
        raise ReplicaError(f"replica path {replica_path} already holds "
                           f"a database")
    clock = clock or SimClock()
    os.makedirs(replica_path, exist_ok=True)
    for entry in config["devices"]:
        name, kind = entry["name"], entry["type"]
        src = db.switch.get(name)
        dst = _make_target(kind, name, clock, replica_path)
        copy_device(src, dst)
        if kind == "magnetic":
            # Database.open rebuilds magnetic managers from the backing
            # files; flush and let go of this construction-time one.
            dst.close()
        else:
            _DEVICE_REGISTRY[(os.path.abspath(replica_path), name)] = dst
    with open(os.path.join(replica_path, _DEVICES_FILE), "w",
              encoding="utf-8") as f:
        json.dump(config, f, indent=2)
    return Database.open(replica_path, clock=clock)
