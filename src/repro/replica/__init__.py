"""Log-shipping replication: promotable read-only replicas.

The no-overwrite storage manager is its own replication log — see
REPLICATION.md for the design, :mod:`repro.replica.feed` for the
primary side (delta feed + device tap), :mod:`repro.replica.backup`
for base backups, :mod:`repro.replica.server` for the apply loop and
promotion, and :mod:`repro.replica.cluster` for the wired topology.

Everything here is off by default: a database with no
:meth:`PrimaryFeed.attach` call carries zero replication state and
byte-identical behaviour.
"""

from repro.replica.backup import clone_database, copy_device
from repro.replica.cluster import ReplicatedCluster
from repro.replica.feed import (ENTRY_HEADER_BYTES, FeedEntry, FeedTapDevice,
                                PrimaryFeed, ReplStats, bind_repl_stats)
from repro.replica.server import (DEFAULT_BATCH_ENTRIES, REPL_CURSOR_TAG,
                                  ReplicaServer)

__all__ = [
    "ENTRY_HEADER_BYTES",
    "DEFAULT_BATCH_ENTRIES",
    "REPL_CURSOR_TAG",
    "FeedEntry",
    "FeedTapDevice",
    "PrimaryFeed",
    "ReplStats",
    "ReplicaServer",
    "ReplicatedCluster",
    "bind_repl_stats",
    "clone_database",
    "copy_device",
]
