"""A replicated Inversion deployment: one primary, N read replicas.

:class:`ReplicatedCluster` wires the pieces for the common topology —
a primary :class:`~repro.core.server.InversionServer` with a
:class:`~repro.replica.feed.PrimaryFeed` attached, and N
:class:`~repro.replica.server.ReplicaServer`s seeded from it — and
routes client sessions: **writers connect to the primary, readers are
spread round-robin across the replicas** (session-granular read
routing; a session's file descriptors live on the server it connected
to, so routing is sticky per session, the HopsFS deployment shape).

Every client crosses a simulated network bound to its server's clock,
so replica read throughput aggregates across member clocks the way a
real fleet's would: wall-clock is the *slowest member's* elapsed time,
not the sum.
"""

from __future__ import annotations

import os

from repro.core.client import RemoteInversionClient
from repro.core.filesystem import InversionFS
from repro.core.server import InversionServer
from repro.db.database import Database
from repro.errors import ReplicaError
from repro.replica.feed import PrimaryFeed, ReplStats
from repro.replica.server import ReplicaServer
from repro.sim.clock import SimClock
from repro.sim.network import ETHERNET_10MBIT, NetworkModel


class ReplicatedCluster:
    """Primary + replicas + routing, with one shared ``repl.*`` stats
    family across every member."""

    def __init__(self, primary_db: Database, primary_fs: InversionFS,
                 primary_server: InversionServer, feed: PrimaryFeed,
                 replicas: list[ReplicaServer]) -> None:
        self.primary_db = primary_db
        self.primary_fs = primary_fs
        self.primary_server = primary_server
        self.feed = feed
        self.replicas = replicas
        self._next_reader = 0
        self._networks: dict[int, NetworkModel] = {}

    @classmethod
    def create(cls, base_dir: str, nreplicas: int,
               staleness_xids: int | None = None,
               group_commit_window: float = 0.0) -> "ReplicatedCluster":
        """Create a fresh primary under ``base_dir/primary`` and seed
        ``nreplicas`` replicas under ``base_dir/replicaK``."""
        primary_db = Database.create(os.path.join(base_dir, "primary"),
                                     group_commit_window=group_commit_window)
        primary_fs = InversionFS.mkfs(primary_db)
        primary_server = InversionServer(primary_fs)
        feed = PrimaryFeed.attach(primary_db, stats=ReplStats())
        replicas = [
            ReplicaServer.seed(feed, os.path.join(base_dir, f"replica{i}"),
                               f"replica{i}", staleness_xids=staleness_xids)
            for i in range(nreplicas)
        ]
        return cls(primary_db, primary_fs, primary_server, feed, replicas)

    # -- routing ----------------------------------------------------------

    def _network_for(self, server) -> NetworkModel:
        clock = (self.primary_db.clock if server is self.primary_server
                 else server.db.clock)
        key = id(server)
        net = self._networks.get(key)
        if net is None:
            net = self._networks[key] = NetworkModel(clock=clock,
                                                     params=ETHERNET_10MBIT)
        return net

    def writer_client(self, **kwargs) -> RemoteInversionClient:
        """A session on the primary — the only place mutations go."""
        return RemoteInversionClient(self.primary_server,
                                     self._network_for(self.primary_server),
                                     **kwargs)

    def reader_client(self, **kwargs) -> RemoteInversionClient:
        """A read-only session, routed round-robin across the replicas
        (or to the primary when there are none)."""
        if not self.replicas:
            return self.writer_client(**kwargs)
        server = self.replicas[self._next_reader % len(self.replicas)]
        self._next_reader += 1
        return RemoteInversionClient(server, self._network_for(server),
                                     **kwargs)

    # -- replication control ----------------------------------------------

    def sync_all(self) -> int:
        """One full catch-up on every replica; returns entries applied."""
        return sum(r.sync() for r in self.replicas)

    def max_horizon_replica(self) -> ReplicaServer:
        """The most caught-up replica — the failover promotion victim."""
        if not self.replicas:
            raise ReplicaError("cluster has no replicas to promote")
        return max(self.replicas, key=lambda r: r.cursor)

    def promote(self, replica: ReplicaServer | None = None) -> ReplicaServer:
        """Fail over: promote ``replica`` (default: the most caught-up)
        to primary and re-point the surviving replicas at its feed.
        The old primary must already be gone; its server object is
        discarded."""
        victim = replica or self.max_horizon_replica()
        new_feed = victim.promote()
        self.replicas = [r for r in self.replicas if r is not victim]
        for follower in self.replicas:
            follower.rebind_feed(new_feed)
        self.primary_db = victim.db
        self.primary_fs = victim.fs
        self.primary_server = victim
        self.feed = new_feed
        self._networks.pop(id(victim), None)
        return victim

    def close(self) -> None:
        for replica in self.replicas:
            replica.close()
        self.primary_db.close()
