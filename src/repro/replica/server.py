"""The replica: applies the feed, serves read-only traffic, promotes.

A :class:`ReplicaServer` is a complete Inversion stack (its own
database directory, devices, buffer cache, transaction manager, clock)
that follows a primary's :class:`~repro.replica.feed.PrimaryFeed` and
answers read RPCs at a published **xid horizon** — the highest
committed transaction whose status record it has applied.

Sync protocol (one *round*)::

    entries, next_cursor, more = feed.pull(cursor, batch)   # ship
    apply each entry to the local devices                    # replay
    invalidate caches, re-read the status file               # advance
    durably save next_cursor on the local root device        # restart
    feed.ack(replica_id, next_cursor)                        # ack

The cursor is saved only *after* the whole round applied, so a replica
that dies mid-round re-pulls the same round on reconnect.  That is safe
because apply is **idempotent**: create/drop/rename/extend install a
state rather than perform an action (guards make re-execution a no-op),
page writes re-write the same bytes, and a re-appended status line
collapses in :meth:`~repro.db.transactions.TransactionManager.refresh`
because records land in a dict keyed by xid.

Read-only enforcement sits at the RPC boundary: mutating methods raise
:class:`~repro.errors.ReplicaReadOnlyError` until :meth:`promote` lifts
the restriction.  Local read transactions are safe — a transaction that
writes nothing appends nothing to the status file (``tx.wrote`` gates
every status append), so the shipped status file stays byte-identical
to the primary's.
"""

from __future__ import annotations

import os

from repro.core.filesystem import InversionFS
from repro.core.server import InversionServer
from repro.db.database import Database
from repro.errors import ReplicaError, ReplicaReadOnlyError
from repro.replica.backup import clone_database
from repro.replica.feed import FeedEntry, PrimaryFeed, ReplStats, bind_repl_stats
from repro.sim.clock import SimClock

#: metadata tag holding the replica's durable feed cursor (on the
#: replica's own root device — never shipped anywhere).
REPL_CURSOR_TAG = "repl_cursor"

#: feed entries per sync round.
DEFAULT_BATCH_ENTRIES = 256


class ReplicaServer(InversionServer):
    """A promotable read-only replica behind the ordinary RPC surface.

    Construction goes through :meth:`seed` (base backup from a live
    primary) or :meth:`reopen` (restart from an existing replica
    directory, resuming at the durable cursor)."""

    #: RPC methods a read-only replica serves.  ``p_begin``/``p_commit``
    #: give clients a stable multi-read snapshot; such transactions
    #: write nothing, so they never touch the shipped status file.
    #: ``p_query`` is excluded wholesale — POSTQUEL can mutate.
    READ_METHODS = frozenset({
        "p_begin", "p_commit", "p_abort",
        "p_open", "p_close", "p_read", "p_lseek",
        "p_stat", "p_readdir",
    })

    def __init__(self, fs: InversionFS, feed: PrimaryFeed | None,
                 replica_id: str, cursor: int,
                 batch_entries: int = DEFAULT_BATCH_ENTRIES,
                 staleness_xids: int | None = None) -> None:
        super().__init__(fs)
        self.db = fs.db
        self.feed = feed
        self.replica_id = replica_id
        self.cursor = cursor
        self.batch_entries = batch_entries
        #: bounded-staleness contract: when set, a read arriving while
        #: the replica is more than this many xids behind the primary's
        #: durable horizon triggers a catch-up sync before being served.
        self.staleness_xids = staleness_xids
        self.read_only = True
        self.stats: ReplStats = feed.stats if feed is not None else ReplStats()
        #: entries applied since this replica was seeded/reopened,
        #: retained so a promotion can seed its own feed with them and
        #: surviving followers resume from their cursors un-reseeded.
        self._retained: list[FeedEntry] = []
        self._retain_base = cursor

    # -- construction -----------------------------------------------------

    @classmethod
    def seed(cls, feed: PrimaryFeed, replica_path: str, replica_id: str,
             clock: SimClock | None = None,
             batch_entries: int = DEFAULT_BATCH_ENTRIES,
             staleness_xids: int | None = None) -> "ReplicaServer":
        """Checkpoint the primary, take a base backup at the feed's
        current position, and return a caught-up replica."""
        feed.checkpoint()
        cursor = feed.next_seq
        db = clone_database(feed.db, replica_path, clock=clock)
        fs = InversionFS.attach(db)
        replica = cls(fs, feed, replica_id, cursor,
                      batch_entries=batch_entries,
                      staleness_xids=staleness_xids)
        bind_repl_stats(db.obs.metrics, replica.stats)
        replica._save_cursor()
        feed.ack(replica_id, cursor)
        return replica

    @classmethod
    def reopen(cls, feed: PrimaryFeed | None, replica_path: str,
               replica_id: str, clock: SimClock | None = None,
               batch_entries: int = DEFAULT_BATCH_ENTRIES,
               staleness_xids: int | None = None) -> "ReplicaServer":
        """Restart a replica from its directory, resuming at the
        durable cursor — never rescanning from zero."""
        db = Database.open(replica_path, clock=clock)
        fs = InversionFS.attach(db)
        root = db.switch.get(db.switch.default_name)
        raw = root.read_meta(REPL_CURSOR_TAG)
        if raw is None:
            raise ReplicaError(
                f"{replica_path} has no saved feed cursor — not a replica")
        replica = cls(fs, feed, replica_id, int(raw.decode("ascii")),
                      batch_entries=batch_entries,
                      staleness_xids=staleness_xids)
        bind_repl_stats(db.obs.metrics, replica.stats)
        return replica

    def rebind_feed(self, feed: PrimaryFeed) -> None:
        """Follow a different primary (after a failover promoted a
        sibling).  The cursor carries over — feed positions are global
        entry sequence numbers, and the promoted primary seeded its
        feed with the entries it had applied."""
        self.feed = feed
        self.stats = feed.stats
        bind_repl_stats(self.db.obs.metrics, self.stats)

    # -- the apply loop ---------------------------------------------------

    def _apply_entry(self, entry: FeedEntry) -> None:
        """Replay one durable mutation.  Every branch is *ensure*
        semantics, so re-executing a half-applied round converges."""
        dev = self.db.switch.get(entry.dev)
        kind = entry.kind
        if kind == "create":
            if not dev.relation_exists(entry.a):
                dev.create_relation(entry.a)
        elif kind == "drop":
            if dev.relation_exists(entry.a):
                dev.drop_relation(entry.a)
        elif kind == "rename":
            # The device contract makes a replayed rename (src already
            # gone, dst present) a completed no-op.
            dev.rename_relation(entry.a, entry.b)
        elif kind == "extend":
            while dev.nblocks(entry.a) <= entry.b:
                dev.extend(entry.a)
        elif kind == "page":
            while dev.nblocks(entry.a) <= entry.b:
                dev.extend(entry.a)
            dev.write_page(entry.a, entry.b, entry.payload)
        elif kind == "meta":
            dev.sync_write_meta(entry.a, entry.payload)
        elif kind == "append":
            # Re-appending a status line on replay leaves duplicate
            # records in the file; they collapse at refresh() because
            # records land in a dict keyed by xid.
            dev.sync_append_meta(entry.a, entry.payload)
        else:
            raise ReplicaError(f"unknown feed entry kind {kind!r}")

    def _post_apply(self) -> None:
        """Advance visibility after a round: drop every cached page and
        catalog row, re-read the shipped status file, and resume the
        local clock past the newly visible history so local reads and a
        future promotion sort after it."""
        db = self.db
        db.buffers.invalidate_all(write_dirty=False)
        db.catalog.invalidate_cache()
        db.tm.refresh()
        resume_at = db.tm.max_recorded_time()
        if db.clock.now() < resume_at:
            db.clock.advance(resume_at - db.clock.now() + 1e-9)

    def _save_cursor(self) -> None:
        root = self.db.switch.get(self.db.switch.default_name)
        root.sync_write_meta(REPL_CURSOR_TAG,
                             str(self.cursor).encode("ascii"))
        self.stats.cursor_saves += 1

    def sync_round(self) -> tuple[int, bool]:
        """One pull/apply/save/ack round.  Returns (entries applied,
        more pending)."""
        if self.feed is None:
            raise ReplicaError(f"replica {self.replica_id} has no feed")
        entries, next_cursor, more = self.feed.pull(self.cursor,
                                                    self.batch_entries)
        if entries:
            for entry in entries:
                self._apply_entry(entry)
            self._post_apply()
            self._retained.extend(entries)
            self.cursor = next_cursor
            self._save_cursor()
            self.stats.rounds += 1
            self.stats.entries_shipped += len(entries)
            self.stats.pages_shipped += sum(
                1 for e in entries if e.kind == "page")
            self.stats.bytes_shipped += sum(e.nbytes for e in entries)
        self.feed.ack(self.replica_id, self.cursor)
        self._sample_lag()
        return len(entries), more

    def sync(self) -> int:
        """Catch up fully: rounds until the feed has nothing more.
        Returns total entries applied."""
        total = 0
        while True:
            applied, more = self.sync_round()
            total += applied
            if not more:
                return total

    def _sample_lag(self) -> None:
        feed = self.feed
        primary_xid = feed.durable_horizon()
        replica_xid = self.horizon()
        self.stats.lag_xids = max(0, primary_xid - replica_xid)
        if primary_xid > replica_xid:
            ptime = feed.db.tm.commit_time(primary_xid)
            rtime = feed.db.tm.commit_time(replica_xid)
            if ptime is not None and rtime is not None:
                self.stats.lag_seconds = max(0.0, ptime - rtime)
        else:
            self.stats.lag_seconds = 0.0

    # -- reads ------------------------------------------------------------

    def horizon(self) -> int:
        """The published read horizon: the highest committed xid whose
        shipped status record this replica has applied."""
        return self.db.tm.durable_committed_xid()

    def dispatch(self, session_id: int, method: str, *args, **kwargs):
        if self.read_only and method in self.ALLOWED:
            if method not in self.READ_METHODS:
                raise ReplicaReadOnlyError(
                    f"replica {self.replica_id} is read-only: {method!r} "
                    f"mutates (promote first, or route to the primary)")
            self.stats.replica_reads += 1
            if (self.staleness_xids is not None and self.feed is not None
                    and not self.in_transaction(session_id)):
                lag = self.feed.durable_horizon() - self.horizon()
                if lag > self.staleness_xids:
                    self.stats.staleness_syncs += 1
                    self.sync()
        return super().dispatch(session_id, method, *args, **kwargs)

    # -- promotion --------------------------------------------------------

    def promote(self) -> PrimaryFeed:
        """Become the primary.  If the old feed is still reachable (its
        durable log survives the primary process), a final catch-up
        round drains it first — the replica then recovers to exactly
        the state a local restart of the crashed primary would reach.
        Returns the new :class:`PrimaryFeed` this server now exports;
        surviving followers :meth:`rebind_feed` to it and resume from
        their cursors."""
        if not self.read_only:
            raise ReplicaError(f"{self.replica_id} is already a primary")
        if self.feed is not None:
            self.sync()
            self.feed = None
        # Complete any vacuum relation swap the shipped journal left
        # half-done — the same replay Database.open performs.
        from repro.db.vacuum import replay_rename_journal
        root = self.db.switch.get(self.db.switch.default_name)
        replayed = replay_rename_journal(self.db.switch, root)
        if replayed:
            self._post_apply()
        self.read_only = False
        self.stats.promotions += 1
        return PrimaryFeed.attach(self.db, stats=self.stats,
                                  base_seq=self._retain_base,
                                  log=list(self._retained))

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self.db.close()

    @property
    def path(self) -> str:
        return os.path.abspath(self.db.path)
