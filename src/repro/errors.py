"""Exception hierarchy for the Inversion reproduction.

Every error raised by the library derives from :class:`ReproError`, split
into three families mirroring the system layers: the database substrate
(``Db*``), the Inversion file system (``Inv*``), and the simulated
hardware / baseline stacks (``Sim*``, ``Nfs*``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Database substrate errors
# ---------------------------------------------------------------------------


class DbError(ReproError):
    """Base class for storage-manager and query errors."""


class PageError(DbError):
    """A slotted page was asked to do something impossible (overflow,
    bad slot number, corrupt header)."""


class PageOverflowError(PageError):
    """Record does not fit on an 8 KB page."""


class TupleError(DbError):
    """Schema/serialization mismatch when packing or unpacking a record."""


class TableError(DbError):
    """Bad table operation (unknown table, duplicate creation, dropped)."""


class TransactionError(DbError):
    """Transaction misuse: commit/abort without begin, nested begin
    (neither POSTGRES 4.0.1 nor Inversion supports nested transactions),
    or writing outside a transaction."""


class TransactionAborted(TransactionError):
    """The current transaction was aborted (e.g. chosen as a deadlock
    victim) and must be rolled back by the client."""


class DeadlockError(TransactionAborted):
    """The lock manager's waits-for graph found a cycle and chose this
    transaction as the victim."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured timeout."""


class BTreeError(DbError):
    """Internal B-tree invariant violation."""


class CatalogError(DbError):
    """System-catalog inconsistency or unknown catalog object."""


class TypeError_(DbError):
    """Database type-system error (unknown type, bad coercion).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class FunctionError(DbError):
    """User-defined function registration or invocation failure."""


class QueryError(DbError):
    """POSTQUEL parse or execution error."""


class QuerySyntaxError(QueryError):
    """The query text could not be parsed."""


class RecoveryError(DbError):
    """The database could not be brought to a consistent state on open."""


# ---------------------------------------------------------------------------
# Device manager errors
# ---------------------------------------------------------------------------


class DeviceError(ReproError):
    """Base class for device-manager errors."""


class UnknownDeviceError(DeviceError):
    """The device manager switch has no entry for the requested device."""


class WormViolationError(DeviceError):
    """An overwrite was attempted on write-once (WORM) media."""


class DeviceFullError(DeviceError):
    """The device has no free space/extents left."""


class InjectedFaultError(DeviceError):
    """A transient or permanent I/O error injected by the fault-injection
    testkit (:mod:`repro.testkit.faults`).  Subclassing DeviceError means
    production code handles it exactly like a real device failure."""


class SimulatedCrashError(ReproError):
    """Raised by the testkit's :class:`~repro.testkit.faults.FaultyDevice`
    at a scheduled crash point, *instead of* performing a durable write.
    Deliberately NOT a DeviceError: nothing in the stack may catch and
    absorb it, so it unwinds to the crash-schedule explorer, which then
    discards volatile state and re-opens the database."""


# ---------------------------------------------------------------------------
# Inversion file system errors
# ---------------------------------------------------------------------------


class InversionError(ReproError):
    """Base class for file-system-level errors."""


class FileNotFoundError_(InversionError):
    """No such file or directory.  Trailing underscore avoids shadowing
    the builtin ``FileNotFoundError`` (which it also subclasses so that
    idiomatic ``except FileNotFoundError`` works)."""


class FileExistsError_(InversionError):
    """Path already exists."""


class NotADirectoryError_(InversionError):
    """A path component is not a directory."""


class IsADirectoryError_(InversionError):
    """Directory used where a plain file is required."""


class DirectoryNotEmptyError(InversionError):
    """rmdir on a non-empty directory."""


class BadFileDescriptorError(InversionError):
    """Operation on a closed or invalid file descriptor."""


class ReadOnlyFileError(InversionError):
    """Write attempted on a historical (time-travel) file handle, which
    the paper forbids: 'Historical files may not be opened for
    writing.'"""


class FileTooLargeError(InversionError):
    """Write would exceed the 17.6 TB Inversion file-size limit."""


class FileTypeError(InversionError):
    """Unknown file type, or a function was applied to a file whose type
    does not define it."""


class MigrationError(InversionError):
    """A migration rule is malformed or a migration failed."""


class StructuralOpError(InversionError):
    """A by-reference structural operation (reflink/concat/slice/
    truncate) was asked for boundaries it cannot honour: a non-chunk-
    aligned concat source or slice start, a slice range outside the
    file, or a negative truncate size."""


# ---------------------------------------------------------------------------
# Replication errors
# ---------------------------------------------------------------------------


class ReplicaError(ReproError):
    """Base class for log-shipping replication errors
    (:mod:`repro.replica`)."""


class ReplicaReadOnlyError(ReplicaError):
    """A mutating RPC (write, create, explicit transaction, query)
    reached a read-only replica.  Writers must go to the primary;
    :meth:`~repro.replica.server.ReplicaServer.promote` lifts the
    restriction after a failover."""


class FeedGapError(ReplicaError):
    """The replica's cursor points below the feed's retained window
    (the primary trimmed entries the replica never pulled, or the
    replica is *ahead* of a freshly promoted primary).  Incremental
    sync cannot proceed; the replica must be re-seeded with a new base
    backup."""


# ---------------------------------------------------------------------------
# Multi-session scheduler errors
# ---------------------------------------------------------------------------


class SchedError(ReproError):
    """Base class for deterministic multi-session scheduler errors."""


class SchedAdmissionError(SchedError):
    """Backpressure: the scheduler's in-flight limit is reached and its
    bounded admission queue is full, so a new session is refused rather
    than queued without bound."""


class SchedStalledError(SchedError):
    """The event loop found unfinished sessions but nothing runnable —
    a session program bug (e.g. a transaction left open with an empty
    request queue), surfaced instead of spinning forever."""


class SessionFailedError(SchedError):
    """A session exhausted its deadlock-victim retry budget (or raised
    a non-retryable error) and the scheduler ran in strict mode."""


# ---------------------------------------------------------------------------
# Simulation / baseline errors
# ---------------------------------------------------------------------------


class SimError(ReproError):
    """Base class for simulated-hardware errors."""


class NfsError(ReproError):
    """Base class for the NFS/FFS baseline errors."""


class FfsError(NfsError):
    """Fast File System simulator error."""


class FfsFileTooLargeError(FfsError):
    """Write would exceed the FFS 4 GB practical file-size limit that the
    paper contrasts with Inversion's 17.6 TB."""
