"""Reproduction of the Inversion file system (Olson, USENIX 1993).

Top-level convenience surface::

    from repro import Database, InversionFS, InversionClient

    db = Database.create("/tmp/invdb")
    fs = InversionFS.mkfs(db)
    client = InversionClient(fs)

Packages:

- :mod:`repro.sim` — simulated 1993 hardware (clock, disk, network,
  NVRAM, CPU cost models).
- :mod:`repro.db` — the POSTGRES-like no-overwrite database substrate.
- :mod:`repro.devices` — the device manager switch and device managers.
- :mod:`repro.core` — the Inversion file system itself.
- :mod:`repro.nfs` — the ULTRIX NFS + PRESTOserve baseline.
- :mod:`repro.bench` — the paper's benchmark harness
  (``python -m repro.bench all``).
"""

from repro.db.database import Database
from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient

__version__ = "1.0.0"

__all__ = ["Database", "InversionFS", "InversionClient", "__version__"]
