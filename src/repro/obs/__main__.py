"""CLI for the metrics docs generator.

  PYTHONPATH=src python -m repro.obs --write-docs   # regenerate METRICS.md
  PYTHONPATH=src python -m repro.obs --check-docs   # fail (exit 1) on drift
"""

from __future__ import annotations

import argparse
import sys

from repro.obs import docs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Generate or drift-check METRICS.md from the metric "
                    "specs declared in code.")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--write-docs", action="store_true",
                       help="regenerate METRICS.md from the live specs")
    group.add_argument("--check-docs", action="store_true",
                       help="exit non-zero if METRICS.md is stale")
    parser.add_argument("--path", default=None,
                        help="override the METRICS.md location")
    args = parser.parse_args(argv)

    if args.write_docs:
        path = docs.write_docs(args.path)
        print(f"wrote {path} ({len(docs.catalog())} metrics)")
        return 0

    problems = docs.check_docs(args.path)
    if problems:
        for line in problems:
            print(line, file=sys.stderr)
        return 1
    print(f"METRICS.md is up to date ({len(docs.catalog())} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
