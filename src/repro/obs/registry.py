"""The metrics registry — one self-describing home for every counter.

The paper's evaluation (Tables 3–5, Figures 3–6) is an exercise in
accounting: positioning charges, status-file forces, RPC counts.  PRs
2–3 grew those counters as ad-hoc attributes (``prefetches``,
``batched_writes``, ``hwm_forces``, …) scattered across eight modules.
This registry gives them a common shape without moving them: every
metric is declared as a :class:`MetricSpec` (name, kind, unit, labels,
help string, owning module) next to the code that increments it, and a
:class:`MetricsRegistry` instance — one per :class:`~repro.db.database.
Database` session — collects live values.

Two value sources coexist per metric family:

- *mirrored* series read an existing stats attribute (or callable) at
  collection time.  The hot paths keep their plain ``stats.hits += 1``
  integer bumps — nothing is re-routed, so benchmark numbers are
  byte-identical with the registry active — while the registry still
  exposes the value under its registered name;
- *pushed* series are incremented through the registry
  (``metric.inc(...)``) and carry labels, e.g.
  ``device.pages_read{device=magnetic0,relation=inv23114}``.

Reset rule (the one rule, applied everywhere): **a metric belongs to
its owning component instance and spans exactly one Database session.**
It starts at zero when the component is constructed and is never reset
implicitly — ``flush_all``, ``flush_caches``, ``invalidate_all`` and
friends move data, not counters.  Components that physically outlive a
session must zero their session counters when a new session adopts
them: non-volatile device instances reset their stats in
``rebind_clock`` (see :meth:`repro.devices.base.DeviceManager.
rebind_clock`), and the registry snapshots the process-global BTree
descent counters at bind time so its ``btree.descents`` series starts
at zero per session even though the legacy class attributes (pinned by
benchmarks) keep counting process-wide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KINDS = ("counter", "gauge", "histogram")

LabelValues = tuple[str, ...]


@dataclass(frozen=True)
class MetricSpec:
    """The self-description every metric is registered with."""

    name: str                      # dotted family name, e.g. "buffer.hits"
    kind: str                      # "counter" | "gauge" | "histogram"
    unit: str                      # "ops", "pages", "bytes", "seconds", ...
    help: str                      # one-line meaning, rendered into METRICS.md
    module: str                    # owning module, e.g. "repro.db.buffer"
    labels: tuple[str, ...] = ()   # label names, e.g. ("device", "relation")

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"bad metric kind {self.kind!r} for {self.name!r}")
        if not self.help:
            raise ValueError(f"metric {self.name!r} registered without help text")
        if not self.unit:
            raise ValueError(f"metric {self.name!r} registered without a unit")


@dataclass
class HistogramValue:
    """Aggregate of observed values (no buckets — the consumers here
    want count/sum/extremes, not quantile sketches)."""

    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Metric:
    """One metric family: a spec plus its labelled series."""

    __slots__ = ("spec", "_pushed", "_mirrors", "_dynamic")

    def __init__(self, spec: MetricSpec) -> None:
        self.spec = spec
        #: label values -> float (counter/gauge) or HistogramValue
        self._pushed: dict[LabelValues, object] = {}
        #: label values -> zero-arg callable returning the live value
        self._mirrors: dict[LabelValues, object] = {}
        #: callables returning {label values: value} — for families whose
        #: label sets are discovered at runtime (per-relation descents).
        self._dynamic: list = []

    def _labelvals(self, labels: dict[str, str]) -> LabelValues:
        if tuple(sorted(labels)) != tuple(sorted(self.spec.labels)):
            raise ValueError(
                f"metric {self.spec.name!r} takes labels {self.spec.labels}, "
                f"got {tuple(labels)}")
        return tuple(str(labels[k]) for k in self.spec.labels)

    # -- pushed series ---------------------------------------------------

    def inc(self, amount: float = 1, **labels: str) -> None:
        if self.spec.kind != "counter":
            raise TypeError(f"{self.spec.name!r} is a {self.spec.kind}, not a counter")
        key = self._labelvals(labels)
        self._pushed[key] = self._pushed.get(key, 0) + amount

    def set(self, value: float, **labels: str) -> None:
        if self.spec.kind != "gauge":
            raise TypeError(f"{self.spec.name!r} is a {self.spec.kind}, not a gauge")
        self._pushed[self._labelvals(labels)] = value

    def observe(self, value: float, **labels: str) -> None:
        if self.spec.kind != "histogram":
            raise TypeError(f"{self.spec.name!r} is a {self.spec.kind}, not a histogram")
        key = self._labelvals(labels)
        hist = self._pushed.get(key)
        if hist is None:
            hist = self._pushed[key] = HistogramValue()
        hist.observe(value)

    # -- mirrored series -------------------------------------------------

    def mirror(self, fn, **labels: str) -> None:
        """Attach a pull source: the series' value is ``fn()`` at
        collection time.  This is how the existing stats dataclasses are
        migrated without touching their hot paths."""
        self._mirrors[self._labelvals(labels)] = fn

    def mirror_series(self, fn) -> None:
        """Attach a pull source yielding a whole dict of
        ``{label values: value}`` at collection time — for families
        whose series appear as the workload runs, like per-relation
        B-tree descents."""
        self._dynamic.append(fn)

    # -- reading ---------------------------------------------------------

    def value(self, **labels: str):
        key = self._labelvals(labels)
        mirror = self._mirrors.get(key)
        if mirror is not None:
            return mirror()
        for fn in self._dynamic:
            hit = fn().get(key)
            if hit is not None:
                return hit
        v = self._pushed.get(key)
        if v is None:
            return HistogramValue() if self.spec.kind == "histogram" else 0
        return v

    def series(self) -> dict[LabelValues, object]:
        """Every labelled series' current value."""
        out: dict[LabelValues, object] = {}
        for key, v in self._pushed.items():
            out[key] = v
        for fn in self._dynamic:
            out.update(fn())
        for key, fn in self._mirrors.items():
            out[key] = fn()
        return out

    def total(self) -> float:
        """Sum across series (histograms contribute their counts)."""
        total = 0.0
        for v in self.series().values():
            total += v.count if isinstance(v, HistogramValue) else v
        return total

    def reset(self) -> None:
        """Zero the pushed series.  Mirrored series belong to their
        stats object and follow the owning component's lifetime — see
        the reset rule in the module docstring."""
        self._pushed.clear()


@dataclass
class MetricsRegistry:
    """All metric families of one Database session."""

    _metrics: dict[str, Metric] = field(default_factory=dict)

    def register(self, spec: MetricSpec) -> Metric:
        """Register a family.  Re-registering the identical spec returns
        the existing family (components created twice in one session,
        e.g. a second HeapFile over the same stats object, share it);
        a conflicting spec under the same name is an error."""
        existing = self._metrics.get(spec.name)
        if existing is not None:
            if existing.spec != spec:
                raise ValueError(
                    f"metric {spec.name!r} already registered with a "
                    f"different spec")
            return existing
        metric = Metric(spec)
        self._metrics[spec.name] = metric
        return metric

    def register_all(self, specs) -> list[Metric]:
        return [self.register(spec) for spec in specs]

    def get(self, name: str) -> Metric:
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def describe(self) -> list[MetricSpec]:
        """Every registered spec, sorted by name — the self-description
        METRICS.md is generated from."""
        return [self._metrics[name].spec for name in self.names()]

    def value(self, name: str, **labels: str):
        return self._metrics[name].value(**labels)

    def collect(self) -> dict[str, dict[LabelValues, object]]:
        """Snapshot of every family's series."""
        return {name: self._metrics[name].series() for name in self.names()}

    def reset(self) -> None:
        """The only sanctioned explicit reset: zero every pushed series.
        Mirrored stats objects are reset by recreating their owning
        component (the session rule)."""
        for metric in self._metrics.values():
            metric.reset()
