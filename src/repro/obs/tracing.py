"""Trace spans over the simulated clock.

A span brackets one operation (an RPC dispatch, a B-tree descent, a
batched device write) with sim-clock timestamps and a parent/child
relationship, so a 1 MB write can be read as a tree: ``rpc.call`` →
``chunks.flush`` → ``buffer.flush_run`` → ``device.write``.

Tracing is **off by default and zero-cost when off**: every
instrumentation site does ``if tracer is not None and tracer.enabled:``
(or receives the shared :data:`NO_SPAN` no-op), so the hot paths the
benchmarks time pay one attribute check.  When on, spans read
``clock.now()`` but never advance it, and they touch no device — so
crash schedules and every simulated-time measurement are identical
with tracing enabled (tests/obs/test_invisibility.py holds us to
that).

Events are dicts; sinks are either an in-memory list or a JSONL file
(one event per line, written outside the simulation).
"""

from __future__ import annotations

import json
import threading
from typing import IO

from repro.obs.registry import MetricSpec

METRICS = (
    MetricSpec("trace.spans", "counter", "events",
               "Trace spans emitted since tracing was enabled.",
               "repro.obs.tracing"),
)


class _NoopSpan:
    """The disabled-tracer span: a shared, do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type=None, exc=None, tb=None) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


NO_SPAN = _NoopSpan()


class _Span:
    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = None
        self.start = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. how many pages a
        read-ahead actually fetched)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        tr = self.tracer
        stack = tr._stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = tr._next_id()
        stack.append(self.span_id)
        self.start = tr.clock.now() if tr.clock is not None else 0.0
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tr = self.tracer
        stack = tr._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        end = tr.clock.now() if tr.clock is not None else 0.0
        # Attrs first: the envelope keys below are reserved and always
        # win (an attr named "start" must not clobber the timestamp).
        event = dict(self.attrs)
        event.update(
            span=self.span_id,
            parent=self.parent_id,
            name=self.name,
            start=self.start,
            end=end,
        )
        if exc_type is not None:
            event["error"] = exc_type.__name__
        tr._emit(event)


class Tracer:
    """Span factory bound to a simulated clock.

    Disabled by default; :meth:`enable` attaches a sink.  Span ids are
    a per-tracer sequence, so two runs of the same workload produce
    identical traces — determinism is part of the contract.
    """

    def __init__(self, clock=None) -> None:
        self.enabled = False
        self.clock = clock
        self.spans_emitted = 0
        self._events: list[dict] | None = None
        self._file: IO[str] | None = None
        self._path: str | None = None
        self._id = 0
        self._local = threading.local()

    # -- lifecycle -------------------------------------------------------

    def enable(self, sink: list | None = None, path: str | None = None) -> None:
        """Turn tracing on.  ``sink`` collects events in memory;
        ``path`` appends them as JSONL.  With neither, events go to an
        internal list readable via :meth:`events`."""
        self.enabled = True
        self._events = sink if sink is not None else []
        if path is not None:
            self._path = path
            self._file = open(path, "a", encoding="utf-8")

    def disable(self) -> None:
        self.enabled = False
        if self._file is not None:
            self._file.close()
            self._file = None

    def events(self) -> list[dict]:
        """The in-memory event list (empty when tracing never ran)."""
        return self._events if self._events is not None else []

    # -- span API --------------------------------------------------------

    def span(self, name: str, **attrs):
        """A context manager bracketing one operation.  Call sites on
        hot paths should guard with ``tracer.enabled`` themselves to
        skip even the attribute packing; this method still returns the
        shared no-op span when disabled so unguarded sites stay
        correct."""
        if not self.enabled:
            return NO_SPAN
        return _Span(self, name, attrs)

    # -- internals -------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def swap_stack(self, stack: list[int]) -> list[int]:
        """Replace the calling thread's open-span stack, returning the
        previous one.  The cooperative multi-session scheduler switches
        sessions on a single thread; swapping stacks at each context
        switch keeps every session's spans parented within its own
        request tree instead of under whatever span the previous
        session left open."""
        old = self._stack()
        self._local.stack = stack
        return old

    def _next_id(self) -> int:
        self._id += 1
        return self._id

    def _emit(self, event: dict) -> None:
        self.spans_emitted += 1
        if self._events is not None:
            self._events.append(event)
        if self._file is not None:
            self._file.write(json.dumps(event) + "\n")
            self._file.flush()
