"""Unified observability: metrics registry, trace spans, per-transaction
I/O accounting.

One :class:`Observability` object rides on each
:class:`~repro.db.database.Database` session (``db.obs``) and bundles:

- ``db.obs.metrics`` — a :class:`~repro.obs.registry.MetricsRegistry`
  holding every counter the storage system keeps, self-described with
  unit/help/labels (``python -m repro.obs --write-docs`` renders them
  to METRICS.md);
- ``db.obs.tracer`` — a :class:`~repro.obs.tracing.Tracer`, off by
  default and zero-cost when off, emitting parent/child spans with
  sim-clock timestamps;
- ``db.obs.tx`` — a :class:`~repro.obs.accounting.TxAccountant`
  attributing buffer hits/misses, device I/O, lock waits and
  status-file forces to the owning xid.

Everything here observes the simulation without participating in it:
no method advances the :class:`~repro.sim.clock.SimClock` or touches a
device, which is what makes benchmark numbers and crash schedules
byte-identical with observability active (the invisibility tests pin
this).
"""

from __future__ import annotations

from repro.obs.accounting import FIELDS, TxAccountant
from repro.obs.registry import (HistogramValue, Metric, MetricSpec,
                                MetricsRegistry)
from repro.obs.tracing import NO_SPAN, Tracer

__all__ = [
    "FIELDS", "HistogramValue", "Metric", "MetricSpec", "MetricsRegistry",
    "NO_SPAN", "Observability", "Tracer", "TxAccountant",
]


def _mirror_all(registry: MetricsRegistry, specs, obj, **labels) -> None:
    """Register ``specs`` and mirror each from the attribute named by
    the spec's last dotted component (``buffer.hits`` reads
    ``obj.hits``).  The migration convention: family names end in the
    legacy attribute name, so the hot paths keep their plain integer
    bumps."""
    for spec in specs:
        attr = spec.name.rsplit(".", 1)[-1]
        registry.register(spec).mirror(
            lambda o=obj, a=attr: getattr(o, a), **labels)


class Observability:
    """The per-session bundle: registry + tracer + accountant, plus the
    hot-path charge helpers the instrumented layers call."""

    def __init__(self, clock=None) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock)
        self.tx = TxAccountant()
        from repro.obs import tracing
        self.metrics.register(tracing.METRICS[0]).mirror(
            lambda: self.tracer.spans_emitted)
        # Pushed per-relation device families, bound by bind_database().
        self._m_dev_reads = None
        self._m_dev_pages_read = None
        self._m_dev_writes = None
        self._m_dev_pages_written = None
        self._m_lock_waits = None
        self._m_lock_wait_seconds = None
        self._m_lock_deadlocks = None
        self._m_lock_timeouts = None
        self._m_heap_rows = None
        self._m_chunk_range_reads = None
        self._m_chunk_flushes = None
        self._m_chunks_written = None
        self._m_rpc_dispatches = None

    # -- tracing ---------------------------------------------------------

    def span(self, name: str, **attrs):
        """A trace span, or the shared no-op when tracing is off.  Hot
        paths should still guard with ``obs.tracer.enabled`` to skip
        the keyword packing."""
        tracer = self.tracer
        if not tracer.enabled:
            return NO_SPAN
        return tracer.span(name, **attrs)

    # -- binding ---------------------------------------------------------

    def bind_database(self, db) -> None:
        """Adopt a Database session: mirror every existing stats object
        onto the registry and create the pushed per-relation device
        families.  Called from ``Database.create``/``open`` once the
        transaction manager exists; idempotent, so ``add_device`` can
        re-invoke it."""
        from repro.db import buffer as buffer_mod
        from repro.db import locks as locks_mod
        from repro.db import transactions as tx_mod

        _mirror_all(self.metrics, buffer_mod.METRICS, db.buffers.stats)
        _mirror_all(self.metrics, tx_mod.METRICS, db.tm.stats)
        for spec in buffer_mod.DEVICE_METRICS:
            self.metrics.register(spec)
        self._m_dev_reads = self.metrics.get("device.reads")
        self._m_dev_pages_read = self.metrics.get("device.pages_read")
        self._m_dev_writes = self.metrics.get("device.writes")
        self._m_dev_pages_written = self.metrics.get("device.pages_written")
        for spec in locks_mod.METRICS:
            self.metrics.register(spec)
        self._m_lock_waits = self.metrics.get("lock.waits")
        self._m_lock_wait_seconds = self.metrics.get("lock.wait_seconds")
        self._m_lock_deadlocks = self.metrics.get("lock.deadlocks")
        self._m_lock_timeouts = self.metrics.get("lock.timeouts")
        from repro.core import chunks as chunks_mod
        from repro.db import heap as heap_mod
        self._m_heap_rows = self.metrics.register(heap_mod.METRICS[0])
        for spec in chunks_mod.METRICS:
            self.metrics.register(spec)
        self._m_chunk_range_reads = self.metrics.get("chunks.range_reads")
        self._m_chunk_flushes = self.metrics.get("chunks.flushes")
        self._m_chunks_written = self.metrics.get("chunks.chunks_written")
        self.bind_btree()
        for dev in db.switch:
            self.bind_device(dev)

    def bind_device(self, dev) -> None:
        """Mirror one device's stats, labelled ``device=<name>``.  The
        spec tuple lives in the device's own module; which one applies
        is decided by what the instance carries."""
        from repro.sim import disk as disk_mod

        inner = getattr(dev, "inner", dev)   # FaultyDevice proxies stats
        if hasattr(inner, "disk"):
            _mirror_all(self.metrics, disk_mod.METRICS, inner.disk.stats,
                        device=dev.name)
        if hasattr(inner, "staging_disk"):
            _mirror_all(self.metrics, disk_mod.METRICS,
                        inner.staging_disk.stats,
                        device=f"{dev.name}.staging")
        stats = getattr(inner, "stats", None)
        if stats is None:
            return
        module = __import__(type(inner).__module__, fromlist=["METRICS"])
        specs = getattr(module, "METRICS", ())
        if specs:
            _mirror_all(self.metrics, specs, stats, device=dev.name)

    def bind_btree(self) -> None:
        """Expose B-tree descent counts and the page-layer cache
        counter.  The legacy class attributes are process-global
        (benchmarks read them as absolutes), so the registry snapshots
        them here and reports session-relative deltas — the reset
        rule's escape hatch for process-lived state."""
        from repro.db import btree as btree_mod
        from repro.db import page as page_mod

        cls = btree_mod.BTree
        base_total = cls.total_descents
        base_rel = dict(cls.descents_by_rel)
        total = self.metrics.register(btree_mod.METRICS[0])
        total.mirror(lambda: cls.total_descents - base_total)
        per_rel = self.metrics.register(btree_mod.METRICS[1])

        def _series():
            out = {}
            for rel, n in cls.descents_by_rel.items():
                delta = n - base_rel.get(rel, 0)
                if delta:
                    out[(rel,)] = delta
            return out

        per_rel.mirror_series(_series)
        base_fast = cls.descent_fastpath_hits
        fast = self.metrics.register(btree_mod.METRICS[2])
        fast.mirror(lambda: cls.descent_fastpath_hits - base_fast)
        page_cls = page_mod.Page
        base_inval = page_cls.header_cache_invalidations
        inval = self.metrics.register(page_mod.METRICS[0])
        inval.mirror(lambda: page_cls.header_cache_invalidations - base_inval)

    def bind_client(self, client) -> None:
        """Mirror a remote client's RPC counters and its network
        model's stats (client-side components live outside the
        Database, so the client binds itself on construction)."""
        from repro.core import client as client_mod
        from repro.sim import network as network_mod

        _mirror_all(self.metrics, client_mod.METRICS, client)
        _mirror_all(self.metrics, network_mod.METRICS, client.network.stats)

    def bind_vfs(self, vfs) -> None:
        """Mirror a transactional-VFS session's counters (the VFS sits
        above whatever client it wraps, so it binds itself the same way
        clients do)."""
        from repro.vfs import api as vfs_mod

        _mirror_all(self.metrics, vfs_mod.METRICS, vfs)

    # -- hot-path charge helpers ----------------------------------------

    def device_read(self, device: str, relation: str, pages: int) -> None:
        """One device read call moving ``pages`` pages (a batched run
        counts once — the batch totals stay disjoint from the per-page
        totals)."""
        if self._m_dev_reads is not None:
            self._m_dev_reads.inc(1, device=device, relation=relation)
            self._m_dev_pages_read.inc(pages, device=device, relation=relation)
        self.tx.charge_io("device_read_ops", 1, "device_pages_read", pages)

    def device_write(self, device: str, relation: str, pages: int,
                     ops: int = 1) -> None:
        if self._m_dev_writes is not None:
            self._m_dev_writes.inc(ops, device=device, relation=relation)
            self._m_dev_pages_written.inc(pages, device=device,
                                          relation=relation)
        self.tx.charge_io("device_write_ops", ops,
                          "device_pages_written", pages)

    def heap_inserted(self, relation: str, n: int = 1) -> None:
        if self._m_heap_rows is not None:
            self._m_heap_rows.inc(n, relation=relation)

    def chunk_range_read(self) -> None:
        if self._m_chunk_range_reads is not None:
            self._m_chunk_range_reads.inc()

    def chunk_flush(self, nwritten: int) -> None:
        if self._m_chunk_flushes is not None:
            self._m_chunk_flushes.inc()
            if nwritten:
                self._m_chunks_written.inc(nwritten)

    def rpc_dispatch(self, method: str) -> None:
        if self._m_rpc_dispatches is None:
            from repro.core import server as server_mod
            self._m_rpc_dispatches = self.metrics.register(
                server_mod.METRICS[0])
        self._m_rpc_dispatches.inc(method=method)

    def lock_wait(self, xid: int, seconds: float) -> None:
        if self._m_lock_waits is not None:
            self._m_lock_waits.inc()
            self._m_lock_wait_seconds.observe(seconds)
        self.tx.charge_xid(xid, "lock_waits")
        self.tx.charge_xid(xid, "lock_wait_seconds", seconds)

    def lock_deadlock(self, xid: int) -> None:
        if self._m_lock_deadlocks is not None:
            self._m_lock_deadlocks.inc()

    def lock_timeout(self, xid: int) -> None:
        if self._m_lock_timeouts is not None:
            self._m_lock_timeouts.inc()
