"""Per-transaction I/O accounting.

The paper's cost story is per-operation (Table 3's nine operations,
Table 4's per-call breakdown); the natural unit inside the data manager
is the transaction.  :class:`TxAccountant` attributes device reads and
writes, buffer hits and misses, lock waits, and status-file forces to
the transaction that incurred them, so ``repro.bench.report`` can
print where each xid's time went.

Attribution is by *current transaction*: :meth:`begin` (called from
``Database.begin``) marks the xid current for the calling thread, and
every charge site (buffer cache, lock manager, transaction manager)
calls :meth:`charge`, which books to that thread's current xid — or
drops the charge on the floor when no transaction is open (bootstrap
reads, benchmark cache flushes).  ``Database.commit`` keeps the xid
current through the commit-time page force and status append, so a
transaction's durability cost lands on it, not on the next one.

Charges are plain dict increments against the simulated counters —
they never advance the simulated clock, so accounting is always on and
benchmark numbers are unchanged by it.
"""

from __future__ import annotations

import threading

#: every per-transaction cost field, in report column order.
FIELDS = (
    "buffer_hits",        # buffer-cache hits
    "buffer_misses",      # buffer-cache misses (each paid device time)
    "device_read_ops",    # device read operations (batched run = 1 op)
    "device_pages_read",  # pages transferred by those reads
    "device_write_ops",   # device write operations (batched run = 1 op)
    "device_pages_written",  # pages transferred by those writes
    "lock_waits",         # times the transaction blocked on a lock
    "lock_wait_seconds",  # wall (real) seconds spent blocked
    "status_forces",      # forced status-file appends this xid triggered
    "client_cache_hits",  # chunks later served from a client cache that
                          # this xid's device reads originally filled
)


class TxAccountant:
    """Books per-xid cost rows; thread-safe via a thread-local current
    xid (concurrent sessions on one Database attribute independently)."""

    def __init__(self) -> None:
        self._local = threading.local()
        #: xid -> {field: value}; insertion order = begin order.
        self._rows: dict[int, dict[str, float]] = {}

    # -- transaction lifecycle ------------------------------------------

    def begin(self, xid: int) -> None:
        self._local.xid = xid
        self._rows.setdefault(xid, dict.fromkeys(FIELDS, 0))

    def end(self, xid: int) -> None:
        if getattr(self._local, "xid", None) == xid:
            self._local.xid = None

    def activate(self, xid: int | None) -> None:
        """Make ``xid`` the calling thread's current transaction without
        creating a row (``None`` deactivates).  The cooperative
        scheduler calls this at every context switch so charges land on
        the session being advanced, not on whichever session last
        called :meth:`begin` — on one thread the begin/end protocol
        alone cannot tell interleaved sessions apart."""
        self._local.xid = xid
        if xid is not None:
            self._rows.setdefault(xid, dict.fromkeys(FIELDS, 0))

    def current_xid(self) -> int | None:
        return getattr(self._local, "xid", None)

    # -- charging --------------------------------------------------------

    def charge(self, field: str, amount: float = 1) -> None:
        """Book ``amount`` to the calling thread's current transaction
        (no-op outside a transaction)."""
        xid = getattr(self._local, "xid", None)
        if xid is None:
            return
        self._rows[xid][field] += amount

    def charge_io(self, ops_field: str, ops: float,
                  pages_field: str, pages: float) -> None:
        """Book one I/O op-count/page-count pair in a single call — the
        device hot path charges two fields per operation, and fusing
        them halves the thread-local and row lookups."""
        xid = getattr(self._local, "xid", None)
        if xid is None:
            return
        row = self._rows[xid]
        row[ops_field] += ops
        row[pages_field] += pages

    def charge_xid(self, xid: int, field: str, amount: float = 1) -> None:
        """Book to an explicit xid — used where the payer is known
        directly (the lock manager knows which transaction waited)."""
        row = self._rows.get(xid)
        if row is None:
            row = self._rows[xid] = dict.fromkeys(FIELDS, 0)
        row[field] += amount

    # -- reading ---------------------------------------------------------

    def row(self, xid: int) -> dict[str, float]:
        return dict(self._rows.get(xid) or dict.fromkeys(FIELDS, 0))

    def breakdown(self) -> dict[int, dict[str, float]]:
        """Every accounted transaction's cost row, in begin order."""
        return {xid: dict(row) for xid, row in self._rows.items()}

    def reset(self) -> None:
        self._rows.clear()
