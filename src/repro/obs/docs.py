"""METRICS.md generation and drift checking.

Every instrumented module declares a module-level ``METRICS`` tuple of
:class:`~repro.obs.registry.MetricSpec` (plus ``DEVICE_METRICS`` for
the buffer cache's per-relation device families) next to the code that
bumps the values.  This module gathers those declarations — no live
Database needed — renders them as METRICS.md, and compares the
rendered text against the committed file so CI fails when code and
docs drift (``python -m repro.obs --check-docs``).
"""

from __future__ import annotations

import importlib
import os

from repro.obs.registry import MetricSpec

#: every module that declares metrics, in the order sections render.
OWNING_MODULES = (
    "repro.db.page",
    "repro.db.buffer",
    "repro.db.btree",
    "repro.db.heap",
    "repro.db.locks",
    "repro.db.transactions",
    "repro.core.chunks",
    "repro.core.client",
    "repro.core.server",
    "repro.cache.leases",
    "repro.cache.client",
    "repro.sched.scheduler",
    "repro.shard.cluster",
    "repro.vfs.api",
    "repro.replica.feed",
    "repro.sim.disk",
    "repro.sim.network",
    "repro.sim.nvram",
    "repro.devices.memdisk",
    "repro.devices.jukebox",
    "repro.devices.tape",
    "repro.nfs.ffs",
    "repro.obs.tracing",
)

HEADER = """\
# Metrics reference

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with:  PYTHONPATH=src python -m repro.obs --write-docs
     CI runs:          PYTHONPATH=src python -m repro.obs --check-docs -->

Every metric the storage system keeps, generated from the
`MetricSpec` declarations each module registers (`METRICS` tuples —
the same specs a live `Database` session binds into `db.obs.metrics`).
Counters follow one reset rule: **a metric belongs to its owning
component instance and spans exactly one `Database` session** — it
starts at zero at construction, is never implicitly reset by
`flush_all`/`invalidate_all`, and components that physically outlive a
session (non-volatile devices, the process-global B-tree descent
attributes) zero or re-baseline their session counters when a new
session adopts them.
"""


def default_docs_path() -> str:
    """METRICS.md at the repository root (three levels up from here)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(here))),
                        "METRICS.md")


def catalog() -> list[MetricSpec]:
    """Every declared spec, in module order then declaration order."""
    specs: list[MetricSpec] = []
    seen: set[str] = set()
    for modname in OWNING_MODULES:
        module = importlib.import_module(modname)
        for attr in ("METRICS", "DEVICE_METRICS"):
            for spec in getattr(module, attr, ()):
                if spec.name in seen:
                    raise ValueError(
                        f"metric {spec.name!r} declared twice "
                        f"(second time in {modname})")
                if spec.module != modname:
                    raise ValueError(
                        f"metric {spec.name!r} declared in {modname} but "
                        f"claims module {spec.module!r}")
                seen.add(spec.name)
                specs.append(spec)
    return specs


def _label_text(spec: MetricSpec) -> str:
    return ", ".join(f"`{label}`" for label in spec.labels) or "—"


def render() -> str:
    """The full METRICS.md text."""
    lines = [HEADER]
    by_module: dict[str, list[MetricSpec]] = {}
    for spec in catalog():
        by_module.setdefault(spec.module, []).append(spec)
    for modname in OWNING_MODULES:
        specs = by_module.get(modname)
        if not specs:
            continue
        lines.append(f"\n## `{modname}`\n")
        lines.append("| Metric | Kind | Unit | Labels | Help |")
        lines.append("| --- | --- | --- | --- | --- |")
        for spec in specs:
            lines.append(
                f"| `{spec.name}` | {spec.kind} | {spec.unit} "
                f"| {_label_text(spec)} | {spec.help} |")
    lines.append("")
    return "\n".join(lines)


def write_docs(path: str | None = None) -> str:
    path = path or default_docs_path()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render())
    return path


def check_docs(path: str | None = None) -> list[str]:
    """Return a list of problems (empty = docs match the code)."""
    path = path or default_docs_path()
    expected = render()
    try:
        with open(path, encoding="utf-8") as fh:
            actual = fh.read()
    except FileNotFoundError:
        return [f"{path} is missing — run `python -m repro.obs --write-docs`"]
    if actual == expected:
        return []
    exp_lines = expected.splitlines()
    act_lines = actual.splitlines()
    problems = [f"{path} is stale — run `python -m repro.obs --write-docs`"]
    for i, (exp, act) in enumerate(zip(exp_lines, act_lines), start=1):
        if exp != act:
            problems.append(f"  first difference at line {i}:")
            problems.append(f"    docs: {act}")
            problems.append(f"    code: {exp}")
            break
    else:
        problems.append(
            f"  line counts differ: docs {len(act_lines)}, "
            f"code {len(exp_lines)}")
    return problems
