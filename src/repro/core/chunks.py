"""Decomposition of files into tables (Figure 1).

"For every file, a uniquely-named table is created…  When a user writes
a new data chunk to a file, a record is created consisting of the chunk
number, or index of this chunk into the file, and the data chunk…  The
name of the table storing data for a particular file is computed from
the file identifier in the naming table" — for file 23114 the table is
``inv23114``.  A B-tree on the chunk number speeds seeks, and because
the index covers *all* versions of every chunk, historical file reads
go through the same index.

The reserved ``selfid`` column is the paper's "space has been reserved
in the tables storing file data" for self-identifying blocks (it holds
the file identifier, letting a consistency checker detect misdirected
writes).

:class:`ChunkStore` also implements write coalescing: "multiple small
sequential writes during a single transaction are coalesced to maximize
the size of the chunk stored in each database record".  Dirty chunks
accumulate in a per-open-file buffer and are pushed into the table in
chunk order on flush.
"""

from __future__ import annotations

from repro.core.constants import CHUNK_SIZE, COALESCE_CHUNK_LIMIT, MAX_CHUNKNO
from repro.db.snapshot import Snapshot
from repro.db.transactions import Transaction
from repro.db.tuples import Column, Schema
from repro.errors import FileTooLargeError, TableError

CHUNK_SCHEMA = Schema([
    Column("chunkno", "int4"),
    Column("selfid", "int8"),
    Column("data", "bytea"),
])
CHUNK_INDEXES = (("chunkno",),)


def chunk_table_name(fileid: int) -> str:
    """File identifier → data table name (``inv23114`` for 23114)."""
    return f"inv{fileid}"


class ChunkStore:
    """Chunk-level access to one file's data table."""

    def __init__(self, db, fileid: int, tx: Transaction | None) -> None:
        self.db = db
        self.fileid = fileid
        self.table = db.table(chunk_table_name(fileid), tx)
        self._indexed = self.table.has_index(("chunkno",))
        self._dirty: dict[int, bytes] = {}

    def _find_chunk(self, chunkno: int, snapshot: Snapshot,
                    tx: Transaction | None):
        """(tid, row) of the visible version of one chunk, via the
        chunkno B-tree when present (a sequential scan otherwise — the
        ablation configuration)."""
        if self._indexed:
            for tid, row in self.table.index_eq(("chunkno",), (chunkno,),
                                                snapshot, tx):
                return tid, row
            return None
        for tid, row in self.table.scan(snapshot, tx):
            if row[0] == chunkno:
                return tid, row
        return None

    # -- DDL --------------------------------------------------------------

    @classmethod
    def create_table(cls, db, tx: Transaction, fileid: int,
                     device: str | None = None,
                     with_index: bool = True) -> None:
        """Create the per-file chunk table (+ chunkno index) on the
        requested device — "a file is located on [a] particular device
        manager at creation.  From that point on, accesses are
        device-transparent".  ``with_index=False`` exists only for the
        ablation study of the paper's Figure 3 explanation."""
        db.create_table(tx, chunk_table_name(fileid), CHUNK_SCHEMA,
                        device=device,
                        indexes=CHUNK_INDEXES if with_index else ())

    # -- reads -----------------------------------------------------------------

    def read_chunk(self, chunkno: int, snapshot: Snapshot,
                   tx: Transaction | None = None) -> bytes:
        """The chunk's bytes under ``snapshot`` (b'' for a hole).  The
        coalescing buffer shadows the table for the owning handle."""
        if chunkno in self._dirty:
            return self._dirty[chunkno]
        found = self._find_chunk(chunkno, snapshot, tx)
        return found[1][2] if found is not None else b""

    # -- writes -------------------------------------------------------------------

    def write_chunk(self, tx: Transaction, chunkno: int, data: bytes) -> None:
        """Buffer one chunk's new contents; auto-flushes when the
        coalescing buffer fills."""
        if chunkno > MAX_CHUNKNO:
            raise FileTooLargeError(
                f"chunk {chunkno} exceeds the maximum file size")
        if len(data) > CHUNK_SIZE:
            raise TableError(f"chunk of {len(data)} bytes exceeds CHUNK_SIZE")
        # Write intent: take X now, not at flush — see Table.lock_exclusive.
        self.table.lock_exclusive(tx)
        self._dirty[chunkno] = bytes(data)
        if len(self._dirty) >= COALESCE_CHUNK_LIMIT:
            self.flush(tx)

    def flush(self, tx: Transaction) -> int:
        """Push buffered chunks into the table in chunk order.  Existing
        visible versions are updated (old record marked deleted, new
        appended — the no-overwrite rule); new chunks are inserted.
        Returns the number of chunks written."""
        if not self._dirty:
            return 0
        snapshot = self.db.snapshot(tx)
        written = 0
        for chunkno in sorted(self._dirty):
            data = self._dirty[chunkno]
            found = self._find_chunk(chunkno, snapshot, tx)
            row = (chunkno, self.fileid, data)
            if found is not None:
                self.table.update(tx, found[0], row)
            else:
                self.table.insert(tx, row)
            written += 1
        self._dirty.clear()
        return written

    def discard(self) -> None:
        """Drop buffered writes (abort path)."""
        self._dirty.clear()

    # -- whole-file helpers -------------------------------------------------------------

    def visible_chunk_count(self, snapshot: Snapshot,
                            tx: Transaction | None = None) -> int:
        return sum(1 for __ in self.table.scan(snapshot, tx))

    def version_count(self) -> int:
        """Total stored chunk versions (current + superseded), before
        any vacuum — a measure of retained history."""
        return self.table.heap.record_count_physical()
