"""Decomposition of files into tables (Figure 1).

"For every file, a uniquely-named table is created…  When a user writes
a new data chunk to a file, a record is created consisting of the chunk
number, or index of this chunk into the file, and the data chunk…  The
name of the table storing data for a particular file is computed from
the file identifier in the naming table" — for file 23114 the table is
``inv23114``.  A B-tree on the chunk number speeds seeks, and because
the index covers *all* versions of every chunk, historical file reads
go through the same index.

The reserved ``selfid`` column is the paper's "space has been reserved
in the tables storing file data" for self-identifying blocks (it holds
the file identifier, letting a consistency checker detect misdirected
writes).

:class:`ChunkStore` also implements write coalescing: "multiple small
sequential writes during a single transaction are coalesced to maximize
the size of the chunk stored in each database record".  Dirty chunks
accumulate in a per-open-file buffer and are pushed into the table in
chunk order on flush.
"""

from __future__ import annotations

import struct

from repro.core.constants import CHUNK_SIZE, COALESCE_CHUNK_LIMIT, MAX_CHUNKNO
from repro.db.heap import TID
from repro.db.snapshot import Snapshot
from repro.db.transactions import Transaction
from repro.db.tuples import Column, Schema
from repro.errors import FileTooLargeError, TableError
from repro.obs.registry import MetricSpec
from repro.obs.tracing import NO_SPAN

METRICS = (
    MetricSpec("chunks.range_reads", "counter", "ops",
               "Multi-chunk read_range calls (one index range scan "
               "instead of per-chunk probes).",
               "repro.core.chunks"),
    MetricSpec("chunks.flushes", "counter", "ops",
               "Coalescing-buffer flushes pushing dirty chunks into "
               "the data table.",
               "repro.core.chunks"),
    MetricSpec("chunks.chunks_written", "counter", "chunks",
               "Chunk versions written by those flushes (inserts and "
               "no-overwrite updates).",
               "repro.core.chunks"),
)

CHUNK_SCHEMA = Schema([
    Column("chunkno", "int4"),
    Column("selfid", "int8"),
    Column("data", "bytea"),
])
CHUNK_INDEXES = (("chunkno",),)

#: by-reference chunk payload: (source fileid, source chunkno, source
#: version xmin).  A reference row stores ``-src_fileid`` in the selfid
#: column — a negative self identifier is impossible for a literal chunk
#: (oids are positive), so it doubles as the row discriminator without
#: touching the schema.
REF_PAYLOAD = struct.Struct("<qqq")
REF_CHAIN_LIMIT = 8


def encode_ref(src_fileid: int, src_chunkno: int, src_xmin: int) -> bytes:
    """Pack a by-reference chunk payload.  Pinning by the source
    version's ``xmin`` names one exact chunk version: immune to
    commit-time ties under group commit and valid even for a source
    written by the *same* transaction doing the clone."""
    return REF_PAYLOAD.pack(src_fileid, src_chunkno, src_xmin)


def decode_ref(payload: bytes) -> tuple[int, int, int]:
    """Unpack a by-reference payload → (fileid, chunkno, xmin)."""
    return REF_PAYLOAD.unpack(payload)


def is_reference_row(row) -> bool:
    """True when a chunk-table row is a by-reference pointer rather
    than a literal chunk."""
    return row[1] < 0


def chunk_table_name(fileid: int) -> str:
    """File identifier → data table name (``inv23114`` for 23114)."""
    return f"inv{fileid}"


class ChunkStore:
    """Chunk-level access to one file's data table."""

    def __init__(self, db, fileid: int, tx: Transaction | None) -> None:
        self.db = db
        self.fileid = fileid
        self.table = db.table(chunk_table_name(fileid), tx)
        self._indexed = self.table.has_index(("chunkno",))
        self._dirty: dict[int, bytes] = {}
        #: chunkno → merged, sorted [start, end) byte ranges the owner
        #: explicitly wrote (as opposed to bytes carried over by the
        #: read-modify-write merge).  A revalidating flush overlays
        #: exactly these ranges onto the *current* committed chunk, so
        #: stale merge bases never clobber a concurrent writer's bytes.
        self._spans: dict[int, list[tuple[int, int]]] = {}
        #: sticky revalidation flag set by the owning handle once it
        #: learns another transaction committed under it — makes the
        #: coalescing buffer's *auto*-flushes revalidate too, not just
        #: the final explicit flush.
        self.stale = False
        #: source-table handles cached per store while resolving
        #: by-reference rows (a reflinked file read touches the same
        #: source table for every chunk).
        self._src_tables: dict[int, object] = {}

    def _find_chunk(self, chunkno: int, snapshot: Snapshot,
                    tx: Transaction | None):
        """(tid, row) of the visible version of one chunk, via the
        chunkno B-tree when present (a sequential scan otherwise — the
        ablation configuration)."""
        if self._indexed:
            for tid, row in self.table.index_eq(("chunkno",), (chunkno,),
                                                snapshot, tx):
                return tid, row
            return None
        for tid, row in self.table.scan(snapshot, tx):
            if row[0] == chunkno:
                return tid, row
        return None

    # -- by-reference resolution ------------------------------------------

    def _row_bytes(self, row, tx: Transaction | None = None) -> bytes:
        """A chunk row's bytes: the literal payload, or — for a
        by-reference row — the bytes of the pinned source version."""
        if row[1] >= 0:
            return row[2]
        return self._resolve_ref(row[2], tx)

    def _src_table(self, fileid: int, tx: Transaction | None):
        cached = self._src_tables.get(fileid)
        if cached is None:
            name = chunk_table_name(fileid)
            if not self.db.table_exists(name, tx):
                return None
            cached = self.db.table(name, tx)
            self._src_tables[fileid] = cached
        return cached

    def _resolve_ref(self, payload: bytes, tx: Transaction | None,
                     depth: int = 0) -> bytes:
        """Bytes of the exact source chunk version a reference pins.

        The pin names a version, not a snapshot: the lookup matches on
        the stored ``xmin`` and deliberately bypasses visibility — the
        pinned version may long since have been superseded in the
        source file, in which case vacuum has moved it to the archive
        relation (``a_inv<fid>``), where the original transaction
        stamps are preserved and the same match applies."""
        if depth > REF_CHAIN_LIMIT:
            raise TableError("chunk reference chain too deep")
        try:
            sfid, schunk, sxmin = REF_PAYLOAD.unpack(payload)
        except struct.error:
            raise TableError(
                f"malformed chunk reference in inv{self.fileid}") from None
        src = self._src_table(sfid, tx)
        if src is not None:
            found = src._find_index(("chunkno",))
            if found is not None:
                _info, btree = found
                for tid in btree.search((schunk,)):
                    xmin, _xmax, values = src.heap.fetch_raw(tid)
                    if xmin == sxmin:
                        return self._ref_value(values, tx, depth)
            else:
                for _tid, xmin, _xmax, values in src.heap.scan_all_versions():
                    if values[0] == schunk and xmin == sxmin:
                        return self._ref_value(values, tx, depth)
        pair = self.db.archive_index_for(chunk_table_name(sfid), ("chunkno",))
        if pair is not None:
            aheap, abtree = pair
            for tid in abtree.search((schunk,)):
                xmin, _xmax, values = aheap.fetch_raw(tid)
                if xmin == sxmin:
                    return self._ref_value(values, tx, depth)
        else:
            aheap = self.db.archive_heap_for(chunk_table_name(sfid))
            if aheap is not None:
                for _tid, xmin, _xmax, values in aheap.scan_all_versions():
                    if values[0] == schunk and xmin == sxmin:
                        return self._ref_value(values, tx, depth)
        raise TableError(
            f"dangling chunk reference: inv{self.fileid} points at "
            f"inv{sfid} chunk {schunk} xmin {sxmin}, which no longer "
            f"exists in the live table or its archive")

    def _ref_value(self, values, tx: Transaction | None, depth: int) -> bytes:
        # Chains are flattened at clone time, so a reference resolving
        # to another reference means the source itself was a clone made
        # by older code or by hand — follow it defensively.
        if values[1] < 0:
            return self._resolve_ref(values[2], tx, depth + 1)
        return values[2]

    # -- DDL --------------------------------------------------------------

    @classmethod
    def create_table(cls, db, tx: Transaction, fileid: int,
                     device: str | None = None,
                     with_index: bool = True) -> None:
        """Create the per-file chunk table (+ chunkno index) on the
        requested device — "a file is located on [a] particular device
        manager at creation.  From that point on, accesses are
        device-transparent".  ``with_index=False`` exists only for the
        ablation study of the paper's Figure 3 explanation."""
        db.create_table(tx, chunk_table_name(fileid), CHUNK_SCHEMA,
                        device=device,
                        indexes=CHUNK_INDEXES if with_index else ())

    # -- reads -----------------------------------------------------------------

    def read_chunk(self, chunkno: int, snapshot: Snapshot,
                   tx: Transaction | None = None) -> bytes:
        """The chunk's bytes under ``snapshot`` (b'' for a hole).  The
        coalescing buffer shadows the table for the owning handle."""
        buffered = self._dirty.get(chunkno)
        if buffered is not None:
            return buffered
        found = self._find_chunk(chunkno, snapshot, tx)
        return self._row_bytes(found[1], tx) if found is not None else b""

    def read_range(self, lo: int, hi: int, snapshot: Snapshot,
                   tx: Transaction | None = None) -> dict[int, bytes]:
        """The visible bytes of every chunk in [lo, hi] (inclusive),
        resolved with one index range scan instead of a per-chunk probe.
        Absent chunk numbers are holes — callers substitute zeros.  The
        coalescing buffer shadows the table, exactly as in
        :meth:`read_chunk`."""
        if hi < lo:
            return {}
        obs = self.db.obs
        if obs is not None:
            obs.chunk_range_read()
        span = obs.span("chunks.read_range", fileid=self.fileid,
                        lo=lo, hi=hi) \
            if obs is not None and obs.tracer.enabled else NO_SPAN
        with span:
            chunks: dict[int, bytes] = {}
            if self._indexed:
                for _tid, row in self.table.index_range_newest(
                        ("chunkno",), (lo,), (hi,), snapshot, tx):
                    chunks[row[0]] = self._row_bytes(row, tx)
            else:
                for _tid, row in self.table.scan(snapshot, tx):
                    if lo <= row[0] <= hi and row[0] not in chunks:
                        # scan yields live versions then archive; keep the
                        # first visible one, matching _find_chunk.
                        chunks[row[0]] = self._row_bytes(row, tx)
            for chunkno, data in self._dirty.items():
                if lo <= chunkno <= hi:
                    chunks[chunkno] = data
            return chunks

    # -- writes -------------------------------------------------------------------

    def write_chunk(self, tx: Transaction, chunkno: int, data: bytes,
                    span: tuple[int, int] | None = None) -> None:
        """Buffer one chunk's new contents; auto-flushes when the
        coalescing buffer fills.  ``span`` is the [start, end) byte
        range the caller actually wrote within the chunk (None = the
        whole buffered content is authoritative, the default for
        callers that construct complete chunks)."""
        if chunkno > MAX_CHUNKNO:
            raise FileTooLargeError(
                f"chunk {chunkno} exceeds the maximum file size")
        if len(data) > CHUNK_SIZE:
            raise TableError(f"chunk of {len(data)} bytes exceeds CHUNK_SIZE")
        # Write intent: take X now, not at flush — see Table.lock_exclusive.
        self.table.lock_exclusive(tx)
        self._dirty[chunkno] = bytes(data)
        self._add_span(chunkno, *(span if span is not None
                                  else (0, CHUNK_SIZE)))
        if len(self._dirty) >= COALESCE_CHUNK_LIMIT:
            self.flush(tx)

    def _add_span(self, chunkno: int, start: int, end: int) -> None:
        spans = self._spans.get(chunkno)
        if spans is None:
            self._spans[chunkno] = [(start, end)]
            return
        spans.append((start, end))
        spans.sort()
        merged = [spans[0]]
        for s, e in spans[1:]:
            ls, le = merged[-1]
            if s <= le:
                merged[-1] = (ls, max(le, e))
            else:
                merged.append((s, e))
        self._spans[chunkno] = merged

    def flush(self, tx: Transaction, revalidate: bool = False,
              committed_size: int | None = None) -> int:
        """Push buffered chunks into the table in chunk order.  Existing
        visible versions are updated (old record marked deleted, new
        appended — the no-overwrite rule); new chunks are inserted.
        Returns the number of chunks written.

        ``revalidate=True`` means the file was committed to by another
        transaction while the owner's handle was open, so the buffered
        contents may carry stale read-modify-write bytes: each chunk
        whose written spans do not cover the committed extent is
        re-merged against the *current* committed version first.
        ``committed_size`` (the caller's committed-size hint) bounds
        that extent so fully-covering writes skip the re-read."""
        if not self._dirty:
            return 0
        obs = self.db.obs
        span = obs.span("chunks.flush", fileid=self.fileid,
                        chunks=len(self._dirty)) \
            if obs is not None and obs.tracer.enabled else NO_SPAN
        with span:
            if revalidate or self.stale:
                self._revalidate_buffered(tx, committed_size)
            return self._flush_buffered(tx, obs)

    def _revalidate_buffered(self, tx: Transaction,
                             committed_size: int | None) -> None:
        """Re-merge buffered chunks whose non-written bytes could be
        stale.  The skip rule: if the owner's written spans cover
        ``[0, max(extent_bound, len(buffered)))`` — where the extent
        bound is how far the committed file reaches into this chunk —
        no committed byte survives the overwrite, so the buffered
        content already equals the correct merge and no read is paid.
        (A flush of same-length offset-0 overwrites, the contended
        benchmark pattern, stays charge-identical to the fast path.)"""
        snapshot = self.db.snapshot(tx)
        for chunkno in sorted(self._dirty):
            data = self._dirty[chunkno]
            spans = self._spans.get(chunkno)
            if committed_size is not None:
                bound = min(max(0, committed_size - chunkno * CHUNK_SIZE),
                            CHUNK_SIZE)
            else:
                bound = CHUNK_SIZE
            need = max(bound, len(data))
            if spans and spans[0][0] == 0 and spans[0][1] >= need:
                continue
            found = self._find_chunk(chunkno, snapshot, tx)
            current = self._row_bytes(found[1], tx) if found is not None \
                else b""
            base = bytearray(current)
            if len(base) < len(data):
                base.extend(bytes(len(data) - len(base)))
            for s, e in spans or ():
                base[s:e] = data[s:e]
            self._dirty[chunkno] = bytes(base)

    def _flush_buffered(self, tx: Transaction, obs) -> int:
        snapshot = self.db.snapshot(tx)
        order = sorted(self._dirty)
        existing = self._resolve_existing(order, snapshot, tx)
        written = 0
        # Runs of brand-new chunks (the sequential-write case: nothing
        # to supersede) go to the heap as one contiguous append, so the
        # dirty pages they produce coalesce into batched device writes
        # at commit.  Updates stay individual — each must first mark its
        # old version deleted.
        batch: list[tuple] = []
        for chunkno in order:
            row = (chunkno, self.fileid, self._dirty[chunkno])
            tid = existing.get(chunkno)
            if tid is None:
                batch.append(row)
            else:
                if batch:
                    self.table.insert_many(tx, batch)
                    batch = []
                self.table.update(tx, tid, row)
            written += 1
        if batch:
            self.table.insert_many(tx, batch)
        self._dirty.clear()
        self._spans.clear()
        if obs is not None:
            obs.chunk_flush(written)
        return written

    def _resolve_existing(self, chunknos, snapshot: Snapshot,
                          tx: Transaction | None):
        """chunkno → TID of the visible existing version, for every
        dirty chunk that has one.  A dense dirty set (the sequential
        write case) is resolved with one index range scan; a sparse one
        falls back to per-chunk probes so a couple of random writes in a
        huge file don't pay a scan of the whole span."""
        lo, hi = chunknos[0], chunknos[-1]
        if self._indexed and hi - lo + 1 > 4 * len(chunknos):
            snap = snapshot
            return {c: found[0] for c in chunknos
                    if (found := self._find_chunk(c, snap, tx)) is not None}
        existing: dict[int, TID] = {}
        if self._indexed:
            wanted = set(chunknos)
            for tid, row in self.table.index_range_newest(
                    ("chunkno",), (lo,), (hi,), snapshot, tx):
                if row[0] in wanted:
                    existing[row[0]] = tid
        else:
            for c in chunknos:
                found = self._find_chunk(c, snapshot, tx)
                if found is not None:
                    existing[c] = found[0]
        return existing

    def discard(self) -> None:
        """Drop buffered writes (abort path)."""
        self._dirty.clear()
        self._spans.clear()

    # -- by-reference structural ops --------------------------------------

    def clone_range(self, tx: Transaction, src_store: "ChunkStore",
                    src_lo: int, src_hi: int, dst_lo: int = 0) -> int:
        """Clone the source's visible chunks in ``[src_lo, src_hi]``
        (inclusive) into this table starting at ``dst_lo`` — by
        reference.  Each cloned chunk costs one pointer row (a 24-byte
        payload naming the exact source version); no chunk data moves.
        Holes in the source stay holes.  Returns the number of chunks
        referenced.

        Cloning a row that is itself a reference copies the pointer
        verbatim (chunkno remapped), so chains never grow: every
        reference points at a literal version.  Copy-on-write falls out
        of the no-overwrite rule — a later write to a cloned chunk
        supersedes the pointer row with a literal one, diverging the
        two files without touching the source."""
        if src_hi < src_lo:
            return 0
        if dst_lo + (src_hi - src_lo) > MAX_CHUNKNO:
            raise FileTooLargeError(
                "clone target range exceeds the maximum file size")
        self.table.lock_exclusive(tx)
        snapshot = self.db.snapshot(tx)
        src = src_store
        pairs: list[tuple] = []
        if src._indexed:
            pairs = list(src.table.index_range_newest(
                ("chunkno",), (src_lo,), (src_hi,), snapshot, tx))
        else:
            seen: dict[int, tuple] = {}
            for tid, row in src.table.scan(snapshot, tx):
                if src_lo <= row[0] <= src_hi:
                    seen.setdefault(row[0], (tid, row))
            pairs = [seen[c] for c in sorted(seen)]
        batch: list[tuple] = []
        for tid, row in pairs:
            dst_chunkno = row[0] - src_lo + dst_lo
            if row[1] < 0:
                batch.append((dst_chunkno, row[1], row[2]))
            else:
                xmin = src.table.heap.fetch_raw(tid)[0]
                batch.append((dst_chunkno, -src.fileid,
                              encode_ref(src.fileid, row[0], xmin)))
        if not batch:
            return 0
        batch.sort(key=lambda r: r[0])
        self.table.insert_many(tx, batch)
        obs = self.db.obs
        if obs is not None:
            obs.chunk_flush(len(batch))
        return len(batch)

    def delete_from(self, tx: Transaction, first_chunkno: int) -> int:
        """Delete every visible chunk row numbered ``first_chunkno`` or
        higher (the truncate tail).  History is kept — the deleted
        versions remain readable through time travel, exactly like
        unlink."""
        self.table.lock_exclusive(tx)
        snapshot = self.db.snapshot(tx)
        victims: list[TID] = []
        if self._indexed:
            for tid, _row in self.table.index_range_newest(
                    ("chunkno",), (first_chunkno,), None, snapshot, tx):
                victims.append(tid)
        else:
            for tid, row in self.table.scan(snapshot, tx):
                if row[0] >= first_chunkno:
                    victims.append(tid)
        for tid in victims:
            self.table.delete(tx, tid)
        for chunkno in list(self._dirty):
            if chunkno >= first_chunkno:
                del self._dirty[chunkno]
                self._spans.pop(chunkno, None)
        return len(victims)

    # -- whole-file helpers -------------------------------------------------------------

    def visible_chunk_count(self, snapshot: Snapshot,
                            tx: Transaction | None = None) -> int:
        """Number of visible chunks — one index range scan when the
        chunkno index exists, a heap scan only in the ablation
        configuration."""
        if self._indexed:
            return sum(1 for __ in self.table.index_range_newest(
                ("chunkno",), None, None, snapshot, tx))
        return sum(1 for __ in self.table.scan(snapshot, tx))

    def version_count(self) -> int:
        """Total stored chunk versions (current + superseded), before
        any vacuum — a measure of retained history."""
        return self.table.heap.record_count_physical()
