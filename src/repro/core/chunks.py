"""Decomposition of files into tables (Figure 1).

"For every file, a uniquely-named table is created…  When a user writes
a new data chunk to a file, a record is created consisting of the chunk
number, or index of this chunk into the file, and the data chunk…  The
name of the table storing data for a particular file is computed from
the file identifier in the naming table" — for file 23114 the table is
``inv23114``.  A B-tree on the chunk number speeds seeks, and because
the index covers *all* versions of every chunk, historical file reads
go through the same index.

The reserved ``selfid`` column is the paper's "space has been reserved
in the tables storing file data" for self-identifying blocks (it holds
the file identifier, letting a consistency checker detect misdirected
writes).

:class:`ChunkStore` also implements write coalescing: "multiple small
sequential writes during a single transaction are coalesced to maximize
the size of the chunk stored in each database record".  Dirty chunks
accumulate in a per-open-file buffer and are pushed into the table in
chunk order on flush.
"""

from __future__ import annotations

from repro.core.constants import CHUNK_SIZE, COALESCE_CHUNK_LIMIT, MAX_CHUNKNO
from repro.db.heap import TID
from repro.db.snapshot import Snapshot
from repro.db.transactions import Transaction
from repro.db.tuples import Column, Schema
from repro.errors import FileTooLargeError, TableError
from repro.obs.registry import MetricSpec
from repro.obs.tracing import NO_SPAN

METRICS = (
    MetricSpec("chunks.range_reads", "counter", "ops",
               "Multi-chunk read_range calls (one index range scan "
               "instead of per-chunk probes).",
               "repro.core.chunks"),
    MetricSpec("chunks.flushes", "counter", "ops",
               "Coalescing-buffer flushes pushing dirty chunks into "
               "the data table.",
               "repro.core.chunks"),
    MetricSpec("chunks.chunks_written", "counter", "chunks",
               "Chunk versions written by those flushes (inserts and "
               "no-overwrite updates).",
               "repro.core.chunks"),
)

CHUNK_SCHEMA = Schema([
    Column("chunkno", "int4"),
    Column("selfid", "int8"),
    Column("data", "bytea"),
])
CHUNK_INDEXES = (("chunkno",),)


def chunk_table_name(fileid: int) -> str:
    """File identifier → data table name (``inv23114`` for 23114)."""
    return f"inv{fileid}"


class ChunkStore:
    """Chunk-level access to one file's data table."""

    def __init__(self, db, fileid: int, tx: Transaction | None) -> None:
        self.db = db
        self.fileid = fileid
        self.table = db.table(chunk_table_name(fileid), tx)
        self._indexed = self.table.has_index(("chunkno",))
        self._dirty: dict[int, bytes] = {}
        #: chunkno → merged, sorted [start, end) byte ranges the owner
        #: explicitly wrote (as opposed to bytes carried over by the
        #: read-modify-write merge).  A revalidating flush overlays
        #: exactly these ranges onto the *current* committed chunk, so
        #: stale merge bases never clobber a concurrent writer's bytes.
        self._spans: dict[int, list[tuple[int, int]]] = {}
        #: sticky revalidation flag set by the owning handle once it
        #: learns another transaction committed under it — makes the
        #: coalescing buffer's *auto*-flushes revalidate too, not just
        #: the final explicit flush.
        self.stale = False

    def _find_chunk(self, chunkno: int, snapshot: Snapshot,
                    tx: Transaction | None):
        """(tid, row) of the visible version of one chunk, via the
        chunkno B-tree when present (a sequential scan otherwise — the
        ablation configuration)."""
        if self._indexed:
            for tid, row in self.table.index_eq(("chunkno",), (chunkno,),
                                                snapshot, tx):
                return tid, row
            return None
        for tid, row in self.table.scan(snapshot, tx):
            if row[0] == chunkno:
                return tid, row
        return None

    # -- DDL --------------------------------------------------------------

    @classmethod
    def create_table(cls, db, tx: Transaction, fileid: int,
                     device: str | None = None,
                     with_index: bool = True) -> None:
        """Create the per-file chunk table (+ chunkno index) on the
        requested device — "a file is located on [a] particular device
        manager at creation.  From that point on, accesses are
        device-transparent".  ``with_index=False`` exists only for the
        ablation study of the paper's Figure 3 explanation."""
        db.create_table(tx, chunk_table_name(fileid), CHUNK_SCHEMA,
                        device=device,
                        indexes=CHUNK_INDEXES if with_index else ())

    # -- reads -----------------------------------------------------------------

    def read_chunk(self, chunkno: int, snapshot: Snapshot,
                   tx: Transaction | None = None) -> bytes:
        """The chunk's bytes under ``snapshot`` (b'' for a hole).  The
        coalescing buffer shadows the table for the owning handle."""
        buffered = self._dirty.get(chunkno)
        if buffered is not None:
            return buffered
        found = self._find_chunk(chunkno, snapshot, tx)
        return found[1][2] if found is not None else b""

    def read_range(self, lo: int, hi: int, snapshot: Snapshot,
                   tx: Transaction | None = None) -> dict[int, bytes]:
        """The visible bytes of every chunk in [lo, hi] (inclusive),
        resolved with one index range scan instead of a per-chunk probe.
        Absent chunk numbers are holes — callers substitute zeros.  The
        coalescing buffer shadows the table, exactly as in
        :meth:`read_chunk`."""
        if hi < lo:
            return {}
        obs = self.db.obs
        if obs is not None:
            obs.chunk_range_read()
        span = obs.span("chunks.read_range", fileid=self.fileid,
                        lo=lo, hi=hi) \
            if obs is not None and obs.tracer.enabled else NO_SPAN
        with span:
            chunks: dict[int, bytes] = {}
            if self._indexed:
                for _tid, row in self.table.index_range_newest(
                        ("chunkno",), (lo,), (hi,), snapshot, tx):
                    chunks[row[0]] = row[2]
            else:
                for _tid, row in self.table.scan(snapshot, tx):
                    if lo <= row[0] <= hi:
                        # scan yields live versions then archive; keep the
                        # first visible one, matching _find_chunk.
                        chunks.setdefault(row[0], row[2])
            for chunkno, data in self._dirty.items():
                if lo <= chunkno <= hi:
                    chunks[chunkno] = data
            return chunks

    # -- writes -------------------------------------------------------------------

    def write_chunk(self, tx: Transaction, chunkno: int, data: bytes,
                    span: tuple[int, int] | None = None) -> None:
        """Buffer one chunk's new contents; auto-flushes when the
        coalescing buffer fills.  ``span`` is the [start, end) byte
        range the caller actually wrote within the chunk (None = the
        whole buffered content is authoritative, the default for
        callers that construct complete chunks)."""
        if chunkno > MAX_CHUNKNO:
            raise FileTooLargeError(
                f"chunk {chunkno} exceeds the maximum file size")
        if len(data) > CHUNK_SIZE:
            raise TableError(f"chunk of {len(data)} bytes exceeds CHUNK_SIZE")
        # Write intent: take X now, not at flush — see Table.lock_exclusive.
        self.table.lock_exclusive(tx)
        self._dirty[chunkno] = bytes(data)
        self._add_span(chunkno, *(span if span is not None
                                  else (0, CHUNK_SIZE)))
        if len(self._dirty) >= COALESCE_CHUNK_LIMIT:
            self.flush(tx)

    def _add_span(self, chunkno: int, start: int, end: int) -> None:
        spans = self._spans.get(chunkno)
        if spans is None:
            self._spans[chunkno] = [(start, end)]
            return
        spans.append((start, end))
        spans.sort()
        merged = [spans[0]]
        for s, e in spans[1:]:
            ls, le = merged[-1]
            if s <= le:
                merged[-1] = (ls, max(le, e))
            else:
                merged.append((s, e))
        self._spans[chunkno] = merged

    def flush(self, tx: Transaction, revalidate: bool = False,
              committed_size: int | None = None) -> int:
        """Push buffered chunks into the table in chunk order.  Existing
        visible versions are updated (old record marked deleted, new
        appended — the no-overwrite rule); new chunks are inserted.
        Returns the number of chunks written.

        ``revalidate=True`` means the file was committed to by another
        transaction while the owner's handle was open, so the buffered
        contents may carry stale read-modify-write bytes: each chunk
        whose written spans do not cover the committed extent is
        re-merged against the *current* committed version first.
        ``committed_size`` (the caller's committed-size hint) bounds
        that extent so fully-covering writes skip the re-read."""
        if not self._dirty:
            return 0
        obs = self.db.obs
        span = obs.span("chunks.flush", fileid=self.fileid,
                        chunks=len(self._dirty)) \
            if obs is not None and obs.tracer.enabled else NO_SPAN
        with span:
            if revalidate or self.stale:
                self._revalidate_buffered(tx, committed_size)
            return self._flush_buffered(tx, obs)

    def _revalidate_buffered(self, tx: Transaction,
                             committed_size: int | None) -> None:
        """Re-merge buffered chunks whose non-written bytes could be
        stale.  The skip rule: if the owner's written spans cover
        ``[0, max(extent_bound, len(buffered)))`` — where the extent
        bound is how far the committed file reaches into this chunk —
        no committed byte survives the overwrite, so the buffered
        content already equals the correct merge and no read is paid.
        (A flush of same-length offset-0 overwrites, the contended
        benchmark pattern, stays charge-identical to the fast path.)"""
        snapshot = self.db.snapshot(tx)
        for chunkno in sorted(self._dirty):
            data = self._dirty[chunkno]
            spans = self._spans.get(chunkno)
            if committed_size is not None:
                bound = min(max(0, committed_size - chunkno * CHUNK_SIZE),
                            CHUNK_SIZE)
            else:
                bound = CHUNK_SIZE
            need = max(bound, len(data))
            if spans and spans[0][0] == 0 and spans[0][1] >= need:
                continue
            found = self._find_chunk(chunkno, snapshot, tx)
            current = found[1][2] if found is not None else b""
            base = bytearray(current)
            if len(base) < len(data):
                base.extend(bytes(len(data) - len(base)))
            for s, e in spans or ():
                base[s:e] = data[s:e]
            self._dirty[chunkno] = bytes(base)

    def _flush_buffered(self, tx: Transaction, obs) -> int:
        snapshot = self.db.snapshot(tx)
        order = sorted(self._dirty)
        existing = self._resolve_existing(order, snapshot, tx)
        written = 0
        # Runs of brand-new chunks (the sequential-write case: nothing
        # to supersede) go to the heap as one contiguous append, so the
        # dirty pages they produce coalesce into batched device writes
        # at commit.  Updates stay individual — each must first mark its
        # old version deleted.
        batch: list[tuple] = []
        for chunkno in order:
            row = (chunkno, self.fileid, self._dirty[chunkno])
            tid = existing.get(chunkno)
            if tid is None:
                batch.append(row)
            else:
                if batch:
                    self.table.insert_many(tx, batch)
                    batch = []
                self.table.update(tx, tid, row)
            written += 1
        if batch:
            self.table.insert_many(tx, batch)
        self._dirty.clear()
        self._spans.clear()
        if obs is not None:
            obs.chunk_flush(written)
        return written

    def _resolve_existing(self, chunknos, snapshot: Snapshot,
                          tx: Transaction | None):
        """chunkno → TID of the visible existing version, for every
        dirty chunk that has one.  A dense dirty set (the sequential
        write case) is resolved with one index range scan; a sparse one
        falls back to per-chunk probes so a couple of random writes in a
        huge file don't pay a scan of the whole span."""
        lo, hi = chunknos[0], chunknos[-1]
        if self._indexed and hi - lo + 1 > 4 * len(chunknos):
            snap = snapshot
            return {c: found[0] for c in chunknos
                    if (found := self._find_chunk(c, snap, tx)) is not None}
        existing: dict[int, TID] = {}
        if self._indexed:
            wanted = set(chunknos)
            for tid, row in self.table.index_range_newest(
                    ("chunkno",), (lo,), (hi,), snapshot, tx):
                if row[0] in wanted:
                    existing[row[0]] = tid
        else:
            for c in chunknos:
                found = self._find_chunk(c, snapshot, tx)
                if found is not None:
                    existing[c] = found[0]
        return existing

    def discard(self) -> None:
        """Drop buffered writes (abort path)."""
        self._dirty.clear()
        self._spans.clear()

    # -- whole-file helpers -------------------------------------------------------------

    def visible_chunk_count(self, snapshot: Snapshot,
                            tx: Transaction | None = None) -> int:
        """Number of visible chunks — one index range scan when the
        chunkno index exists, a heap scan only in the ablation
        configuration."""
        if self._indexed:
            return sum(1 for __ in self.table.index_range_newest(
                ("chunkno",), None, None, snapshot, tx))
        return sum(1 for __ in self.table.scan(snapshot, tx))

    def version_count(self) -> int:
        """Total stored chunk versions (current + superseded), before
        any vacuum — a measure of retained history."""
        return self.table.heap.record_count_physical()
