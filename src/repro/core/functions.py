"""The Table 2 file-type functions, and synthetic data to feed them.

The paper's installation stores "documentation, Hierarchical Data
Format files, and images from different kinds of satellites … as
different file types", with functions per type:

=====================  ==================================================
file type              defined functions
=====================  ==================================================
ASCII document         linecount
troff document         keywords, wordcount, linecount, fonts, sizes
CZCS image             pixelavg, pixelcount, getpixel
AVHRR image            snow, pixelcount, pixelavg, getpixel, getband
=====================  ==================================================

We add the Thematic Mapper ("tm") type for the paper's snow query
("Inversion currently stores several hundred satellite images from the
Thematic Mapper satellite, a device which records five spectral bands
for each image.  A function has been written to find snow in these
images.").

Real TM/AVHRR/CZCS data is proprietary-era tape archive material we
cannot ship, so :func:`make_satellite_image` synthesizes images in a
simple self-describing band-major format with a controllable snow
fraction — exercising exactly the same code paths (typed storage,
content functions, snow/size predicates) as the originals.
"""

from __future__ import annotations

import random
import re
import struct

from repro.db.transactions import Transaction
from repro.errors import FileTypeError

SAT_MAGIC = b"SAT1"
_SAT_HEADER = "<4sBHH"  # magic, nbands, width, height
SAT_HEADER_SIZE = struct.calcsize(_SAT_HEADER)

#: classification thresholds for :func:`snow` — bright in the visible
#: band, dark (cold) in the last (thermal) band.
SNOW_VISIBLE_MIN = 200
SNOW_THERMAL_MAX = 80


# ---------------------------------------------------------------------------
# document functions
# ---------------------------------------------------------------------------


def linecount(data: bytes) -> int:
    """Number of lines in a text document."""
    return data.count(b"\n")


def wordcount(data: bytes) -> int:
    return len(data.split())


def keywords(data: bytes) -> str:
    """Keywords of a troff document: the arguments of ``.KW`` macros,
    returned space-joined (so POSTQUEL's ``"RISC" in keywords(file)``
    is a membership test)."""
    words = []
    for line in data.decode("utf-8", errors="replace").splitlines():
        if line.startswith(".KW"):
            words.extend(line.split()[1:])
    return " ".join(words)


def fonts(data: bytes) -> str:
    """Fonts requested by a troff document (``.ft X`` and ``\\fX``)."""
    text = data.decode("utf-8", errors="replace")
    found = set(re.findall(r"^\.ft\s+(\w+)", text, flags=re.MULTILINE))
    found.update(re.findall(r"\\f(\w)", text))
    return " ".join(sorted(found))


def sizes(data: bytes) -> str:
    """Point sizes requested by a troff document (``.ps N``)."""
    text = data.decode("utf-8", errors="replace")
    found = sorted({int(m) for m in
                    re.findall(r"^\.ps\s+(\d+)", text, flags=re.MULTILINE)})
    return " ".join(str(s) for s in found)


# ---------------------------------------------------------------------------
# satellite image functions
# ---------------------------------------------------------------------------


def _parse_header(data: bytes) -> tuple[int, int, int]:
    if len(data) < SAT_HEADER_SIZE:
        raise FileTypeError("truncated satellite image")
    magic, nbands, width, height = struct.unpack_from(_SAT_HEADER, data, 0)
    if magic != SAT_MAGIC:
        raise FileTypeError("not a satellite image (bad magic)")
    expected = SAT_HEADER_SIZE + nbands * width * height
    if len(data) < expected:
        raise FileTypeError(
            f"satellite image truncated: {len(data)} < {expected}")
    return nbands, width, height


def pixelcount(data: bytes) -> int:
    """Total pixels in the image."""
    _nbands, width, height = _parse_header(data)
    return width * height


def getband(data: bytes, band: int) -> bytes:
    """One spectral band's raster."""
    nbands, width, height = _parse_header(data)
    if not (0 <= band < nbands):
        raise FileTypeError(f"band {band} out of range (nbands={nbands})")
    npix = width * height
    start = SAT_HEADER_SIZE + band * npix
    return data[start:start + npix]


def pixelavg(data: bytes, band: int = 0) -> float:
    """Mean pixel value of one band."""
    raster = getband(data, band)
    return sum(raster) / len(raster) if raster else 0.0


def getpixel(data: bytes, x: int, y: int) -> int:
    """Band-0 value at (x, y)."""
    _nbands, width, height = _parse_header(data)
    if not (0 <= x < width and 0 <= y < height):
        raise FileTypeError(f"pixel ({x},{y}) outside {width}x{height}")
    return data[SAT_HEADER_SIZE + y * width + x]


def snow(data: bytes) -> int:
    """Paper: "the snow function returns a count of the number of
    pixels that contain snow in the image" — bright in the first
    (visible) band and dark in the last (thermal) band.  Single-band
    images classify on brightness alone."""
    nbands, _width, _height = _parse_header(data)
    visible = getband(data, 0)
    if nbands == 1:
        return sum(1 for v in visible if v >= SNOW_VISIBLE_MIN)
    thermal = getband(data, nbands - 1)
    return sum(1 for v, t in zip(visible, thermal)
               if v >= SNOW_VISIBLE_MIN and t <= SNOW_THERMAL_MAX)


# ---------------------------------------------------------------------------
# synthetic data generators
# ---------------------------------------------------------------------------


def make_satellite_image(width: int = 64, height: int = 64, nbands: int = 5,
                         snow_fraction: float = 0.0,
                         seed: int = 0) -> bytes:
    """A synthetic multi-band image with ~``snow_fraction`` of its
    pixels classified as snow by :func:`snow`."""
    rng = random.Random(seed)
    npix = width * height
    snowy = [rng.random() < snow_fraction for _ in range(npix)]
    bands = []
    for band in range(nbands):
        raster = bytearray(npix)
        for i in range(npix):
            if snowy[i]:
                if band == 0:
                    raster[i] = rng.randint(SNOW_VISIBLE_MIN, 255)
                elif band == nbands - 1:
                    raster[i] = rng.randint(0, SNOW_THERMAL_MAX)
                else:
                    raster[i] = rng.randint(0, 255)
            else:
                if band == 0:
                    raster[i] = rng.randint(0, SNOW_VISIBLE_MIN - 1)
                elif band == nbands - 1:
                    raster[i] = rng.randint(SNOW_THERMAL_MAX + 1, 255)
                else:
                    raster[i] = rng.randint(0, 255)
        bands.append(bytes(raster))
    header = struct.pack(_SAT_HEADER, SAT_MAGIC, nbands, width, height)
    return header + b"".join(bands)


def make_troff_document(title: str, kws: list[str], paragraphs: int = 5,
                        seed: int = 0) -> bytes:
    """A synthetic troff document carrying ``.KW`` keyword macros."""
    rng = random.Random(seed)
    lines = [f".TL\n{title}", ".KW " + " ".join(kws), ".ft R", ".ps 10"]
    vocab = ["storage", "system", "database", "transaction", "index",
             "recovery", "optical", "jukebox", "benchmark", "snapshot"]
    for _ in range(paragraphs):
        lines.append(".PP")
        lines.append(" ".join(rng.choice(vocab) for _ in range(40)))
    return ("\n".join(lines) + "\n").encode("utf-8")


def make_ascii_document(nlines: int = 100, seed: int = 0) -> bytes:
    rng = random.Random(seed)
    return b"".join(b"line %d: %d\n" % (i, rng.randint(0, 10 ** 6))
                    for i in range(nlines))


# ---------------------------------------------------------------------------
# registration (Table 2)
# ---------------------------------------------------------------------------

STANDARD_TYPES = {
    "ascii_document": "plain ASCII text",
    "troff_document": "troff/nroff source",
    "czcs_image": "Coastal Zone Color Scanner satellite image",
    "avhrr_image": "Advanced Very High Resolution Radiometer satellite image",
    "tm_image": "Thematic Mapper satellite image (5 spectral bands)",
}

_IMAGE_TYPES = ("czcs_image", "avhrr_image", "tm_image")


def register_standard_types(fs, tx: Transaction) -> None:
    """Define the Table 2 file types and their functions on a mount."""
    from repro.core.filetypes import FileTypeManager
    ftm = FileTypeManager(fs)
    for name, description in STANDARD_TYPES.items():
        ftm.define_file_type(tx, name, description)
    doc_types = ("ascii_document", "troff_document")
    ftm.register_content_function(tx, "linecount", linecount, "int8", doc_types)
    ftm.register_content_function(tx, "wordcount", wordcount, "int8",
                                  ("troff_document",))
    ftm.register_content_function(tx, "keywords", keywords, "text",
                                  ("troff_document",))
    ftm.register_content_function(tx, "fonts", fonts, "text",
                                  ("troff_document",))
    ftm.register_content_function(tx, "sizes", sizes, "text",
                                  ("troff_document",))
    ftm.register_content_function(tx, "pixelcount", pixelcount, "int8",
                                  _IMAGE_TYPES)
    ftm.register_content_function(tx, "pixelavg", pixelavg, "float8",
                                  _IMAGE_TYPES, extra_argtypes=("int4",))
    ftm.register_content_function(tx, "getpixel", getpixel, "int4",
                                  _IMAGE_TYPES, extra_argtypes=("int4", "int4"))
    ftm.register_content_function(tx, "getband", getband, "bytea",
                                  ("avhrr_image", "tm_image"),
                                  extra_argtypes=("int4",))
    ftm.register_content_function(tx, "snow", snow, "int8",
                                  ("avhrr_image", "tm_image"))
