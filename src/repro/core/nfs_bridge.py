"""NFS access to Inversion — the paper's stated next step, built.

"In the near term, we plan to provide NFS access to Inversion.  In
order to do so, we will be forced to support the standard interfaces
for creating, opening, and seeking on files.  We plan to do so, but to
provide new fnctl() support to provide access to time travel and very
large files.  However, we are unsure how to support transactions via
NFS.  The NFS protocol makes every operation an atomic transaction…
We are most likely to follow the protocol specification, and to provide
no multi-operation transaction protection for Inversion files accessed
via NFS."

:class:`InversionNFSBridge` follows exactly that design:

- it speaks the same operation set as :class:`repro.nfs.server.NFSServer`
  (lookup/create/getattr/read/write/remove), so the unmodified
  :class:`repro.nfs.client.NFSClient` can mount Inversion;
- every operation runs in its own transaction (the protocol's
  every-op-is-atomic rule) — no ``p_begin``/``p_commit`` is exposed;
- ``fcntl_set_timestamp`` is the promised fnctl extension: it pins a
  file handle to a historical instant, after which reads and getattr
  return the past ("an NFS server could manage time travel by …
  passing dates along to the database system for processing", as
  [ROOM92] explored);
- file sizes beyond FFS's 4 GB work, because the backing store is
  Inversion (``fcntl`` large files need no special casing at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constants import O_RDONLY, O_RDWR
from repro.core.filesystem import InversionFS
from repro.errors import NfsError, ReadOnlyFileError
from repro.nfs.server import NFS_MAX_TRANSFER, NfsAttr


@dataclass
class InversionNFSBridge:
    """A stateless-NFS face on an Inversion file system."""

    fs: InversionFS
    #: the fnctl extension's per-handle time-travel pins.  (Strictly
    #: this is soft state; losing it on a server reboot degrades to
    #: present-time reads, which is NFS-compatible behaviour.)
    _timestamps: dict[int, float] = field(default_factory=dict)

    # -- helpers -----------------------------------------------------------

    def _dispatch_cost(self) -> None:
        if self.fs.db.cpu is not None:
            self.fs.db.cpu.rpc_dispatch()

    def _auto(self, op):
        """Run ``op(tx)`` as its own transaction — the NFS rule."""
        tx = self.fs.begin()
        try:
            result = op(tx)
        except BaseException:
            self.fs.abort(tx)
            raise
        self.fs.commit(tx)
        return result

    def _timestamp_for(self, fh: int) -> float | None:
        return self._timestamps.get(fh)

    # -- the protocol operations ------------------------------------------------

    def nfs_lookup(self, path: str) -> int:
        self._dispatch_cost()
        try:
            return self.fs.resolve(path)
        except Exception as exc:
            raise NfsError(f"lookup failed: {exc}") from exc

    def nfs_create(self, path: str) -> int:
        self._dispatch_cost()
        return self._auto(lambda tx: self.fs.creat(tx, path))

    def nfs_getattr(self, fh: int) -> NfsAttr:
        self._dispatch_cost()
        snapshot = self.fs._snap(None, self._timestamp_for(fh))
        att = self.fs.fileatt.get(fh, snapshot)
        return NfsAttr(ino=fh, size=att.size)

    def nfs_read(self, fh: int, offset: int, nbytes: int) -> bytes:
        if nbytes > NFS_MAX_TRANSFER:
            raise NfsError(f"read of {nbytes} exceeds the 8 KB NFS transfer")
        self._dispatch_cost()
        timestamp = self._timestamp_for(fh)
        handle = self.fs.open_by_id(fh, O_RDONLY, timestamp=timestamp)
        try:
            handle.seek(offset)
            return handle.read(nbytes)
        finally:
            handle.close()

    def nfs_write(self, fh: int, offset: int, data: bytes) -> int:
        if len(data) > NFS_MAX_TRANSFER:
            raise NfsError(f"write of {len(data)} exceeds the 8 KB NFS transfer")
        if fh in self._timestamps:
            raise ReadOnlyFileError(
                "handle is pinned to a historical instant; writes refused")
        self._dispatch_cost()

        def op(tx):
            handle = self.fs.open_by_id(fh, O_RDWR, tx=tx)
            with handle:
                handle.seek(offset)
                return handle.write(data)
        return self._auto(op)

    def nfs_remove(self, path: str) -> None:
        self._dispatch_cost()
        self._auto(lambda tx: self.fs.unlink(tx, path))

    # -- the promised fnctl extensions --------------------------------------------

    def fcntl_set_timestamp(self, fh: int, timestamp: float | None) -> None:
        """Pin (or with None, unpin) a handle to a historical instant.
        Subsequent reads and getattr through the handle see the file as
        of that time; writes are refused."""
        if timestamp is None:
            self._timestamps.pop(fh, None)
        else:
            self._timestamps[fh] = float(timestamp)

    def fcntl_get_timestamp(self, fh: int) -> float | None:
        return self._timestamps.get(fh)
