"""Rule-driven file migration between storage devices.

"Files that meet some selection criteria should be moved from fast,
expensive storage like magnetic disk to slower, cheaper storage, such
as magnetic tape.  We are exploring strategies for using the POSTGRES
predicate rules system to allow users and administrators to define
migration policies.  Arbitrarily complex rules controlling the
locations of files or groups of files would be declared to the
database manager.  When a file met the announced conditions, it would
be moved from one location in the storage hierarchy to another."

Rules are POSTQUEL qualifications over the file-system view (the same
expressions the query layer accepts, e.g.
``size(file) > 1000000 and filetype(file) = "tm_image"``), each paired
with a target device.  :meth:`MigrationEngine.run` evaluates every rule
and physically relocates matching files' chunk tables — a raw page copy
that preserves every record version, so history and time travel move
with the file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.chunks import chunk_table_name
from repro.db.snapshot import BootstrapSnapshot
from repro.db.transactions import Transaction
from repro.errors import MigrationError


@dataclass(frozen=True)
class MigrationRule:
    """One declared policy rule."""

    name: str
    qualification: str  # POSTQUEL expression over the naming view
    target_device: str
    priority: int = 0


@dataclass
class MigrationReport:
    rule: str
    moved: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)


MIGRATION_RULES_TABLE = "inv_migration_rules"


class MigrationEngine:
    """Declares and executes migration rules for one mount.

    Rules are "declared to the database manager": they live in the
    ``inv_migration_rules`` table, so they are transactional, survive
    restarts, and are themselves queryable."""

    def __init__(self, fs) -> None:
        self.fs = fs
        self._ensure_table()

    def _ensure_table(self) -> None:
        db = self.fs.db
        if not db.table_exists(MIGRATION_RULES_TABLE):
            from repro.db.tuples import Column, Schema
            tx = db.begin()
            try:
                db.create_table(tx, MIGRATION_RULES_TABLE, Schema([
                    Column("rulename", "text"),
                    Column("qualification", "text"),
                    Column("target", "text"),
                    Column("priority", "int4"),
                ]))
                db.commit(tx)
            except BaseException:
                db.abort(tx)
                raise

    @property
    def rules(self) -> list[MigrationRule]:
        """The declared rules, highest priority first."""
        from repro.db.snapshot import BootstrapSnapshot
        snapshot = BootstrapSnapshot(self.fs.db.tm)
        rows = [MigrationRule(*row) for _tid, row in
                self.fs.db.table(MIGRATION_RULES_TABLE).scan(snapshot)]
        rows.sort(key=lambda r: -r.priority)
        return rows

    def add_rule(self, name: str, qualification: str, target_device: str,
                 priority: int = 0) -> MigrationRule:
        if target_device not in self.fs.db.switch:
            raise MigrationError(f"no device named {target_device!r}")
        from repro.db.query.parser import parse_expression
        parse_expression(qualification)  # validate now, not at run()
        db = self.fs.db
        tx = db.begin()
        try:
            db.table(MIGRATION_RULES_TABLE, tx).insert(
                tx, (name, qualification, target_device, priority))
            db.commit(tx)
        except BaseException:
            db.abort(tx)
            raise
        return MigrationRule(name, qualification, target_device, priority)

    def drop_rule(self, name: str) -> bool:
        db = self.fs.db
        tx = db.begin()
        try:
            table = db.table(MIGRATION_RULES_TABLE, tx)
            for tid, row in list(table.scan(db.snapshot(tx), tx)):
                if row[0] == name:
                    table.delete(tx, tid)
                    db.commit(tx)
                    return True
            db.commit(tx)
            return False
        except BaseException:
            db.abort(tx)
            raise

    # -- evaluation -----------------------------------------------------------

    def matching_files(self, tx: Transaction,
                       rule: MigrationRule) -> list[tuple[str, int]]:
        """(path, fileid) of plain files satisfying the rule."""
        rows = self.fs.query(
            tx, f'retrieve (filename_of(file), file) '
                f'where ({rule.qualification}) '
                f'and not (filetype(file) = "directory")')
        return [(path, fileid) for path, fileid in rows]

    def run(self, tx: Transaction) -> list[MigrationReport]:
        """Evaluate all rules (priority order) and move what matches.
        A file already on the rule's target device is skipped."""
        reports = []
        migrated: set[int] = set()
        for rule in self.rules:
            report = MigrationReport(rule.name)
            for path, fileid in self.matching_files(tx, rule):
                if fileid in migrated:
                    continue
                if self.device_of(fileid) == rule.target_device:
                    report.skipped.append(path)
                    continue
                self.move_file(tx, fileid, rule.target_device)
                migrated.add(fileid)
                report.moved.append(path)
            reports.append(report)
        return reports

    # -- mechanics --------------------------------------------------------------------

    def device_of(self, fileid: int) -> str:
        info = self.fs.db.catalog.lookup_table(
            chunk_table_name(fileid), BootstrapSnapshot(self.fs.db.tm),
            use_cache=False)
        if info is None:
            raise MigrationError(f"file {fileid} has no chunk table")
        return info.devname

    def move_file(self, tx: Transaction, fileid: int,
                  target_device: str) -> None:
        """Relocate one file's chunk table (and its chunkno index) to
        ``target_device`` by raw page copy, then repoint the catalog."""
        db = self.fs.db
        snapshot = db.snapshot(tx)
        relname = chunk_table_name(fileid)
        info = db.catalog.lookup_table(relname, snapshot, use_cache=False)
        if info is None:
            raise MigrationError(f"file {fileid} has no chunk table")
        if info.devname == target_device:
            return
        src = db.switch.get(info.devname)
        dst = db.switch.get(target_device)
        relations = [relname] + [ix.name for ix in info.indexes]
        for rel in relations:
            db.buffers.flush_relation(info.devname, rel)
            db.buffers.drop_relation(info.devname, rel)
            dst.create_relation(rel)
            for pageno in range(src.nblocks(rel)):
                dst.extend(rel)
                dst.write_page(rel, pageno, src.read_page(rel, pageno))
        # Repoint the catalog rows (transactional: an abort leaves the
        # old rows visible and the copies orphaned but harmless).
        self._repoint(tx, relname, target_device)
        # Release the source copies at commit.
        for rel in relations:
            tx._pending_drops.append((info.devname, rel))

    def _repoint(self, tx: Transaction, relname: str, devname: str) -> None:
        db = self.fs.db
        db.execute(tx, f'replace c (devname = "{devname}") '
                       f'from c in pg_class where c.relname = "{relname}"')
        db.catalog.invalidate_cache()
        tx.abort_hooks.append(db.catalog.invalidate_cache)
