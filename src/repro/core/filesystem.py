"""The Inversion file system.

:class:`InversionFS` is the paper's "small set of routines that are
compiled into the POSTGRES data manager": every file system operation
is carried out as database operations on the ``naming``, ``fileatt``
and per-file chunk tables, and therefore inherits transaction
protection, fine-grained time travel, instant crash recovery, typed
files, and query support from the data manager.

One database corresponds to one mount point: "all of the files stored
by Inversion in a single database are rooted at '/' in that database."
"""

from __future__ import annotations

from repro.core.chunks import ChunkStore, chunk_table_name
from repro.core.constants import (
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    TYPE_DIRECTORY,
    TYPE_PLAIN,
)
from repro.core.fileatt import FileAtt, FileAttributes
from repro.core.files import FileHandle
from repro.core.naming import Namespace, basename_dirname
from repro.db.database import Database
from repro.db.snapshot import AsOfSnapshot, Snapshot
from repro.db.transactions import Transaction
from repro.errors import (
    DirectoryNotEmptyError,
    FileExistsError_,
    FileNotFoundError_,
    IsADirectoryError_,
    NotADirectoryError_,
    ReadOnlyFileError,
)


class InversionFS:
    """A mounted Inversion file system over one database."""

    def __init__(self, db: Database, namespace: Namespace,
                 fileatt: FileAttributes) -> None:
        self.db = db
        self.namespace = namespace
        self.fileatt = fileatt
        self._handles: list[FileHandle] = []
        #: ablation hook: create chunk tables without the chunkno B-tree
        #: (see the Figure 3 discussion — index maintenance is the
        #: stated cause of Inversion's creation slowdown).
        self.chunk_index = True
        #: when True, the first read through a writable handle stamps
        #: the file's atime.  Off by default: it turns every reading
        #: transaction into a writing one (a status-file append and a
        #: forced fileatt page per commit), which the benchmark
        #: configuration would never tolerate.
        self.track_atime = False
        #: the server's :class:`~repro.cache.leases.LeaseManager`, if
        #: client caching is enabled (see :meth:`attach_leases`).
        self.lease_manager = None
        #: per-file committed data versions: fileid → count of commits
        #: that wrote the file this session.  Bumps are queued at write
        #: time and applied at the outcome point (same discipline as
        #: lease epochs), so an open handle can tell at flush whether
        #: anyone committed under it since it captured its open-time
        #: size — the trigger for the lost-update slow path.
        self._file_versions: dict[int, int] = {}
        self._pending_version_bumps: dict[int, set[int]] = {}
        add = getattr(db, "add_commit_listener", None)
        if add is not None:
            add(self._on_tx_outcome)
        self._register_metadata_functions()

    def note_data_write(self, fileid: int, tx: Transaction) -> None:
        """Queue a data-version bump for ``fileid`` under ``tx`` (every
        FileHandle.write calls this, zero-length writes included —
        those still commit an attribute row)."""
        self._pending_version_bumps.setdefault(tx.xid, set()).add(fileid)

    def _on_tx_outcome(self, xid: int, committed: bool) -> None:
        pending = self._pending_version_bumps.pop(xid, None)
        if not pending or not committed:
            return
        versions = self._file_versions
        for fileid in pending:
            versions[fileid] = versions.get(fileid, 0) + 1

    def file_data_version(self, fileid: int) -> int:
        return self._file_versions.get(fileid, 0)

    # -- construction ------------------------------------------------------

    @classmethod
    def mkfs(cls, db: Database) -> "InversionFS":
        """Initialize Inversion in a database: namespace, attribute
        table, root directory, and the built-in metadata functions —
        all in one transaction."""
        tx = db.begin()
        try:
            namespace = Namespace.bootstrap(db, tx)
            fileatt = FileAttributes.bootstrap(db, tx)
            fs = cls(db, namespace, fileatt)
            fs.fileatt.create(tx, namespace.root_fileid, "root", TYPE_DIRECTORY)
            fs._define_metadata_functions(tx)
            db.commit(tx)
            return fs
        except BaseException:
            db.abort(tx)
            raise

    @classmethod
    def attach(cls, db: Database) -> "InversionFS":
        """Mount an existing Inversion database."""
        namespace = Namespace.attach(db)
        return cls(db, namespace, FileAttributes(db))

    # -- leases ------------------------------------------------------------

    def attach_leases(self, manager) -> None:
        """Enable lease bookkeeping: mutations below bump object epochs
        (queued per transaction, emitted at the visibility point by
        :meth:`commit`/:meth:`abort`/:meth:`finish_prepared`)."""
        self.lease_manager = manager
        self.fileatt.on_mutate = manager.bump_oid

    def _flush_leases(self, tx: Transaction) -> None:
        lm = self.lease_manager
        if lm is not None:
            lm.flush_tx(tx.xid)

    # -- transactions ----------------------------------------------------------

    def begin(self) -> Transaction:
        return self.db.begin()

    def commit(self, tx: Transaction) -> None:
        """Commit, flushing any open handles written under ``tx``
        first so their coalesced chunks are part of the transaction."""
        for handle in list(self._handles):
            if handle.tx is tx and handle._open:
                handle.flush()
        self.db.commit(tx)
        # Notices go out only after the commit is visible: emitting at
        # mutation time would let another session re-cache the *old*
        # value between the notice and the commit.
        self._flush_leases(tx)

    def abort(self, tx: Transaction) -> None:
        for handle in list(self._handles):
            if handle.tx is tx and handle._open:
                handle.store.discard()
                handle._open = False
                self._forget_handle(handle)
        self.db.abort(tx)
        # Aborted bumps still flush — over-invalidation is always safe.
        self._flush_leases(tx)

    def prepare(self, tx: Transaction, gid: str) -> None:
        """2PC phase one: flush any open handles written under ``tx``
        (like :meth:`commit` would), then force the data pages and the
        ``P`` record.  The transaction keeps its locks until
        :meth:`finish_prepared` delivers the coordinator's decision."""
        for handle in list(self._handles):
            if handle.tx is tx and handle._open:
                handle.flush()
        self.db.prepare(tx, gid)

    def finish_prepared(self, tx: Transaction, commit: bool) -> None:
        """2PC phase two for a prepared transaction."""
        if not commit:
            for handle in list(self._handles):
                if handle.tx is tx and handle._open:
                    handle.store.discard()
                    handle._open = False
                    self._forget_handle(handle)
        self.db.finish_prepared(tx, commit)
        self._flush_leases(tx)

    # -- snapshots -----------------------------------------------------------------

    def _snap(self, tx: Transaction | None,
              timestamp: float | None = None) -> Snapshot:
        if timestamp is not None:
            return self.db.asof(timestamp)
        if tx is not None:
            return self.db.snapshot(tx)
        from repro.db.snapshot import BootstrapSnapshot
        return BootstrapSnapshot(self.db.tm)

    # -- path helpers ------------------------------------------------------------------

    def resolve(self, path: str, tx: Transaction | None = None,
                timestamp: float | None = None) -> int:
        return self.namespace.resolve(path, self._snap(tx, timestamp), tx)

    def exists(self, path: str, tx: Transaction | None = None,
               timestamp: float | None = None) -> bool:
        return self.namespace.try_resolve(
            path, self._snap(tx, timestamp), tx) is not None

    def _resolve_dir(self, path: str, snapshot: Snapshot,
                     tx: Transaction | None) -> int:
        fileid = self.namespace.resolve(path, snapshot, tx)
        att = self.fileatt.get(fileid, snapshot, tx)
        if att.type != TYPE_DIRECTORY:
            raise NotADirectoryError_(f"{path!r} is not a directory")
        return fileid

    # -- file creation -----------------------------------------------------------------

    def creat(self, tx: Transaction, path: str, owner: str = "root",
              ftype: str = TYPE_PLAIN, device: str | None = None) -> int:
        """Create a plain file: a naming entry, a fileatt entry, and the
        per-file chunk table (on ``device``), atomically within ``tx``."""
        if ftype == TYPE_DIRECTORY:
            raise IsADirectoryError_("use mkdir to create directories")
        snapshot = self.db.snapshot(tx)
        dirpath, name = basename_dirname(path)
        parentid = self._resolve_dir(dirpath, snapshot, tx)
        if self.namespace.lookup(parentid, name, snapshot, tx) is not None:
            raise FileExistsError_(f"{path!r} already exists")
        fileid = self.db.catalog.allocate_oid()
        self.namespace.add_entry(tx, parentid, name, fileid)
        self.fileatt.create(tx, fileid, owner, ftype)
        ChunkStore.create_table(self.db, tx, fileid, device,
                                with_index=self.chunk_index)
        if self.lease_manager is not None:
            self.lease_manager.bump_name(path, tx)
        return fileid

    def mkdir(self, tx: Transaction, path: str, owner: str = "root") -> int:
        snapshot = self.db.snapshot(tx)
        dirpath, name = basename_dirname(path)
        parentid = self._resolve_dir(dirpath, snapshot, tx)
        if self.namespace.lookup(parentid, name, snapshot, tx) is not None:
            raise FileExistsError_(f"{path!r} already exists")
        fileid = self.db.catalog.allocate_oid()
        self.namespace.add_entry(tx, parentid, name, fileid)
        self.fileatt.create(tx, fileid, owner, TYPE_DIRECTORY)
        if self.lease_manager is not None:
            self.lease_manager.bump_name(path, tx)
        return fileid

    # -- open/close -----------------------------------------------------------------------

    def open(self, path: str, mode: int = O_RDONLY,
             tx: Transaction | None = None,
             timestamp: float | None = None,
             owner: str = "root", ftype: str = TYPE_PLAIN,
             device: str | None = None) -> FileHandle:
        """Open a file.  ``timestamp`` opens the historical version as
        of that moment (read-only).  ``O_CREAT`` creates the file if
        absent (requires ``tx``)."""
        wants_write = (mode & (O_WRONLY | O_RDWR)) != 0
        if timestamp is not None and wants_write:
            raise ReadOnlyFileError("historical files may not be opened for writing")
        if wants_write and tx is None:
            raise ReadOnlyFileError("writing requires an active transaction")
        snapshot = self._snap(tx, timestamp)
        fileid = self.namespace.try_resolve(path, snapshot, tx)
        if fileid is None:
            if mode & O_CREAT and tx is not None and timestamp is None:
                fileid = self.creat(tx, path, owner=owner, ftype=ftype,
                                    device=device)
            else:
                raise FileNotFoundError_(f"no such file: {path!r}")
        att = self.fileatt.get(fileid, snapshot, tx)
        if att.type == TYPE_DIRECTORY:
            raise IsADirectoryError_(f"{path!r} is a directory")
        handle = FileHandle(self, fileid, tx if timestamp is None else None,
                            snapshot, wants_write, att.size,
                            historical=timestamp is not None)
        self._handles.append(handle)
        return handle

    def open_by_id(self, fileid: int, mode: int = O_RDONLY,
                   tx: Transaction | None = None,
                   timestamp: float | None = None) -> FileHandle:
        """Open a file by identifier — the path used by large objects
        (BLOBs) and by functions executing inside the data manager."""
        wants_write = (mode & (O_WRONLY | O_RDWR)) != 0
        if timestamp is not None and wants_write:
            raise ReadOnlyFileError("historical files may not be opened for writing")
        if wants_write and tx is None:
            raise ReadOnlyFileError("writing requires an active transaction")
        snapshot = self._snap(tx, timestamp)
        att = self.fileatt.get(fileid, snapshot, tx)
        if att.type == TYPE_DIRECTORY:
            raise IsADirectoryError_(f"file {fileid} is a directory")
        handle = FileHandle(self, fileid, tx if timestamp is None else None,
                            snapshot, wants_write, att.size,
                            historical=timestamp is not None)
        self._handles.append(handle)
        return handle

    def read_file_by_id(self, fileid: int, snapshot: Snapshot) -> bytes:
        """Whole-file read under an arbitrary snapshot (used by
        file-type functions, which must honour time travel)."""
        att = self.fileatt.get(fileid, snapshot)
        store = ChunkStore(self.db, fileid, None)
        out = bytearray()
        from repro.core.constants import CHUNK_SIZE
        from repro.core.files import READ_WINDOW_CHUNKS
        nchunks = (att.size + CHUNK_SIZE - 1) // CHUNK_SIZE
        for lo in range(0, nchunks, READ_WINDOW_CHUNKS):
            hi = min(nchunks - 1, lo + READ_WINDOW_CHUNKS - 1)
            chunks = store.read_range(lo, hi, snapshot)
            for chunkno in range(lo, hi + 1):
                chunk = chunks.get(chunkno, b"")
                want = min(CHUNK_SIZE, att.size - chunkno * CHUNK_SIZE)
                if len(chunk) < want:
                    chunk = chunk + bytes(want - len(chunk))
                out += chunk[:want]
        return bytes(out)

    def _forget_handle(self, handle: FileHandle) -> None:
        try:
            self._handles.remove(handle)
        except ValueError:
            pass

    # -- removal --------------------------------------------------------------------------

    def unlink(self, tx: Transaction, path: str) -> None:
        """Remove a file.  Only the *current* naming and attribute
        records are deleted; chunk data and all history remain, which
        is why accidental deletions can be undone with time travel."""
        snapshot = self.db.snapshot(tx)
        dirpath, name = basename_dirname(path)
        parentid = self._resolve_dir(dirpath, snapshot, tx)
        fileid = self.namespace.lookup(parentid, name, snapshot, tx)
        if fileid is None:
            raise FileNotFoundError_(f"no such file: {path!r}")
        att = self.fileatt.get(fileid, snapshot, tx)
        if att.type == TYPE_DIRECTORY:
            raise IsADirectoryError_(f"{path!r} is a directory; use rmdir")
        self.namespace.remove_entry(tx, parentid, name)
        self.fileatt.remove(tx, fileid)
        if self.lease_manager is not None:
            self.lease_manager.bump_name(path, tx)

    def rmdir(self, tx: Transaction, path: str) -> None:
        snapshot = self.db.snapshot(tx)
        dirpath, name = basename_dirname(path)
        parentid = self._resolve_dir(dirpath, snapshot, tx)
        fileid = self.namespace.lookup(parentid, name, snapshot, tx)
        if fileid is None:
            raise FileNotFoundError_(f"no such directory: {path!r}")
        att = self.fileatt.get(fileid, snapshot, tx)
        if att.type != TYPE_DIRECTORY:
            raise NotADirectoryError_(f"{path!r} is not a directory")
        if any(True for __ in self.namespace.children(fileid, snapshot, tx)):
            raise DirectoryNotEmptyError(f"{path!r} is not empty")
        self.namespace.remove_entry(tx, parentid, name)
        self.fileatt.remove(tx, fileid)
        if self.lease_manager is not None:
            self.lease_manager.bump_name(path, tx)

    def rename(self, tx: Transaction, old_path: str, new_path: str) -> None:
        snapshot = self.db.snapshot(tx)
        old_dir, old_name = basename_dirname(old_path)
        new_dir, new_name = basename_dirname(new_path)
        old_parent = self._resolve_dir(old_dir, snapshot, tx)
        new_parent = self._resolve_dir(new_dir, snapshot, tx)
        self.namespace.rename_entry(tx, old_parent, old_name,
                                    new_parent, new_name)
        if self.lease_manager is not None:
            # Both names change meaning; clients prefix-drop cached
            # resolutions under each (a directory moves its subtree).
            self.lease_manager.bump_name(old_path, tx)
            self.lease_manager.bump_name(new_path, tx)

    # -- interrogation ------------------------------------------------------------------------

    def stat(self, path: str, tx: Transaction | None = None,
             timestamp: float | None = None) -> FileAtt:
        snapshot = self._snap(tx, timestamp)
        fileid = self.namespace.resolve(path, snapshot, tx)
        return self.fileatt.get(fileid, snapshot, tx)

    def readdir(self, path: str, tx: Transaction | None = None,
                timestamp: float | None = None) -> list[str]:
        snapshot = self._snap(tx, timestamp)
        fileid = self._resolve_dir(path, snapshot, tx)
        return sorted(name for name, __ in
                      self.namespace.children(fileid, snapshot, tx))

    def path_of(self, fileid: int, tx: Transaction | None = None,
                timestamp: float | None = None) -> str:
        return self.namespace.construct_path(fileid, self._snap(tx, timestamp), tx)

    def read_file(self, path: str, tx: Transaction | None = None,
                  timestamp: float | None = None) -> bytes:
        """Convenience: whole-file read."""
        with self.open(path, O_RDONLY, tx=tx, timestamp=timestamp) as f:
            return f.read()

    def write_file(self, tx: Transaction, path: str, data: bytes,
                   owner: str = "root", ftype: str = TYPE_PLAIN,
                   device: str | None = None) -> int:
        """Convenience: whole-file create-or-overwrite."""
        handle = self.open(path, O_RDWR | O_CREAT, tx=tx, owner=owner,
                           ftype=ftype, device=device)
        with handle as f:
            n = f.write(data)
        return n

    def set_file_type(self, tx: Transaction, path: str, ftype: str) -> None:
        """Assign a (defined) file type — "once this command has been
        issued, files may be assigned the new type"."""
        snapshot = self.db.snapshot(tx)
        if self.db.catalog.lookup_type(ftype, snapshot) is None \
                and ftype not in (TYPE_PLAIN, TYPE_DIRECTORY):
            from repro.errors import FileTypeError
            raise FileTypeError(f"type {ftype!r} has not been defined")
        fileid = self.namespace.resolve(path, snapshot, tx)
        self.fileatt.update(tx, fileid, ftype=ftype)

    # -- queries ----------------------------------------------------------------------------------

    def query(self, tx: Transaction, text: str) -> list[tuple]:
        """Ad hoc POSTQUEL over the file system.  The implicit range
        variable is the ``naming`` table, so the paper's simplified
        queries — ``retrieve (filename) where owner(file) = "mao"`` —
        run verbatim."""
        from repro.db.query.engine import QueryEngine
        return QueryEngine(self.db).execute(tx, text,
                                            default_relation="naming")

    # -- metadata functions -----------------------------------------------------------------------

    def _define_metadata_functions(self, tx: Transaction) -> None:
        """Catalog rows for the built-in metadata functions used by the
        paper's example queries: owner(file), filetype(file),
        size(file), dir(file), month_of(file)."""
        names = [
            ("owner", "text"), ("filetype", "text"), ("size", "int8"),
            ("dir", "text"), ("month_of", "text"), ("mtime_of", "time"),
            ("filename_of", "text"),
        ]
        for name, rettype in names:
            self.db.catalog.define_function(
                tx, name, "python", ["oid"], rettype, f"inv:{name}")

    def _register_metadata_functions(self) -> None:
        """Install the callables behind the catalog rows (the 'dynamic
        loader' registry is process-level and re-populated per mount)."""
        from repro.db.funcmgr import register_callable
        from repro.db.funcmgr import snapshot_aware

        @snapshot_aware
        def _owner(fileid, snapshot):
            return self.fileatt.get(fileid, snapshot).owner

        @snapshot_aware
        def _filetype(fileid, snapshot):
            return self.fileatt.get(fileid, snapshot).type

        @snapshot_aware
        def _size(fileid, snapshot):
            return self.fileatt.get(fileid, snapshot).size

        @snapshot_aware
        def _dir(fileid, snapshot):
            path = self.namespace.construct_path(fileid, snapshot)
            head, _sep, __tail = path.rpartition("/")
            return head or "/"

        @snapshot_aware
        def _month_of(fileid, snapshot):
            import time as _time
            mtime = self.fileatt.get(fileid, snapshot).mtime
            return _MONTHS[_time.gmtime(int(mtime)).tm_mon - 1]

        @snapshot_aware
        def _mtime_of(fileid, snapshot):
            return self.fileatt.get(fileid, snapshot).mtime

        @snapshot_aware
        def _filename_of(fileid, snapshot):
            return self.namespace.construct_path(fileid, snapshot)

        register_callable("inv:owner", _owner)
        register_callable("inv:filetype", _filetype)
        register_callable("inv:size", _size)
        register_callable("inv:dir", _dir)
        register_callable("inv:month_of", _month_of)
        register_callable("inv:mtime_of", _mtime_of)
        register_callable("inv:filename_of", _filename_of)

    def purge_history(self, path: str) -> object:
        """Discard a file's superseded chunk versions without archiving
        them — the per-file opt-out of history the paper describes for
        users "with no interest in maintaining history".  Time travel
        on this file's *data* before the purge point stops working;
        current contents are untouched."""
        from repro.core.chunks import chunk_table_name
        fileid = self.resolve(path)
        return self.db.vacuum(chunk_table_name(fileid), keep_history=False)

    # -- storage inspection ---------------------------------------------------------------------------

    def chunk_table_of(self, path: str, tx: Transaction | None = None) -> str:
        return chunk_table_name(self.resolve(path, tx))


_MONTHS = ("January", "February", "March", "April", "May", "June", "July",
           "August", "September", "October", "November", "December")
