"""The Inversion file system.

:class:`InversionFS` is the paper's "small set of routines that are
compiled into the POSTGRES data manager": every file system operation
is carried out as database operations on the ``naming``, ``fileatt``
and per-file chunk tables, and therefore inherits transaction
protection, fine-grained time travel, instant crash recovery, typed
files, and query support from the data manager.

One database corresponds to one mount point: "all of the files stored
by Inversion in a single database are rooted at '/' in that database."
"""

from __future__ import annotations

from repro.core.chunks import ChunkStore, chunk_table_name
from repro.core.constants import (
    CHUNK_SIZE,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    TYPE_DIRECTORY,
    TYPE_PLAIN,
)
from repro.core.fileatt import FileAtt, FileAttributes
from repro.core.files import FileHandle
from repro.core.naming import Namespace, basename_dirname
from repro.db.database import Database
from repro.db.snapshot import AsOfSnapshot, BootstrapSnapshot, Snapshot
from repro.db.locks import EXCLUSIVE, SHARED
from repro.db.transactions import Transaction
from repro.db.tuples import Column, Schema
from repro.errors import (
    DirectoryNotEmptyError,
    FileExistsError_,
    FileNotFoundError_,
    IsADirectoryError_,
    NotADirectoryError_,
    ReadOnlyFileError,
    StructuralOpError,
)


#: registry of by-reference clones: one row per clone op, recording
#: that chunk versions of ``src`` in ``[src_lo, src_hi]`` are reachable
#: from ``dst``.  Created lazily by the first clone in a database (so
#: databases that never reflink stay bit-identical to older layouts);
#: consulted by the vacuum cleaner before *discarding* history
#: (``keep_history=False``) — a pinned table falls back to archiving,
#: which keeps every referenced version resolvable forever.
VFSREF_TABLE = "vfsref"
VFSREF_SCHEMA = Schema([
    Column("src", "int8"),
    Column("dst", "int8"),
    Column("src_lo", "int4"),
    Column("src_hi", "int4"),
])
VFSREF_INDEXES = (("src",),)


class InversionFS:
    """A mounted Inversion file system over one database."""

    def __init__(self, db: Database, namespace: Namespace,
                 fileatt: FileAttributes) -> None:
        self.db = db
        self.namespace = namespace
        self.fileatt = fileatt
        self._handles: list[FileHandle] = []
        #: ablation hook: create chunk tables without the chunkno B-tree
        #: (see the Figure 3 discussion — index maintenance is the
        #: stated cause of Inversion's creation slowdown).
        self.chunk_index = True
        #: when True, the first read through a writable handle stamps
        #: the file's atime.  Off by default: it turns every reading
        #: transaction into a writing one (a status-file append and a
        #: forced fileatt page per commit), which the benchmark
        #: configuration would never tolerate.
        self.track_atime = False
        #: the server's :class:`~repro.cache.leases.LeaseManager`, if
        #: client caching is enabled (see :meth:`attach_leases`).
        self.lease_manager = None
        #: per-file committed data versions: fileid → count of commits
        #: that wrote the file this session.  Bumps are queued at write
        #: time and applied at the outcome point (same discipline as
        #: lease epochs), so an open handle can tell at flush whether
        #: anyone committed under it since it captured its open-time
        #: size — the trigger for the lost-update slow path.
        self._file_versions: dict[int, int] = {}
        self._pending_version_bumps: dict[int, set[int]] = {}
        add = getattr(db, "add_commit_listener", None)
        if add is not None:
            add(self._on_tx_outcome)
        self._register_metadata_functions()
        # Arm the vacuum guard (a free attribute set — the registry
        # probe happens inside the guard, so mounts that never vacuum
        # with keep_history=False pay nothing and stay cycle-identical
        # to older layouts).  Covers reattached databases whose clones
        # were registered in an earlier session.
        self._install_pin_check()

    def note_data_write(self, fileid: int, tx: Transaction) -> None:
        """Queue a data-version bump for ``fileid`` under ``tx`` (every
        FileHandle.write calls this, zero-length writes included —
        those still commit an attribute row)."""
        self._pending_version_bumps.setdefault(tx.xid, set()).add(fileid)

    def _on_tx_outcome(self, xid: int, committed: bool) -> None:
        pending = self._pending_version_bumps.pop(xid, None)
        if not pending or not committed:
            return
        versions = self._file_versions
        for fileid in pending:
            versions[fileid] = versions.get(fileid, 0) + 1

    def file_data_version(self, fileid: int) -> int:
        return self._file_versions.get(fileid, 0)

    # -- construction ------------------------------------------------------

    @classmethod
    def mkfs(cls, db: Database) -> "InversionFS":
        """Initialize Inversion in a database: namespace, attribute
        table, root directory, and the built-in metadata functions —
        all in one transaction."""
        tx = db.begin()
        try:
            namespace = Namespace.bootstrap(db, tx)
            fileatt = FileAttributes.bootstrap(db, tx)
            fs = cls(db, namespace, fileatt)
            fs.fileatt.create(tx, namespace.root_fileid, "root", TYPE_DIRECTORY)
            fs._define_metadata_functions(tx)
            db.commit(tx)
            return fs
        except BaseException:
            db.abort(tx)
            raise

    @classmethod
    def attach(cls, db: Database) -> "InversionFS":
        """Mount an existing Inversion database."""
        namespace = Namespace.attach(db)
        return cls(db, namespace, FileAttributes(db))

    # -- leases ------------------------------------------------------------

    def attach_leases(self, manager) -> None:
        """Enable lease bookkeeping: mutations below bump object epochs
        (queued per transaction, emitted at the visibility point by
        :meth:`commit`/:meth:`abort`/:meth:`finish_prepared`)."""
        self.lease_manager = manager
        self.fileatt.on_mutate = manager.bump_oid

    def _flush_leases(self, tx: Transaction) -> None:
        lm = self.lease_manager
        if lm is not None:
            lm.flush_tx(tx.xid)

    # -- transactions ----------------------------------------------------------

    def begin(self) -> Transaction:
        return self.db.begin()

    def commit(self, tx: Transaction) -> None:
        """Commit, flushing any open handles written under ``tx``
        first so their coalesced chunks are part of the transaction."""
        for handle in list(self._handles):
            if handle.tx is tx and handle._open:
                handle.flush()
        self.db.commit(tx)
        # Notices go out only after the commit is visible: emitting at
        # mutation time would let another session re-cache the *old*
        # value between the notice and the commit.
        self._flush_leases(tx)

    def abort(self, tx: Transaction) -> None:
        for handle in list(self._handles):
            if handle.tx is tx and handle._open:
                handle.store.discard()
                handle._open = False
                self._forget_handle(handle)
        self.db.abort(tx)
        # Aborted bumps still flush — over-invalidation is always safe.
        self._flush_leases(tx)

    def prepare(self, tx: Transaction, gid: str) -> None:
        """2PC phase one: flush any open handles written under ``tx``
        (like :meth:`commit` would), then force the data pages and the
        ``P`` record.  The transaction keeps its locks until
        :meth:`finish_prepared` delivers the coordinator's decision."""
        for handle in list(self._handles):
            if handle.tx is tx and handle._open:
                handle.flush()
        self.db.prepare(tx, gid)

    def finish_prepared(self, tx: Transaction, commit: bool) -> None:
        """2PC phase two for a prepared transaction."""
        if not commit:
            for handle in list(self._handles):
                if handle.tx is tx and handle._open:
                    handle.store.discard()
                    handle._open = False
                    self._forget_handle(handle)
        self.db.finish_prepared(tx, commit)
        self._flush_leases(tx)

    # -- snapshots -----------------------------------------------------------------

    def _snap(self, tx: Transaction | None,
              timestamp: float | None = None) -> Snapshot:
        if timestamp is not None:
            return self.db.asof(timestamp)
        if tx is not None:
            return self.db.snapshot(tx)
        from repro.db.snapshot import BootstrapSnapshot
        return BootstrapSnapshot(self.db.tm)

    # -- path helpers ------------------------------------------------------------------

    def resolve(self, path: str, tx: Transaction | None = None,
                timestamp: float | None = None) -> int:
        return self.namespace.resolve(path, self._snap(tx, timestamp), tx)

    def exists(self, path: str, tx: Transaction | None = None,
               timestamp: float | None = None) -> bool:
        return self.namespace.try_resolve(
            path, self._snap(tx, timestamp), tx) is not None

    def _resolve_dir(self, path: str, snapshot: Snapshot,
                     tx: Transaction | None) -> int:
        fileid = self.namespace.resolve(path, snapshot, tx)
        att = self.fileatt.get(fileid, snapshot, tx)
        if att.type != TYPE_DIRECTORY:
            raise NotADirectoryError_(f"{path!r} is not a directory")
        return fileid

    # -- file creation -----------------------------------------------------------------

    def creat(self, tx: Transaction, path: str, owner: str = "root",
              ftype: str = TYPE_PLAIN, device: str | None = None) -> int:
        """Create a plain file: a naming entry, a fileatt entry, and the
        per-file chunk table (on ``device``), atomically within ``tx``."""
        if ftype == TYPE_DIRECTORY:
            raise IsADirectoryError_("use mkdir to create directories")
        snapshot = self.db.snapshot(tx)
        dirpath, name = basename_dirname(path)
        parentid = self._resolve_dir(dirpath, snapshot, tx)
        if self.namespace.lookup(parentid, name, snapshot, tx) is not None:
            raise FileExistsError_(f"{path!r} already exists")
        fileid = self.db.catalog.allocate_oid()
        self.namespace.add_entry(tx, parentid, name, fileid)
        self.fileatt.create(tx, fileid, owner, ftype)
        ChunkStore.create_table(self.db, tx, fileid, device,
                                with_index=self.chunk_index)
        if self.lease_manager is not None:
            self.lease_manager.bump_name(path, tx)
        return fileid

    def mkdir(self, tx: Transaction, path: str, owner: str = "root") -> int:
        snapshot = self.db.snapshot(tx)
        dirpath, name = basename_dirname(path)
        parentid = self._resolve_dir(dirpath, snapshot, tx)
        if self.namespace.lookup(parentid, name, snapshot, tx) is not None:
            raise FileExistsError_(f"{path!r} already exists")
        fileid = self.db.catalog.allocate_oid()
        self.namespace.add_entry(tx, parentid, name, fileid)
        self.fileatt.create(tx, fileid, owner, TYPE_DIRECTORY)
        if self.lease_manager is not None:
            self.lease_manager.bump_name(path, tx)
        return fileid

    # -- open/close -----------------------------------------------------------------------

    def open(self, path: str, mode: int = O_RDONLY,
             tx: Transaction | None = None,
             timestamp: float | None = None,
             owner: str = "root", ftype: str = TYPE_PLAIN,
             device: str | None = None) -> FileHandle:
        """Open a file.  ``timestamp`` opens the historical version as
        of that moment (read-only).  ``O_CREAT`` creates the file if
        absent (requires ``tx``)."""
        wants_write = (mode & (O_WRONLY | O_RDWR)) != 0
        if timestamp is not None and wants_write:
            raise ReadOnlyFileError("historical files may not be opened for writing")
        if wants_write and tx is None:
            raise ReadOnlyFileError("writing requires an active transaction")
        snapshot = self._snap(tx, timestamp)
        fileid = self.namespace.try_resolve(path, snapshot, tx)
        if fileid is None:
            if mode & O_CREAT and tx is not None and timestamp is None:
                fileid = self.creat(tx, path, owner=owner, ftype=ftype,
                                    device=device)
            else:
                raise FileNotFoundError_(f"no such file: {path!r}")
        att = self.fileatt.get(fileid, snapshot, tx)
        if att.type == TYPE_DIRECTORY:
            raise IsADirectoryError_(f"{path!r} is a directory")
        handle = FileHandle(self, fileid, tx if timestamp is None else None,
                            snapshot, wants_write, att.size,
                            historical=timestamp is not None)
        self._handles.append(handle)
        return handle

    def open_by_id(self, fileid: int, mode: int = O_RDONLY,
                   tx: Transaction | None = None,
                   timestamp: float | None = None) -> FileHandle:
        """Open a file by identifier — the path used by large objects
        (BLOBs) and by functions executing inside the data manager."""
        wants_write = (mode & (O_WRONLY | O_RDWR)) != 0
        if timestamp is not None and wants_write:
            raise ReadOnlyFileError("historical files may not be opened for writing")
        if wants_write and tx is None:
            raise ReadOnlyFileError("writing requires an active transaction")
        snapshot = self._snap(tx, timestamp)
        att = self.fileatt.get(fileid, snapshot, tx)
        if att.type == TYPE_DIRECTORY:
            raise IsADirectoryError_(f"file {fileid} is a directory")
        handle = FileHandle(self, fileid, tx if timestamp is None else None,
                            snapshot, wants_write, att.size,
                            historical=timestamp is not None)
        self._handles.append(handle)
        return handle

    def read_file_by_id(self, fileid: int, snapshot: Snapshot) -> bytes:
        """Whole-file read under an arbitrary snapshot (used by
        file-type functions, which must honour time travel)."""
        att = self.fileatt.get(fileid, snapshot)
        store = ChunkStore(self.db, fileid, None)
        out = bytearray()
        from repro.core.constants import CHUNK_SIZE
        from repro.core.files import READ_WINDOW_CHUNKS
        nchunks = (att.size + CHUNK_SIZE - 1) // CHUNK_SIZE
        for lo in range(0, nchunks, READ_WINDOW_CHUNKS):
            hi = min(nchunks - 1, lo + READ_WINDOW_CHUNKS - 1)
            chunks = store.read_range(lo, hi, snapshot)
            for chunkno in range(lo, hi + 1):
                chunk = chunks.get(chunkno, b"")
                want = min(CHUNK_SIZE, att.size - chunkno * CHUNK_SIZE)
                if len(chunk) < want:
                    chunk = chunk + bytes(want - len(chunk))
                out += chunk[:want]
        return bytes(out)

    def _forget_handle(self, handle: FileHandle) -> None:
        try:
            self._handles.remove(handle)
        except ValueError:
            pass

    # -- removal --------------------------------------------------------------------------

    def unlink(self, tx: Transaction, path: str) -> None:
        """Remove a file.  Only the *current* naming and attribute
        records are deleted; chunk data and all history remain, which
        is why accidental deletions can be undone with time travel."""
        snapshot = self.db.snapshot(tx)
        dirpath, name = basename_dirname(path)
        parentid = self._resolve_dir(dirpath, snapshot, tx)
        fileid = self.namespace.lookup(parentid, name, snapshot, tx)
        if fileid is None:
            raise FileNotFoundError_(f"no such file: {path!r}")
        att = self.fileatt.get(fileid, snapshot, tx)
        if att.type == TYPE_DIRECTORY:
            raise IsADirectoryError_(f"{path!r} is a directory; use rmdir")
        self.namespace.remove_entry(tx, parentid, name)
        self.fileatt.remove(tx, fileid)
        if self.lease_manager is not None:
            self.lease_manager.bump_name(path, tx)

    def rmdir(self, tx: Transaction, path: str) -> None:
        snapshot = self.db.snapshot(tx)
        dirpath, name = basename_dirname(path)
        parentid = self._resolve_dir(dirpath, snapshot, tx)
        fileid = self.namespace.lookup(parentid, name, snapshot, tx)
        if fileid is None:
            raise FileNotFoundError_(f"no such directory: {path!r}")
        att = self.fileatt.get(fileid, snapshot, tx)
        if att.type != TYPE_DIRECTORY:
            raise NotADirectoryError_(f"{path!r} is not a directory")
        if any(True for __ in self.namespace.children(fileid, snapshot, tx)):
            raise DirectoryNotEmptyError(f"{path!r} is not empty")
        self.namespace.remove_entry(tx, parentid, name)
        self.fileatt.remove(tx, fileid)
        if self.lease_manager is not None:
            self.lease_manager.bump_name(path, tx)

    def rename(self, tx: Transaction, old_path: str, new_path: str) -> None:
        snapshot = self.db.snapshot(tx)
        old_dir, old_name = basename_dirname(old_path)
        new_dir, new_name = basename_dirname(new_path)
        old_parent = self._resolve_dir(old_dir, snapshot, tx)
        new_parent = self._resolve_dir(new_dir, snapshot, tx)
        self.namespace.rename_entry(tx, old_parent, old_name,
                                    new_parent, new_name)
        if self.lease_manager is not None:
            # Both names change meaning; clients prefix-drop cached
            # resolutions under each (a directory moves its subtree).
            self.lease_manager.bump_name(old_path, tx)
            self.lease_manager.bump_name(new_path, tx)

    # -- by-reference structural ops ----------------------------------------------------

    def _flush_open_handles(self, tx: Transaction,
                            fileid: int | None = None) -> None:
        """Flush buffered writes of open handles under ``tx`` so a
        structural op sees (and clones) what the transaction already
        wrote instead of racing its own coalescing buffers."""
        for handle in list(self._handles):
            if handle.tx is tx and handle._open and handle._wrote:
                if fileid is None or handle.fileid == fileid:
                    handle.flush()

    def _install_pin_check(self) -> None:
        if getattr(self.db, "history_pin_check", None) is None:
            self.db.history_pin_check = self._history_pinned

    def _history_pinned(self, table_name: str) -> bool:
        """True when chunk versions of ``table_name`` may be reachable
        by reference from another file — the vacuum cleaner then
        archives superseded versions even when asked to discard them
        (``keep_history=False``), so no reference ever dangles."""
        if not table_name.startswith("inv"):
            return False
        try:
            fileid = int(table_name[3:])
        except ValueError:
            return False
        if not self.db.table_exists(VFSREF_TABLE):
            return False
        table = self.db.table(VFSREF_TABLE)
        snapshot = BootstrapSnapshot(self.db.tm)
        for _tid, _row in table.index_eq(("src",), (fileid,), snapshot):
            return True
        return False

    def _register_clone(self, tx: Transaction, src_fileid: int,
                        dst_fileid: int, src_lo: int, src_hi: int) -> None:
        if not self.db.table_exists(VFSREF_TABLE, tx):
            self.db.create_table(tx, VFSREF_TABLE, VFSREF_SCHEMA,
                                 indexes=VFSREF_INDEXES)
        self._install_pin_check()
        self.db.table(VFSREF_TABLE, tx).insert(
            tx, (src_fileid, dst_fileid, src_lo, src_hi))

    def _clone_into(self, tx: Transaction, src_id: int, lo_byte: int,
                    hi_byte: int, dst_store: ChunkStore,
                    dst_byte: int) -> tuple[int, int]:
        """Clone source bytes ``[lo_byte, hi_byte)`` into ``dst_store``
        at ``dst_byte`` (both chunk-aligned).  Whole chunks go by
        reference; a trailing partial chunk is materialized — at most
        one chunk of data moves, and the result is byte-for-byte what a
        physical copy would have produced.  Returns
        ``(chunks_referenced, chunks_materialized)``."""
        src_store = ChunkStore(self.db, src_id, tx)
        dst_id = dst_store.fileid
        nbytes = hi_byte - lo_byte
        full, tail = divmod(nbytes, CHUNK_SIZE)
        src_lo = lo_byte // CHUNK_SIZE
        dst_lo = dst_byte // CHUNK_SIZE
        referenced = materialized = 0
        if full > 0:
            referenced = dst_store.clone_range(
                tx, src_store, src_lo, src_lo + full - 1, dst_lo)
            if referenced:
                self._register_clone(tx, src_id, dst_id,
                                     src_lo, src_lo + full - 1)
        if tail:
            snapshot = self.db.snapshot(tx)
            data = src_store.read_chunk(src_lo + full, snapshot, tx)[:tail]
            if len(data) < tail:
                data = data + bytes(tail - len(data))  # hole → zeros
            dst_store.write_chunk(tx, dst_lo + full, data)
            dst_store.flush(tx)
            materialized = 1
        return referenced, materialized

    def _ensure_tail_chunk(self, tx: Transaction, store: ChunkStore,
                           size: int) -> int:
        """Guarantee the file's last chunk has a visible version (the
        checker's size-mismatch invariant: interior holes are legal,
        a trailing hole is not).  Costs one index probe; writes one
        zero-filled chunk only when the tail really is a hole — e.g. a
        clone of a source whose final chunk was itself a hole."""
        if size == 0:
            return 0
        last = (size - 1) // CHUNK_SIZE
        snapshot = self.db.snapshot(tx)
        if store._find_chunk(last, snapshot, tx) is not None:
            return 0
        store.write_chunk(tx, last, bytes(size - last * CHUNK_SIZE))
        store.flush(tx)
        return 1

    def _resolve_source_file(self, path: str, snapshot: Snapshot,
                             tx: Transaction,
                             lock: str | None = None) -> tuple[int, FileAtt]:
        """Resolve a plain file, optionally two-phase-locking its chunk
        table first.  Structural ops read the source's size and chunk
        rows and bake them into the destination — without a lock a
        concurrent truncate or overwrite could slip between the size
        read and the clone, producing a state no serial order explains.
        Sources take ``SHARED`` (readers don't exclude each other);
        truncate takes ``EXCLUSIVE`` up front (it rewrites the boundary
        chunk it just read).  The attributes are read *after* the lock,
        so they describe the locked state."""
        fileid = self.namespace.resolve(path, snapshot, tx)
        if lock is not None and tx is not None:
            table = ChunkStore(self.db, fileid, tx).table
            self.db.locks.acquire(tx, ("rel", table.info.oid), lock)
        att = self.fileatt.get(fileid, snapshot, tx)
        if att.type == TYPE_DIRECTORY:
            raise IsADirectoryError_(f"{path!r} is a directory")
        return fileid, att

    def reflink(self, tx: Transaction, src_path: str, dst_path: str,
                device: str | None = None) -> tuple[int, int]:
        """Create ``dst_path`` as a by-reference copy of ``src_path``:
        O(chunks) pointer rows, zero data movement (one materialized
        chunk if the size is not chunk-aligned).  Copy-on-write: later
        writes to either file supersede only that file's rows."""
        self._flush_open_handles(tx)
        snapshot = self.db.snapshot(tx)
        src_id, att = self._resolve_source_file(src_path, snapshot, tx,
                                                lock=SHARED)
        dst_id = self.creat(tx, dst_path, owner=att.owner, ftype=att.type,
                            device=device)
        dst_store = ChunkStore(self.db, dst_id, tx)
        referenced, materialized = self._clone_into(
            tx, src_id, 0, att.size, dst_store, 0)
        materialized += self._ensure_tail_chunk(tx, dst_store, att.size)
        self.fileatt.update(tx, dst_id, size=att.size,
                            mtime=self.db.clock.now())
        self.note_data_write(dst_id, tx)
        return referenced, materialized

    def concat(self, tx: Transaction, src_paths, dst_path: str,
               device: str | None = None) -> tuple[int, int]:
        """Create ``dst_path`` as the concatenation of ``src_paths`` by
        reference.  Every source but the last must be chunk-aligned in
        size (otherwise chunk boundaries would shift and references
        could not apply)."""
        if not src_paths:
            raise FileNotFoundError_("concat requires at least one source")
        self._flush_open_handles(tx)
        snapshot = self.db.snapshot(tx)
        sources = [self._resolve_source_file(p, snapshot, tx, lock=SHARED)
                   for p in src_paths]
        for path, (_fid, att) in zip(src_paths[:-1], sources[:-1]):
            if att.size % CHUNK_SIZE:
                raise StructuralOpError(
                    f"concat source {path!r} size {att.size} is not "
                    f"chunk-aligned ({CHUNK_SIZE})")
        dst_id = self.creat(tx, dst_path, owner=sources[0][1].owner,
                            device=device)
        dst_store = ChunkStore(self.db, dst_id, tx)
        offset = referenced = materialized = 0
        for fid, att in sources:
            r, m = self._clone_into(tx, fid, 0, att.size, dst_store, offset)
            referenced += r
            materialized += m
            offset += att.size
        materialized += self._ensure_tail_chunk(tx, dst_store, offset)
        self.fileatt.update(tx, dst_id, size=offset,
                            mtime=self.db.clock.now())
        self.note_data_write(dst_id, tx)
        return referenced, materialized

    def slice(self, tx: Transaction, src_path: str, lo: int, hi: int,
              dst_path: str, device: str | None = None) -> tuple[int, int]:
        """Create ``dst_path`` holding ``src_path``'s bytes ``[lo, hi)``
        by reference.  ``lo`` must be chunk-aligned; ``hi`` is
        arbitrary (the final partial chunk is materialized)."""
        if lo % CHUNK_SIZE:
            raise StructuralOpError(
                f"slice start {lo} is not chunk-aligned ({CHUNK_SIZE})")
        self._flush_open_handles(tx)
        snapshot = self.db.snapshot(tx)
        src_id, att = self._resolve_source_file(src_path, snapshot, tx,
                                                lock=SHARED)
        if not (0 <= lo <= hi <= att.size):
            raise StructuralOpError(
                f"slice range [{lo}, {hi}) outside file of {att.size} bytes")
        dst_id = self.creat(tx, dst_path, owner=att.owner, device=device)
        dst_store = ChunkStore(self.db, dst_id, tx)
        referenced, materialized = self._clone_into(
            tx, src_id, lo, hi, dst_store, 0)
        materialized += self._ensure_tail_chunk(tx, dst_store, hi - lo)
        self.fileatt.update(tx, dst_id, size=hi - lo,
                            mtime=self.db.clock.now())
        self.note_data_write(dst_id, tx)
        return referenced, materialized

    def truncate(self, tx: Transaction, path: str, size: int) -> None:
        """Set a file's length.  Shrinking deletes the chunk rows past
        the boundary (their history stays time-travel readable, like
        unlink) and rewrites the boundary chunk literally; growing just
        updates the size — the gap reads back as zeros (a hole)."""
        if size < 0:
            raise StructuralOpError(f"negative truncate size {size}")
        self._flush_open_handles(tx)
        snapshot = self.db.snapshot(tx)
        fileid, att = self._resolve_source_file(path, snapshot, tx,
                                                lock=EXCLUSIVE)
        if size < att.size:
            store = ChunkStore(self.db, fileid, tx)
            boundary, keep = divmod(size, CHUNK_SIZE)
            if keep:
                data = store.read_chunk(boundary, snapshot, tx)[:keep]
                if len(data) < keep:
                    data = data + bytes(keep - len(data))
                store.delete_from(tx, boundary + 1)
                store.write_chunk(tx, boundary, data)
                store.flush(tx)
            else:
                store.delete_from(tx, boundary)
        elif size > att.size:
            # Growing leaves a hole, except the new final chunk, which
            # is materialized (zero-extended from whatever the old tail
            # held) so the trailing-chunk invariant keeps holding.
            store = ChunkStore(self.db, fileid, tx)
            last = (size - 1) // CHUNK_SIZE
            tail_len = size - last * CHUNK_SIZE
            data = store.read_chunk(last, snapshot, tx)[:tail_len]
            if len(data) < tail_len:
                data = data + bytes(tail_len - len(data))
            store.write_chunk(tx, last, data)
            store.flush(tx)
        self.fileatt.update(tx, fileid, size=size, mtime=self.db.clock.now())
        self.note_data_write(fileid, tx)
        lm = self.lease_manager
        if lm is not None:
            lm.bump_oid(fileid, tx)

    # -- interrogation ------------------------------------------------------------------------

    def stat(self, path: str, tx: Transaction | None = None,
             timestamp: float | None = None) -> FileAtt:
        snapshot = self._snap(tx, timestamp)
        fileid = self.namespace.resolve(path, snapshot, tx)
        return self.fileatt.get(fileid, snapshot, tx)

    def readdir(self, path: str, tx: Transaction | None = None,
                timestamp: float | None = None) -> list[str]:
        snapshot = self._snap(tx, timestamp)
        fileid = self._resolve_dir(path, snapshot, tx)
        return sorted(name for name, __ in
                      self.namespace.children(fileid, snapshot, tx))

    def readdir_page(self, path: str, tx: Transaction | None = None,
                     timestamp: float | None = None,
                     cookie: str | None = None,
                     limit: int | None = None
                     ) -> tuple[list[str], str | None]:
        """One page of a directory listing: up to ``limit`` names
        strictly after ``cookie`` (None = from the start), in name
        order, plus the cookie for the next page (None at the end).
        The server materializes only the page, not the directory — the
        difference between a million-file ``readdir`` reply and a
        bounded one."""
        snapshot = self._snap(tx, timestamp)
        fileid = self._resolve_dir(path, snapshot, tx)
        names: list[str] = []
        for name, _fid in self.namespace.children_page(fileid, snapshot,
                                                       tx, cookie):
            names.append(name)
            if limit is not None and len(names) > limit:
                break
        if limit is not None and len(names) > limit:
            return names[:limit], names[limit - 1]
        return names, None

    def path_of(self, fileid: int, tx: Transaction | None = None,
                timestamp: float | None = None) -> str:
        return self.namespace.construct_path(fileid, self._snap(tx, timestamp), tx)

    def read_file(self, path: str, tx: Transaction | None = None,
                  timestamp: float | None = None) -> bytes:
        """Convenience: whole-file read."""
        with self.open(path, O_RDONLY, tx=tx, timestamp=timestamp) as f:
            return f.read()

    def write_file(self, tx: Transaction, path: str, data: bytes,
                   owner: str = "root", ftype: str = TYPE_PLAIN,
                   device: str | None = None) -> int:
        """Convenience: whole-file create-or-overwrite."""
        handle = self.open(path, O_RDWR | O_CREAT, tx=tx, owner=owner,
                           ftype=ftype, device=device)
        with handle as f:
            n = f.write(data)
        return n

    def set_file_type(self, tx: Transaction, path: str, ftype: str) -> None:
        """Assign a (defined) file type — "once this command has been
        issued, files may be assigned the new type"."""
        snapshot = self.db.snapshot(tx)
        if self.db.catalog.lookup_type(ftype, snapshot) is None \
                and ftype not in (TYPE_PLAIN, TYPE_DIRECTORY):
            from repro.errors import FileTypeError
            raise FileTypeError(f"type {ftype!r} has not been defined")
        fileid = self.namespace.resolve(path, snapshot, tx)
        self.fileatt.update(tx, fileid, ftype=ftype)

    # -- queries ----------------------------------------------------------------------------------

    def query(self, tx: Transaction, text: str) -> list[tuple]:
        """Ad hoc POSTQUEL over the file system.  The implicit range
        variable is the ``naming`` table, so the paper's simplified
        queries — ``retrieve (filename) where owner(file) = "mao"`` —
        run verbatim."""
        from repro.db.query.engine import QueryEngine
        return QueryEngine(self.db).execute(tx, text,
                                            default_relation="naming")

    # -- metadata functions -----------------------------------------------------------------------

    def _define_metadata_functions(self, tx: Transaction) -> None:
        """Catalog rows for the built-in metadata functions used by the
        paper's example queries: owner(file), filetype(file),
        size(file), dir(file), month_of(file)."""
        names = [
            ("owner", "text"), ("filetype", "text"), ("size", "int8"),
            ("dir", "text"), ("month_of", "text"), ("mtime_of", "time"),
            ("filename_of", "text"),
        ]
        for name, rettype in names:
            self.db.catalog.define_function(
                tx, name, "python", ["oid"], rettype, f"inv:{name}")

    def _register_metadata_functions(self) -> None:
        """Install the callables behind the catalog rows (the 'dynamic
        loader' registry is process-level and re-populated per mount)."""
        from repro.db.funcmgr import register_callable
        from repro.db.funcmgr import snapshot_aware

        @snapshot_aware
        def _owner(fileid, snapshot):
            return self.fileatt.get(fileid, snapshot).owner

        @snapshot_aware
        def _filetype(fileid, snapshot):
            return self.fileatt.get(fileid, snapshot).type

        @snapshot_aware
        def _size(fileid, snapshot):
            return self.fileatt.get(fileid, snapshot).size

        @snapshot_aware
        def _dir(fileid, snapshot):
            path = self.namespace.construct_path(fileid, snapshot)
            head, _sep, __tail = path.rpartition("/")
            return head or "/"

        @snapshot_aware
        def _month_of(fileid, snapshot):
            import time as _time
            mtime = self.fileatt.get(fileid, snapshot).mtime
            return _MONTHS[_time.gmtime(int(mtime)).tm_mon - 1]

        @snapshot_aware
        def _mtime_of(fileid, snapshot):
            return self.fileatt.get(fileid, snapshot).mtime

        @snapshot_aware
        def _filename_of(fileid, snapshot):
            return self.namespace.construct_path(fileid, snapshot)

        register_callable("inv:owner", _owner)
        register_callable("inv:filetype", _filetype)
        register_callable("inv:size", _size)
        register_callable("inv:dir", _dir)
        register_callable("inv:month_of", _month_of)
        register_callable("inv:mtime_of", _mtime_of)
        register_callable("inv:filename_of", _filename_of)

    def purge_history(self, path: str) -> object:
        """Discard a file's superseded chunk versions without archiving
        them — the per-file opt-out of history the paper describes for
        users "with no interest in maintaining history".  Time travel
        on this file's *data* before the purge point stops working;
        current contents are untouched."""
        from repro.core.chunks import chunk_table_name
        fileid = self.resolve(path)
        return self.db.vacuum(chunk_table_name(fileid), keep_history=False)

    # -- storage inspection ---------------------------------------------------------------------------

    def chunk_table_of(self, path: str, tx: Transaction | None = None) -> str:
        return chunk_table_name(self.resolve(path, tx))


_MONTHS = ("January", "February", "March", "April", "May", "June", "July",
           "August", "September", "October", "November", "December")
