"""Storage consistency checking via self-identifying blocks.

"The only difficulties arise when the physical storage medium is
damaged, or when garbage has been written to the medium by hardware or
software failures.  Inversion could detect these cases by making all
blocks self-identifying; every block could be tagged with its file
identifier and block number.  Although the current version of the
system does not do this, space has been reserved in the tables storing
file data for this purpose."

Our chunk records *do* fill the reserved field (``selfid`` = file
identifier), so this module implements the checker the paper sketches.
Unlike fsck, it is **not** needed for crash recovery — it exists to
detect media corruption and misdirected writes, and runs on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.chunks import REF_PAYLOAD, chunk_table_name
from repro.core.constants import CHUNK_SIZE
from repro.db.snapshot import BootstrapSnapshot
from repro.errors import InversionError


@dataclass
class Corruption:
    """One detected inconsistency."""

    fileid: int
    chunkno: int | None
    kind: str       # 'misdirected', 'oversize', 'negative-chunkno',
                    # 'unreadable', 'size-mismatch', 'duplicate-chunk',
                    # 'bad-reference', 'dangling-reference',
                    # 'unregistered-reference'
    detail: str


@dataclass
class CheckReport:
    files_checked: int = 0
    chunks_checked: int = 0
    corruptions: list[Corruption] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corruptions


class ConsistencyChecker:
    """Validates chunk tables against their self-identification tags."""

    def __init__(self, fs) -> None:
        self.fs = fs

    def check_file(self, fileid: int, report: CheckReport | None = None
                   ) -> CheckReport:
        """Validate every stored version of every chunk of one file."""
        report = report or CheckReport()
        db = self.fs.db
        snapshot = BootstrapSnapshot(db.tm)
        info = db.catalog.lookup_table(chunk_table_name(fileid), snapshot,
                                       use_cache=False)
        if info is None:
            report.corruptions.append(Corruption(
                fileid, None, "unreadable", "no chunk table in the catalog"))
            return report
        from repro.db.heap import HeapFile
        heap = HeapFile(db.buffers, info.devname, info.name, info.schema,
                        cpu=db.cpu)
        report.files_checked += 1
        try:
            versions = list(heap.scan_all_versions())
        except Exception as exc:
            report.corruptions.append(Corruption(
                fileid, None, "unreadable", f"heap scan failed: {exc}"))
            return report
        for _tid, _xmin, _xmax, values in versions:
            chunkno, selfid, data = values
            report.chunks_checked += 1
            if selfid < 0:
                # A by-reference row: its self-identification is the
                # pointer payload itself (source fileid + chunkno +
                # version xmin).  Validate the encoding here; whether
                # the pinned version still exists is the job of
                # :func:`repro.vfs.extents.shared_extents`.
                self._check_reference(fileid, chunkno, selfid, data, report)
                continue
            if selfid != fileid:
                report.corruptions.append(Corruption(
                    fileid, chunkno, "misdirected",
                    f"chunk tagged for file {selfid}, found in file "
                    f"{fileid}'s table"))
            if chunkno < 0:
                report.corruptions.append(Corruption(
                    fileid, chunkno, "negative-chunkno",
                    "chunk number below zero"))
            if len(data) > CHUNK_SIZE:
                report.corruptions.append(Corruption(
                    fileid, chunkno, "oversize",
                    f"chunk holds {len(data)} bytes > {CHUNK_SIZE}"))
        # Exactly one visible version per chunk number: coalescing
        # dirty runs into batched writes must neither drop a chunk's
        # current version nor leave two versions visible at once.
        visible_counts: dict[int, int] = {}
        for _t, row in heap.scan(snapshot):
            visible_counts[row[0]] = visible_counts.get(row[0], 0) + 1
        for chunkno, count in sorted(visible_counts.items()):
            if count > 1:
                report.corruptions.append(Corruption(
                    fileid, chunkno, "duplicate-chunk",
                    f"{count} visible versions of one chunk"))
        # The recorded size must be coverable by the visible chunks.
        # (Only the last chunk is required: interior holes are legal —
        # absent chunk numbers read back as zeros.)
        att_entry = self.fs.fileatt.get_entry(fileid, snapshot)
        if att_entry is not None:
            att = att_entry[1]
            needed = (att.size + CHUNK_SIZE - 1) // CHUNK_SIZE
            last = needed - 1
            if att.size > 0 and last not in visible_counts:
                report.corruptions.append(Corruption(
                    fileid, last, "size-mismatch",
                    f"size {att.size} implies chunk {last}, which has no "
                    f"visible version"))
        return report

    def _check_reference(self, fileid: int, chunkno: int, selfid: int,
                         data: bytes, report: CheckReport) -> None:
        """Structural validation of one by-reference row."""
        if chunkno < 0:
            report.corruptions.append(Corruption(
                fileid, chunkno, "negative-chunkno",
                "chunk number below zero"))
        if len(data) != REF_PAYLOAD.size:
            report.corruptions.append(Corruption(
                fileid, chunkno, "bad-reference",
                f"reference payload is {len(data)} bytes, "
                f"expected {REF_PAYLOAD.size}"))
            return
        src_fid, src_chunkno, _src_xmin = REF_PAYLOAD.unpack(data)
        if src_fid != -selfid:
            report.corruptions.append(Corruption(
                fileid, chunkno, "bad-reference",
                f"selfid names source {-selfid}, payload names "
                f"{src_fid}"))
        if src_fid == fileid:
            report.corruptions.append(Corruption(
                fileid, chunkno, "bad-reference",
                "self-referential chunk pointer"))
        if src_chunkno < 0:
            report.corruptions.append(Corruption(
                fileid, chunkno, "bad-reference",
                f"negative source chunk number {src_chunkno}"))

    def visible_chunk_count(self, fileid: int) -> int:
        """Number of distinct chunk numbers with a visible version —
        the invariant quantity batched flushes must preserve."""
        db = self.fs.db
        snapshot = BootstrapSnapshot(db.tm)
        info = db.catalog.lookup_table(chunk_table_name(fileid), snapshot,
                                       use_cache=False)
        if info is None:
            return 0
        from repro.db.heap import HeapFile
        heap = HeapFile(db.buffers, info.devname, info.name, info.schema,
                        cpu=db.cpu)
        return len({row[0] for _t, row in heap.scan(snapshot)})

    def check_all(self) -> CheckReport:
        """Validate every file reachable from the namespace."""
        report = CheckReport()
        snapshot = BootstrapSnapshot(self.fs.db.tm)
        naming = self.fs.db.table("naming")
        for _tid, (name, _parent, fileid) in naming.scan(snapshot):
            if fileid == self.fs.namespace.root_fileid:
                continue
            att = self.fs.fileatt.get_entry(fileid, snapshot)
            if att is None:
                report.corruptions.append(Corruption(
                    fileid, None, "unreadable",
                    f"naming entry {name!r} has no attribute row"))
                continue
            if att[1].type == "directory":
                continue
            self.check_file(fileid, report)
        return report

    def raise_if_corrupt(self) -> None:
        report = self.check_all()
        if not report.clean:
            first = report.corruptions[0]
            raise InversionError(
                f"{len(report.corruptions)} corruptions; first: "
                f"file {first.fileid} chunk {first.chunkno}: {first.detail}")
