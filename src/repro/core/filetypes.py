"""Typed files.

"Inversion supports typing of user files.  A new file type is declared
by issuing a define type command to the database system.  Once this
command has been issued, files may be assigned the new type.  POSTGRES
will automatically enforce type checking when, for example, functions
are called that operate on the file."

:class:`FileTypeManager` declares file types and registers functions
restricted to them.  Registered functions receive the file's *content*
(read under the active snapshot, so historical queries analyse
historical bytes) and raise :class:`FileTypeError` when applied to a
file of the wrong type — the automatic enforcement the paper promises.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.db.funcmgr import register_callable, snapshot_aware
from repro.db.transactions import Transaction
from repro.errors import FileTypeError


class FileTypeManager:
    """Type declaration and typed-function registration for one mount."""

    def __init__(self, fs) -> None:
        self.fs = fs

    # -- types ---------------------------------------------------------------

    def define_file_type(self, tx: Transaction, name: str,
                         description: str = "") -> None:
        """``define type name`` — after this, files may be assigned the
        type with :meth:`InversionFS.set_file_type`."""
        self.fs.db.catalog.define_type(tx, name, description)

    def assign(self, tx: Transaction, path: str, ftype: str) -> None:
        self.fs.set_file_type(tx, path, ftype)

    # -- functions ----------------------------------------------------------------

    def register_content_function(self, tx: Transaction, name: str,
                                  fn: Callable, rettype: str,
                                  filetypes: Sequence[str],
                                  extra_argtypes: Sequence[str] = ()) -> None:
        """Register ``fn(content: bytes, *extra_args)`` as a queryable
        function over files of the given types.

        The installed wrapper (a) verifies the file's type under the
        active snapshot, (b) reads the file's (historical) content, and
        (c) invokes ``fn`` — the reproduction of "functions … will be
        dynamically loaded and executed on demand by the database
        system" with automatic type checking.
        """
        fs = self.fs
        allowed = tuple(filetypes)

        @snapshot_aware
        def wrapper(fileid, *args, snapshot):
            att = fs.fileatt.get(fileid, snapshot)
            if allowed and att.type not in allowed:
                raise FileTypeError(
                    f"function {name!r} is defined on {allowed}, "
                    f"not on files of type {att.type!r}")
            content = fs.read_file_by_id(fileid, snapshot)
            return fn(content, *args)

        key = f"typed:{name}"
        register_callable(key, wrapper)
        self.fs.db.catalog.define_function(
            tx, name, "python", ["oid", *extra_argtypes], rettype, key,
            ",".join(allowed))

    def register_fileid_function(self, tx: Transaction, name: str,
                                 fn: Callable, rettype: str,
                                 argtypes: Sequence[str] = ("oid",)) -> None:
        """Register ``fn(fs, fileid, snapshot, *args)`` — for functions
        that need metadata rather than content."""
        fs = self.fs

        @snapshot_aware
        def wrapper(fileid, *args, snapshot):
            return fn(fs, fileid, snapshot, *args)

        key = f"typed:{name}"
        register_callable(key, wrapper)
        self.fs.db.catalog.define_function(
            tx, name, "python", list(argtypes), rettype, key, "")

    # -- introspection ------------------------------------------------------------------

    def functions_for_type(self, ftype: str, tx: Transaction) -> list[str]:
        """Names of registered functions restricted to ``ftype`` (Table
        2's right-hand column)."""
        snapshot = self.fs.db.snapshot(tx)
        return sorted(p.name for p in
                      self.fs.db.catalog.list_functions(snapshot)
                      if ftype in p.typrestrict.split(","))
