"""Server side of the client/server configuration.

The paper's measurements compare two access paths to the same file
system: a remote client speaking a TCP/IP RPC to the data manager
("client/server Inversion"), and code dynamically loaded into the data
manager itself ("single process"), where "the benchmark and the file
system are running in the same address space, and no data must be
copied between them".

:class:`InversionServer` is the in-data-manager dispatcher: it owns one
:class:`~repro.core.library.InversionClient` session per connection and
charges per-request dispatch CPU.  The network is *not* modelled here —
:class:`repro.core.client.RemoteInversionClient` charges the wire.
"""

from __future__ import annotations

import inspect

from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.db.transactions import PREPARED
from repro.errors import InversionError
from repro.obs.registry import MetricSpec

METRICS = (
    MetricSpec("rpc.dispatches", "counter", "calls",
               "RPC requests dispatched into the file system, by "
               "method.",
               "repro.core.server", ("method",)),
)


class InversionServer:
    """Dispatches RPC requests into the file system."""

    #: methods a remote client may invoke.  ``p_prepare``/``p_resolve``
    #: are the 2PC participant half-calls a shard coordinator drives.
    ALLOWED = frozenset({
        "p_begin", "p_commit", "p_abort", "p_prepare", "p_resolve",
        "p_creat", "p_open", "p_close",
        "p_read", "p_write", "p_lseek", "p_mkdir", "p_unlink", "p_rmdir",
        "p_rename", "p_stat", "p_readdir", "p_query",
        "p_reflink", "p_concat", "p_slice", "p_truncate",
    })

    #: method -> Signature, for request validation (class-level: the
    #: signatures are properties of InversionClient, not of any server
    #: instance).
    _SIGNATURES: dict[str, inspect.Signature] = {}

    def __init__(self, fs: InversionFS) -> None:
        self.fs = fs
        self._sessions: dict[int, InversionClient] = {}
        self._next_session = 1
        #: :class:`~repro.cache.leases.LeaseManager` once any client
        #: enables caching (:meth:`enable_leases`); None = no lease
        #: bookkeeping at all, the zero-overhead default.
        self.leases = None

    def enable_leases(self):
        """Turn on lease bookkeeping for this server (idempotent).
        Shares the file system's manager if another server on the same
        ``fs`` already enabled it, so epochs stay one space."""
        if self.leases is None:
            from repro.cache.leases import LeaseManager, bind_lease_stats
            manager = getattr(self.fs, "lease_manager", None)
            if manager is None:
                manager = LeaseManager()
                self.fs.attach_leases(manager)
            self.leases = manager
            obs = getattr(self.fs.db, "obs", None)
            if obs is not None:
                bind_lease_stats(obs.metrics, manager.stats)
        return self.leases

    def in_transaction(self, session_id: int) -> bool:
        """Is the session inside an explicit transaction?  Client
        caches refuse to serve or fill transactional traffic."""
        session = self._sessions.get(session_id)
        return session is not None and session._tx is not None

    def session_last_xid(self, session_id: int) -> int | None:
        """xid of the session's most recent transaction (cache fills
        stamp chunk entries with it for per-tx hit accounting)."""
        session = self._sessions.get(session_id)
        return None if session is None else session.last_xid

    @classmethod
    def _signature(cls, method: str) -> inspect.Signature:
        sig = cls._SIGNATURES.get(method)
        if sig is None:
            sig = cls._SIGNATURES[method] = inspect.signature(
                getattr(InversionClient, method))
        return sig

    def _validate(self, method: str, args: tuple, kwargs: dict) -> None:
        """Reject malformed requests at the RPC boundary: a remote
        caller's bad arity must surface as a protocol error
        (:class:`InversionError`), not as a bare TypeError escaping
        from deep inside the library."""
        try:
            # ``None`` stands in for the bound ``self`` slot.
            self._signature(method).bind(None, *args, **kwargs)
        except TypeError as exc:
            raise InversionError(
                f"bad arguments for RPC method {method!r}: {exc}") from None

    def connect(self) -> int:
        """Open a session; returns a connection id."""
        session_id = self._next_session
        self._next_session += 1
        self._sessions[session_id] = InversionClient(self.fs)
        return session_id

    def disconnect(self, session_id: int) -> None:
        """Tear down a session — including one that died mid-transaction
        with buffered writes still unreconciled.  The open transaction
        is aborted (running its abort hooks), and its locks are released
        even if a hook or the abort's status append fails; without that
        guarantee a dying session would strand exclusive locks and
        deadlock every other session touching the same files.  Surviving
        descriptors are then closed so attribute updates left pending by
        auto-commit writes are reconciled rather than silently dropped
        (their chunk data already committed; only fileatt lagged).

        One exception: a PREPARED (in-doubt 2PC) transaction must
        *survive* its session.  Its fate belongs to the coordinator's
        decision log, so aborting it here would break cross-shard
        atomicity; it keeps its locks and its prepared record until
        ``resolve_prepared``/``resolve_in_doubt`` delivers the
        decision.  Descriptor reconciliation is skipped too — it would
        open an auto-commit transaction that blocks on the prepared
        transaction's own locks."""
        if self.leases is not None:
            # Revoke first: a crashed client must never shield a stale
            # cache entry behind a lease the server still honours.
            self.leases.revoke(session_id)
        session = self._sessions.pop(session_id, None)
        if session is None:
            return
        tx = session._tx
        if tx is not None and tx.state == PREPARED:
            session._tx = None
            session._fds.clear()
            return
        if tx is not None:
            try:
                session.p_abort()
            except Exception:
                # The session is dead — a failing abort hook (or status
                # append) must not leave teardown half-done.
                pass
            finally:
                session._tx = None
                self.fs.db.locks.release_all(tx)
        for fd in list(session._fds):
            try:
                session.p_close(fd)
            except Exception:
                session._fds.pop(fd, None)

    def dispatch(self, session_id: int, method: str, *args, **kwargs):
        """Execute one request for a session, charging dispatch CPU."""
        if method not in self.ALLOWED:
            raise InversionError(f"unknown RPC method {method!r}")
        session = self._sessions.get(session_id)
        if session is None:
            raise InversionError(f"no session {session_id}")
        self._validate(method, args, kwargs)
        if self.fs.db.cpu is not None:
            self.fs.db.cpu.rpc_dispatch()
        obs = self.fs.db.obs
        if obs is not None:
            obs.rpc_dispatch(method)
            if obs.tracer.enabled:
                with obs.tracer.span("rpc.dispatch", method=method,
                                     session=session_id):
                    result = getattr(session, method)(*args, **kwargs)
            else:
                result = getattr(session, method)(*args, **kwargs)
        else:
            result = getattr(session, method)(*args, **kwargs)
        if self.leases is not None:
            self._lease_post(session_id, session, method, result)
        return result

    def _lease_post(self, session_id: int, session: InversionClient,
                    method: str, result) -> None:
        """Piggyback lease traffic on a successful reply."""
        if method in ("p_open", "p_creat"):
            desc = session._fds.get(result)
            if desc is not None and desc.timestamp is None:
                # The resolution in the reply lets the client pre-fill
                # its path cache without a stat round trip.
                self.leases.grant(session_id, desc.path, desc.fileid)
        elif method == "p_query":
            # POSTQUEL mutation statements bypass the fs hooks, so
            # invalidate conservatively.  Queued if the session is in a
            # transaction; for auto-commit p_query the library already
            # committed, so the bump emits immediately.
            self.leases.bump_all(session._tx)
