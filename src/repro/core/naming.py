"""Namespace management: the ``naming`` table.

"Inversion stores the file system namespace in a table
``naming(filename = char[], parentid = object_id, file = object_id)``
… A hierarchical namespace is imposed by having individual files point
at their parent's naming entries."  Table 1 of the paper shows the rows
for ``/etc/passwd``; :meth:`Namespace.resolve` and
:meth:`Namespace.construct_path` are the paper's "routines to parse
pathnames in order to find desired files, and to construct pathnames
for particular file identifiers".

Two B-tree indexes speed these up (the paper: "various Btree indices on
the naming table speed up these operations"): ``(parentid, filename)``
for lookups/readdir and ``(file)`` for reverse path construction.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.constants import ROOT_PARENT
from repro.db.heap import TID
from repro.db.snapshot import Snapshot
from repro.db.transactions import Transaction
from repro.db.tuples import Column, Schema
from repro.errors import FileExistsError_, FileNotFoundError_

NAMING_TABLE = "naming"
NAMING_SCHEMA = Schema([
    Column("filename", "text"),
    Column("parentid", "oid"),
    Column("file", "oid"),
])
NAMING_INDEXES = (("parentid", "filename"), ("file",))

MAX_FILENAME_BYTES = 1000
"""Longest permitted name component.  A naming record (and its B-tree
entry) must fit comfortably on an 8 KB page; 1000 bytes is generous
next to the era's 255-byte limits while keeping index nodes sane."""


def split_path(path: str) -> list[str]:
    """'/etc/passwd' → ['etc', 'passwd'].  Paths must be absolute —
    "all of the files stored by Inversion in a single database are
    rooted at '/' in that database"."""
    if not path.startswith("/"):
        raise FileNotFoundError_(f"Inversion paths are absolute: {path!r}")
    return [part for part in path.split("/") if part]


def basename_dirname(path: str) -> tuple[str, str]:
    parts = split_path(path)
    if not parts:
        raise FileNotFoundError_("the root directory has no parent")
    return "/" + "/".join(parts[:-1]), parts[-1]


class Namespace:
    """Operations on the naming table, bound to a database."""

    def __init__(self, db, root_fileid: int) -> None:
        self.db = db
        self.root_fileid = root_fileid

    def _table(self, tx: Transaction | None):
        return self.db.table(NAMING_TABLE, tx)

    # -- creation --------------------------------------------------------

    @classmethod
    def bootstrap(cls, db, tx: Transaction) -> "Namespace":
        """Create the naming table and the root entry ('/'): "The root
        directory, named '/', appears in every POSTGRES database as
        shipped from Berkeley."""
        table = db.create_table(tx, NAMING_TABLE, NAMING_SCHEMA,
                                indexes=NAMING_INDEXES)
        root_fileid = db.catalog.allocate_oid()
        table.insert(tx, ("", ROOT_PARENT, root_fileid))
        return cls(db, root_fileid)

    @classmethod
    def attach(cls, db) -> "Namespace":
        """Bind to an existing database's naming table."""
        from repro.errors import TableError
        try:
            table = db.table(NAMING_TABLE)
        except TableError:
            raise FileNotFoundError_(
                "no naming table; not an Inversion database") from None
        from repro.db.snapshot import BootstrapSnapshot
        snapshot = BootstrapSnapshot(db.tm)
        for _tid, row in table.index_eq(("parentid", "filename"),
                                        (ROOT_PARENT, ""), snapshot):
            return cls(db, row[2])
        raise FileNotFoundError_("no root directory entry; not an Inversion database")

    # -- lookups ------------------------------------------------------------

    def lookup_entry(self, parentid: int, name: str, snapshot: Snapshot,
                     tx: Transaction | None = None) -> tuple[TID, tuple] | None:
        table = self._table(tx)
        for tid, row in table.index_eq(("parentid", "filename"),
                                       (parentid, name), snapshot, tx):
            return tid, row
        return None

    def lookup(self, parentid: int, name: str, snapshot: Snapshot,
               tx: Transaction | None = None) -> int | None:
        entry = self.lookup_entry(parentid, name, snapshot, tx)
        return None if entry is None else entry[1][2]

    def resolve(self, path: str, snapshot: Snapshot,
                tx: Transaction | None = None) -> int:
        """Path → file identifier, or raise FileNotFoundError_."""
        fileid = self.root_fileid
        for part in split_path(path):
            child = self.lookup(fileid, part, snapshot, tx)
            if child is None:
                raise FileNotFoundError_(f"no such file or directory: {path!r}")
            fileid = child
        return fileid

    def try_resolve(self, path: str, snapshot: Snapshot,
                    tx: Transaction | None = None) -> int | None:
        try:
            return self.resolve(path, snapshot, tx)
        except FileNotFoundError_:
            return None

    def construct_path(self, fileid: int, snapshot: Snapshot,
                       tx: Transaction | None = None) -> str:
        """File identifier → absolute pathname (reverse resolution via
        the ``(file)`` index)."""
        if fileid == self.root_fileid:
            return "/"
        parts: list[str] = []
        table = self._table(tx)
        current = fileid
        for _depth in range(4096):  # cycle guard
            entry = None
            for _tid, row in table.index_eq(("file",), (current,), snapshot, tx):
                entry = row
                break
            if entry is None:
                raise FileNotFoundError_(f"no naming entry for file {current}")
            name, parentid, _file = entry
            if parentid == ROOT_PARENT:
                break
            parts.append(name)
            current = parentid
        return "/" + "/".join(reversed(parts))

    def children(self, parentid: int, snapshot: Snapshot,
                 tx: Transaction | None = None) -> Iterator[tuple[str, int]]:
        """(name, fileid) of directory entries, in name order."""
        table = self._table(tx)
        for _tid, row in table.index_range(("parentid", "filename"),
                                           (parentid,), (parentid,),
                                           snapshot, tx):
            if row[0] == "" and parentid == ROOT_PARENT:
                continue  # the root's own entry
            yield row[0], row[2]

    def children_page(self, parentid: int, snapshot: Snapshot,
                      tx: Transaction | None = None,
                      cookie: str | None = None) -> Iterator[tuple[str, int]]:
        """Directory entries strictly after ``cookie`` (a name), in
        name order — the server side of paged readdir.  ``"\\0"`` is
        rejected in file names, so ``cookie + "\\0"`` is the smallest
        key greater than the cookie: the scan restarts exactly where
        the previous page stopped, in one index descent, without
        materializing the part of the directory already listed."""
        table = self._table(tx)
        lo = (parentid,) if cookie is None else (parentid, cookie + "\0")
        for _tid, row in table.index_range(("parentid", "filename"),
                                           lo, (parentid,), snapshot, tx):
            if row[0] == "" and parentid == ROOT_PARENT:
                continue  # the root's own entry
            yield row[0], row[2]

    # -- mutation -----------------------------------------------------------------

    def add_entry(self, tx: Transaction, parentid: int, name: str,
                  fileid: int) -> None:
        if len(name.encode("utf-8")) > MAX_FILENAME_BYTES:
            raise FileNotFoundError_(
                f"file name longer than {MAX_FILENAME_BYTES} bytes")
        if "/" in name or "\0" in name:
            raise FileNotFoundError_(f"illegal character in name {name!r}")
        table = self._table(tx)
        # Lock the name *before* the existence check: a concurrent
        # creator of the same name blocks here and re-checks after the
        # winner commits, so no duplicate entry can slip in.
        table.lock_exclusive(tx, (parentid, name))
        snapshot = self.db.snapshot(tx)
        if self.lookup(parentid, name, snapshot, tx) is not None:
            raise FileExistsError_(f"{name!r} already exists in directory {parentid}")
        table.insert(tx, (name, parentid, fileid),
                     lock_key=(parentid, name))

    def remove_entry(self, tx: Transaction, parentid: int, name: str) -> int:
        """Delete a naming entry, returning the fileid it named.  The
        record's old version remains visible to time travel — this is
        what makes undelete work."""
        snapshot = self.db.snapshot(tx)
        entry = self.lookup_entry(parentid, name, snapshot, tx)
        if entry is None:
            raise FileNotFoundError_(f"no entry {name!r} in directory {parentid}")
        tid, row = entry
        self._table(tx).delete(tx, tid, lock_key=(parentid, name))
        return row[2]

    def rename_entry(self, tx: Transaction, parentid: int, name: str,
                     new_parentid: int, new_name: str) -> None:
        snapshot = self.db.snapshot(tx)
        entry = self.lookup_entry(parentid, name, snapshot, tx)
        if entry is None:
            raise FileNotFoundError_(f"no entry {name!r} in directory {parentid}")
        if self.lookup(new_parentid, new_name, snapshot, tx) is not None:
            raise FileExistsError_(f"{new_name!r} already exists")
        tid, row = entry
        table = self._table(tx)
        # Lock both the old and the new name so concurrent renames and
        # creates of either serialize.
        table.lock_exclusive(tx, (parentid, name))
        table.update(tx, tid, (new_name, new_parentid, row[2]),
                     lock_key=(new_parentid, new_name))
