"""Remote client: the "special library" linked by network applications.

"Client/server communication was via TCP/IP over a 10 Mbit/sec
Ethernet" and the paper's evaluation concludes that this protocol "is
much too heavy-weight": each 1 MB test pays 3–5 seconds of remote
overhead.  :class:`RemoteInversionClient` reproduces that cost
structure: every ``p_*`` call is one synchronous request/response
exchange through a :class:`~repro.sim.network.NetworkModel`, with
payload sizes derived from the arguments (so big reads ship big
responses, and page-sized loops pay per-message overhead 128 times per
megabyte).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.server import InversionServer
from repro.sim.network import NetworkModel

_REQ_BASE = 64    # RPC header + method + fixed args
_RESP_BASE = 32   # status + fixed return


def _arg_bytes(args: tuple, kwargs: dict) -> int:
    total = 0
    for value in list(args) + list(kwargs.values()):
        if isinstance(value, (bytes, bytearray)):
            total += len(value)
        elif isinstance(value, str):
            total += len(value)
        else:
            total += 8
    return total


def _result_bytes(result: object) -> int:
    if isinstance(result, (bytes, bytearray)):
        return len(result)
    if isinstance(result, str):
        return len(result)
    if isinstance(result, (list, tuple)):
        return sum(_result_bytes(v) for v in result)
    return 8


@dataclass
class RemoteInversionClient:
    """The p_* API, executed over the simulated network.

    ``write_behind`` models the library's streaming of consecutive
    ``p_write`` calls: while the server chews on one write, the next
    request is already on the wire, so a sustained write sequence costs
    ``max(network, server)`` per call instead of their sum.  Reads stay
    fully synchronous — the client needs each reply before it can
    continue, which is exactly the heavyweight behaviour the paper
    complains about.
    """

    server: InversionServer
    network: NetworkModel
    write_behind: bool = True

    def __post_init__(self) -> None:
        self._session = self.server.connect()
        self._last_was_write = False

    def close(self) -> None:
        self.server.disconnect(self._session)

    def _call(self, method: str, *args, **kwargs):
        request = _REQ_BASE + _arg_bytes(args, kwargs)
        pipelined = (self.write_behind and method == "p_write"
                     and self._last_was_write)
        self._last_was_write = method in ("p_write", "p_lseek")
        if not pipelined:
            # The request travels, the server works, the response returns.
            self.network.send(request)
            result = self.server.dispatch(self._session, method, *args, **kwargs)
            self.network.send(_RESP_BASE + _result_bytes(result))
            return result
        response = _RESP_BASE + 8
        net_cost = self.network.cost_round_trip(request, response)
        before = self.network.clock.now()
        result = self.server.dispatch(self._session, method, *args, **kwargs)
        server_elapsed = self.network.clock.now() - before
        self.network.charge_seconds(max(0.0, net_cost - server_elapsed),
                                    messages=2, payload=request + response)
        return result

    # -- the client API, one forwarding stub per call --------------------

    def p_begin(self):
        return self._call("p_begin")

    def p_commit(self):
        return self._call("p_commit")

    def p_abort(self):
        return self._call("p_abort")

    def p_creat(self, path, mode=2, device=None, owner="root", ftype="plain"):
        return self._call("p_creat", path, mode, device=device, owner=owner,
                          ftype=ftype)

    def p_open(self, fname, mode=0, timestamp=None):
        return self._call("p_open", fname, mode, timestamp)

    def p_close(self, fd):
        return self._call("p_close", fd)

    def p_read(self, fd, length):
        return self._call("p_read", fd, length)

    def p_write(self, fd, buf):
        return self._call("p_write", fd, buf)

    def p_lseek(self, fd, offset_high, offset_low, whence=0):
        return self._call("p_lseek", fd, offset_high, offset_low, whence)

    def p_mkdir(self, path, owner="root"):
        return self._call("p_mkdir", path, owner=owner)

    def p_unlink(self, path):
        return self._call("p_unlink", path)

    def p_rmdir(self, path):
        return self._call("p_rmdir", path)

    def p_rename(self, old, new):
        return self._call("p_rename", old, new)

    def p_stat(self, path, timestamp=None):
        return self._call("p_stat", path, timestamp)

    def p_readdir(self, path, timestamp=None):
        return self._call("p_readdir", path, timestamp)

    def p_query(self, text):
        return self._call("p_query", text)
