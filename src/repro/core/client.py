"""Remote client: the "special library" linked by network applications.

"Client/server communication was via TCP/IP over a 10 Mbit/sec
Ethernet" and the paper's evaluation concludes that this protocol "is
much too heavy-weight": each 1 MB test pays 3–5 seconds of remote
overhead.  :class:`RemoteInversionClient` reproduces that cost
structure: every ``p_*`` call is one synchronous request/response
exchange through a :class:`~repro.sim.network.NetworkModel`, with
payload sizes derived from the arguments (so big reads ship big
responses, and page-sized loops pay per-message overhead 128 times per
megabyte).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import CHUNK_SIZE
from repro.core.server import InversionServer
from repro.errors import FileNotFoundError_
from repro.obs.registry import MetricSpec
from repro.sim.network import NetworkModel

METRICS = (
    MetricSpec("rpc.client.batched_reads", "counter", "ops",
               "RPCs that fetched more than the caller asked for "
               "(read-ahead window).",
               "repro.core.client"),
    MetricSpec("rpc.client.buffered_reads", "counter", "ops",
               "p_read calls answered from the client buffer, no RPC "
               "at all.",
               "repro.core.client"),
    MetricSpec("rpc.client.batched_writes", "counter", "ops",
               "p_write RPCs that shipped more than one buffered "
               "call's data.",
               "repro.core.client"),
    MetricSpec("rpc.client.buffered_writes", "counter", "ops",
               "p_write calls absorbed into the write buffer, no RPC "
               "at all.",
               "repro.core.client"),
)

_REQ_BASE = 64    # RPC header + method + fixed args
_RESP_BASE = 32   # status + fixed return


def _arg_bytes(args: tuple, kwargs: dict) -> int:
    total = 0
    for value in list(args) + list(kwargs.values()):
        if isinstance(value, (bytes, bytearray)):
            total += len(value)
        elif isinstance(value, str):
            total += len(value)
        else:
            total += 8
    return total


def _result_bytes(result: object) -> int:
    if isinstance(result, (bytes, bytearray)):
        return len(result)
    if isinstance(result, str):
        return len(result)
    if isinstance(result, (list, tuple)):
        return sum(_result_bytes(v) for v in result)
    return 8


@dataclass
class RemoteInversionClient:
    """The p_* API, executed over the simulated network.

    ``write_behind`` models the library's streaming of consecutive
    ``p_write`` calls: while the server chews on one write, the next
    request is already on the wire, so a sustained write sequence costs
    ``max(network, server)`` per call instead of their sum.  Reads stay
    fully synchronous — the client needs each reply before it can
    continue, which is exactly the heavyweight behaviour the paper
    complains about.

    ``read_batch_chunks`` is the sequential-read counterpart (off by
    default to preserve the paper's measured protocol): once a
    descriptor issues its second consecutive sequential ``p_read``, the
    client fetches up to that many request-lengths in a single RPC and
    serves the following reads from the returned buffer — the NFS biod
    read-ahead trick, paying the per-message stack overhead once per
    window instead of once per chunk.  Like NFS client caching, a
    buffered byte can be stale with respect to *another* client's
    concurrent writes; buffers are dropped at every transaction
    boundary, write, seek, and namespace operation of this client.

    ``write_batch_chunks`` is the symmetric write-path tunable (also
    off by default): consecutive sequential ``p_write`` calls accumulate
    in a per-descriptor buffer and ship as *one* ``p_write`` RPC of up
    to that many chunks.  The buffer is flushed before any other RPC
    of this client (reads, seeks, transaction boundaries, namespace
    operations), so this client's own operations always observe its
    writes in program order; only the per-message overhead is
    amortized.

    ``cache_paths`` / ``cache_chunks`` (both off by default) enable the
    lease-coherent client cache (:mod:`repro.cache`): name→oid and
    negative lookups, fileatt rows, and chunk payloads are served
    locally with **zero** network messages, and SEEK_SET seeks on
    cached descriptors are absorbed client-side (a corrective seek is
    sent lazily only if the server is consulted again).  Unlike the
    read-ahead buffer above, cached entries are *coherent* across
    clients: the server piggybacks invalidation notices on every reply
    (emitted at writer commit time), and a revoked lease drops the
    whole cache.  Serving and filling happen only outside explicit
    transactions — transactional traffic always reaches the server.
    """

    server: InversionServer
    network: NetworkModel
    write_behind: bool = True
    read_batch_chunks: int = 1
    write_batch_chunks: int = 1
    #: client-cache capacities (0 = caching off): max path/att/negative
    #: entries and max cached chunks.  Enabling either wires leases.
    cache_paths: int = 0
    cache_chunks: int = 0
    #: optional shared :class:`repro.cache.CacheStats` so several
    #: clients of one database aggregate into one ``cache.*`` family.
    cache_stats: object = None

    def __post_init__(self) -> None:
        self._session = self.server.connect()
        self._last_was_write = False
        self._pos: dict[int, int] = {}      # client-visible file position
        self._srv_pos: dict[int, int] = {}  # where the server's descriptor is
        self._streak: dict[int, int] = {}   # consecutive sequential reads
        self._rdbuf: dict[int, tuple[int, bytes]] = {}  # fd -> (offset, bytes)
        #: fd -> (start offset, buffered bytes, absorbed call count)
        self._wrbuf: dict[int, tuple[int, bytearray, int]] = {}
        #: RPCs that fetched more than the caller asked for.
        self.batched_reads = 0
        #: p_read calls answered from the client buffer, no RPC at all.
        self.buffered_reads = 0
        #: p_write RPCs that shipped more than one buffered call's data.
        self.batched_writes = 0
        #: p_write calls absorbed into the write buffer, no RPC at all.
        self.buffered_writes = 0
        # Mirror the counters onto the server database's registry — the
        # client lives outside the Database, so it binds itself.
        self._obs = getattr(getattr(self.server.fs, "db", None), "obs", None)
        if self._obs is not None:
            self._obs.bind_client(self)
        self._cache = None
        #: fd -> oid, for descriptors whose resolution the cache knows
        #: (set at p_open from a piggybacked grant or a cached path).
        self._fdpath: dict[int, int] = {}
        if self.cache_paths > 0 or self.cache_chunks > 0:
            from repro.cache import ClientCache, bind_cache_stats
            leases = self.server.enable_leases()
            leases.subscribe(self._session)
            self._cache = ClientCache(
                leases, self._session,
                max_paths=max(1, self.cache_paths),
                max_chunks=max(1, self.cache_chunks),
                stats=self.cache_stats)
            if self._obs is not None:
                bind_cache_stats(self._obs.metrics, self._cache.stats)

    def close(self) -> None:
        self._flush_writes()
        self.server.disconnect(self._session)
        if self._cache is not None:
            self._cache.revoke()

    # -- read-batching bookkeeping ----------------------------------------

    @property
    def _batching(self) -> bool:
        return self.read_batch_chunks > 1

    @property
    def _wbatching(self) -> bool:
        return self.write_batch_chunks > 1

    def _track_fd(self, fd) -> None:
        if isinstance(fd, int):
            self._pos[fd] = self._srv_pos[fd] = 0
            self._streak[fd] = 0

    def _forget_fd(self, fd) -> None:
        for store in (self._pos, self._srv_pos, self._streak, self._rdbuf,
                      self._wrbuf, self._fdpath):
            store.pop(fd, None)

    def _drop_buffers(self) -> None:
        """Invalidate all read-ahead state (transaction boundaries and
        namespace changes may change what any position holds)."""
        self._rdbuf.clear()
        for fd in self._streak:
            self._streak[fd] = 0

    def _resync(self, fd: int) -> None:
        """Bring the server's descriptor back to the client's position
        after a partially consumed read-ahead (one corrective seek)."""
        pos = self._pos.get(fd)
        if pos is None or self._srv_pos.get(fd, pos) == pos:
            return
        self._call("p_lseek", fd, pos >> 32, pos & 0xFFFFFFFF, 0)
        self._srv_pos[fd] = pos

    # -- write-batching bookkeeping ---------------------------------------

    def _flush_fd_writes(self, fd: int) -> None:
        """Ship one descriptor's buffered writes as a single ``p_write``
        RPC (with a corrective seek first if the server's descriptor
        has drifted from the buffer's start)."""
        wb = self._wrbuf.pop(fd, None)
        if wb is None:
            return
        start, data, ncalls = wb
        if self._srv_pos.get(fd, start) != start:
            self._call("p_lseek", fd, start >> 32, start & 0xFFFFFFFF, 0)
        self._call("p_write", fd, bytes(data))
        self._srv_pos[fd] = start + len(data)
        if ncalls > 1:
            self.batched_writes += 1

    def _flush_writes(self) -> None:
        """Ship every descriptor's buffered writes — called before any
        RPC other than an absorbed sequential write, so this client's
        operations observe its writes in program order."""
        for fd in list(self._wrbuf):
            self._flush_fd_writes(fd)

    # -- client-cache plumbing --------------------------------------------

    def _cache_ready(self):
        """The cache, if it may serve right now: present, lease intact,
        and the session outside any explicit transaction.  Drains the
        lease channel first (poll-before-serve)."""
        cache = self._cache
        if cache is None or cache.revoked:
            return None
        if self.server.in_transaction(self._session):
            return None
        cache.poll()
        if cache.revoked:
            return None
        return cache

    def _cached_read(self, fd: int, pos: int, length: int):
        """Serve a read entirely from cached chunks, or None.  Each
        served chunk is accounted to the xid that originally paid for
        the device read."""
        cache = self._cache_ready()
        if cache is None:
            return None
        oid = self._fdpath.get(fd)
        if oid is None:
            return None
        served = cache.serve_read(oid, pos, length)
        if served is None:
            cache.stats.miss("chunk")
            return None
        data, owners = served
        for owner in owners:
            cache.stats.hit("chunk")
            if owner is not None and self._obs is not None:
                self._obs.tx.charge_xid(owner, "client_cache_hits")
        self._pos[fd] = pos + len(data)
        return data

    def _fill_read(self, fd: int, pos: int, data, seq: int) -> None:
        """Cache a read reply's chunks — only if no invalidation landed
        while the RPC was in flight (drop-before-fill) and the session
        is outside a transaction."""
        cache = self._cache
        if cache is None or cache.revoked or not data:
            return
        if cache.inval_seq != seq:
            return
        if self.server.in_transaction(self._session):
            return
        oid = self._fdpath.get(fd)
        if oid is None:
            return
        owner = self.server.session_last_xid(self._session)
        cache.fill_read(oid, pos, bytes(data), owner)

    def _call(self, method: str, *args, **kwargs):
        try:
            obs = self._obs
            if obs is not None and obs.tracer.enabled:
                with obs.tracer.span("rpc.call", method=method):
                    return self._call_inner(method, *args, **kwargs)
            return self._call_inner(method, *args, **kwargs)
        finally:
            # Drain piggybacked invalidation notices after *every*
            # exchange, success or failure, so stale entries drop
            # before the next cache consultation.
            if self._cache is not None and not self._cache.revoked:
                self._cache.poll()

    def _call_inner(self, method: str, *args, **kwargs):
        request = _REQ_BASE + _arg_bytes(args, kwargs)
        pipelined = (self.write_behind and method == "p_write"
                     and self._last_was_write)
        self._last_was_write = method in ("p_write", "p_lseek")
        if not pipelined:
            # The request travels, the server works, the response returns.
            self.network.send(request)
            result = self.server.dispatch(self._session, method, *args, **kwargs)
            self.network.send(_RESP_BASE + _result_bytes(result))
            return result
        response = _RESP_BASE + 8
        net_cost = self.network.cost_round_trip(request, response)
        before = self.network.clock.now()
        result = self.server.dispatch(self._session, method, *args, **kwargs)
        server_elapsed = self.network.clock.now() - before
        self.network.charge_seconds(max(0.0, net_cost - server_elapsed),
                                    messages=2, payload=request + response)
        return result

    # -- the client API, one forwarding stub per call --------------------

    def p_begin(self):
        self._flush_writes()
        self._drop_buffers()
        return self._call("p_begin")

    def p_commit(self):
        self._flush_writes()
        self._drop_buffers()
        return self._call("p_commit")

    def p_abort(self):
        self._flush_writes()
        self._drop_buffers()
        return self._call("p_abort")

    def p_creat(self, path, mode=2, device=None, owner="root", ftype="plain"):
        self._flush_writes()
        fd = self._call("p_creat", path, mode, device=device, owner=owner,
                        ftype=ftype)
        self._track_fd(fd)
        return fd

    def p_open(self, fname, mode=0, timestamp=None):
        self._flush_writes()
        cache = self._cache_ready() if timestamp is None else None
        if cache is not None:
            msg = cache.lookup_negative(fname)
            if msg is not None:
                # Known-absent name: fail without touching the wire
                # (the library's p_open never creates).
                cache.stats.hit("negative")
                raise FileNotFoundError_(msg)
            seq = cache.inval_seq
            try:
                fd = self._call("p_open", fname, mode, timestamp)
            except FileNotFoundError_ as exc:
                if cache.inval_seq == seq and not cache.revoked:
                    cache.fill_negative(fname, str(exc))
                raise
            self._track_fd(fd)
            # The server granted the resolution on the reply (applied
            # by the drain above when the batch was quiet).
            oid = cache.lookup_oid(fname)
            if oid is not None and isinstance(fd, int):
                self._fdpath[fd] = oid
            return fd
        fd = self._call("p_open", fname, mode, timestamp)
        self._track_fd(fd)
        return fd

    def p_close(self, fd):
        self._flush_writes()
        result = self._call("p_close", fd)
        self._forget_fd(fd)
        return result

    def p_read(self, fd, length):
        self._flush_writes()
        pos = self._pos.get(fd)
        if not self._batching or length <= 0 or pos is None:
            if self._cache is not None and pos is not None:
                if isinstance(length, int) and length > 0:
                    served = self._cached_read(fd, pos, length)
                    if served is not None:
                        return served
                # Cached serves and absorbed seeks advance only the
                # client position; realign the server before it reads.
                self._resync(fd)
            seq = self._cache.inval_seq if self._cache is not None else 0
            result = self._call("p_read", fd, length)
            if pos is not None and isinstance(result, (bytes, bytearray)):
                if self._cache is not None:
                    self._fill_read(fd, pos, result, seq)
                self._pos[fd] = pos + len(result)
                self._srv_pos[fd] = self._pos[fd]
            return result
        buf = self._rdbuf.get(fd)
        if buf is not None:
            start, data = buf
            if start == pos and len(data) >= length:
                piece, rest = data[:length], data[length:]
                self._pos[fd] = pos + length
                if rest:
                    self._rdbuf[fd] = (pos + length, rest)
                else:
                    del self._rdbuf[fd]
                self.buffered_reads += 1
                return piece
            # Unusable (seeked away, or too little left): refetch.
            del self._rdbuf[fd]
        if self._cache is not None:
            served = self._cached_read(fd, pos, length)
            if served is not None:
                return served
        self._resync(fd)
        streak = self._streak.get(fd, 0)
        # The first read of a streak fetches exactly what was asked —
        # batching only kicks in once the access pattern has proven
        # sequential, so a lone random read never over-fetches.
        want = length * self.read_batch_chunks if streak >= 1 else length
        seq = self._cache.inval_seq if self._cache is not None else 0
        result = self._call("p_read", fd, want)
        self._srv_pos[fd] = pos + len(result)
        if self._cache is not None:
            self._fill_read(fd, pos, result, seq)
        piece = result[:length]
        self._pos[fd] = pos + len(piece)
        if len(result) > length:
            self._rdbuf[fd] = (self._pos[fd], result[length:])
            self.batched_reads += 1
        self._streak[fd] = streak + 1
        return piece

    def p_write(self, fd, buf):
        if self._wbatching and isinstance(fd, int) and fd in self._pos:
            self._rdbuf.pop(fd, None)
            self._streak[fd] = 0
            pos = self._pos[fd]
            limit = self.write_batch_chunks * CHUNK_SIZE
            wb = self._wrbuf.get(fd)
            if wb is not None:
                start, data, ncalls = wb
                if start + len(data) == pos:
                    data.extend(buf)
                    self._wrbuf[fd] = (start, data, ncalls + 1)
                    self._pos[fd] = pos + len(buf)
                    self.buffered_writes += 1
                    if len(data) >= limit:
                        self._flush_fd_writes(fd)
                    return len(buf)
                # Not contiguous with the buffer (a seek happened):
                # ship what we have and start over at the new position.
                self._flush_fd_writes(fd)
            self._wrbuf[fd] = (pos, bytearray(buf), 1)
            self._pos[fd] = pos + len(buf)
            self.buffered_writes += 1
            if len(buf) >= limit:
                self._flush_fd_writes(fd)
            return len(buf)
        if (self._batching or self._cache is not None) and fd in self._pos:
            self._rdbuf.pop(fd, None)
            self._streak[fd] = 0
            self._resync(fd)
            result = self._call("p_write", fd, buf)
            written = result if isinstance(result, int) else len(buf)
            self._pos[fd] += written
            self._srv_pos[fd] = self._pos[fd]
            return result
        return self._call("p_write", fd, buf)

    def p_lseek(self, fd, offset_high, offset_low, whence=0):
        self._flush_writes()
        if (self._cache is not None and whence == 0 and fd in self._pos
                and fd in self._fdpath and self._cache_ready() is not None):
            # Absorb the SEEK_SET: record the position client-side and
            # repay it with one corrective seek only if the server is
            # consulted again for this descriptor (_resync).  Matches
            # the library's own handle-less SEEK_SET, which validates
            # nothing and just stores the offset.
            self._rdbuf.pop(fd, None)
            self._streak[fd] = 0
            self._pos[fd] = (offset_high << 32) | (offset_low & 0xFFFFFFFF)
            self._cache.stats.hit("seek")
            return self._pos[fd]
        if (self._batching or self._wbatching
                or self._cache is not None) and fd in self._pos:
            self._rdbuf.pop(fd, None)
            self._streak[fd] = 0
            if whence == 1:  # SEEK_CUR is relative to the *server* pos
                self._resync(fd)
            result = self._call("p_lseek", fd, offset_high, offset_low, whence)
            if isinstance(result, int):
                self._pos[fd] = self._srv_pos[fd] = result
            return result
        return self._call("p_lseek", fd, offset_high, offset_low, whence)

    def p_mkdir(self, path, owner="root"):
        self._flush_writes()
        return self._call("p_mkdir", path, owner=owner)

    def p_unlink(self, path):
        self._flush_writes()
        self._drop_buffers()
        return self._call("p_unlink", path)

    def p_rmdir(self, path):
        self._flush_writes()
        return self._call("p_rmdir", path)

    def p_rename(self, old, new):
        self._flush_writes()
        self._drop_buffers()
        return self._call("p_rename", old, new)

    def p_stat(self, path, timestamp=None):
        self._flush_writes()
        cache = self._cache_ready() if timestamp is None else None
        if cache is not None:
            msg = cache.lookup_negative(path)
            if msg is not None:
                cache.stats.hit("negative")
                raise FileNotFoundError_(msg)
            oid = cache.lookup_oid(path)
            if oid is not None:
                att = cache.lookup_att(oid)
                if att is not None:
                    cache.stats.hit("att")
                    return att
            cache.stats.miss("att")
            seq = cache.inval_seq
            try:
                att = self._call("p_stat", path, timestamp)
            except FileNotFoundError_ as exc:
                if cache.inval_seq == seq and not cache.revoked:
                    cache.fill_negative(path, str(exc))
                raise
            if cache.inval_seq == seq and not cache.revoked:
                cache.fill_path(path, att.file)
                cache.fill_att(att.file, att)
            return att
        return self._call("p_stat", path, timestamp)

    def p_readdir(self, path, timestamp=None, cookie=None, limit=None):
        self._flush_writes()
        if cookie is None and limit is None:
            return self._call("p_readdir", path, timestamp)
        return self._call("p_readdir", path, timestamp,
                          cookie=cookie, limit=limit)

    def p_reflink(self, src, dst, device=None):
        self._flush_writes()
        self._drop_buffers()
        return self._call("p_reflink", src, dst, device=device)

    def p_concat(self, srcs, dst, device=None):
        self._flush_writes()
        self._drop_buffers()
        return self._call("p_concat", list(srcs), dst, device=device)

    def p_slice(self, src, lo, hi, dst, device=None):
        self._flush_writes()
        self._drop_buffers()
        return self._call("p_slice", src, lo, hi, dst, device=device)

    def p_truncate(self, path, size):
        self._flush_writes()
        self._drop_buffers()
        return self._call("p_truncate", path, size)

    def p_query(self, text):
        self._flush_writes()
        return self._call("p_query", text)
