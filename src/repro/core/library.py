"""The Inversion client library (Figure 2).

"User files stored in Inversion may be opened, read, and written using
calls modeled on those supported for ordinary UNIX files.  The current
implementation requires programmers to link a special library" — this
module is that library::

    int p_creat(char *path, int mode)
    int p_open(char *fname, int mode, int timestamp)
    int p_close(int fd)
    int p_read(int fd, char *buf, int len)
    int p_write(int fd, char *buf, int len)
    int p_lseek(int fd, long offset_high, long offset_low, int whence)

plus ``p_begin()``, ``p_commit()``, ``p_abort()``.  "Neither POSTGRES
nor Inversion supports nested transactions, so a single application
program may only have one transaction active at any time."  Calls made
outside an explicit transaction auto-commit, one transaction per call —
exactly the behaviour whose cost Figure 3 exposes for file creation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constants import O_CREAT, O_RDONLY, O_RDWR, SEEK_SET
from repro.core.filesystem import InversionFS
from repro.errors import BadFileDescriptorError, TransactionError


@dataclass
class _Descriptor:
    fileid: int
    path: str
    mode: int
    pos: int = 0
    timestamp: float | None = None
    handle: object = None  # live FileHandle while a transaction is open
    device: str | None = None
    #: largest size produced by auto-commit writes whose attribute
    #: update is still pending (reconciled at close/stat — the library
    #: batches attribute maintenance so each per-call transaction
    #: forces only the chunk page, the B-tree leaf, and the status
    #: record, matching the paper's measured per-write cost).
    pending_size: int | None = None


@dataclass
class InversionClient:
    """One application's session with the file system."""

    fs: InversionFS
    _tx: object = None
    _fds: dict[int, _Descriptor] = field(default_factory=dict)
    _next_fd: int = 3  # homage to stdin/stdout/stderr
    #: xid of the most recent transaction this session ran under —
    #: client caches stamp chunk fills with it so later cache hits can
    #: be accounted to the transaction that paid for the device read.
    last_xid: int | None = None

    # -- transactions (p_begin / p_commit / p_abort) -----------------------

    def p_begin(self) -> None:
        if self._tx is not None:
            raise TransactionError(
                "only one transaction may be active at any time")
        self._tx = self.fs.begin()
        self.last_xid = self._tx.xid

    def p_commit(self) -> None:
        if self._tx is None:
            raise TransactionError("no transaction in progress")
        self._detach_handles()
        self.fs.commit(self._tx)
        self._tx = None

    def p_abort(self) -> None:
        if self._tx is None:
            raise TransactionError("no transaction in progress")
        self._drop_handles()
        self.fs.abort(self._tx)
        self._tx = None

    def p_prepare(self, gid: str) -> None:
        """2PC phase one: make the open transaction PREPARED under
        global id ``gid``.  After this the only legal next calls are
        :meth:`p_resolve` (the coordinator's decision) or nothing at
        all — an in-doubt transaction survives even disconnect."""
        if self._tx is None:
            raise TransactionError("no transaction in progress")
        self._detach_handles()
        self.fs.prepare(self._tx, gid)

    def p_resolve(self, commit: bool) -> None:
        """2PC phase two: commit or abort the prepared transaction."""
        if self._tx is None:
            raise TransactionError("no transaction in progress")
        if not commit:
            self._drop_handles()
        self.fs.finish_prepared(self._tx, commit)
        self._tx = None

    def in_transaction(self) -> bool:
        return self._tx is not None

    def _detach_handles(self) -> None:
        for desc in self._fds.values():
            if desc.handle is not None:
                desc.pos = desc.handle.tell()
                desc.handle.close()
                if desc.handle.att_flushed:
                    # The transactional close wrote fileatt; nothing
                    # remains to reconcile.
                    desc.pending_size = None
                desc.handle = None

    def _drop_handles(self) -> None:
        for desc in self._fds.values():
            desc.handle = None

    # -- auto-commit plumbing -------------------------------------------------

    def _run(self, op):
        """Run ``op(tx)`` inside the active transaction, or in a
        one-shot auto-commit transaction."""
        if self._tx is not None:
            self.last_xid = self._tx.xid
            return op(self._tx)
        tx = self.fs.begin()
        self.last_xid = tx.xid
        try:
            result = op(tx)
        except BaseException:
            self.fs.abort(tx)
            raise
        self.fs.commit(tx)
        return result

    def _desc(self, fd: int) -> _Descriptor:
        desc = self._fds.get(fd)
        if desc is None:
            raise BadFileDescriptorError(f"bad file descriptor {fd}")
        return desc

    def _with_handle(self, fd: int, op):
        """Run ``op(handle)`` against the descriptor's file, keeping the
        descriptor position coherent across auto-commit boundaries."""
        desc = self._desc(fd)
        if self._tx is not None:
            if desc.handle is None or not desc.handle._open:
                desc.handle = self.fs.open(
                    desc.path, desc.mode & ~O_CREAT, tx=self._tx,
                    timestamp=desc.timestamp)
                if desc.pending_size is not None:
                    # Un-reconciled auto-commit writes: the descriptor
                    # knows the real size even though fileatt lags.
                    desc.handle._size = max(desc.handle._size,
                                            desc.pending_size)
                desc.handle.seek(desc.pos, SEEK_SET)
            handle = desc.handle
            result = op(handle)
            desc.pos = handle.tell()
            if desc.pending_size is not None and handle._wrote:
                # The transactional flush will reconcile fileatt; the
                # pending marker can only shrink the truth, so keep the
                # running maximum.
                desc.pending_size = max(desc.pending_size, handle._size)
            return result

        def run(tx):
            handle = self.fs.open(desc.path, desc.mode & ~O_CREAT, tx=tx,
                                  timestamp=desc.timestamp)
            handle.defer_att = True
            if desc.pending_size is not None:
                handle._size = max(handle._size, desc.pending_size)
            try:
                handle.seek(desc.pos, SEEK_SET)
                result = op(handle)
                desc.pos = handle.tell()
                if handle._wrote or handle.att_dirty:
                    desc.pending_size = max(desc.pending_size or 0,
                                            handle._size)
                return result
            finally:
                handle.close()
        return self._run(run)

    def _reconcile_att(self, desc: _Descriptor) -> None:
        """Apply a pending size/mtime update left by auto-commit
        writes."""
        if desc.pending_size is None:
            return
        size = desc.pending_size
        desc.pending_size = None
        self._run(lambda tx: self.fs.fileatt.update(
            tx, desc.fileid, size=max(
                size, self.fs.fileatt.get(
                    desc.fileid, self.fs.db.snapshot(tx), tx).size),
            mtime=self.fs.db.clock.now()))

    # -- the Figure 2 interface -------------------------------------------------------

    def p_creat(self, path: str, mode: int = O_RDWR,
                device: str | None = None, owner: str = "root",
                ftype: str = "plain") -> int:
        """Create and open a file.  The paper's ``mode`` "encodes the
        device on which the file should reside at creation time"; the
        device rides in its own keyword argument here."""
        self._run(lambda tx: self.fs.creat(tx, path, owner=owner,
                                           ftype=ftype, device=device))
        return self.p_open(path, mode)

    def p_open(self, fname: str, mode: int = O_RDONLY,
               timestamp: float | None = None) -> int:
        """Open a file; ``timestamp`` requests the historical state —
        "the p_open call includes a parameter to specify the time for
        which the file should be viewed"."""
        def resolve(tx):
            return self.fs.resolve(fname, tx=tx, timestamp=timestamp)
        fileid = self._run(resolve)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _Descriptor(fileid, fname, mode, 0, timestamp)
        return fd

    def p_close(self, fd: int) -> None:
        desc = self._desc(fd)
        if desc.handle is not None and desc.handle._open:
            desc.handle.close()
        self._reconcile_att(desc)
        del self._fds[fd]

    def p_read(self, fd: int, length: int) -> bytes:
        return self._with_handle(fd, lambda h: h.read(length))

    def p_write(self, fd: int, buf: bytes) -> int:
        return self._with_handle(fd, lambda h: h.write(buf))

    def p_lseek(self, fd: int, offset_high: int, offset_low: int,
                whence: int = SEEK_SET) -> int:
        """64-bit seek: offset = (offset_high << 32) | offset_low — "the
        extra parameter to p_lseek allows the user to specify a wider
        range of byte positions"."""
        desc = self._desc(fd)
        offset = (offset_high << 32) | (offset_low & 0xFFFFFFFF)
        if desc.handle is not None and desc.handle._open:
            desc.pos = desc.handle.seek(offset, whence)
            return desc.pos
        if whence == SEEK_SET:
            desc.pos = offset
        else:
            # CUR/END need file state: do it through a handle.
            return self._with_handle(fd, lambda h: h.seek(offset, whence))
        return desc.pos

    # -- convenience entry points beyond Figure 2 -----------------------------------------

    def p_mkdir(self, path: str, owner: str = "root") -> None:
        self._run(lambda tx: self.fs.mkdir(tx, path, owner=owner))

    def p_unlink(self, path: str) -> None:
        self._run(lambda tx: self.fs.unlink(tx, path))

    def p_rmdir(self, path: str) -> None:
        self._run(lambda tx: self.fs.rmdir(tx, path))

    def p_rename(self, old: str, new: str) -> None:
        self._run(lambda tx: self.fs.rename(tx, old, new))

    def p_stat(self, path: str, timestamp: float | None = None):
        # Reconcile any pending attribute updates for open descriptors
        # on this path so stat sees current sizes.
        for desc in self._fds.values():
            if desc.path == path and desc.pending_size is not None:
                self._reconcile_att(desc)
        if self._tx is not None:
            return self.fs.stat(path, tx=self._tx, timestamp=timestamp)
        return self.fs.stat(path, timestamp=timestamp)

    def p_readdir(self, path: str, timestamp: float | None = None,
                  cookie: str | None = None, limit: int | None = None):
        """Directory listing.  With ``cookie``/``limit`` the call is
        paged: it returns ``(names, next_cookie)`` where ``names`` holds
        at most ``limit`` entries strictly after ``cookie`` and
        ``next_cookie`` is None once the listing is exhausted — the
        server never materializes more than one page."""
        if cookie is None and limit is None:
            if self._tx is not None:
                return self.fs.readdir(path, tx=self._tx, timestamp=timestamp)
            return self.fs.readdir(path, timestamp=timestamp)
        if self._tx is not None:
            return self.fs.readdir_page(path, tx=self._tx,
                                        timestamp=timestamp,
                                        cookie=cookie, limit=limit)
        return self.fs.readdir_page(path, timestamp=timestamp,
                                    cookie=cookie, limit=limit)

    # -- structural ops (the WTF-style by-reference surface) --------------------------

    def p_reflink(self, src: str, dst: str,
                  device: str | None = None) -> tuple[int, int]:
        """Copy ``src`` to ``dst`` by reference (chunk-pointer rows, no
        data movement).  Returns (chunks referenced, chunks
        materialized)."""
        return self._run(lambda tx: self.fs.reflink(tx, src, dst,
                                                    device=device))

    def p_concat(self, srcs, dst: str,
                 device: str | None = None) -> tuple[int, int]:
        """Concatenate ``srcs`` into new file ``dst`` by reference."""
        return self._run(lambda tx: self.fs.concat(tx, list(srcs), dst,
                                                   device=device))

    def p_slice(self, src: str, lo: int, hi: int, dst: str,
                device: str | None = None) -> tuple[int, int]:
        """Extract ``src[lo:hi]`` into new file ``dst`` by reference
        (``lo`` chunk-aligned; the partial tail chunk is materialized)."""
        return self._run(lambda tx: self.fs.slice(tx, src, lo, hi, dst,
                                                  device=device))

    def p_truncate(self, path: str, size: int) -> None:
        """Set a file's length (shrink deletes tail chunks, grow leaves
        a hole)."""
        for desc in self._fds.values():
            if desc.path == path and desc.pending_size is not None:
                self._reconcile_att(desc)
        self._run(lambda tx: self.fs.truncate(tx, path, size))
        for desc in self._fds.values():
            if desc.path == path:
                desc.pending_size = None
                if desc.handle is not None and desc.handle._open:
                    desc.handle._size = size

    def p_query(self, text: str) -> list[tuple]:
        """Run a POSTQUEL query over the file system (the 'query
        language monitor program')."""
        return self._run(lambda tx: self.fs.query(tx, text))
