"""The Inversion file system — the paper's primary contribution.

Public surface:

- :class:`InversionFS` — mount/mkfs, transactions, files, directories,
  time travel, queries.
- :class:`InversionClient` — the Figure 2 client library
  (``p_open``/``p_read``/``p_write``/``p_lseek``/``p_begin``/…).
- :class:`RemoteInversionClient` / :class:`InversionServer` — the
  client/server configuration over the simulated network.
- :mod:`repro.core.filetypes` / :mod:`repro.core.functions` — typed
  files and the Table 2 file-type functions.
- :mod:`repro.core.compression` — random access into compressed files.
- :mod:`repro.core.migration` — rule-driven file migration between
  devices.
- :mod:`repro.core.blobs` — the POSTGRES "large object" face of the
  same storage.
"""

from repro.core.constants import (
    CHUNK_SIZE,
    MAX_FILE_SIZE,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.core.server import InversionServer
from repro.core.client import RemoteInversionClient

__all__ = [
    "InversionFS",
    "InversionClient",
    "InversionServer",
    "RemoteInversionClient",
    "CHUNK_SIZE",
    "MAX_FILE_SIZE",
    "O_CREAT",
    "O_RDONLY",
    "O_RDWR",
    "O_WRONLY",
    "SEEK_SET",
    "SEEK_CUR",
    "SEEK_END",
]
