"""Compressed files with random access ("Services Under Investigation").

"Inversion supports compression and uncompression of 'chunks' of user
files.  Special indices are maintained indicating the sizes of the
uncompressed and compressed chunks.  Random access on the uncompressed
version is straightforward.  Inversion determines which compressed
chunk contains the bytes of interest, uncompresses it, and returns the
user only the desired data."

Layout: a compressed file's chunk table stores one *compressed* blob
per logical chunk (the chunk number is the logical index, so the
existing chunkno B-tree doubles as the paper's "special index" into the
compressed stream).  A catalog table ``inv_compression`` records, per
file, the codec, the logical chunk size, and the uncompressed length.
The per-chunk compressed sizes live with the data records themselves.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.core.chunks import ChunkStore
from repro.core.constants import CHUNK_SIZE
from repro.db.snapshot import Snapshot
from repro.db.transactions import Transaction
from repro.db.tuples import Column, Schema
from repro.errors import FileNotFoundError_, InversionError

COMPRESSION_TABLE = "inv_compression"
COMPRESSION_SCHEMA = Schema([
    Column("file", "oid"),
    Column("codec", "text"),
    Column("chunk_size", "int4"),
    Column("usize", "int8"),
])
COMPRESSION_INDEXES = (("file",),)

_CODECS = {
    "zlib": (lambda b: zlib.compress(b, 6), zlib.decompress),
    "zlib-fast": (lambda b: zlib.compress(b, 1), zlib.decompress),
    "zlib-best": (lambda b: zlib.compress(b, 9), zlib.decompress),
    "none": (lambda b: b, lambda b: b),
}


@dataclass(frozen=True)
class CompressionInfo:
    file: int
    codec: str
    chunk_size: int
    usize: int


class CompressionService:
    """Create and read chunk-compressed Inversion files."""

    def __init__(self, fs) -> None:
        self.fs = fs
        self._ensure_table()

    def _ensure_table(self) -> None:
        db = self.fs.db
        if not db.table_exists(COMPRESSION_TABLE):
            tx = db.begin()
            try:
                db.create_table(tx, COMPRESSION_TABLE, COMPRESSION_SCHEMA,
                                indexes=COMPRESSION_INDEXES)
                db.commit(tx)
            except BaseException:
                db.abort(tx)
                raise

    # -- write path ---------------------------------------------------------

    def create_compressed(self, tx: Transaction, path: str, data: bytes,
                          codec: str = "zlib",
                          chunk_size: int = CHUNK_SIZE,
                          owner: str = "root",
                          device: str | None = None) -> int:
        """Store ``data`` at ``path`` compressed chunk-by-chunk."""
        if codec not in _CODECS:
            raise InversionError(f"unknown codec {codec!r}")
        compress, _decompress = _CODECS[codec]
        fileid = self.fs.creat(tx, path, owner=owner, ftype="plain",
                               device=device)
        store = ChunkStore(self.fs.db, fileid, tx)
        stored = 0
        for chunkno in range(0, max(1, (len(data) + chunk_size - 1) // chunk_size)):
            piece = data[chunkno * chunk_size:(chunkno + 1) * chunk_size]
            blob = compress(piece)
            if len(blob) > CHUNK_SIZE:
                # Incompressible chunk grew past a record: store raw with
                # a marker codec per-chunk is overkill — fall back by
                # storing the original (codec 'none' semantics per chunk
                # would need a flag; we simply require codecs that fit).
                raise InversionError(
                    f"compressed chunk {chunkno} exceeds record capacity")
            store.write_chunk(tx, chunkno, blob)
            stored += len(blob)
        store.flush(tx)
        self.fs.fileatt.update(tx, fileid, size=stored,
                               mtime=self.fs.db.clock.now())
        self.fs.db.table(COMPRESSION_TABLE, tx).insert(
            tx, (fileid, codec, chunk_size, len(data)))
        return fileid

    # -- metadata --------------------------------------------------------------

    def info(self, path: str, tx: Transaction | None = None,
             timestamp: float | None = None) -> CompressionInfo:
        snapshot = self.fs._snap(tx, timestamp)
        fileid = self.fs.namespace.resolve(path, snapshot, tx)
        return self._info_for(fileid, snapshot, tx)

    def _info_for(self, fileid: int, snapshot: Snapshot,
                  tx: Transaction | None) -> CompressionInfo:
        table = self.fs.db.table(COMPRESSION_TABLE, tx)
        for _tid, row in table.index_eq(("file",), (fileid,), snapshot, tx):
            return CompressionInfo(*row)
        raise FileNotFoundError_(f"file {fileid} is not compressed")

    def compression_ratio(self, path: str,
                          tx: Transaction | None = None) -> float:
        """stored bytes / uncompressed bytes."""
        info = self.info(path, tx)
        att = self.fs.stat(path, tx)
        return att.size / info.usize if info.usize else 1.0

    # -- read path -----------------------------------------------------------------

    def read(self, path: str, offset: int, nbytes: int,
             tx: Transaction | None = None,
             timestamp: float | None = None) -> bytes:
        """Random access into the uncompressed byte stream: only the
        compressed chunks covering [offset, offset+nbytes) are fetched
        and uncompressed."""
        snapshot = self.fs._snap(tx, timestamp)
        fileid = self.fs.namespace.resolve(path, snapshot, tx)
        info = self._info_for(fileid, snapshot, tx)
        _compress, decompress = _CODECS[info.codec]
        if offset >= info.usize:
            return b""
        nbytes = min(nbytes, info.usize - offset)
        store = ChunkStore(self.fs.db, fileid, tx)
        out = bytearray()
        pos = offset
        end = offset + nbytes
        while pos < end:
            chunkno = pos // info.chunk_size
            within = pos % info.chunk_size
            blob = store.read_chunk(chunkno, snapshot, tx)
            piece = decompress(blob)
            take = min(len(piece) - within, end - pos)
            if take <= 0:
                break
            out += piece[within:within + take]
            pos += take
        return bytes(out)

    def read_all(self, path: str, tx: Transaction | None = None,
                 timestamp: float | None = None) -> bytes:
        info = self.info(path, tx, timestamp)
        return self.read(path, 0, info.usize, tx, timestamp)

    def chunks_touched(self, info: CompressionInfo, offset: int,
                       nbytes: int) -> int:
        """How many compressed chunks a read must uncompress — the
        quantity the paper's design minimizes."""
        if nbytes <= 0:
            return 0
        first = offset // info.chunk_size
        last = (offset + nbytes - 1) // info.chunk_size
        return last - first + 1
