"""Inversion constants.

"File data are collected into chunks slightly smaller than 8 KBytes.
The size of the chunk is calculated so that a single record will fit
exactly on a POSTGRES data manager page."

A chunk record carries: record header (16 B) + chunkno int4 (4 B) +
selfid int8 (8 B — the reserved self-identification field) + bytea
length prefix (4 B) + the chunk itself, and must fit in
``PAGE_SIZE − page header (12 B) − one slot (4 B)``.  CHUNK_SIZE is
rounded to 8 064 so exactly one full chunk occupies one page.
"""

from __future__ import annotations

CHUNK_SIZE = 8064
"""Payload bytes per chunk — "slightly smaller than 8 KBytes"."""

MAX_CHUNKNO = 2 ** 31 - 1
"""Chunk numbers are int4."""

MAX_FILE_SIZE = CHUNK_SIZE * (MAX_CHUNKNO + 1)
"""≈17.3 TB here (the paper quotes 17.6 TB with full 8 KB pages —
"Inversion files can be 17.6 TBytes in length")."""

ROOT_PARENT = 0
"""parentid of the root directory's naming entry (Table 1)."""

TYPE_DIRECTORY = "directory"
TYPE_PLAIN = "plain"

# Open modes (Figure 2's `mode` "encodes the device on which the file
# should reside at creation time" — the device rides along separately
# in our API; these are the access bits).
O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 0x40

#: handle-level write-coalescing: dirty chunks buffered per open file
#: before being pushed into the table ("multiple small sequential
#: writes during a single transaction are coalesced").
COALESCE_CHUNK_LIMIT = 64

#: seek whence values (match os.SEEK_*)
SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2
