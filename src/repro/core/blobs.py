"""POSTGRES large objects (BLOBs) over Inversion storage.

"POSTGRES supports large object storage by creating Inversion files to
store object data.  All of the services available to Inversion users
are also available to users of BLOBs…  The integration of large
database objects with Inversion means that two different clients can
share data that they use in different ways.  The same Inversion file
can be used by a database application and by a file system client
simultaneously."

A large object is an Inversion file *without a naming entry*: it is
addressed by object identifier.  :meth:`LargeObjectManager.expose_path`
adds a naming entry for an existing object — after which the same bytes
are reachable through ``p_open`` and through ``lo_read`` — and
:meth:`from_path` wraps an existing file as a large object handle.
"""

from __future__ import annotations

from repro.core.constants import O_RDONLY, O_RDWR
from repro.core.chunks import ChunkStore
from repro.core.naming import basename_dirname
from repro.db.transactions import Transaction
from repro.errors import FileNotFoundError_


class LargeObjectManager:
    """lo_* entry points, in the PostgreSQL tradition that Inversion
    started."""

    def __init__(self, fs) -> None:
        self.fs = fs

    # -- lifecycle ---------------------------------------------------------

    def lo_creat(self, tx: Transaction, owner: str = "root",
                 device: str | None = None) -> int:
        """Create an anonymous large object; returns its oid."""
        fileid = self.fs.db.catalog.allocate_oid()
        self.fs.fileatt.create(tx, fileid, owner, "large_object")
        ChunkStore.create_table(self.fs.db, tx, fileid, device)
        return fileid

    def lo_unlink(self, tx: Transaction, oid: int) -> None:
        """Drop the object's attribute row (history remains)."""
        self.fs.fileatt.remove(tx, oid)

    # -- I/O ------------------------------------------------------------------

    def lo_open(self, oid: int, mode: int = O_RDONLY,
                tx: Transaction | None = None,
                timestamp: float | None = None):
        return self.fs.open_by_id(oid, mode, tx=tx, timestamp=timestamp)

    def lo_write(self, tx: Transaction, oid: int, offset: int,
                 data: bytes) -> int:
        with self.lo_open(oid, O_RDWR, tx=tx) as handle:
            handle.seek(offset)
            return handle.write(data)

    def lo_read(self, oid: int, offset: int, nbytes: int,
                tx: Transaction | None = None,
                timestamp: float | None = None) -> bytes:
        handle = self.lo_open(oid, O_RDONLY, tx=tx, timestamp=timestamp)
        try:
            handle.seek(offset)
            return handle.read(nbytes)
        finally:
            handle.close()

    def lo_size(self, oid: int, tx: Transaction | None = None,
                timestamp: float | None = None) -> int:
        snapshot = self.fs._snap(tx, timestamp)
        return self.fs.fileatt.get(oid, snapshot, tx).size

    # -- dual access ----------------------------------------------------------------

    def expose_path(self, tx: Transaction, oid: int, path: str) -> None:
        """Give an anonymous object a pathname, making it reachable
        through the file system interface as well."""
        snapshot = self.fs.db.snapshot(tx)
        self.fs.fileatt.get(oid, snapshot, tx)  # must exist
        dirpath, name = basename_dirname(path)
        parentid = self.fs.namespace.resolve(dirpath, snapshot, tx)
        self.fs.namespace.add_entry(tx, parentid, name, oid)

    def from_path(self, path: str, tx: Transaction | None = None) -> int:
        """The large-object oid behind an existing file (the reverse
        direction: a file system client's file used as a BLOB)."""
        snapshot = self.fs._snap(tx)
        fileid = self.fs.namespace.try_resolve(path, snapshot, tx)
        if fileid is None:
            raise FileNotFoundError_(f"no such file: {path!r}")
        return fileid
