"""Open-file handles: byte-stream access over chunked storage.

"The Inversion file system provides a set of interface routines to
create, open, close, read, write, and seek on files.  Byte-oriented
operations are turned into operations on chunks by calculating the
chunk numbers of the affected chunks."

A handle opened with a ``timestamp`` is historical: it reads the file
exactly as it was at that moment and may not be written ("Historical
files may not be opened for writing").
"""

from __future__ import annotations

from repro.core.chunks import ChunkStore
from repro.core.constants import (
    CHUNK_SIZE,
    MAX_FILE_SIZE,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.db.snapshot import Snapshot
from repro.db.transactions import Transaction
from repro.errors import (
    BadFileDescriptorError,
    FileTooLargeError,
    ReadOnlyFileError,
)

READ_WINDOW_CHUNKS = 512
"""Chunks resolved per index range scan in :meth:`FileHandle.read` —
bounds the size of one resolution batch (~4 MB of file data) so huge
reads don't materialize the whole chunk map at once."""


class FileHandle:
    """One open Inversion file."""

    def __init__(self, fs, fileid: int, tx: Transaction | None,
                 snapshot: Snapshot, writable: bool, size: int,
                 historical: bool = False) -> None:
        self.fs = fs
        self.fileid = fileid
        self.tx = tx
        self.snapshot = snapshot
        self.writable = writable and not historical
        self.historical = historical
        self._size = size
        self._pos = 0
        self._open = True
        self._wrote = False
        #: when True, flush() pushes chunks but leaves the fileatt
        #: size/mtime update to the caller (the client library batches
        #: attribute maintenance across its per-call transactions;
        #: see InversionClient._with_handle).
        self.defer_att = False
        self.att_dirty = False
        #: True once flush() actually wrote fileatt — lets the library
        #: know a pending size marker has been made durable.
        self.att_flushed = False
        self._atime_stamped = False
        self.store = ChunkStore(fs.db, fileid, tx)
        #: file data version at open — compared at flush to detect that
        #: another transaction committed under this handle, in which
        #: case ``_size`` (captured above at open) may be stale and the
        #: flush must reconcile instead of blindly publishing it.
        self._open_dv = fs.file_data_version(fileid)

    # -- state ------------------------------------------------------------

    def _require_open(self) -> None:
        if not self._open:
            raise BadFileDescriptorError(f"file {self.fileid} handle is closed")

    @property
    def size(self) -> int:
        return self._size

    def tell(self) -> int:
        return self._pos

    # -- seek ---------------------------------------------------------------

    def seek(self, offset: int, whence: int = SEEK_SET) -> int:
        """Position the handle.  64-bit offsets are the point of the
        paper's widened ``p_lseek`` ("the extra parameter … allows the
        user to specify a wider range of byte positions")."""
        self._require_open()
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = self._pos + offset
        elif whence == SEEK_END:
            new = self._size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if new < 0:
            raise ValueError("negative seek position")
        if new > MAX_FILE_SIZE:
            raise FileTooLargeError(f"seek past the {MAX_FILE_SIZE}-byte limit")
        self._pos = new
        return new

    # -- read -------------------------------------------------------------------

    def read(self, nbytes: int = -1) -> bytes:
        """Read up to ``nbytes`` from the current position (−1 = to EOF)."""
        self._require_open()
        if (self.fs.track_atime and self.tx is not None
                and not self.historical and not self._atime_stamped):
            self.fs.fileatt.update(self.tx, self.fileid,
                                   atime=self.fs.db.clock.now())
            self._atime_stamped = True
        if nbytes < 0:
            nbytes = max(0, self._size - self._pos)
        nbytes = min(nbytes, max(0, self._size - self._pos))
        out = bytearray()
        remaining = nbytes
        while remaining > 0:
            # One range resolution covers a whole window of chunks: an
            # N-chunk sequential read costs O(1) index descents instead
            # of one equality probe per chunk.
            lo = self._pos // CHUNK_SIZE
            last = (self._pos + remaining - 1) // CHUNK_SIZE
            hi = min(last, lo + READ_WINDOW_CHUNKS - 1)
            chunks = self.store.read_range(lo, hi, self.snapshot, self.tx)
            for chunkno in range(lo, hi + 1):
                offset = self._pos % CHUNK_SIZE
                take = min(CHUNK_SIZE - offset, remaining)
                chunk = chunks.get(chunkno, b"")
                piece = chunk[offset:offset + take]
                if len(piece) < take:
                    piece = piece + bytes(take - len(piece))  # hole → zeros
                out += piece
                self._pos += take
                remaining -= take
        return bytes(out)

    # -- write -------------------------------------------------------------------

    def write(self, data: bytes) -> int:
        """Write at the current position, read-modify-writing partial
        chunks.  Returns the byte count written."""
        self._require_open()
        if not self.writable:
            raise ReadOnlyFileError(
                "historical/read-only handles may not be written")
        if self.tx is None:
            raise ReadOnlyFileError("writes require an active transaction")
        if self._pos + len(data) > MAX_FILE_SIZE:
            raise FileTooLargeError(
                f"write would exceed the {MAX_FILE_SIZE}-byte limit")
        view = memoryview(data)
        # Only the first and last chunks of the span can be partial
        # (middle chunks are fully overwritten).  Resolve their existing
        # contents up front — one range scan when they are the same or
        # adjacent chunks, one probe each otherwise — instead of probing
        # the index from inside the copy loop.
        existing: dict[int, bytes] = {}
        if view.nbytes > 0:
            first = self._pos // CHUNK_SIZE
            end = self._pos + view.nbytes
            last = (end - 1) // CHUNK_SIZE
            partials = []
            if self._pos % CHUNK_SIZE != 0 or end < (first + 1) * CHUNK_SIZE:
                partials.append(first)
            if last != first and end % CHUNK_SIZE != 0:
                partials.append(last)
            if partials:
                if partials[-1] - partials[0] <= 1:
                    existing = self.store.read_range(
                        partials[0], partials[-1], self.snapshot, self.tx)
                else:
                    existing = {c: self.store.read_chunk(c, self.snapshot, self.tx)
                                for c in partials}
        first_chunk = True
        while view.nbytes > 0:
            chunkno = self._pos // CHUNK_SIZE
            offset = self._pos % CHUNK_SIZE
            take = min(CHUNK_SIZE - offset, view.nbytes)
            piece = bytes(view[:take])
            if offset == 0 and take == CHUNK_SIZE:
                chunk = piece
            else:
                old = existing.get(chunkno, b"")
                if len(old) < offset:
                    old = old + bytes(offset - len(old))
                chunk = old[:offset] + piece + old[offset + take:]
            self.store.write_chunk(self.tx, chunkno, chunk,
                                   span=(offset, offset + take))
            if first_chunk:
                first_chunk = False
                # The chunk-table X lock is now held, freezing the set
                # of commits that could have raced this handle; the
                # pre-lock read-modify-write bases above may be stale,
                # so mark the store for revalidating flushes.
                if self.fs.file_data_version(self.fileid) != self._open_dv:
                    self.store.stale = True
            self._pos += take
            view = view[take:]
        self._size = max(self._size, self._pos)
        self._wrote = True
        self.fs.note_data_write(self.fileid, self.tx)
        # Data changed; bump here (not only in fileatt.update) because
        # deferred-attribute writes flush without touching fileatt.
        lm = getattr(self.fs, "lease_manager", None)
        if lm is not None:
            lm.bump_oid(self.fileid, self.tx)
        return len(data)

    # -- flush / close --------------------------------------------------------------

    def flush(self) -> None:
        """Push coalesced chunks into the table and refresh the file's
        size/mtime attributes (unless attribute maintenance is
        deferred, in which case ``att_dirty`` tells the owner to
        reconcile later).

        When another transaction committed to this file since open
        (``_open_dv`` mismatch), the open-time ``_size`` may be stale —
        a fixed-length overwrite is still published on the unchanged
        fast path (its own size provably dominates, per the
        committed-size hint), but anything else reconciles against the
        current row under the write lock, and the chunk flush re-merges
        buffered contents whose written spans don't cover the committed
        extent.  This is the fix for ROADMAP open item 4: without it,
        two interleaved different-length overwrites (including
        ``write(b"")``, which takes no chunk locks at all) could commit
        a stale open-time size and shrink the other writer's data."""
        self._require_open()
        if not self._wrote:
            return
        fs = self.fs
        if self.defer_att:
            stale = fs.file_data_version(self.fileid) != self._open_dv
            hint = fs.fileatt.committed_size_hint(self.fileid) if stale \
                else None
            self.store.flush(self.tx, revalidate=stale, committed_size=hint)
            self.att_dirty = True
        else:
            # Lock the attribute row *before* reading or flushing:
            # deciding from a pre-lock read and locking inside
            # fileatt.update leaves a park window in which a concurrent
            # committer invalidates what was read.
            fs.fileatt.lock_entry(self.tx, self.fileid)
            stale = fs.file_data_version(self.fileid) != self._open_dv
            hint = fs.fileatt.committed_size_hint(self.fileid) if stale \
                else None
            self.store.flush(self.tx, revalidate=stale, committed_size=hint)
            if stale and (hint is None or hint > self._size):
                att = fs.fileatt.reconcile_size(
                    self.tx, self.fileid, self._size,
                    mtime=fs.db.clock.now())
                self._size = att.size
            else:
                fs.fileatt.update(self.tx, self.fileid, size=self._size,
                                  mtime=fs.db.clock.now())
            self.att_flushed = True
        self._wrote = False

    def close(self) -> None:
        if not self._open:
            return
        if self._wrote:
            self.flush()
        self._open = False
        self.fs._forget_handle(self)

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, exc_type, *exc: object) -> None:
        if exc_type is None:
            self.close()
        else:
            self.store.discard()
            self._open = False
            self.fs._forget_handle(self)
