"""File attribute management: the ``fileatt`` table.

"Inversion must manage additional metadata for every file…  These
attributes are stored in the table ``fileatt(file = object_id, owner =
owner_id, type = type_id, size = longlong, ctime = time, mtime = time,
atime = time)``… A simple two-way table join of naming and fileatt can
construct all the metadata for a given Inversion file."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.heap import TID
from repro.db.snapshot import Snapshot
from repro.db.transactions import Transaction
from repro.db.tuples import Column, Schema
from repro.errors import FileNotFoundError_

FILEATT_TABLE = "fileatt"
FILEATT_SCHEMA = Schema([
    Column("file", "oid"),
    Column("owner", "text"),
    Column("type", "text"),
    Column("size", "int8"),
    Column("ctime", "time"),
    Column("mtime", "time"),
    Column("atime", "time"),
])
FILEATT_INDEXES = (("file",),)


@dataclass(frozen=True)
class FileAtt:
    """One file's attributes — the stat(2) of Inversion."""

    file: int
    owner: str
    type: str
    size: int
    ctime: float
    mtime: float
    atime: float

    @classmethod
    def from_row(cls, row: tuple) -> "FileAtt":
        return cls(*row)

    def to_row(self) -> tuple:
        return (self.file, self.owner, self.type, self.size,
                self.ctime, self.mtime, self.atime)


class FileAttributes:
    """Operations on the fileatt table."""

    def __init__(self, db) -> None:
        self.db = db
        #: lease hook — ``fn(fileid, tx)``; set by
        #: :meth:`~repro.core.filesystem.InversionFS.attach_leases` so
        #: attribute mutations invalidate client att caches.
        self.on_mutate = None
        #: committed-size hints: fileid → the size of the last row this
        #: process *committed* (queued at mutation, applied via the
        #: database outcome listener).  Purely advisory — a missing
        #: hint means "unknown", never "zero" — and lets a stale flush
        #: prove that its own size already dominates the committed one
        #: without paying a locked re-read (see FileHandle.flush).
        self._committed_sizes: dict[int, int] = {}
        self._pending_sizes: dict[int, dict[int, int | None]] = {}
        add = getattr(db, "add_commit_listener", None)
        if add is not None:
            add(self._on_tx_outcome)

    def _queue_size(self, tx: Transaction, fileid: int,
                    size: int | None) -> None:
        """Remember the size this transaction will have committed for
        ``fileid`` (``None`` = file removed) until its outcome is
        known."""
        self._pending_sizes.setdefault(tx.xid, {})[fileid] = size

    def _on_tx_outcome(self, xid: int, committed: bool) -> None:
        pending = self._pending_sizes.pop(xid, None)
        if not pending or not committed:
            return
        sizes = self._committed_sizes
        for fileid, size in pending.items():
            if size is None:
                sizes.pop(fileid, None)
            else:
                sizes[fileid] = size

    def committed_size_hint(self, fileid: int) -> int | None:
        """The last size committed through this process for ``fileid``
        (None when no commit has been observed this session)."""
        return self._committed_sizes.get(fileid)

    @classmethod
    def bootstrap(cls, db, tx: Transaction) -> "FileAttributes":
        db.create_table(tx, FILEATT_TABLE, FILEATT_SCHEMA,
                        indexes=FILEATT_INDEXES)
        return cls(db)

    def _table(self, tx: Transaction | None):
        return self.db.table(FILEATT_TABLE, tx)

    # -- access -------------------------------------------------------------

    def get_entry(self, fileid: int, snapshot: Snapshot,
                  tx: Transaction | None = None) -> tuple[TID, FileAtt] | None:
        for tid, row in self._table(tx).index_eq(("file",), (fileid,),
                                                 snapshot, tx):
            return tid, FileAtt.from_row(row)
        return None

    def get(self, fileid: int, snapshot: Snapshot,
            tx: Transaction | None = None) -> FileAtt:
        entry = self.get_entry(fileid, snapshot, tx)
        if entry is None:
            raise FileNotFoundError_(f"no attributes for file {fileid}")
        return entry[1]

    # -- mutation --------------------------------------------------------------

    def create(self, tx: Transaction, fileid: int, owner: str,
               ftype: str) -> FileAtt:
        now = self.db.clock.now()
        att = FileAtt(fileid, owner, ftype, 0, now, now, now)
        self._table(tx).insert(tx, att.to_row(), lock_key=fileid)
        self._queue_size(tx, fileid, 0)
        return att

    def remove(self, tx: Transaction, fileid: int) -> None:
        snapshot = self.db.snapshot(tx)
        entry = self.get_entry(fileid, snapshot, tx)
        if entry is None:
            raise FileNotFoundError_(f"no attributes for file {fileid}")
        self._table(tx).delete(tx, entry[0], lock_key=fileid)
        self._queue_size(tx, fileid, None)
        if self.on_mutate is not None:
            self.on_mutate(fileid, tx)

    def update(self, tx: Transaction, fileid: int, *, size: int | None = None,
               owner: str | None = None, ftype: str | None = None,
               mtime: float | None = None, atime: float | None = None) -> FileAtt:
        snapshot = self.db.snapshot(tx)
        entry = self.get_entry(fileid, snapshot, tx)
        if entry is None:
            raise FileNotFoundError_(f"no attributes for file {fileid}")
        tid, att = entry
        new = FileAtt(
            file=att.file,
            owner=owner if owner is not None else att.owner,
            type=ftype if ftype is not None else att.type,
            size=size if size is not None else att.size,
            ctime=att.ctime,
            mtime=mtime if mtime is not None else att.mtime,
            atime=atime if atime is not None else att.atime,
        )
        self._table(tx).update(tx, tid, new.to_row(), lock_key=fileid)
        self._queue_size(tx, fileid, new.size)
        if self.on_mutate is not None:
            self.on_mutate(fileid, tx)
        return new

    def lock_entry(self, tx: Transaction, fileid: int) -> None:
        """Take the file's attribute write lock up front.  A flushing
        handle locks *before* reading the row it is about to supersede;
        locking inside :meth:`update` (after its snapshot read) leaves
        a window where a concurrent committer invalidates the TID the
        read returned — the write-skew behind ROADMAP open item 4."""
        self._table(tx).lock_exclusive(tx, lock_key=fileid)

    def reconcile_size(self, tx: Transaction, fileid: int, floor_size: int,
                       *, mtime: float | None = None) -> FileAtt:
        """Write ``size = max(current committed size, floor_size)``,
        re-reading the row *under* the write lock.  This is the slow
        path of the open-time-size lost-update fix: a handle whose file
        changed since open must not publish its stale open-time size —
        a concurrent writer may have committed a larger one (including
        against a ``write(b"")`` handle that took no chunk locks)."""
        table = self._table(tx)
        table.lock_exclusive(tx, lock_key=fileid)
        snapshot = self.db.snapshot(tx)
        entry = self.get_entry(fileid, snapshot, tx)
        if entry is None:
            raise FileNotFoundError_(f"no attributes for file {fileid}")
        tid, att = entry
        new = FileAtt(
            file=att.file,
            owner=att.owner,
            type=att.type,
            size=max(att.size, floor_size),
            ctime=att.ctime,
            mtime=mtime if mtime is not None else att.mtime,
            atime=att.atime,
        )
        table.update(tx, tid, new.to_row(), lock_key=fileid)
        self._queue_size(tx, fileid, new.size)
        if self.on_mutate is not None:
            self.on_mutate(fileid, tx)
        return new
