"""Client-side cache tiers: path→oid resolution, fileatt, chunk data.

:class:`ClientCache` is the session-local half of the lease protocol in
:mod:`repro.cache.leases`.  It keeps four bounded LRU tiers:

- ``paths``   — name→oid resolutions (cuts server B-tree descents),
- ``negative``— names known absent (ENOENT caching for failed lookups),
- ``atts``    — fileatt rows keyed by oid,
- ``chunks``  — chunk payloads keyed by ``(oid, chunkno)``.

All tiers serve only *auto-commit* traffic: inside an explicit
transaction the client always goes to the server (the server's own
snapshot isolation is the correctness story there), and in-transaction
results are never cached (they may be rolled back).

Coherence rules the caller must follow (the cache enforces what it
can):

1. **Poll before serve** — drain the lease channel and apply notices
   before consulting any tier.
2. **Drop before fill** — snapshot :attr:`inval_seq` before an RPC and
   fill only if it is unchanged afterwards; a notice that raced the
   request means the reply may predate the writer's commit.
3. **Grants only from quiet batches** — :meth:`apply_notices` ignores
   piggybacked name grants when the same batch carried any
   invalidation (the grant could be staler than the notice).
4. **Revocation is terminal** — once :meth:`revoke` runs (server
   forgot/expired the lease, or the session disconnected) every tier
   is dropped and the cache refuses to serve or fill again.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.chunks import CHUNK_SIZE
from repro.obs.registry import MetricSpec

from repro.cache.leases import normalize_path

METRICS = (
    MetricSpec("cache.hits", "counter", "ops",
               "Client-cache hits served without a server RPC, by tier "
               "(att, negative, chunk, seek).",
               "repro.cache.client", labels=("tier",)),
    MetricSpec("cache.misses", "counter", "ops",
               "Cache-eligible requests that still went to the server, "
               "by tier (att, chunk).",
               "repro.cache.client", labels=("tier",)),
    MetricSpec("cache.invalidations", "counter", "ops",
               "Cache entries dropped by lease invalidation notices.",
               "repro.cache.client"),
    MetricSpec("cache.evictions", "counter", "ops",
               "Cache entries evicted by the LRU capacity bound.",
               "repro.cache.client"),
)


class CacheStats:
    """Lifetime counters for one cache (or a set of caches sharing one
    registry — the scheduler and the sharded client deliberately share
    a single instance across sessions/shards so the mirrored metric
    reflects the whole run)."""

    def __init__(self) -> None:
        self.hits: dict[str, int] = {}
        self.misses: dict[str, int] = {}
        self.invalidations = 0
        self.evictions = 0
        #: id() of every registry these stats are already mirrored on.
        self._bound: set[int] = set()

    def hit(self, tier: str) -> None:
        self.hits[tier] = self.hits.get(tier, 0) + 1

    def miss(self, tier: str) -> None:
        self.misses[tier] = self.misses.get(tier, 0) + 1


def bind_cache_stats(registry, stats: CacheStats) -> None:
    """Mirror ``stats`` onto ``registry`` once (idempotent per
    registry; a second cache sharing the stats is a no-op)."""
    if id(registry) in stats._bound:
        return
    stats._bound.add(id(registry))
    hits = registry.register(METRICS[0])
    for tier in ("att", "negative", "chunk", "seek"):
        hits.mirror(lambda s=stats, t=tier: s.hits.get(t, 0), tier=tier)
    misses = registry.register(METRICS[1])
    for tier in ("att", "chunk"):
        misses.mirror(lambda s=stats, t=tier: s.misses.get(t, 0), tier=tier)
    registry.register(METRICS[2]).mirror(lambda s=stats: s.invalidations)
    registry.register(METRICS[3]).mirror(lambda s=stats: s.evictions)


class ClientCache:
    """Bounded, lease-coherent cache for one server session.

    ``leases`` is the server's :class:`~repro.cache.leases.LeaseManager`
    (the simulation stands in for the wire: polls model piggybacked
    reply payloads, not extra messages).  ``session_id`` must already be
    subscribed.
    """

    def __init__(self, leases, session_id: int,
                 max_paths: int = 128, max_chunks: int = 64,
                 stats: CacheStats | None = None) -> None:
        self.leases = leases
        self.session_id = session_id
        self.max_paths = max(1, int(max_paths))
        self.max_chunks = max(1, int(max_chunks))
        self.stats = stats if stats is not None else CacheStats()
        #: normalized path -> oid.
        self._paths: OrderedDict[str, int] = OrderedDict()
        #: normalized path -> ENOENT message to re-raise.
        self._negative: OrderedDict[str, str] = OrderedDict()
        #: oid -> FileAtt.
        self._atts: OrderedDict[int, object] = OrderedDict()
        #: (oid, chunkno) -> (payload bytes, owner xid or None).
        self._chunks: OrderedDict[tuple[int, int], tuple] = OrderedDict()
        #: bumped once per applied invalidation notice; fill sites
        #: compare around their RPC (drop-before-fill).
        self.inval_seq = 0
        self.revoked = False

    # -- lease protocol ---------------------------------------------------

    def poll(self) -> None:
        """Drain this session's lease channel and apply what arrived.
        Call after every RPC and before serving from any tier."""
        if self.revoked:
            return
        notices = self.leases.poll(self.session_id)
        if notices is None:
            self.revoke()
            return
        if notices:
            self.apply_notices(notices)

    def apply_notices(self, notices: list[tuple]) -> None:
        quiet = True
        for notice in notices:
            if notice[0] != "grant":
                quiet = False
                self._apply_invalidation(notice)
        if quiet:
            for notice in notices:
                if notice[0] == "grant":
                    _, path, oid, _epoch = notice
                    self.fill_path(path, oid)

    def _apply_invalidation(self, notice: tuple) -> None:
        kind, key, _epoch = notice
        self.inval_seq += 1
        if kind == "all":
            dropped = (len(self._paths) + len(self._negative)
                       + len(self._atts) + len(self._chunks))
            self._paths.clear()
            self._negative.clear()
            self._atts.clear()
            self._chunks.clear()
            self.stats.invalidations += dropped
        elif kind == "name":
            # Prefix drop: a directory rename/remove changes existence
            # for the whole subtree with a single notice on the dir.
            prefix = key + "/"
            for tier in (self._paths, self._negative):
                for path in [p for p in tier
                             if p == key or p.startswith(prefix)]:
                    del tier[path]
                    self.stats.invalidations += 1
        elif kind == "oid":
            if self._atts.pop(key, None) is not None:
                self.stats.invalidations += 1
            for ck in [c for c in self._chunks if c[0] == key]:
                del self._chunks[ck]
                self.stats.invalidations += 1

    def revoke(self) -> None:
        """Server forgot or expired this session's lease: drop
        everything and never serve again."""
        self.revoked = True
        self._paths.clear()
        self._negative.clear()
        self._atts.clear()
        self._chunks.clear()

    def flush(self) -> None:
        """Voluntarily drop every tier (cache stays usable)."""
        self._paths.clear()
        self._negative.clear()
        self._atts.clear()
        self._chunks.clear()

    # -- lookups (LRU touch on hit) ---------------------------------------

    def lookup_oid(self, path: str) -> int | None:
        if self.revoked:
            return None
        oid = self._paths.get(normalize_path(path))
        if oid is not None:
            self._paths.move_to_end(normalize_path(path))
        return oid

    def lookup_negative(self, path: str) -> str | None:
        if self.revoked:
            return None
        msg = self._negative.get(normalize_path(path))
        if msg is not None:
            self._negative.move_to_end(normalize_path(path))
        return msg

    def lookup_att(self, oid: int):
        if self.revoked:
            return None
        att = self._atts.get(oid)
        if att is not None:
            self._atts.move_to_end(oid)
        return att

    # -- fills ------------------------------------------------------------

    def _bound_lru(self, tier: OrderedDict, cap: int) -> None:
        while len(tier) > cap:
            tier.popitem(last=False)
            self.stats.evictions += 1

    def fill_path(self, path: str, oid: int) -> None:
        if self.revoked:
            return
        path = normalize_path(path)
        self._negative.pop(path, None)
        self._paths[path] = oid
        self._paths.move_to_end(path)
        self._bound_lru(self._paths, self.max_paths)

    def fill_negative(self, path: str, message: str) -> None:
        if self.revoked:
            return
        path = normalize_path(path)
        self._paths.pop(path, None)
        self._negative[path] = message
        self._negative.move_to_end(path)
        self._bound_lru(self._negative, self.max_paths)

    def fill_att(self, oid: int, att) -> None:
        if self.revoked:
            return
        self._atts[oid] = att
        self._atts.move_to_end(oid)
        self._bound_lru(self._atts, self.max_paths)

    def fill_read(self, oid: int, pos: int, data: bytes,
                  owner: int | None = None) -> None:
        """Cache the fully-covered chunks of a read reply.  A chunk is
        cached only when the reply spans it completely (or it runs to
        the file's cached size) — partial coverage would need server
        merges the protocol doesn't have.  Requires the att to already
        be cached: serve-side EOF clamping needs an authoritative
        size."""
        if self.revoked or not data:
            return
        att = self._atts.get(oid)
        if att is None:
            return
        end = pos + len(data)
        first = pos // CHUNK_SIZE
        last = (end - 1) // CHUNK_SIZE
        for chunkno in range(first, last + 1):
            chunk_start = chunkno * CHUNK_SIZE
            if chunk_start < pos:
                continue
            chunk_end = chunk_start + CHUNK_SIZE
            if chunk_end > end and end < att.size:
                continue
            payload = data[chunk_start - pos:chunk_end - pos]
            self._chunks[(oid, chunkno)] = (payload, owner)
            self._chunks.move_to_end((oid, chunkno))
        self._bound_lru(self._chunks, self.max_chunks)

    # -- chunk serving ----------------------------------------------------

    def serve_read(self, oid: int, pos: int, length: int):
        """Serve a read entirely from cached chunks, or return ``None``.
        Returns ``(data, owners)`` on a hit, where ``owners`` is the
        list of owner xids (one per chunk served) for per-transaction
        accounting.  Needs the att cached (size clamps the request and
        detects EOF); negative lengths mean read-to-EOF, matching the
        server."""
        if self.revoked:
            return None
        att = self._atts.get(oid)
        if att is None:
            return None
        size = att.size
        if pos >= size:
            return (b"", []) if length is not None else None
        if length is None or length < 0:
            length = size - pos
        end = min(pos + length, size)
        if end <= pos:
            return (b"", [])
        pieces: list[bytes] = []
        owners: list = []
        for chunkno in range(pos // CHUNK_SIZE, (end - 1) // CHUNK_SIZE + 1):
            entry = self._chunks.get((oid, chunkno))
            if entry is None:
                return None
            payload, owner = entry
            chunk_start = chunkno * CHUNK_SIZE
            lo = max(pos, chunk_start) - chunk_start
            hi = min(end, chunk_start + CHUNK_SIZE) - chunk_start
            if hi > len(payload):
                # The cached payload is shorter than the request needs
                # (tail chunk cached before the file grew — the grow
                # bump should have dropped it, but stay conservative).
                return None
            pieces.append(payload[lo:hi])
            owners.append(owner)
            self._chunks.move_to_end((oid, chunkno))
        self._atts.move_to_end(oid)
        return b"".join(pieces), owners
