"""Server-side lease/epoch bookkeeping for client caches.

Inversion's remote protocol is strictly request/response, so cache
invalidation piggybacks on it: the server keeps a per-object *epoch*
(a version counter) for every name and file object a mutation touches,
and every subscribed session has a notice channel that accumulates
``(kind, key, epoch)`` invalidation notices.  A client drains its
channel after every RPC and polls it before serving anything from
cache, so a stale entry is dropped before the next use — the
NFS/HopsFS lease idea without a callback wire.

Ordering is the whole correctness story, and it has two halves:

- **Visibility before notices.**  Bumps raised inside a transaction are
  *queued* against its xid and only emitted once
  :meth:`~repro.core.filesystem.InversionFS.commit` has made the
  mutation visible (:meth:`flush_tx`).  Emitting at mutation time would
  let another session re-read (and re-cache) the *old* committed value
  between the notice and the commit, re-poisoning its cache with no
  further notice to drop it.  Aborted transactions flush too — a
  spurious notice merely drops a valid entry (over-invalidation is
  always safe); a missing one is a stale read.
- **Drop before fill.**  Clients compare the invalidation sequence
  number around every RPC and skip caching that RPC's result when a
  notice arrived while it was in flight (see
  :class:`~repro.cache.client.ClientCache`).

Channels are bounded: past :data:`MAX_PENDING` undrained notices a
channel collapses to a single ``("all", "", epoch)`` flush marker —
the client loses precision, never correctness.  Revocation (session
disconnect, cluster in-doubt recovery) removes the channel entirely;
:meth:`poll` then returns ``None`` and the client must drop its whole
cache and stop serving.

Everything here is plain dict work: no device I/O, no simulated-clock
advance — which is what keeps crash-write boundaries and benchmark
timings byte-identical whether or not leases are enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.registry import MetricSpec

#: epochs live in 32-bit serial-number space (RFC 1982 style), so the
#: counter can run forever; compare with :func:`epoch_newer`.
EPOCH_MODULUS = 2 ** 32

#: undrained notices a channel holds before collapsing to one
#: ``("all", "", epoch)`` flush marker.
MAX_PENDING = 1024

METRICS = (
    MetricSpec("cache.lease_bumps", "counter", "ops",
               "Object-epoch bumps emitted by committed (or aborted, "
               "conservatively) mutations.",
               "repro.cache.leases"),
    MetricSpec("cache.lease_notices", "counter", "msgs",
               "Invalidation notices appended to subscribed sessions' "
               "channels (one bump fans out to every subscriber).",
               "repro.cache.leases"),
    MetricSpec("cache.lease_grants", "counter", "ops",
               "Name-resolution grants piggybacked on p_open/p_creat "
               "replies (they pre-fill the client's path cache).",
               "repro.cache.leases"),
    MetricSpec("cache.lease_revocations", "counter", "ops",
               "Session lease revocations: disconnects, explicit "
               "revoke_all sweeps, and cluster in-doubt recovery.",
               "repro.cache.leases"),
)


def normalize_path(path: str) -> str:
    """Canonical form of a path — mirrors
    :func:`repro.core.naming.split_path` (empty components dropped), so
    ``/a//b/`` and ``/a/b`` hit the same cache key."""
    return "/" + "/".join(p for p in path.split("/") if p)


def epoch_newer(a: int, b: int) -> bool:
    """Is epoch ``a`` newer than ``b`` in serial-number arithmetic?
    Correct across wraparound as long as the two are within half the
    modulus of each other (channels bound the drift far tighter)."""
    return (a - b) % EPOCH_MODULUS < EPOCH_MODULUS // 2 and a != b


@dataclass
class LeaseStats:
    """Lease-manager lifetime counters, mirrored onto the owning
    database's metrics registry under the ``cache.lease_*`` families."""

    lease_bumps: int = 0
    lease_notices: int = 0
    lease_grants: int = 0
    lease_revocations: int = 0


def bind_lease_stats(registry, stats: LeaseStats) -> None:
    """Mirror ``stats`` onto ``registry`` (idempotent — re-registering
    an identical spec returns the existing family)."""
    for spec in METRICS:
        attr = spec.name.rsplit(".", 1)[-1]
        registry.register(spec).mirror(lambda s=stats, a=attr: getattr(s, a))


class _Channel:
    """One subscriber's pending-notice queue."""

    __slots__ = ("pending",)

    def __init__(self) -> None:
        self.pending: list[tuple] = []

    def append(self, notice: tuple, epoch: int) -> None:
        if self.pending and self.pending[0][0] == "all":
            # An undrained full-flush marker makes everything behind it
            # redundant (the client clears every tier applying it, and
            # grants in a non-quiet batch are ignored anyway) — just
            # keep the marker's epoch current.
            self.pending = [("all", "", epoch)]
            return
        if len(self.pending) >= MAX_PENDING:
            # Precision exhausted: collapse to one full-flush marker.
            self.pending = [("all", "", epoch)]
            return
        self.pending.append(notice)


class LeaseManager:
    """Per-server epoch registry and notice fan-out.

    Keys are two-space: ``("name", path)`` for namespace mutations
    (create, unlink, rename, mkdir, rmdir) and ``("oid", fileid)`` for
    data/attribute mutations (writes, fileatt updates/removals).  The
    two spaces are independent on purpose — a rename moves a name but
    leaves the object's attributes and chunks valid, and every cached
    att/chunk access routes through a path-tier lookup first, so no
    cross-tier cascade is needed.
    """

    def __init__(self) -> None:
        #: global epoch counter (mod :data:`EPOCH_MODULUS`).
        self.epoch = 0
        #: ``(kind, key)`` -> epoch of its last bump.
        self.epochs: dict[tuple, int] = {}
        self._channels: dict[int, _Channel] = {}
        #: xid -> ordered {(kind, key): True} of bumps queued until the
        #: transaction's visibility point (dict = dedup + order).
        self._tx_pending: dict[int, dict[tuple, bool]] = {}
        self.stats = LeaseStats()

    # -- subscription ----------------------------------------------------

    def subscribe(self, session_id: int) -> None:
        """Open (or reset) the session's notice channel."""
        self._channels[session_id] = _Channel()

    def subscribed(self, session_id: int) -> bool:
        return session_id in self._channels

    def poll(self, session_id: int) -> list[tuple] | None:
        """Drain the session's pending notices.  ``None`` means the
        session holds no lease (never subscribed, or revoked): the
        caller must drop its entire cache and stop serving."""
        channel = self._channels.get(session_id)
        if channel is None:
            return None
        out = channel.pending
        channel.pending = []
        return out

    def revoke(self, session_id: int) -> bool:
        """Drop the session's channel (disconnect/crash path)."""
        if self._channels.pop(session_id, None) is None:
            return False
        self.stats.lease_revocations += 1
        return True

    def revoke_all(self) -> int:
        """Expire every outstanding lease (cluster in-doubt recovery)."""
        return sum(1 for sid in list(self._channels) if self.revoke(sid))

    # -- bumps -----------------------------------------------------------

    def bump_name(self, path: str, tx=None) -> None:
        self._bump("name", normalize_path(path), tx)

    def bump_oid(self, fileid: int, tx=None) -> None:
        self._bump("oid", fileid, tx)

    def bump_all(self, tx=None) -> None:
        """Conservative global invalidation — used for POSTQUEL queries,
        whose mutation statements bypass the file-system hooks."""
        self._bump("all", "", tx)

    def _bump(self, kind: str, key, tx) -> None:
        if tx is not None:
            # Queue until the transaction's visibility point; flush_tx
            # (called from fs.commit/abort/finish_prepared) emits.
            self._tx_pending.setdefault(tx.xid, {})[(kind, key)] = True
            return
        self._emit(kind, key)

    def flush_tx(self, xid: int) -> None:
        """Emit every bump queued under ``xid`` — call *after* the
        transaction's outcome is durable/visible."""
        pending = self._tx_pending.pop(xid, None)
        if not pending:
            return
        for kind, key in pending:
            self._emit(kind, key)

    def _emit(self, kind: str, key) -> None:
        self.epoch = (self.epoch + 1) % EPOCH_MODULUS
        self.epochs[(kind, key)] = self.epoch
        self.stats.lease_bumps += 1
        notice = (kind, key, self.epoch)
        for channel in self._channels.values():
            channel.append(notice, self.epoch)
            self.stats.lease_notices += 1

    # -- grants ----------------------------------------------------------

    def grant(self, session_id: int, path: str, fileid: int) -> None:
        """Piggyback a name→oid resolution on an open/creat reply: the
        session may pre-fill its path cache without a stat RPC.  Clients
        only trust a grant from a notice batch that carried no
        invalidations (the resolution could predate an in-flight
        mutation's notice in wall order)."""
        channel = self._channels.get(session_id)
        if channel is None:
            return
        channel.append(("grant", normalize_path(path), fileid, self.epoch),
                       self.epoch)
        self.stats.lease_grants += 1
