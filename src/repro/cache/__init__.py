"""Client-side caching with leases (PR 7).

The package has two halves:

- :mod:`repro.cache.leases` — the server side: per-object version
  epochs, per-session invalidation channels, transactional bump
  queues flushed at commit (visibility-before-notice), grants, and
  revocation.
- :mod:`repro.cache.client` — the client side: bounded LRU tiers for
  path→oid resolution, negative (ENOENT) lookups, fileatt rows, and
  chunk payloads, with the drop-before-fill ``inval_seq`` protocol.

:func:`session_cache_factory` packages the standard wiring for the
multi-user scheduler (one cache per admitted session, one shared
:class:`~repro.cache.client.CacheStats` so the mirrored ``cache.*``
metrics cover the whole run).
"""

from __future__ import annotations

from repro.cache.client import (
    CacheStats,
    ClientCache,
    METRICS as CLIENT_METRICS,
    bind_cache_stats,
)
from repro.cache.leases import (
    EPOCH_MODULUS,
    LeaseManager,
    LeaseStats,
    METRICS as LEASE_METRICS,
    bind_lease_stats,
    epoch_newer,
    normalize_path,
)

__all__ = [
    "CacheStats",
    "ClientCache",
    "CLIENT_METRICS",
    "EPOCH_MODULUS",
    "LeaseManager",
    "LeaseStats",
    "LEASE_METRICS",
    "bind_cache_stats",
    "bind_lease_stats",
    "epoch_newer",
    "normalize_path",
    "session_cache_factory",
]


def session_cache_factory(max_paths: int = 128, max_chunks: int = 64,
                          stats: CacheStats | None = None):
    """A ``cache_factory(server, conn)`` callable for
    :class:`~repro.sched.scheduler.MultiUserScheduler`: enables leases
    on the server, subscribes the session, and returns a
    :class:`ClientCache`.  All caches produced by one factory share one
    :class:`CacheStats`, so the run's ``cache.*`` metrics aggregate
    across sessions."""
    shared = stats if stats is not None else CacheStats()

    def factory(server, conn: int) -> ClientCache:
        leases = server.enable_leases()
        leases.subscribe(conn)
        obs = getattr(getattr(server.fs, "db", None), "obs", None)
        if obs is not None:
            bind_cache_stats(obs.metrics, shared)
        return ClientCache(leases, conn, max_paths=max_paths,
                           max_chunks=max_chunks, stats=shared)

    factory.stats = shared
    return factory
