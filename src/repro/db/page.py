"""8192-byte slotted data pages.

The POSTGRES data manager page "was chosen early in the design of
POSTGRES, and was intended to make magnetic disk transfers fast"; the
paper notes Inversion inherits it.  The layout here is the classic
slotted page: a fixed header, a slot directory growing downward-in-
address/upward-in-count from the header, and record data growing up
from the end of the page.

Header (12 bytes, little-endian):

== ======= ==========================================================
#  field   meaning
== ======= ==========================================================
H  nslots  number of slot directory entries
H  lower   byte offset of the first free byte after the slot directory
H  upper   byte offset of the start of record data
H  flags   page-kind flags (heap / B-tree leaf / B-tree internal)
I  special page-kind-specific value (B-tree right-sibling pointer)
== ======= ==========================================================

Each slot is 4 bytes: ``(offset: H, length: H)``.  Slot order is the
*logical* record order; B-tree nodes keep slots sorted by key, heap
pages append.
"""

from __future__ import annotations

import struct

from repro.errors import PageError, PageOverflowError

PAGE_SIZE = 8192
HEADER_FMT = "<HHHHI"
HEADER_SIZE = struct.calcsize(HEADER_FMT)  # 12
SLOT_FMT = "<HH"
SLOT_SIZE = struct.calcsize(SLOT_FMT)  # 4

# Page-kind flags.
PAGE_HEAP = 0x0001
PAGE_BTREE_LEAF = 0x0002
PAGE_BTREE_INTERNAL = 0x0004
PAGE_BTREE_META = 0x0008

MAX_RECORD_SIZE = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE
"""Largest record payload that fits on an otherwise empty page."""


class Page:
    """A mutable slotted page over a ``bytearray`` buffer."""

    __slots__ = ("buf",)

    def __init__(self, buf: bytes | bytearray | None = None, flags: int = 0) -> None:
        if buf is None:
            self.buf = bytearray(PAGE_SIZE)
            self._write_header(0, HEADER_SIZE, PAGE_SIZE, flags, 0)
        else:
            if len(buf) != PAGE_SIZE:
                raise PageError(f"page buffer must be {PAGE_SIZE} bytes, got {len(buf)}")
            self.buf = bytearray(buf)
            nslots, lower, upper, _flags, _special = self._read_header()
            if lower == 0 and upper == 0 and nslots == 0:
                # All-zero (freshly extended) page: initialize.
                self._write_header(0, HEADER_SIZE, PAGE_SIZE, flags, 0)

    # -- header access ------------------------------------------------

    def _read_header(self) -> tuple[int, int, int, int, int]:
        return struct.unpack_from(HEADER_FMT, self.buf, 0)

    def _write_header(self, nslots: int, lower: int, upper: int,
                      flags: int, special: int) -> None:
        struct.pack_into(HEADER_FMT, self.buf, 0, nslots, lower, upper, flags, special)

    @property
    def nslots(self) -> int:
        return self._read_header()[0]

    @property
    def flags(self) -> int:
        return self._read_header()[3]

    @flags.setter
    def flags(self, value: int) -> None:
        n, lo, up, _f, sp = self._read_header()
        self._write_header(n, lo, up, value, sp)

    @property
    def special(self) -> int:
        return self._read_header()[4]

    @special.setter
    def special(self, value: int) -> None:
        n, lo, up, f, _sp = self._read_header()
        self._write_header(n, lo, up, f, value)

    @property
    def free_space(self) -> int:
        """Bytes available for one more record *including* its slot."""
        _n, lower, upper, _f, _sp = self._read_header()
        return max(0, upper - lower)

    def fits(self, record_len: int) -> bool:
        return self.free_space >= record_len + SLOT_SIZE

    # -- slot directory -----------------------------------------------

    def _slot(self, idx: int) -> tuple[int, int]:
        nslots = self.nslots
        if not (0 <= idx < nslots):
            raise PageError(f"slot {idx} out of range (nslots={nslots})")
        return struct.unpack_from(SLOT_FMT, self.buf, HEADER_SIZE + idx * SLOT_SIZE)

    def _set_slot(self, idx: int, offset: int, length: int) -> None:
        struct.pack_into(SLOT_FMT, self.buf, HEADER_SIZE + idx * SLOT_SIZE, offset, length)

    # -- record operations ----------------------------------------------

    def add_record(self, data: bytes) -> int:
        """Append ``data`` as a new record; returns its slot index."""
        return self.insert_record(self.nslots, data)

    def insert_record(self, idx: int, data: bytes) -> int:
        """Insert ``data`` so it becomes slot ``idx``, shifting later
        slots up.  B-tree nodes use this to keep slots key-ordered."""
        n = len(data)
        if n > MAX_RECORD_SIZE:
            raise PageOverflowError(f"record of {n} bytes exceeds page capacity")
        if not self.fits(n):
            raise PageOverflowError(
                f"record of {n} bytes does not fit (free={self.free_space})")
        nslots, lower, upper, flags, special = self._read_header()
        if not (0 <= idx <= nslots):
            raise PageError(f"insert position {idx} out of range (nslots={nslots})")
        # Shift the slot directory entries at and after idx.
        src = HEADER_SIZE + idx * SLOT_SIZE
        end = HEADER_SIZE + nslots * SLOT_SIZE
        self.buf[src + SLOT_SIZE:end + SLOT_SIZE] = self.buf[src:end]
        new_upper = upper - n
        self.buf[new_upper:new_upper + n] = data
        self._write_header(nslots + 1, lower + SLOT_SIZE, new_upper, flags, special)
        self._set_slot(idx, new_upper, n)
        return idx

    def get_record(self, idx: int) -> bytes:
        offset, length = self._slot(idx)
        if offset == 0:
            raise PageError(f"slot {idx} is dead")
        return bytes(self.buf[offset:offset + length])

    def overwrite_record(self, idx: int, data: bytes) -> None:
        """Replace a record in place.  Only same-length replacement is
        allowed — used solely for stamping ``xmax`` into an existing
        record header (the no-overwrite manager never changes record
        *contents*)."""
        offset, length = self._slot(idx)
        if len(data) != length:
            raise PageError(
                f"in-place overwrite must preserve length ({len(data)} != {length})")
        self.buf[offset:offset + length] = data

    def patch_record(self, idx: int, rel_offset: int, patch: bytes) -> None:
        """Patch ``patch`` bytes into the record at slot ``idx`` starting
        ``rel_offset`` bytes into the record."""
        offset, length = self._slot(idx)
        if rel_offset + len(patch) > length:
            raise PageError("patch extends past end of record")
        start = offset + rel_offset
        self.buf[start:start + len(patch)] = patch

    def delete_slot(self, idx: int) -> None:
        """Remove slot ``idx`` from the directory (B-tree node
        reorganization; heap pages never delete, they stamp ``xmax``).
        The record bytes become a hole reclaimed by :meth:`compact`."""
        nslots, lower, upper, flags, special = self._read_header()
        if not (0 <= idx < nslots):
            raise PageError(f"slot {idx} out of range (nslots={nslots})")
        src = HEADER_SIZE + (idx + 1) * SLOT_SIZE
        end = HEADER_SIZE + nslots * SLOT_SIZE
        self.buf[src - SLOT_SIZE:end - SLOT_SIZE] = self.buf[src:end]
        self._write_header(nslots - 1, lower - SLOT_SIZE, upper, flags, special)

    def compact(self) -> None:
        """Rewrite the data region to squeeze out holes left by
        :meth:`delete_slot`."""
        nslots, _lower, _upper, flags, special = self._read_header()
        records = [self.get_record(i) for i in range(nslots)]
        self.buf[:] = bytes(PAGE_SIZE)
        self._write_header(0, HEADER_SIZE, PAGE_SIZE, flags, special)
        for rec in records:
            self.add_record(rec)

    def rewrite(self, records: list[bytes]) -> None:
        """Replace all records, preserving flags and special."""
        _n, _lo, _up, flags, special = self._read_header()
        self.buf[:] = bytes(PAGE_SIZE)
        self._write_header(0, HEADER_SIZE, PAGE_SIZE, flags, special)
        for rec in records:
            self.add_record(rec)

    def records(self) -> list[bytes]:
        """All records in slot order."""
        return [self.get_record(i) for i in range(self.nslots)]

    def to_bytes(self) -> bytes:
        return bytes(self.buf)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Page(nslots={self.nslots}, free={self.free_space}, flags={self.flags:#x})"
