"""8192-byte slotted data pages.

The POSTGRES data manager page "was chosen early in the design of
POSTGRES, and was intended to make magnetic disk transfers fast"; the
paper notes Inversion inherits it.  The layout here is the classic
slotted page: a fixed header, a slot directory growing downward-in-
address/upward-in-count from the header, and record data growing up
from the end of the page.

Header (12 bytes, little-endian):

== ======= ==========================================================
#  field   meaning
== ======= ==========================================================
H  nslots  number of slot directory entries
H  lower   byte offset of the first free byte after the slot directory
H  upper   byte offset of the start of record data
H  flags   page-kind flags (heap / B-tree leaf / B-tree internal)
I  special page-kind-specific value (B-tree right-sibling pointer)
== ======= ==========================================================

Each slot is 4 bytes: ``(offset: H, length: H)``.  Slot order is the
*logical* record order; B-tree nodes keep slots sorted by key, heap
pages append.

Hot-path layout: the header is parsed once and mirrored in plain
attributes (written through to the buffer on mutation), the slot
directory is decoded lazily into a list of ``(offset, length)`` tuples
that mutators patch in place where the change is local (insert/delete
shift entries; record data never moves), and record access goes
through one long-lived ``memoryview`` so ``get_record`` copies once
instead of twice.  ``Page.cache`` is a scratch slot for higher layers
(the B-tree keeps its decoded key array there); any mutation that can
change record bytes clears it, and :attr:`header_cache_invalidations`
counts the clears that dropped a materialized view.
"""

from __future__ import annotations

import struct

from repro.errors import PageError, PageOverflowError
from repro.obs.registry import MetricSpec

METRICS = (
    MetricSpec("page.header_cache_invalidations", "counter", "events",
               "Cached page views (decoded slot directory or a higher "
               "layer's decoded-key cache) dropped by a mutation that "
               "could not patch them in place.  Session-relative delta "
               "of the process-global class counter.",
               "repro.db.page"),
)

PAGE_SIZE = 8192
HEADER_FMT = "<HHHHI"
_HEADER = struct.Struct(HEADER_FMT)
HEADER_SIZE = _HEADER.size  # 12
SLOT_FMT = "<HH"
_SLOT = struct.Struct(SLOT_FMT)
SLOT_SIZE = _SLOT.size  # 4

# Page-kind flags.
PAGE_HEAP = 0x0001
PAGE_BTREE_LEAF = 0x0002
PAGE_BTREE_INTERNAL = 0x0004
PAGE_BTREE_META = 0x0008

MAX_RECORD_SIZE = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE
"""Largest record payload that fits on an otherwise empty page."""

_EMPTY_PAGE = bytes(PAGE_SIZE)


class Page:
    """A mutable slotted page over a ``bytearray`` buffer."""

    __slots__ = ("buf", "mv", "_nslots", "_lower", "_upper", "_flags",
                 "_special", "_slotdir", "cache", "version")

    #: process-wide count of dropped cached views (decoded slot
    #: directories / higher-layer ``cache`` payloads) — mutations that
    #: could not be patched coherently.  Mirrored session-relative by
    #: the observability registry.
    header_cache_invalidations = 0

    def __init__(self, buf: bytes | bytearray | None = None, flags: int = 0) -> None:
        if buf is None:
            self.buf = bytearray(PAGE_SIZE)
            self.mv = memoryview(self.buf)
            self._write_header(0, HEADER_SIZE, PAGE_SIZE, flags, 0)
        else:
            if len(buf) != PAGE_SIZE:
                raise PageError(f"page buffer must be {PAGE_SIZE} bytes, got {len(buf)}")
            self.buf = bytearray(buf)
            self.mv = memoryview(self.buf)
            nslots, lower, upper, _flags, _special = self._load_header()
            if lower == 0 and upper == 0 and nslots == 0:
                # All-zero (freshly extended) page: initialize.
                self._write_header(0, HEADER_SIZE, PAGE_SIZE, flags, 0)
        self._slotdir = None
        self.cache = None
        self.version = 0

    # -- header access ------------------------------------------------

    def _read_header(self) -> tuple[int, int, int, int, int]:
        """Decode the header straight from the buffer (the cached
        attributes mirror it; tests use this to check the mirror)."""
        return _HEADER.unpack_from(self.buf, 0)

    def _load_header(self) -> tuple[int, int, int, int, int]:
        header = _HEADER.unpack_from(self.buf, 0)
        (self._nslots, self._lower, self._upper, self._flags,
         self._special) = header
        return header

    def _write_header(self, nslots: int, lower: int, upper: int,
                      flags: int, special: int) -> None:
        _HEADER.pack_into(self.buf, 0, nslots, lower, upper, flags, special)
        self._nslots = nslots
        self._lower = lower
        self._upper = upper
        self._flags = flags
        self._special = special

    def _drop_caches(self) -> None:
        """Forget the decoded slot directory and any higher-layer cache
        after a mutation that cannot be patched in place."""
        if self._slotdir is not None or self.cache is not None:
            Page.header_cache_invalidations += 1
        self._slotdir = None
        self.cache = None

    @property
    def nslots(self) -> int:
        return self._nslots

    @property
    def flags(self) -> int:
        return self._flags

    @flags.setter
    def flags(self, value: int) -> None:
        self._write_header(self._nslots, self._lower, self._upper,
                           value, self._special)
        self.version += 1

    @property
    def special(self) -> int:
        return self._special

    @special.setter
    def special(self, value: int) -> None:
        self._write_header(self._nslots, self._lower, self._upper,
                           self._flags, value)
        self.version += 1

    @property
    def free_space(self) -> int:
        """Bytes available for one more record *including* its slot."""
        free = self._upper - self._lower
        return free if free > 0 else 0

    def fits(self, record_len: int) -> bool:
        return self._upper - self._lower >= record_len + SLOT_SIZE

    # -- slot directory -----------------------------------------------

    def _slots_all(self) -> list[tuple[int, int]]:
        """The decoded slot directory, built lazily and patched by
        mutators whose effect on it is local."""
        sd = self._slotdir
        if sd is None:
            sd = self._slotdir = list(_SLOT.iter_unpack(
                self.mv[HEADER_SIZE:HEADER_SIZE + self._nslots * SLOT_SIZE]))
        return sd

    def _slot(self, idx: int) -> tuple[int, int]:
        nslots = self._nslots
        if not (0 <= idx < nslots):
            raise PageError(f"slot {idx} out of range (nslots={nslots})")
        sd = self._slotdir
        if sd is None:
            sd = self._slots_all()
        return sd[idx]

    def _set_slot(self, idx: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.buf, HEADER_SIZE + idx * SLOT_SIZE, offset, length)
        if self._slotdir is not None:
            self._slotdir[idx] = (offset, length)

    # -- record operations ----------------------------------------------

    def add_record(self, data: bytes) -> int:
        """Append ``data`` as a new record; returns its slot index."""
        return self.insert_record(self._nslots, data)

    def insert_record(self, idx: int, data: bytes) -> int:
        """Insert ``data`` so it becomes slot ``idx``, shifting later
        slots up.  B-tree nodes use this to keep slots key-ordered."""
        n = len(data)
        if n > MAX_RECORD_SIZE:
            raise PageOverflowError(f"record of {n} bytes exceeds page capacity")
        nslots, lower, upper = self._nslots, self._lower, self._upper
        if upper - lower < n + SLOT_SIZE:
            raise PageOverflowError(
                f"record of {n} bytes does not fit (free={self.free_space})")
        if not (0 <= idx <= nslots):
            raise PageError(f"insert position {idx} out of range (nslots={nslots})")
        # Shift the slot directory entries at and after idx.
        src = HEADER_SIZE + idx * SLOT_SIZE
        end = HEADER_SIZE + nslots * SLOT_SIZE
        buf = self.buf
        buf[src + SLOT_SIZE:end + SLOT_SIZE] = buf[src:end]
        new_upper = upper - n
        buf[new_upper:new_upper + n] = data
        self._write_header(nslots + 1, lower + SLOT_SIZE, new_upper,
                           self._flags, self._special)
        if self._slotdir is not None:
            self._slotdir.insert(idx, (new_upper, n))
        _SLOT.pack_into(buf, src, new_upper, n)
        if self.cache is not None:
            # Record positions are unchanged but the slot<->record
            # mapping shifted; higher layers re-derive (or patch and
            # restore) their view.
            self.cache = None
        self.version += 1
        return idx

    def get_record(self, idx: int) -> bytes:
        offset, length = self._slot(idx)
        if offset == 0:
            raise PageError(f"slot {idx} is dead")
        return bytes(self.mv[offset:offset + length])

    def record_view(self, idx: int):
        """Zero-copy view of the record at ``idx`` — valid only until
        the next page mutation (hot readers decode from it in place)."""
        offset, length = self._slot(idx)
        if offset == 0:
            raise PageError(f"slot {idx} is dead")
        return self.mv[offset:offset + length]

    def overwrite_record(self, idx: int, data: bytes) -> None:
        """Replace a record in place.  Only same-length replacement is
        allowed — used solely for stamping ``xmax`` into an existing
        record header (the no-overwrite manager never changes record
        *contents*)."""
        offset, length = self._slot(idx)
        if len(data) != length:
            raise PageError(
                f"in-place overwrite must preserve length ({len(data)} != {length})")
        self.buf[offset:offset + length] = data
        if self.cache is not None:
            Page.header_cache_invalidations += 1
            self.cache = None
        self.version += 1

    def patch_record(self, idx: int, rel_offset: int, patch: bytes) -> None:
        """Patch ``patch`` bytes into the record at slot ``idx`` starting
        ``rel_offset`` bytes into the record."""
        offset, length = self._slot(idx)
        if rel_offset + len(patch) > length:
            raise PageError("patch extends past end of record")
        start = offset + rel_offset
        self.buf[start:start + len(patch)] = patch
        if self.cache is not None:
            Page.header_cache_invalidations += 1
            self.cache = None
        self.version += 1

    def delete_slot(self, idx: int) -> None:
        """Remove slot ``idx`` from the directory (B-tree node
        reorganization; heap pages never delete, they stamp ``xmax``).
        The record bytes become a hole reclaimed by :meth:`compact`."""
        nslots = self._nslots
        if not (0 <= idx < nslots):
            raise PageError(f"slot {idx} out of range (nslots={nslots})")
        src = HEADER_SIZE + (idx + 1) * SLOT_SIZE
        end = HEADER_SIZE + nslots * SLOT_SIZE
        self.buf[src - SLOT_SIZE:end - SLOT_SIZE] = self.buf[src:end]
        self._write_header(nslots - 1, self._lower - SLOT_SIZE, self._upper,
                           self._flags, self._special)
        if self._slotdir is not None:
            del self._slotdir[idx]
        if self.cache is not None:
            Page.header_cache_invalidations += 1
            self.cache = None
        self.version += 1

    def compact(self) -> None:
        """Rewrite the data region to squeeze out holes left by
        :meth:`delete_slot`."""
        nslots = self._nslots
        records = [self.get_record(i) for i in range(nslots)]
        flags, special = self._flags, self._special
        self.buf[:] = _EMPTY_PAGE
        self._write_header(0, HEADER_SIZE, PAGE_SIZE, flags, special)
        self._drop_caches()
        self.version += 1
        for rec in records:
            self.add_record(rec)

    def rewrite(self, records: list[bytes]) -> None:
        """Replace all records, preserving flags and special."""
        flags, special = self._flags, self._special
        self.buf[:] = _EMPTY_PAGE
        self._write_header(0, HEADER_SIZE, PAGE_SIZE, flags, special)
        self._drop_caches()
        self.version += 1
        for rec in records:
            self.add_record(rec)

    def records(self) -> list[bytes]:
        """All records in slot order."""
        return [self.get_record(i) for i in range(self._nslots)]

    def to_bytes(self) -> bytes:
        return bytes(self.buf)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Page(nslots={self.nslots}, free={self.free_space}, flags={self.flags:#x})"
