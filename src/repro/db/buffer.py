"""The shared buffer cache.

"POSTGRES maintains an in-memory shared cache of recently used 8 KByte
data pages.  The size of this cache is tunable when the file system is
installed; as shipped, the system uses 64 buffers, but the version in
use locally uses 300.  Data pages are kicked out of this cache in LRU
order, regardless of the device from which they came.  Dirty pages are
written to backing store before being deleted from the cache."

The cache is the only path between the storage layers (heap, B-tree)
and the device managers.  All simulated I/O cost is charged by the
devices, so a cache hit is (nearly) free and a miss pays real disk
time — exactly the performance structure the benchmark measures.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.db.page import Page
from repro.devices.switch import DeviceSwitch
from repro.sim.cpu import CpuModel

BufferKey = tuple[str, str, int]  # (device name, relation name, page number)

DEFAULT_BUFFERS = 300
"""The evaluated configuration; POSTGRES shipped with 64."""


@dataclass
class BufferStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0
    forced_writes: int = 0


@dataclass
class _Frame:
    page: Page
    dirty: bool = False


@dataclass
class BufferCache:
    """LRU page cache over the device manager switch."""

    switch: DeviceSwitch
    capacity: int = DEFAULT_BUFFERS
    cpu: CpuModel | None = None
    stats: BufferStats = field(default_factory=BufferStats)
    _frames: "OrderedDict[BufferKey, _Frame]" = field(
        default_factory=OrderedDict, repr=False)

    # -- core operations ---------------------------------------------------

    def get_page(self, dev_name: str, relname: str, pageno: int) -> Page:
        """Return the cached page, reading it from its device on a miss."""
        key = (dev_name, relname, pageno)
        frame = self._frames.get(key)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(key)
            return frame.page
        self.stats.misses += 1
        data = self.switch.get(dev_name).read_page(relname, pageno)
        if self.cpu is not None:
            self.cpu.buffer_copy()
        page = Page(data)
        self._admit(key, _Frame(page))
        return page

    def new_page(self, dev_name: str, relname: str, flags: int = 0) -> tuple[int, Page]:
        """Extend the relation by one page; returns (pageno, page).  The
        new page is dirty — it reaches the device at eviction or
        flush."""
        dev = self.switch.get(dev_name)
        pageno = dev.extend(relname)
        page = Page(flags=flags)
        self._admit((dev_name, relname, pageno), _Frame(page, dirty=True))
        return pageno, page

    def mark_dirty(self, dev_name: str, relname: str, pageno: int) -> None:
        frame = self._frames.get((dev_name, relname, pageno))
        if frame is None:
            raise KeyError(f"page {(dev_name, relname, pageno)} not resident")
        frame.dirty = True

    def _admit(self, key: BufferKey, frame: _Frame) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[key] = frame

    def _evict_one(self) -> None:
        key, frame = self._frames.popitem(last=False)
        self.stats.evictions += 1
        if frame.dirty:
            self._writeback(key, frame)

    def _writeback(self, key: BufferKey, frame: _Frame) -> None:
        dev_name, relname, pageno = key
        self.switch.get(dev_name).write_page(relname, pageno, frame.page.to_bytes())
        frame.dirty = False
        self.stats.dirty_writebacks += 1

    # -- flushing ------------------------------------------------------------

    def flush_all(self) -> int:
        """Write back every dirty page (transaction commit forces its
        writes this way — the no-overwrite manager has no WAL, so data
        pages themselves must be durable before the commit record).
        Returns the number of pages written."""
        written = 0
        # Elevator order: sorting by (device, relation, page) turns a
        # scatter of dirty pages into ascending sweeps per relation, as
        # the disk driver's elevator would.
        for key in sorted(k for k, f in self._frames.items() if f.dirty):
            self._writeback(key, self._frames[key])
            self.stats.forced_writes += 1
            written += 1
        return written

    def flush_relation(self, dev_name: str, relname: str) -> int:
        """Force one relation's dirty pages (same elevator order and
        ``forced_writes`` accounting as :meth:`flush_all`, so write
        counting is consistent whichever flush path a caller takes)."""
        written = 0
        for key in sorted(k for k, f in self._frames.items()
                          if k[0] == dev_name and k[1] == relname and f.dirty):
            self._writeback(key, self._frames[key])
            self.stats.forced_writes += 1
            written += 1
        return written

    # -- invalidation -----------------------------------------------------------

    def invalidate_all(self, write_dirty: bool = True) -> None:
        """Drop every frame.  With ``write_dirty=False`` this models a
        crash (buffer contents lost); with True it is the benchmark's
        'all caches were flushed before each test'."""
        if write_dirty:
            self.flush_all()
        self._frames.clear()

    def drop_relation(self, dev_name: str, relname: str) -> None:
        """Discard frames of a dropped relation without writeback."""
        for key in [k for k in self._frames
                    if k[0] == dev_name and k[1] == relname]:
            del self._frames[key]

    # -- introspection -------------------------------------------------------------

    def resident(self, dev_name: str, relname: str, pageno: int) -> bool:
        return (dev_name, relname, pageno) in self._frames

    def dirty_count(self) -> int:
        return sum(1 for f in self._frames.values() if f.dirty)

    def __len__(self) -> int:
        return len(self._frames)
