"""The shared buffer cache.

"POSTGRES maintains an in-memory shared cache of recently used 8 KByte
data pages.  The size of this cache is tunable when the file system is
installed; as shipped, the system uses 64 buffers, but the version in
use locally uses 300.  Data pages are kicked out of this cache in LRU
order, regardless of the device from which they came.  Dirty pages are
written to backing store before being deleted from the cache."

The cache is the only path between the storage layers (heap, B-tree)
and the device managers.  All simulated I/O cost is charged by the
devices, so a cache hit is (nearly) free and a miss pays real disk
time — exactly the performance structure the benchmark measures.

Sequential scans additionally get a read-ahead window: when a miss
lands on the page directly after the previous access to the same
relation, the cache fetches up to ``readahead_window`` pages in one
``read_pages`` device call, so a scan pays one positioning per window
instead of one per page.  Read-ahead is purely a cost optimisation —
prefetched pages hold exactly the bytes a page-at-a-time read would
have seen, and reads are not crash boundaries, so the crash explorer's
schedules are unchanged by it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.db.page import Page
from repro.devices.switch import DeviceSwitch
from repro.obs.registry import MetricSpec
from repro.obs.tracing import NO_SPAN
from repro.sim.cpu import CpuModel

BufferKey = tuple[str, str, int]  # (device name, relation name, page number)

DEFAULT_BUFFERS = 300
"""The evaluated configuration; POSTGRES shipped with 64."""

DEFAULT_READAHEAD = 8
"""Pages fetched per device call once a scan turns sequential."""

METRICS = (
    MetricSpec("buffer.hits", "counter", "pages",
               "Page requests served from a resident frame.",
               "repro.db.buffer"),
    MetricSpec("buffer.misses", "counter", "pages",
               "Page requests that paid a device read.",
               "repro.db.buffer"),
    MetricSpec("buffer.evictions", "counter", "pages",
               "Frames pushed out in LRU order to admit new pages.",
               "repro.db.buffer"),
    MetricSpec("buffer.dirty_writebacks", "counter", "pages",
               "Dirty pages written back to their device (eviction or "
               "flush).",
               "repro.db.buffer"),
    MetricSpec("buffer.forced_writes", "counter", "pages",
               "Dirty pages written by an explicit flush (commit force, "
               "relation flush).",
               "repro.db.buffer"),
    MetricSpec("buffer.batched_writes", "counter", "ops",
               "Multi-page write_pages device calls issued by flushes.",
               "repro.db.buffer"),
    MetricSpec("buffer.write_coalesce_hits", "counter", "pages",
               "Pages that rode along in a batched write beyond the "
               "first — positioning charges the page-at-a-time path "
               "would have paid.",
               "repro.db.buffer"),
    MetricSpec("buffer.prefetches", "counter", "pages",
               "Pages fetched ahead of an explicit request by the "
               "read-ahead window.",
               "repro.db.buffer"),
    MetricSpec("buffer.prefetch_hits", "counter", "pages",
               "Hits served from a prefetched, not-yet-requested frame.",
               "repro.db.buffer"),
)

#: pushed per-relation device families — charged at the buffer/device
#: seam, where both the device name and the relation are known (the
#: registry's ``device.reads{device=...,relation=...}`` series).
DEVICE_METRICS = (
    MetricSpec("device.reads", "counter", "ops",
               "Device read calls issued by the buffer cache (a batched "
               "run counts once).",
               "repro.db.buffer", ("device", "relation")),
    MetricSpec("device.pages_read", "counter", "pages",
               "Pages transferred by those reads.",
               "repro.db.buffer", ("device", "relation")),
    MetricSpec("device.writes", "counter", "ops",
               "Device write calls issued by the buffer cache (a "
               "coalesced flush run counts once).",
               "repro.db.buffer", ("device", "relation")),
    MetricSpec("device.pages_written", "counter", "pages",
               "Pages transferred by those writes.",
               "repro.db.buffer", ("device", "relation")),
)


@dataclass
class BufferStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0
    forced_writes: int = 0
    #: multi-page ``write_pages`` device calls issued by flushes.
    batched_writes: int = 0
    #: pages that rode along in a batched write beyond the first — each
    #: one is a device positioning the page-at-a-time path would have paid.
    write_coalesce_hits: int = 0
    #: pages fetched ahead of an explicit request (beyond the missed page).
    prefetches: int = 0
    #: hits that were served from a prefetched (not yet requested) frame.
    prefetch_hits: int = 0


class _Frame:
    """One resident page.  A plain ``__slots__`` class: frames are the
    unit object of every buffer lookup, so they skip the dict that a
    dataclass instance would carry.  ``prefetched`` marks a frame
    admitted by read-ahead and not yet explicitly requested."""

    __slots__ = ("page", "dirty", "prefetched")

    def __init__(self, page: Page, dirty: bool = False,
                 prefetched: bool = False) -> None:
        self.page = page
        self.dirty = dirty
        self.prefetched = prefetched


@dataclass
class BufferCache:
    """LRU page cache over the device manager switch."""

    switch: DeviceSwitch
    capacity: int = DEFAULT_BUFFERS
    cpu: CpuModel | None = None
    readahead_window: int = DEFAULT_READAHEAD
    #: coalesce adjacent dirty pages into batched device writes at
    #: flush time; False restores page-at-a-time write-back (the
    #: ablation baseline the commit-I/O bench measures against).
    coalesce_writes: bool = True
    #: the session's Observability bundle (set by Database); None for
    #: standalone caches in unit tests.
    obs: object | None = field(default=None, repr=False)
    stats: BufferStats = field(default_factory=BufferStats)
    _frames: "OrderedDict[BufferKey, _Frame]" = field(
        default_factory=OrderedDict, repr=False)
    #: (device, relation) -> resident page numbers; keeps relation-scoped
    #: flush/drop from walking every frame in the cache.
    _rel_keys: dict[tuple[str, str], set[int]] = field(
        default_factory=dict, repr=False)
    #: keys of dirty frames — flush_all iterates these, not all frames.
    _dirty_keys: set[BufferKey] = field(default_factory=set, repr=False)
    #: last page number touched per (device, relation) — the sequential
    #: detector.
    _last: dict[tuple[str, str], int] = field(default_factory=dict, repr=False)
    #: consecutive sequential accesses per (device, relation).  The
    #: read-ahead window only opens once a run has proven itself (two
    #: sequential steps), so an access pattern that merely brushes two
    #: adjacent pages never over-fetches.
    _streaks: dict[tuple[str, str], int] = field(default_factory=dict, repr=False)
    #: (device, relation) -> the B-tree layer's cached previous descent
    #: path (kept here so every BTree handle over one cache shares it
    #: and relation drop/invalidate clears it).
    descent_hints: dict = field(default_factory=dict, repr=False)

    # -- core operations ---------------------------------------------------

    def get_page(self, dev_name: str, relname: str, pageno: int) -> Page:
        """Return the cached page, reading it from its device on a miss.

        A miss at ``last_access + 1`` is treated as a sequential scan
        and pulls a whole read-ahead window in one device call."""
        key = (dev_name, relname, pageno)
        obs = self.obs
        streak = self._note_access((dev_name, relname), pageno)
        frames = self._frames
        frame = frames.get(key)
        if frame is not None:
            stats = self.stats
            stats.hits += 1
            if obs is not None:
                obs.tx.charge("buffer_hits")
            if frame.prefetched:
                frame.prefetched = False
                stats.prefetch_hits += 1
            frames.move_to_end(key)
            return frame.page
        self.stats.misses += 1
        dev = self.switch.get(dev_name)
        count = self._readahead_count(dev, relname, dev_name, pageno, streak)
        span = obs.span("device.read", device=dev_name, relation=relname,
                        page=pageno, pages=count) \
            if obs is not None and obs.tracer.enabled else NO_SPAN
        with span:
            if count > 1:
                datas = dev.read_pages(relname, pageno, count)
                self.stats.prefetches += count - 1
            else:
                datas = [dev.read_page(relname, pageno)]
        if obs is not None:
            obs.tx.charge("buffer_misses")
            obs.device_read(dev_name, relname, count)
        if self.cpu is not None:
            for _ in datas:
                self.cpu.buffer_copy()
        page = Page(datas[0])
        self._admit(key, _Frame(page))
        for i, data in enumerate(datas[1:], start=1):
            pkey = (dev_name, relname, pageno + i)
            self._admit(pkey, _Frame(Page(data), prefetched=True))
        return page

    def _note_access(self, lk: tuple[str, str], pageno: int) -> int:
        """Record one page access for the sequential detector; returns
        the length of the current sequential streak (0 = not part of a
        run).  Re-reading the last page (e.g. several records fetched
        off one page) keeps the streak — only a jump breaks it."""
        last = self._last.get(lk)
        if last == pageno - 1:
            streak = self._streaks.get(lk, 0) + 1
        elif last == pageno:
            streak = self._streaks.get(lk, 0)
        else:
            streak = 0
        self._streaks[lk] = streak
        self._last[lk] = pageno
        return streak

    def _readahead_count(self, dev, relname: str, dev_name: str,
                         pageno: int, streak: int) -> int:
        """How many pages to fetch for a miss at ``pageno``: 1 until the
        access pattern has taken two consecutive sequential steps (so a
        read that merely brushes adjacent pages never over-fetches),
        then a full window, capped by the relation's size, the cache
        capacity, and the first already-resident page (a resident frame
        may be dirty and must never be overwritten by a stale prefetch)."""
        window = self.readahead_window
        if window <= 1 or streak < 2:
            return 1
        count = min(window, dev.nblocks(relname) - pageno, self.capacity)
        for i in range(1, count):
            if (dev_name, relname, pageno + i) in self._frames:
                return i
        return max(count, 1)

    def get_page_range(self, dev_name: str, relname: str,
                       start: int, count: int) -> list[Page]:
        """Return ``count`` consecutive pages, fetching every missing run
        with one batched device call each.  Resident frames (possibly
        dirty) are served from the cache, so the result is always the
        current contents, identical to ``count`` ``get_page`` calls."""
        if count < 0:
            raise ValueError(f"negative page count {count}")
        dev = self.switch.get(dev_name)
        obs = self.obs
        lk = (dev_name, relname)
        # The range counts as `count` sequential accesses for the
        # detector; a later page-at-a-time continuation picks up the
        # streak where the range left off.
        entry_streak = self._streaks.get(lk, 0) + 1 \
            if count and self._last.get(lk) == start - 1 else 0
        pages: list[Page] = []
        i = 0
        while i < count:
            key = (dev_name, relname, start + i)
            frame = self._frames.get(key)
            if frame is not None:
                self.stats.hits += 1
                if obs is not None:
                    obs.tx.charge("buffer_hits")
                if frame.prefetched:
                    frame.prefetched = False
                    self.stats.prefetch_hits += 1
                self._frames.move_to_end(key)
                pages.append(frame.page)
                i += 1
                continue
            # Collect the whole missing run and fetch it in one call.
            run = 1
            while (i + run < count
                   and (dev_name, relname, start + i + run) not in self._frames):
                run += 1
            if run == 1:
                # A lone missing page: route through get_page so the
                # sequential detector can extend it into a read-ahead
                # window (page-at-a-time range calls — e.g. one chunk
                # per request — still batch their device I/O).
                pages.append(self.get_page(dev_name, relname, start + i))
                i += 1
                continue
            span = obs.span("device.read", device=dev_name, relation=relname,
                            page=start + i, pages=run) \
                if obs is not None and obs.tracer.enabled else NO_SPAN
            with span:
                datas = dev.read_pages(relname, start + i, run)
            self.stats.misses += run
            if obs is not None:
                obs.tx.charge("buffer_misses", run)
                obs.device_read(dev_name, relname, run)
            if self.cpu is not None:
                for _ in datas:
                    self.cpu.buffer_copy()
            for j, data in enumerate(datas):
                page = Page(data)
                self._admit((dev_name, relname, start + i + j), _Frame(page))
                pages.append(page)
            i += run
        if count:
            self._last[lk] = start + count - 1
            self._streaks[lk] = entry_streak + count - 1
        return pages

    def new_page(self, dev_name: str, relname: str, flags: int = 0) -> tuple[int, Page]:
        """Extend the relation by one page; returns (pageno, page).  The
        new page is dirty — it reaches the device at eviction or
        flush."""
        dev = self.switch.get(dev_name)
        pageno = dev.extend(relname)
        page = Page(flags=flags)
        self._admit((dev_name, relname, pageno), _Frame(page, dirty=True))
        return pageno, page

    def mark_dirty(self, dev_name: str, relname: str, pageno: int) -> None:
        key = (dev_name, relname, pageno)
        frame = self._frames.get(key)
        if frame is None:
            raise KeyError(f"page {key} not resident")
        frame.dirty = True
        self._dirty_keys.add(key)

    def _admit(self, key: BufferKey, frame: _Frame) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[key] = frame
        self._rel_keys.setdefault(key[:2], set()).add(key[2])
        if frame.dirty:
            self._dirty_keys.add(key)

    def _evict_one(self) -> None:
        key, frame = self._frames.popitem(last=False)
        self.stats.evictions += 1
        self._forget(key)
        if frame.dirty:
            self._writeback(key, frame)

    def _forget(self, key: BufferKey) -> None:
        """Drop a key from the secondary indexes (frame already gone)."""
        pages = self._rel_keys.get(key[:2])
        if pages is not None:
            pages.discard(key[2])
            if not pages:
                del self._rel_keys[key[:2]]

    def _writeback(self, key: BufferKey, frame: _Frame) -> None:
        dev_name, relname, pageno = key
        obs = self.obs
        span = obs.span("device.write", device=dev_name, relation=relname,
                        page=pageno, pages=1, cause="eviction") \
            if obs is not None and obs.tracer.enabled else NO_SPAN
        with span:
            self.switch.get(dev_name).write_page(relname, pageno,
                                                 frame.page.to_bytes())
        if obs is not None:
            obs.device_write(dev_name, relname, 1)
        frame.dirty = False
        self._dirty_keys.discard(key)
        self.stats.dirty_writebacks += 1

    # -- flushing ------------------------------------------------------------

    def _flush_run(self, dev_name: str, relname: str, start: int,
                   frames: list[_Frame]) -> None:
        """Write one run of consecutive dirty pages back in a single
        device call (singletons keep the ``write_page`` path).  Counter
        accounting stays per page — ``dirty_writebacks``/``forced_writes``
        are unchanged by coalescing — while ``batched_writes`` and
        ``write_coalesce_hits`` expose the batching itself."""
        dev = self.switch.get(dev_name)
        obs = self.obs
        span = obs.span("device.write", device=dev_name, relation=relname,
                        page=start, pages=len(frames), cause="flush") \
            if obs is not None and obs.tracer.enabled else NO_SPAN
        with span:
            if len(frames) == 1 or not self.coalesce_writes:
                for i, frame in enumerate(frames):
                    dev.write_page(relname, start + i, frame.page.to_bytes())
            else:
                dev.write_pages(relname, start,
                                [f.page.to_bytes() for f in frames])
                self.stats.batched_writes += 1
                self.stats.write_coalesce_hits += len(frames) - 1
        if obs is not None:
            ops = len(frames) if (len(frames) > 1
                                  and not self.coalesce_writes) else 1
            obs.device_write(dev_name, relname, len(frames), ops=ops)
        for i, frame in enumerate(frames):
            frame.dirty = False
            self._dirty_keys.discard((dev_name, relname, start + i))
        self.stats.dirty_writebacks += len(frames)
        self.stats.forced_writes += len(frames)

    def _flush_sorted(self, keys: list[BufferKey]) -> int:
        """Write back the dirty frames among ``keys`` (which must be in
        elevator order), coalescing physically adjacent pages of one
        (device, relation) into single batched device writes."""
        written = 0
        run_dev = run_rel = None
        run_start = 0
        run_frames: list[_Frame] = []
        for key in keys:
            frame = self._frames.get(key)
            if frame is None or not frame.dirty:
                continue
            dev_name, relname, pageno = key
            if (run_frames and dev_name == run_dev and relname == run_rel
                    and pageno == run_start + len(run_frames)):
                run_frames.append(frame)
                continue
            if run_frames:
                self._flush_run(run_dev, run_rel, run_start, run_frames)
                written += len(run_frames)
            run_dev, run_rel, run_start = dev_name, relname, pageno
            run_frames = [frame]
        if run_frames:
            self._flush_run(run_dev, run_rel, run_start, run_frames)
            written += len(run_frames)
        return written

    def flush_all(self) -> int:
        """Write back every dirty page (transaction commit forces its
        writes this way — the no-overwrite manager has no WAL, so data
        pages themselves must be durable before the commit record).
        Returns the number of pages written."""
        # Elevator order: sorting by (device, relation, page) turns a
        # scatter of dirty pages into ascending sweeps per relation, as
        # the disk driver's elevator would — and makes adjacent dirty
        # pages coalesce into single batched device writes.
        obs = self.obs
        span = obs.span("buffer.flush_all") \
            if obs is not None and obs.tracer.enabled else NO_SPAN
        with span as sp:
            written = self._flush_sorted(sorted(self._dirty_keys))
            sp.set(pages=written)
        return written

    def flush_relation(self, dev_name: str, relname: str) -> int:
        """Force one relation's dirty pages (same elevator order,
        coalescing, and ``forced_writes`` accounting as
        :meth:`flush_all`, so write counting is consistent whichever
        flush path a caller takes)."""
        resident = self._rel_keys.get((dev_name, relname))
        if not resident:
            return 0
        return self._flush_sorted(
            [(dev_name, relname, pageno) for pageno in sorted(resident)])

    # -- invalidation -----------------------------------------------------------

    def invalidate_all(self, write_dirty: bool = True) -> None:
        """Drop every frame.  With ``write_dirty=False`` this models a
        crash (buffer contents lost); with True it is the benchmark's
        'all caches were flushed before each test'."""
        if write_dirty:
            self.flush_all()
        self._frames.clear()
        self._rel_keys.clear()
        self._dirty_keys.clear()
        self._last.clear()
        self._streaks.clear()
        self.descent_hints.clear()

    def drop_relation(self, dev_name: str, relname: str) -> None:
        """Discard frames of a dropped relation without writeback."""
        pages = self._rel_keys.pop((dev_name, relname), None)
        if not pages:
            return
        for pageno in pages:
            key = (dev_name, relname, pageno)
            self._frames.pop(key, None)
            self._dirty_keys.discard(key)
        self._last.pop((dev_name, relname), None)
        self._streaks.pop((dev_name, relname), None)
        self.descent_hints.pop((dev_name, relname), None)

    # -- introspection -------------------------------------------------------------

    def resident(self, dev_name: str, relname: str, pageno: int) -> bool:
        return (dev_name, relname, pageno) in self._frames

    def dirty_count(self) -> int:
        return sum(1 for f in self._frames.values() if f.dirty)

    def __len__(self) -> int:
        return len(self._frames)
