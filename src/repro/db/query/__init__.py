"""A POSTQUEL-like query language.

"Instead of mastering the use of many different programs, the user may
examine the file system's structure and contents by formulating simple
POSTQUEL queries."  This package implements the subset the paper's
examples exercise, plus the DDL Inversion needs:

- ``retrieve (targets) [from v in rel[, …]] [where qual] [sort by col]``
  with per-range-variable time travel (``rel[T]``);
- ``append rel (col = expr, …)``;
- ``delete v [from v in rel] [where qual]``;
- ``replace v (col = expr, …) [from …] [where qual]``;
- ``define type name``;
- ``define function name (argtype, …) returns type [for filetype]
  language "python"|"postquel" as "src"``;
- ``remove table name``.

Function calls in target lists and qualifications dispatch through the
catalog (:mod:`repro.db.funcmgr`), so user-defined functions — the
paper's ``keywords``, ``snow``, ``month_of`` — compose with queries
exactly as in the examples.
"""

from repro.db.query.engine import QueryEngine

__all__ = ["QueryEngine"]
