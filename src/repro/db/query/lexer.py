"""Tokenizer for the POSTQUEL subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuerySyntaxError

KEYWORDS = frozenset({
    "retrieve", "unique", "into", "from", "in", "where", "sort", "by", "asc",
    "desc", "append", "delete", "replace", "define", "remove", "type",
    "function", "returns", "language", "as", "for", "table", "index",
    "on", "and", "or", "not", "rule", "to", "do", "reject",
})

# Token kinds
IDENT = "IDENT"
KEYWORD = "KEYWORD"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
PUNCT = "PUNCT"
PARAM = "PARAM"   # $1, $2, ... inside POSTQUEL function bodies
EOF = "EOF"

_TWO_CHAR_OPS = ("<=", ">=", "!=")
_ONE_CHAR_OPS = "=<>+-*/"
_PUNCT = "(),[].[]"


@dataclass(frozen=True)
class Token:
    kind: str
    value: object
    pos: int

    def is_kw(self, word: str) -> bool:
        return self.kind == KEYWORD and self.value == word


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c.isspace():
            i += 1
            continue
        start = i
        if c == "$" and i + 1 < n and text[i + 1].isdigit():
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token(PARAM, int(text[i + 1:j]), start))
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lower = word.lower()
            if lower in KEYWORDS:
                tokens.append(Token(KEYWORD, lower, start))
            else:
                tokens.append(Token(IDENT, word, start))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot followed by a non-digit is attribute access.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            raw = text[i:j]
            tokens.append(Token(NUMBER, float(raw) if "." in raw else int(raw), start))
            i = j
            continue
        if c in "\"'":
            quote = c
            j = i + 1
            out = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    out.append(text[j + 1])
                    j += 2
                else:
                    out.append(text[j])
                    j += 1
            if j >= n:
                raise QuerySyntaxError(f"unterminated string at {i}")
            tokens.append(Token(STRING, "".join(out), start))
            i = j + 1
            continue
        two = text[i:i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(OP, two, start))
            i += 2
            continue
        if c in _ONE_CHAR_OPS:
            tokens.append(Token(OP, c, start))
            i += 1
            continue
        if c in "()[],.":
            tokens.append(Token(PUNCT, c, start))
            i += 1
            continue
        raise QuerySyntaxError(f"unexpected character {c!r} at {i}")
    tokens.append(Token(EOF, None, n))
    return tokens
