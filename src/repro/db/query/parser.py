"""Recursive-descent parser for the POSTQUEL subset.

Operator precedence, loosest first: ``or`` < ``and`` < ``not`` <
comparisons/``in`` < ``+ -`` < ``* /`` < unary minus < postfix.
"""

from __future__ import annotations

from repro.db.query import ast
from repro.db.query.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PARAM,
    PUNCT,
    STRING,
    Token,
    tokenize,
)
from repro.errors import QuerySyntaxError

_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")


class Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing ---------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def _error(self, message: str) -> QuerySyntaxError:
        tok = self._peek()
        return QuerySyntaxError(f"{message} (at {tok.kind} {tok.value!r}, "
                                f"position {tok.pos} in {self.text!r})")

    def _expect_kw(self, word: str) -> None:
        if not self._peek().is_kw(word):
            raise self._error(f"expected {word!r}")
        self._next()

    def _accept_kw(self, word: str) -> bool:
        if self._peek().is_kw(word):
            self._next()
            return True
        return False

    def _expect_punct(self, ch: str) -> None:
        tok = self._peek()
        if tok.kind != PUNCT or tok.value != ch:
            raise self._error(f"expected {ch!r}")
        self._next()

    def _accept_punct(self, ch: str) -> bool:
        tok = self._peek()
        if tok.kind == PUNCT and tok.value == ch:
            self._next()
            return True
        return False

    def _accept_op(self, *ops: str) -> str | None:
        tok = self._peek()
        if tok.kind == OP and tok.value in ops:
            self._next()
            return tok.value
        return None

    def _expect_ident(self) -> str:
        tok = self._peek()
        if tok.kind != IDENT:
            raise self._error("expected identifier")
        self._next()
        return tok.value

    def _expect_string(self) -> str:
        tok = self._peek()
        if tok.kind != STRING:
            raise self._error("expected string literal")
        self._next()
        return tok.value

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        tok = self._peek()
        if tok.kind != KEYWORD:
            raise self._error("expected a statement keyword")
        if tok.value == "retrieve":
            stmt = self._retrieve()
        elif tok.value == "append":
            stmt = self._append()
        elif tok.value == "delete":
            stmt = self._delete()
        elif tok.value == "replace":
            stmt = self._replace()
        elif tok.value == "define":
            stmt = self._define()
        elif tok.value == "remove":
            stmt = self._remove()
        else:
            raise self._error(f"unsupported statement {tok.value!r}")
        if self._peek().kind != EOF:
            raise self._error("trailing tokens after statement")
        return stmt

    def _retrieve(self) -> ast.Retrieve:
        self._expect_kw("retrieve")
        unique = self._accept_kw("unique")
        into = None
        if self._accept_kw("into"):
            into = self._expect_ident()
        self._expect_punct("(")
        targets = [self._target()]
        while self._accept_punct(","):
            targets.append(self._target())
        self._expect_punct(")")
        froms = self._from_clause()
        where = self._where_clause()
        sort_by, sort_desc = None, False
        if self._accept_kw("sort"):
            self._expect_kw("by")
            sort_by = self._expect_ident()
            if self._accept_kw("desc"):
                sort_desc = True
            else:
                self._accept_kw("asc")
        return ast.Retrieve(tuple(targets), tuple(froms), where,
                            sort_by, sort_desc, unique, into)

    def _target(self) -> ast.Target:
        # Lookahead for "label = expr": IDENT OP(=) not followed by
        # comparison context is ambiguous; POSTQUEL uses "name = expr" in
        # target lists, and bare expressions otherwise.  We treat
        # IDENT '=' as a label exactly when the IDENT is immediately
        # followed by '=' and the expression parse of the remainder
        # succeeds — the common, unambiguous case.
        tok = self._peek()
        if tok.kind == IDENT:
            nxt = self.tokens[self.pos + 1]
            if nxt.kind == OP and nxt.value == "=":
                label = tok.value
                self._next()
                self._next()
                return ast.Target(self._expr(), label)
        return ast.Target(self._expr(), None)

    def _from_clause(self) -> list[ast.RangeVar]:
        froms: list[ast.RangeVar] = []
        if self._accept_kw("from"):
            froms.append(self._range_var())
            while self._accept_punct(","):
                froms.append(self._range_var())
        return froms

    def _range_var(self) -> ast.RangeVar:
        name = self._expect_ident()
        self._expect_kw("in")
        rel = self._expect_ident()
        asof = None
        asof_end = None
        if self._accept_punct("["):
            asof = self._expr()
            if self._accept_punct(","):
                asof_end = self._expr()
            self._expect_punct("]")
        return ast.RangeVar(name, rel, asof, asof_end)

    def _where_clause(self) -> ast.Expr | None:
        if self._accept_kw("where"):
            return self._expr()
        return None

    def _assign_list(self) -> list[tuple[str, ast.Expr]]:
        self._expect_punct("(")
        assigns = [self._assign()]
        while self._accept_punct(","):
            assigns.append(self._assign())
        self._expect_punct(")")
        return assigns

    def _assign(self) -> tuple[str, ast.Expr]:
        name = self._expect_ident()
        if self._accept_op("=") is None:
            raise self._error("expected '=' in assignment")
        return name, self._expr()

    def _append(self) -> ast.Append:
        self._expect_kw("append")
        rel = self._expect_ident()
        return ast.Append(rel, tuple(self._assign_list()))

    def _delete(self) -> ast.Delete:
        self._expect_kw("delete")
        var = self._expect_ident()
        froms = self._from_clause()
        where = self._where_clause()
        return ast.Delete(var, tuple(froms), where)

    def _replace(self) -> ast.Replace:
        self._expect_kw("replace")
        var = self._expect_ident()
        assigns = self._assign_list()
        froms = self._from_clause()
        where = self._where_clause()
        return ast.Replace(var, tuple(assigns), tuple(froms), where)

    def _define(self) -> ast.Statement:
        self._expect_kw("define")
        if self._accept_kw("type"):
            return ast.DefineType(self._expect_ident())
        if self._accept_kw("rule"):
            return self._define_rule()
        if self._accept_kw("index"):
            self._expect_kw("on")
            table = self._expect_ident()
            self._expect_punct("(")
            cols = [self._expect_ident()]
            while self._accept_punct(","):
                cols.append(self._expect_ident())
            self._expect_punct(")")
            return ast.DefineIndex(table, tuple(cols))
        self._expect_kw("function")
        name = self._expect_ident()
        self._expect_punct("(")
        argtypes: list[str] = []
        if not self._accept_punct(")"):
            argtypes.append(self._expect_ident())
            while self._accept_punct(","):
                argtypes.append(self._expect_ident())
            self._expect_punct(")")
        self._expect_kw("returns")
        rettype = self._expect_ident()
        typrestrict = ""
        if self._accept_kw("for"):
            typrestrict = self._expect_ident()
        self._expect_kw("language")
        lang = self._expect_string()
        self._expect_kw("as")
        src = self._expect_string()
        return ast.DefineFunction(name, tuple(argtypes), rettype, lang, src,
                                  typrestrict)

    def _define_rule(self) -> ast.DefineRule:
        """define rule NAME on EVENT to TABLE where QUAL do ACTION

        EVENT is append|replace|delete; ACTION is `reject` or a string
        naming a registered callback.  The qualification is stored as
        source text (re-parsed when the rule fires)."""
        name = self._expect_ident()
        self._expect_kw("on")
        event_tok = self._peek()
        if event_tok.kind == KEYWORD and event_tok.value in ("append",
                                                             "replace",
                                                             "delete"):
            self._next()
            event = event_tok.value
        else:
            raise self._error("expected append, replace, or delete")
        self._expect_kw("to")
        table = self._expect_ident()
        self._expect_kw("where")
        qual_start = self._peek().pos
        self._expr()  # validates; text slice is the stored form
        qual_end = self._peek().pos
        qualification = self.text[qual_start:qual_end].strip()
        self._expect_kw("do")
        tok = self._peek()
        if tok.is_kw("reject"):
            self._next()
            action = "reject"
        elif tok.kind == STRING:
            self._next()
            action = f"do {tok.value}"
        else:
            raise self._error("expected reject or a callback string")
        return ast.DefineRule(name, event, table, qualification, action)

    def _remove(self) -> ast.Statement:
        self._expect_kw("remove")
        if self._accept_kw("rule"):
            return ast.RemoveRule(self._expect_ident())
        self._expect_kw("table")
        return ast.RemoveTable(self._expect_ident())

    # -- expressions --------------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or()

    def _or(self) -> ast.Expr:
        left = self._and()
        while self._accept_kw("or"):
            left = ast.BinOp("or", left, self._and())
        return left

    def _and(self) -> ast.Expr:
        left = self._not()
        while self._accept_kw("and"):
            left = ast.BinOp("and", left, self._not())
        return left

    def _not(self) -> ast.Expr:
        if self._accept_kw("not"):
            return ast.UnaryOp("not", self._not())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        op = self._accept_op(*_COMPARISONS)
        if op is not None:
            return ast.BinOp(op, left, self._additive())
        if self._accept_kw("in"):
            return ast.BinOp("in", left, self._additive())
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            op = self._accept_op("+", "-")
            if op is None:
                return left
            left = ast.BinOp(op, left, self._multiplicative())

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            op = self._accept_op("*", "/")
            if op is None:
                return left
            left = ast.BinOp(op, left, self._unary())

    def _unary(self) -> ast.Expr:
        if self._accept_op("-"):
            return ast.UnaryOp("-", self._unary())
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == NUMBER:
            self._next()
            return ast.Literal(tok.value)
        if tok.kind == STRING:
            self._next()
            return ast.Literal(tok.value)
        if tok.kind == PARAM:
            self._next()
            return ast.Param(tok.value)
        if tok.kind == PUNCT and tok.value == "(":
            self._next()
            inner = self._expr()
            self._expect_punct(")")
            return inner
        if tok.kind == IDENT:
            name = tok.value
            self._next()
            if self._accept_punct("("):
                args: list[ast.Expr] = []
                if not self._accept_punct(")"):
                    args.append(self._expr())
                    while self._accept_punct(","):
                        args.append(self._expr())
                    self._expect_punct(")")
                return ast.FuncCall(name, tuple(args))
            if self._accept_punct("."):
                attr = self._expect_ident()
                return ast.Var(name, attr)
            return ast.Var(None, name)
        raise self._error("expected an expression")


def parse(text: str) -> ast.Statement:
    return Parser(text).parse_statement()


def parse_expression(text: str) -> ast.Expr:
    """Parse a bare expression (POSTQUEL-language function bodies)."""
    parser = Parser(text)
    expr = parser._expr()
    if parser._peek().kind != EOF:
        raise parser._error("trailing tokens after expression")
    return expr
