"""AST node definitions for the POSTQUEL subset."""

from __future__ import annotations

from dataclasses import dataclass, field


class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Literal(Expr):
    value: object


@dataclass(frozen=True)
class Param(Expr):
    """$N — positional argument of a POSTQUEL-language function."""

    index: int  # 1-based


@dataclass(frozen=True)
class Var(Expr):
    """A column reference, optionally qualified by a range variable."""

    qualifier: str | None
    name: str


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # 'or','and','=','!=','<','<=','>','>=','in','+','-','*','/'
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # 'not', '-'
    operand: Expr


class Statement:
    """Base class for statements."""


@dataclass(frozen=True)
class RangeVar:
    """``v in relation``, optionally time-travelled: ``relation[T]``
    (the state as of T) or ``relation[T1, T2]`` (every version live at
    some instant in the interval)."""

    name: str
    relation: str
    asof: Expr | None = None
    asof_end: Expr | None = None


@dataclass(frozen=True)
class Target:
    """One target-list entry, optionally labelled (``label = expr``)."""

    expr: Expr
    label: str | None = None


@dataclass(frozen=True)
class Retrieve(Statement):
    targets: tuple[Target, ...]
    froms: tuple[RangeVar, ...] = ()
    where: Expr | None = None
    sort_by: str | None = None
    sort_desc: bool = False
    unique: bool = False
    #: ``retrieve into t (...)`` — materialize the result as a new
    #: table (POSTQUEL's result-table form; this is how function
    #: results get indexed for fast lookup later).
    into: str | None = None


@dataclass(frozen=True)
class Append(Statement):
    relation: str
    assigns: tuple[tuple[str, Expr], ...]


@dataclass(frozen=True)
class Delete(Statement):
    var: str
    froms: tuple[RangeVar, ...] = ()
    where: Expr | None = None


@dataclass(frozen=True)
class Replace(Statement):
    var: str
    assigns: tuple[tuple[str, Expr], ...]
    froms: tuple[RangeVar, ...] = ()
    where: Expr | None = None


@dataclass(frozen=True)
class DefineType(Statement):
    name: str


@dataclass(frozen=True)
class DefineFunction(Statement):
    name: str
    argtypes: tuple[str, ...]
    rettype: str
    lang: str
    src: str
    typrestrict: str = ""


@dataclass(frozen=True)
class DefineIndex(Statement):
    table: str
    keycols: tuple[str, ...]


@dataclass(frozen=True)
class DefineRule(Statement):
    name: str
    event: str
    table: str
    qualification: str   # stored as source text, re-parsed at firing
    action: str          # 'reject' or 'do <registry key>'


@dataclass(frozen=True)
class RemoveRule(Statement):
    name: str


@dataclass(frozen=True)
class RemoveTable(Statement):
    name: str
